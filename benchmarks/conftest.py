"""Shared setup for the paper-reproduction benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper.
Circuits, base networks and layout images are built once per session
here; the calibrated experiment dies (see EXPERIMENTS.md) are fixed so
every run reproduces the same rows.

All benches print their table (paper layout) and write it to
``benchmarks/results/`` for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.circuits import pdc_like, spla_like, too_large_like
from repro.core import FlowConfig, PositionMap
from repro.library import CORELIB018
from repro.network import BaseNetwork, decompose
from repro.place import Floorplan, place_base_network

#: Scale factor for the IWLS-like stand-ins (1/8 of the paper's sizes;
#: see DESIGN.md on the substitution).
SCALE = 0.125

#: Calibrated marginal dies: the largest row counts at which the K = 0
#: (DAGON-equivalent) mapping is still unroutable — the same "fixed die
#: the baseline cannot route" construction the paper uses (its SPLA die
#: was one row short of what DAGON needed).  Re-calibrated against the
#: current router: at 32 rows the SPLA K = 0 mapping leaves 8 track
#: violations while the small-K window routes within tolerance; at 33
#: rows even K = 0 routes clean.  PDC is marginal one notch later: at
#: 33 rows its K = 0 mapping leaves 65 violations while K = 0.1 routes
#: with 1 (at 32 rows no K routes; at 35 even K = 0 is clean).
SPLA_ROWS = 32
PDC_ROWS = 33

#: The violation count still considered fixable in post-routing; the
#: paper explicitly treats its 2- and 9-violation rows as routable
#: ("basically routable"), so anything under that 9-violation row
#: qualifies.
ROUTABLE_TOLERANCE = 6

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclass
class BenchSetup:
    """Everything a table bench needs for one circuit."""

    name: str
    base: BaseNetwork
    floorplan: Floorplan
    positions: PositionMap
    config: FlowConfig


def _setup(name: str, network, rows: int) -> BenchSetup:
    base = decompose(network)
    floorplan = Floorplan.from_rows(rows, aspect=1.0)
    config = FlowConfig(library=CORELIB018)
    positions = place_base_network(base, floorplan, seed=config.seed)
    return BenchSetup(name=name, base=base, floorplan=floorplan,
                      positions=positions, config=config)


@pytest.fixture(scope="session")
def spla_setup() -> BenchSetup:
    """SPLA stand-in on its calibrated marginal die."""
    return _setup("SPLA", spla_like(SCALE), SPLA_ROWS)


@pytest.fixture(scope="session")
def pdc_setup() -> BenchSetup:
    """PDC stand-in on its calibrated marginal die."""
    return _setup("PDC", pdc_like(SCALE), PDC_ROWS)


@pytest.fixture(scope="session")
def too_large_network():
    """The TOO_LARGE stand-in (Table 1 builds its own flows)."""
    return too_large_like(SCALE)


@pytest.fixture(scope="session")
def config() -> FlowConfig:
    """Default flow configuration."""
    return FlowConfig(library=CORELIB018)


def publish(name: str, text: str) -> None:
    """Print a bench's table and persist it under benchmarks/results/."""
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")
