"""Ablation — wire-cost formulation (Section 3.3's critique of [9]).

The paper limits WIRE2 to the match's fanins and their children
(Eq. 3) instead of accumulating over *all* transitive fanins as in
Pedram–Bhat [9], arguing the transitive formulation makes the
perturbation non-uniform across the tree and the K response
unpredictable ("no correlation between the cell area and the wire cost
terms ... little chance of predicting a priori which one will occur").

Measured outcome in this reproduction (under the corrected covering
cost model): inside the flow's small-K window the two formulations
track each other, but at large K the transitive cost destabilizes
exactly the way the paper warns.  Its area overshoots roughly 3× more
than the local cost's at matched K, and — because the accumulated
transitive term swamps the area term non-uniformly across the tree —
its *wire* regresses past the K = 0 baseline (K = 1: +10% wire for
+26% area), while the paper's local cost keeps a monotone wire
response with a modest area penalty (−5% wire for +9% area).  The
bench prints both response curves and asserts:

* wire decreases (weakly) with K under the paper's cost,
* at matched K inside the flow's window the paper's cost achieves at
  least the wire reduction of the transitive cost, with the area
  penalty within a couple percent,
* at large K the paper's cost Pareto-dominates the transitive one
  (less area AND less wire), and the transitive wire response loses
  monotonicity while the local one does not.
"""

import pytest

from conftest import publish
from repro.core import area_congestion, map_network
from repro.io import format_table
from repro.library import CORELIB018

K_VALUES = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0]

_cache = {}


def run_ablation(spla_setup):
    if "data" in _cache:
        return _cache["data"]
    base = spla_setup.base
    positions = spla_setup.positions
    rows = []
    for k in K_VALUES:
        local = map_network(base, CORELIB018,
                            area_congestion(k, transitive_wire=False),
                            partition_style="placement",
                            positions=positions)
        transitive = map_network(base, CORELIB018,
                                 area_congestion(k, transitive_wire=True),
                                 partition_style="placement",
                                 positions=positions)
        rows.append((k, local.stats["cell_area"],
                     transitive.stats["cell_area"],
                     local.estimated_wirelength,
                     transitive.estimated_wirelength))
    _cache["data"] = rows
    return rows


def test_ablation_wirecost(benchmark, spla_setup):
    rows = benchmark.pedantic(run_ablation, args=(spla_setup,),
                              rounds=1, iterations=1)
    base_area = rows[0][1]
    base_wire = rows[0][3]
    display = []
    for k, area_l, area_t, wire_l, wire_t in rows:
        display.append((
            f"{k:g}",
            f"{area_l:.0f} ({100 * (area_l / base_area - 1):+.1f}%)",
            f"{wire_l:.0f} ({100 * (wire_l / base_wire - 1):+.1f}%)",
            f"{area_t:.0f} ({100 * (area_t / base_area - 1):+.1f}%)",
            f"{wire_t:.0f} ({100 * (wire_t / base_wire - 1):+.1f}%)"))
    table = format_table(
        ["K", "Paper cost: area", "wire", "Transitive [9]: area", "wire"],
        display,
        title="Ablation - paper's local WIRE (Eqs. 2-4) vs transitive "
              "wire cost [9] on SPLA")
    publish("ablation_wirecost", table)

    by_k = {row[0]: row for row in rows}

    # Wire responds monotonically (weakly) to K under the paper's cost.
    wires_local = [row[3] for row in rows]
    assert all(b <= a + 1e-6 for a, b in zip(wires_local, wires_local[1:]))

    # Inside the flow's operating window, the paper's cost achieves at
    # least the wire reduction the transitive cost does at matched K.
    for k in (0.01, 0.05, 0.1):
        _, _, _, wire_l, wire_t = by_k[k]
        assert wire_l <= wire_t * 1.005, f"K={k}"

    # The paper's cost keeps area within a couple percent across the
    # whole operating window, not just at its low end.
    for k in (0.01, 0.05, 0.1):
        assert by_k[k][1] <= base_area * 1.02, f"K={k}"

    # At large K the local cost Pareto-dominates: less area AND less
    # wire than the transitive formulation at matched K.
    for k in (0.5, 1.0):
        _, area_l, area_t, wire_l, wire_t = by_k[k]
        assert area_l < area_t, f"K={k}"
        assert wire_l < wire_t, f"K={k}"

    # Section 3.3's instability, concretely: pushed hard, the
    # transitive cost's wire term regresses past its own K=0 baseline
    # (the accumulated term perturbs the tree non-uniformly), while
    # the local cost still improves wire at the same K.
    assert by_k[1.0][4] > base_wire
    assert by_k[1.0][3] < base_wire
    # ... and its area overshoot is large where the local cost's is
    # moderate.
    assert by_k[1.0][2] > base_area * 1.15
    assert by_k[1.0][1] < base_area * 1.12
