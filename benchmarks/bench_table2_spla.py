"""Table 2 — SPLA: congestion minimization vs place & route results.

The paper's central experiment: map the placed technology-independent
SPLA network once per K on a fixed die (chosen, as in the paper, one
notch too small for the K = 0 / DAGON-equivalent mapping), then place
and globally route each netlist and report cell area, cell count, area
utilization and routing violations.

Shape assertions (see DESIGN.md §5 and EXPERIMENTS.md on magnitudes):

* K = 0 is unroutable,
* a window of small K values is (basically) routable,
* large K blows up cell area and becomes unroutable again,
* cell area / cell count / utilization trend upward with K.
"""

import pytest

from conftest import ROUTABLE_TOLERANCE, publish
from repro.core import k_sweep
from repro.core.flow import PAPER_K_VALUES
from repro.io import k_sweep_table

#: Paper's Table 2 violation column, for side-by-side printing.
PAPER_VIOLATIONS = {
    0.0: 4794, 0.0001: 4737, 0.00025: 5307, 0.0005: 0, 0.00075: 0,
    0.001: 0, 0.0025: 0, 0.005: 4805, 0.0075: 4958, 0.01: 4869,
    0.05: 5867, 0.1: 7865, 0.5: 6777, 1.0: 8893,
}

#: Our routable window under the 1/8-scale geometry (the effective K
#: range shifts with die size — Section 3.3 of the paper discusses
#: exactly this scale dependence).
WINDOW = [k for k in PAPER_K_VALUES if 0.0001 <= k <= 0.05]

#: Region 3 is likewise scale-shifted: at 1/8 scale the wire term is
#: ~sqrt(8) smaller, so the area blow-up that the paper sees at
#: K >= 0.5 only sets in around K >= 2 here.  The sweep extends the
#: paper's K column with three larger probes to capture it.
REGION3_K = [2.0, 5.0, 10.0]
SWEEP_K = list(PAPER_K_VALUES) + REGION3_K

_cache = {}


def run_sweep(spla_setup):
    if "points" not in _cache:
        _cache["points"] = k_sweep(
            spla_setup.base, spla_setup.floorplan, spla_setup.config,
            k_values=SWEEP_K, positions=spla_setup.positions)
    return _cache["points"]


def test_table2_spla(benchmark, spla_setup):
    points = benchmark.pedantic(run_sweep, args=(spla_setup,),
                                rounds=1, iterations=1)
    table = k_sweep_table(
        points,
        title=(f"Table 2 - SPLA congestion minimization vs place&route "
               f"(die {spla_setup.floorplan.area:.0f} um2, "
               f"{spla_setup.floorplan.num_rows} rows, 3 metal layers; "
               f"paper die 207062 um2, 71 rows)"))
    lines = [table, "", "paper violations per K, for comparison:"]
    lines.append("  " + "  ".join(
        f"K={k:g}:{PAPER_VIOLATIONS[k]}" for k in PAPER_K_VALUES))
    publish("table2_spla", "\n".join(lines))

    by_k = {p.k: p for p in points}

    # Region 1: the minimum-area netlist does not route.
    assert by_k[0.0].violations > ROUTABLE_TOLERANCE

    # Region 2: some window K values are basically routable.
    window_best = min(by_k[k].violations for k in WINDOW)
    assert window_best <= ROUTABLE_TOLERANCE
    routable_count = sum(
        1 for k in WINDOW if by_k[k].violations <= ROUTABLE_TOLERANCE)
    assert routable_count >= 3, "the routable window should span several K"

    # Region 3: large K is unroutable again, with a big area penalty.
    for k in REGION3_K:
        assert by_k[k].violations > ROUTABLE_TOLERANCE
    assert by_k[REGION3_K[-1]].cell_area > 1.2 * by_k[0.0].cell_area

    # Monotone trends (within a small tolerance for tie-breaking noise).
    areas = [p.cell_area for p in points]
    assert all(b >= a - 1e-6 for a, b in zip(areas, areas[1:])), \
        "cell area must be non-decreasing in K"
    assert points[-1].num_cells > points[0].num_cells
    assert points[-1].utilization > points[0].utilization
