"""Figure 3 — the modified ASIC design flow (the K-escalation loop).

Runs the paper's methodology end to end on the SPLA stand-in and its
marginal die: place the technology-independent netlist once, map with
K = 0, evaluate the congestion map, raise K until the map is
acceptable.  Asserts the loop's two key economics:

* it converges at a *small* K with an area penalty of a few percent
  (the paper: "the area penalty obtained by increasing K should be
  kept within a few percent of the minimum area solution"), and
* each iteration re-uses the single technology-independent placement
  (mapping is linear-time — far cheaper than re-synthesis).
"""

import pytest

from conftest import ROUTABLE_TOLERANCE, SCALE, SPLA_ROWS, publish
from repro.circuits import spla_like
from repro.core import FlowConfig, congestion_aware_flow
from repro.io import format_table
from repro.library import CORELIB018
from repro.network import decompose
from repro.obs import Tracer, profile_report
from repro.place import Floorplan

K_SCHEDULE = [0.0, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
              0.01, 0.05, 0.1, 0.25]

#: The die-escalation regression triplet: the calibrated marginal die
#: (needs K > 0 to route) and the next two relaxations (even K = 0
#: routes).  The flow must converge on all three — the historical
#: non-convergence bug was a stale marginal-die calibration combined
#: with warm-starting the router from congested snapshots.
ESCALATION_ROWS = (SPLA_ROWS, SPLA_ROWS + 1, SPLA_ROWS + 2)

_cache = {}


def run_flow(spla_setup):
    if "result" not in _cache:
        tracer = Tracer("run", command="bench_flow")
        _cache["result"] = congestion_aware_flow(
            spla_setup.base, spla_setup.floorplan, spla_setup.config,
            k_schedule=K_SCHEDULE, positions=spla_setup.positions,
            tolerance=ROUTABLE_TOLERANCE, tracer=tracer)
        _cache["trace"] = tracer.close()
    return _cache["result"]


def test_figure3_flow(benchmark, spla_setup):
    result = benchmark.pedantic(run_flow, args=(spla_setup,),
                                rounds=1, iterations=1)
    rows = []
    for point in result.history:
        verdict = ("congestion OK"
                   if point.violations <= ROUTABLE_TOLERANCE
                   else "congested -> increase K")
        rows.append((f"{point.k:g}", f"{point.cell_area:.0f}",
                     f"{point.utilization:.2f}", point.violations, verdict))
    table = format_table(
        ["K", "Cell Area (um2)", "Utilization%", "Violations",
         "Figure-3 decision"],
        rows,
        title=(f"Figure 3 - congestion-aware flow on SPLA "
               f"(die {spla_setup.floorplan.area:.0f} um2, "
               f"{spla_setup.floorplan.num_rows} rows)"))
    publish("figure3_flow", table)
    publish("figure3_profile", profile_report(_cache["trace"]))

    assert result.converged, "the flow must converge on the marginal die"
    assert result.chosen_k > 0.0, \
        "K = 0 must be congested on the marginal die"
    baseline = result.history[0]
    chosen = result.chosen
    assert baseline.violations > ROUTABLE_TOLERANCE
    assert chosen.violations <= ROUTABLE_TOLERANCE
    # "Within a few percent of the minimum cell area."
    assert chosen.cell_area <= baseline.cell_area * 1.05
    # The flow stopped at the first acceptable K (no wasted iterations).
    for point in result.history[:-1]:
        assert point.violations > ROUTABLE_TOLERANCE


def run_escalation(spla_setup):
    """The Figure 3 loop on each die of the escalation triplet."""
    if "escalation" not in _cache:
        results = {SPLA_ROWS: run_flow(spla_setup)}
        for rows in ESCALATION_ROWS[1:]:
            base = decompose(spla_like(SCALE))
            floorplan = Floorplan.from_rows(rows, aspect=1.0)
            results[rows] = congestion_aware_flow(
                base, floorplan, FlowConfig(library=CORELIB018),
                k_schedule=K_SCHEDULE, tolerance=ROUTABLE_TOLERANCE)
        _cache["escalation"] = results
    return _cache["escalation"]


def test_figure3_die_escalation(benchmark, spla_setup):
    """Regression: the flow converges on the marginal die *and* both
    relaxations (the non-convergence bug left all three stuck)."""
    results = benchmark.pedantic(run_escalation, args=(spla_setup,),
                                 rounds=1, iterations=1)
    for rows in ESCALATION_ROWS:
        assert results[rows].converged, \
            f"figure3 flow must converge at {rows} rows"
    # The marginal die needs congestion awareness; the relaxed dies
    # route the minimum-area mapping directly.
    assert results[ESCALATION_ROWS[0]].chosen_k > 0.0
    for rows in ESCALATION_ROWS[1:]:
        assert results[rows].chosen_k == 0.0
