"""Table 1 — TOO_LARGE routing results: SIS vs DAGON.

The paper's motivating experiment: the same RTL taken through two
flows — full SIS synthesis (aggressive technology-independent literal
minimisation + min-area mapping) versus DAGON (min-area tree covering
of a moderately-prepared technology-independent netlist) — then placed
and routed in the *same* fixed die with three metal layers.

Paper result: SIS yields the smaller cell area (126394 vs 129851 µm²,
i.e. ~2.7 % less) and lower utilization — more routing resources
available — yet it is unroutable (3673 violations) where DAGON routes
cleanly.  "Excessive efforts in area minimization during logic
synthesis can result in higher congestion, hence larger block area."

The bench picks the die the way the paper did: a fixed die on which
the DAGON netlist is (basically) routable and the SIS netlist is not,
found by scanning up from the smallest plausible row count.
"""

import pytest

from conftest import publish
from repro.core import dagon_flow, evaluate_netlist, sis_flow
from repro.io import format_table
from repro.library import CORELIB018
from repro.place import Floorplan

START_ROWS = 26
MAX_ROWS = 44
#: Violations still fixable in post-routing.  The paper itself calls
#: rows with single-digit violation counts "basically routable".
TOLERANCE = 9

_cache = {}


def run_table1(too_large_network, config):
    if "data" in _cache:
        return _cache["data"]
    sis = sis_flow(too_large_network, CORELIB018)
    dagon = dagon_flow(too_large_network, CORELIB018)

    # The paper's construction: a fixed die on which the DAGON netlist
    # is (basically) routable while the SIS netlist is not — found by
    # scanning up from the smallest plausible die, exactly the "chosen
    # demonstration die" of the paper's Table 1.
    chosen = None
    for rows in range(START_ROWS, MAX_ROWS + 1):
        floorplan = Floorplan.from_rows(rows, aspect=1.0)
        dagon_point = evaluate_netlist(dagon.netlist, floorplan, config)
        if dagon_point.violations > TOLERANCE:
            continue
        sis_point = evaluate_netlist(sis.netlist, floorplan, config)
        if sis_point.violations > TOLERANCE:
            chosen = (floorplan, sis_point, dagon_point)
            break
    assert chosen is not None, \
        "no die separates the SIS and DAGON netlists"
    _cache["data"] = chosen
    return _cache["data"]


def test_table1_too_large(benchmark, too_large_network, config):
    floorplan, sis_point, dagon_point = benchmark.pedantic(
        run_table1, args=(too_large_network, config),
        rounds=1, iterations=1)

    rows = [
        ("SIS", f"{sis_point.cell_area:.0f}", floorplan.num_rows,
         f"{sis_point.utilization:.2f}", sis_point.violations),
        ("DAGON", f"{dagon_point.cell_area:.0f}", floorplan.num_rows,
         f"{dagon_point.utilization:.2f}", dagon_point.violations),
    ]
    table = format_table(
        ["Flow", "Cell Area (um2)", "No. of Rows", "Area Utilization%",
         "No. of Routing violations"],
        rows,
        title=(f"Table 1 - TOO_LARGE routing results "
               f"(die {floorplan.area:.0f} um2, 3 metal layers; paper "
               f"die 153915 um2: SIS 126394 um2 / 82.12% / 3673 viol, "
               f"DAGON 129851 um2 / 84.37% / 0 viol)"))
    publish("table1_too_large", table)

    # SIS achieves the smaller cell area (and hence lower utilization,
    # i.e. MORE routing resources available)...
    assert sis_point.cell_area < dagon_point.cell_area
    assert sis_point.utilization < dagon_point.utilization
    # ...but is structurally harder to route on the die DAGON fits.
    assert dagon_point.violations <= TOLERANCE
    assert sis_point.violations > TOLERANCE
    assert sis_point.violations > dagon_point.violations
