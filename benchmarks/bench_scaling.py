"""Scaling — the paper's linear-time mapping claim (Section 5).

"The computational complexity of the technology mapping algorithm
described in Section 3 is linear with the size of the technology
independent netlist" — the property that makes the Figure-3 K-loop
cheap relative to re-synthesis.

This bench maps the SPLA stand-in at growing scales and checks that
mapping time grows near-linearly with base-gate count (a loose
super-linearity bound absorbs constant factors and interpreter noise).
The paper's cheapness argument compares re-mapping against re-running
*detailed* place & route or re-synthesis; our global-route evaluation
is deliberately light, so the bench asserts only the linearity and that
output size tracks input size.
"""

import os
import time

import pytest

from bench_common import write_bench_json
from conftest import publish
from repro.circuits import spla_like
from repro.core import (
    area_congestion,
    evaluate_netlist,
    k_sweep,
    map_network,
    run_k_point,
)
from repro.exec import default_workers
from repro.io import format_table
from repro.library import CORELIB018
from repro.network import decompose
from repro.place import Floorplan, place_base_network
from repro.place.placer import place_netlist
from repro.route import GlobalRouter

SCALES = [0.03, 0.06, 0.125]

#: K schedule for the execution-layer bench (a prefix of the paper's).
SWEEP_K = [0.0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.5]

#: Smoke mode (CI): smallest scale only, no speedup floor — the point
#: is exercising the bench path and the equivalence asserts, not
#: measuring a container's timer.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Full-run acceptance: the vectorized engine must beat the per-edge
#: reference (the PR-2-era routing style) by this factor at the
#: largest scale.
ROUTING_SPEEDUP_FLOOR = 3.0

_cache = {}


def run_scaling(config):
    if "rows" in _cache:
        return _cache["rows"]
    rows = []
    for scale in SCALES:
        base = decompose(spla_like(scale))
        floorplan = Floorplan.for_area(base.num_gates() * 12.0 / 0.35,
                                       aspect=1.0)
        t0 = time.perf_counter()
        positions = place_base_network(base, floorplan)
        t_place = time.perf_counter() - t0
        t0 = time.perf_counter()
        mapping = map_network(base, CORELIB018, area_congestion(0.001),
                              partition_style="placement",
                              positions=positions)
        t_map = time.perf_counter() - t0
        t0 = time.perf_counter()
        evaluate_netlist(mapping.netlist, floorplan, config)
        t_eval = time.perf_counter() - t0
        rows.append({
            "scale": scale,
            "gates": base.num_gates(),
            "cells": mapping.netlist.num_cells(),
            "t_place": t_place,
            "t_map": t_map,
            "t_eval": t_eval,
        })
    _cache["rows"] = rows
    return rows


def test_scaling(benchmark, config):
    rows = benchmark.pedantic(run_scaling, args=(config,),
                              rounds=1, iterations=1)
    table = format_table(
        ["scale", "base gates", "cells", "tech-indep place (s)",
         "map (s)", "place+route eval (s)"],
        [(f"{r['scale']:g}", r["gates"], r["cells"],
          f"{r['t_place']:.2f}", f"{r['t_map']:.2f}", f"{r['t_eval']:.2f}")
         for r in rows],
        title="Scaling - congestion-aware mapping cost vs circuit size "
              "(paper 5: mapping is linear in netlist size)")
    publish("scaling", table)

    small, large = rows[0], rows[-1]
    gate_ratio = large["gates"] / small["gates"]
    time_ratio = large["t_map"] / max(small["t_map"], 1e-9)
    # Near-linear: allow a generous 1.8 exponent for interpreter and
    # cache effects at these small sizes.
    assert time_ratio <= gate_ratio ** 1.8, \
        f"mapping time grew x{time_ratio:.1f} for x{gate_ratio:.1f} gates"
    # Output size tracks input size.
    assert large["cells"] > small["cells"] * (gate_ratio / 2)


def _sweep_setup(config):
    base = decompose(spla_like(0.06))
    floorplan = Floorplan.for_area(base.num_gates() * 12.0 / 0.35,
                                   aspect=1.0)
    positions = place_base_network(base, floorplan, seed=config.seed)
    return base, floorplan, positions


def run_sweep_modes(config):
    """Time the K sweep cold, hoisted-serial and parallel."""
    base, floorplan, positions = _sweep_setup(config)

    # Cold: one independent mapping per K — no shared partition, no
    # match memo (what every K point cost before the execution layer).
    t0 = time.perf_counter()
    cold = [run_k_point(base, positions, floorplan, config, k)
            for k in SWEEP_K]
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = k_sweep(base, floorplan, config, k_values=SWEEP_K,
                     positions=positions, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = k_sweep(base, floorplan, config, k_values=SWEEP_K,
                       positions=positions, workers=4)
    t_parallel = time.perf_counter() - t0

    return {
        "t_cold": t_cold, "t_serial": t_serial, "t_parallel": t_parallel,
        "cold_rows": [p.row() for p in cold],
        "serial_rows": [p.row() for p in serial],
        "parallel_rows": [p.row() for p in parallel],
        "cache_hits": sum(p.stats["match_cache_hits"] for p in serial),
        "cache_misses": sum(p.stats["match_cache_misses"] for p in serial),
        "routes_reused": sum(p.stats.get("routes_reused", 0)
                             for p in serial),
        "segments_rerouted": sum(p.stats.get("segments_rerouted", 0)
                                 for p in serial),
        "t_route_serial": sum(p.stats.get("route.t_init", 0.0) +
                              p.stats.get("route.t_negotiate", 0.0)
                              for p in serial),
    }


def test_sweep_execution_layer(benchmark, config):
    """Wall-time of the K sweep across execution modes.

    Parallel results must be bit-identical to serial; the >= 2x speedup
    acceptance check for workers=4 only makes sense on a multi-core
    host, so it is gated on the CPUs actually available (this keeps the
    bench meaningful inside 1-CPU containers, where a process pool can
    only add overhead).
    """
    r = benchmark.pedantic(run_sweep_modes, args=(config,),
                           rounds=1, iterations=1)
    cpus = default_workers()
    table = format_table(
        ["mode", "workers", "wall (s)", "vs cold"],
        [("cold (per-K rebuild)", 1, f"{r['t_cold']:.2f}", "1.00x"),
         ("hoisted serial", 1, f"{r['t_serial']:.2f}",
          f"{r['t_cold'] / max(r['t_serial'], 1e-9):.2f}x"),
         ("process pool", 4, f"{r['t_parallel']:.2f}",
          f"{r['t_cold'] / max(r['t_parallel'], 1e-9):.2f}x")],
        title=f"K-sweep execution layer ({len(SWEEP_K)} K points, "
              f"{cpus} CPU(s) available; match cache "
              f"{r['cache_hits']:.0f} hits / {r['cache_misses']:.0f} misses; "
              f"router {r['routes_reused']:.0f} routes warm-started, "
              f"{r['segments_rerouted']:.0f} segments renegotiated, "
              f"{r['t_route_serial']:.2f}s in routing)")
    publish("sweep_execution", table)

    # Bit-identical across all execution modes.
    assert r["serial_rows"] == r["cold_rows"]
    assert r["parallel_rows"] == r["serial_rows"]
    # Hoisting partition + match enumeration out of the per-K loop must
    # pay for itself: all Ks after the first hit the match memo.
    assert r["cache_hits"] > 0
    assert r["t_serial"] <= r["t_cold"] * 1.10
    if cpus >= 2:
        # The acceptance criterion proper: 4 workers at least halve the
        # sweep wall-time relative to one.
        assert r["t_parallel"] * 2.0 <= r["t_serial"], \
            (f"workers=4 took {r['t_parallel']:.2f}s vs serial "
             f"{r['t_serial']:.2f}s on a {cpus}-CPU host")


def run_routing_engines(config):
    """Route identical placed netlists through both engines.

    The reference engine evaluates every edge in Python, the way the
    router worked before vectorization — it is both the correctness
    oracle (results must match exactly) and the speedup baseline.
    """
    scales = SCALES[:1] if SMOKE else SCALES
    rows = []
    for scale in scales:
        base = decompose(spla_like(scale))
        # A deliberately tight die (30 rows at full scale, shrunk with
        # sqrt(scale)): the engines must negotiate hard for tracks,
        # which is exactly the phase the vectorization targets.
        die_rows = max(10, round(30 * (scale / 0.125) ** 0.5))
        floorplan = Floorplan.from_rows(die_rows, aspect=1.0)
        positions = place_base_network(base, floorplan, seed=config.seed)
        mapping = map_network(base, CORELIB018, area_congestion(0.001),
                              partition_style="placement",
                              positions=positions)
        placement = place_netlist(mapping.netlist, CORELIB018, floorplan,
                                  seed=config.seed)
        points = placement.net_points(mapping.netlist)

        results = {}
        times = {}
        for engine in ("vector", "reference", "auto"):
            router = GlobalRouter(floorplan, config.resources,
                                  gcell_rows=config.gcell_rows,
                                  max_iterations=config.max_route_iterations,
                                  seed=config.seed, engine=engine)
            best = float("inf")
            for _ in range(3):             # best-of-3 absorbs timer noise
                t0 = time.perf_counter()
                results[engine] = router.route(points)
                best = min(best, time.perf_counter() - t0)
            times[engine] = best
        vec, ref, auto = (results["vector"], results["reference"],
                          results["auto"])

        # Equivalence gate: a speedup that changes answers is a bug.
        for other in (ref, auto):
            assert vec.violations == other.violations
            assert vec.overflowed_nets == other.overflowed_nets
            assert vec.total_wirelength == other.total_wirelength
            assert vec.iterations == other.iterations

        rows.append({
            "scale": scale,
            "nets": len(points),
            "violations": vec.violations,
            "iterations": vec.iterations,
            "t_vector": times["vector"],
            "t_reference": times["reference"],
            "t_auto": times["auto"],
            "speedup": times["reference"] / max(times["vector"], 1e-9),
            "auto_speedup": times["reference"] / max(times["auto"], 1e-9),
            "t_init_route": vec.stats["route.t_init"],
            "t_negotiate": vec.stats["route.t_negotiate"],
            "nets_rerouted": vec.stats["route.nets_rerouted"],
            "segments_rerouted": vec.stats["route.segments_rerouted"],
        })
    return rows


def test_routing_engines(benchmark, config):
    """Vectorized routing speedup over the per-edge reference path."""
    rows = benchmark.pedantic(run_routing_engines, args=(config,),
                              rounds=1, iterations=1)
    table = format_table(
        ["scale", "nets", "violations", "iters", "vector (s)",
         "init/negotiate (s)", "reference (s)", "auto (s)", "speedup"],
        [(f"{r['scale']:g}", r["nets"], r["violations"], r["iterations"],
          f"{r['t_vector']:.3f}",
          f"{r['t_init_route']:.3f}/{r['t_negotiate']:.3f}",
          f"{r['t_reference']:.3f}", f"{r['t_auto']:.3f}",
          f"{r['speedup']:.1f}x")
         for r in rows],
        title="Global-routing engines - vectorized vs per-edge reference "
              f"({'smoke' if SMOKE else 'full'} mode; identical results "
              "asserted per scale; auto picks by net count)")
    publish("routing_engines", table)

    payload = {
        "mode": "smoke" if SMOKE else "full",
        "speedup_floor": None if SMOKE else ROUTING_SPEEDUP_FLOOR,
        "rows": rows,
    }
    write_bench_json("routing", payload)

    assert all(r["t_vector"] > 0 and r["t_reference"] > 0 for r in rows)
    if not SMOKE:
        largest = rows[-1]
        assert largest["speedup"] >= ROUTING_SPEEDUP_FLOOR, \
            (f"vectorized engine only {largest['speedup']:.1f}x over the "
             f"reference at scale {largest['scale']:g} "
             f"(floor {ROUTING_SPEEDUP_FLOOR:.0f}x)")
        # The shipped default (auto) must never meaningfully lose to the
        # reference — the small-design regression the engine selector
        # exists to fix.  Mid-scale sits near the engines' crossover
        # where the two are a wall-clock tie, so allow timer noise
        # there; the largest scale must stay a decisive win.
        for r in rows:
            assert r["auto_speedup"] >= 0.9, \
                (f"auto engine slower than reference at scale "
                 f"{r['scale']:g}: {r['auto_speedup']:.2f}x")
        assert largest["auto_speedup"] >= 1.5, \
            (f"auto engine only {largest['auto_speedup']:.1f}x over the "
             f"reference at scale {largest['scale']:g}")
