"""Scaling — the paper's linear-time mapping claim (Section 5).

"The computational complexity of the technology mapping algorithm
described in Section 3 is linear with the size of the technology
independent netlist" — the property that makes the Figure-3 K-loop
cheap relative to re-synthesis.

This bench maps the SPLA stand-in at growing scales and checks that
mapping time grows near-linearly with base-gate count (a loose
super-linearity bound absorbs constant factors and interpreter noise).
The paper's cheapness argument compares re-mapping against re-running
*detailed* place & route or re-synthesis; our global-route evaluation
is deliberately light, so the bench asserts only the linearity and that
output size tracks input size.
"""

import time

import pytest

from conftest import publish
from repro.circuits import spla_like
from repro.core import area_congestion, evaluate_netlist, map_network
from repro.io import format_table
from repro.library import CORELIB018
from repro.network import decompose
from repro.place import Floorplan, place_base_network

SCALES = [0.03, 0.06, 0.125]

_cache = {}


def run_scaling(config):
    if "rows" in _cache:
        return _cache["rows"]
    rows = []
    for scale in SCALES:
        base = decompose(spla_like(scale))
        floorplan = Floorplan.for_area(base.num_gates() * 12.0 / 0.35,
                                       aspect=1.0)
        t0 = time.perf_counter()
        positions = place_base_network(base, floorplan)
        t_place = time.perf_counter() - t0
        t0 = time.perf_counter()
        mapping = map_network(base, CORELIB018, area_congestion(0.001),
                              partition_style="placement",
                              positions=positions)
        t_map = time.perf_counter() - t0
        t0 = time.perf_counter()
        evaluate_netlist(mapping.netlist, floorplan, config)
        t_eval = time.perf_counter() - t0
        rows.append({
            "scale": scale,
            "gates": base.num_gates(),
            "cells": mapping.netlist.num_cells(),
            "t_place": t_place,
            "t_map": t_map,
            "t_eval": t_eval,
        })
    _cache["rows"] = rows
    return rows


def test_scaling(benchmark, config):
    rows = benchmark.pedantic(run_scaling, args=(config,),
                              rounds=1, iterations=1)
    table = format_table(
        ["scale", "base gates", "cells", "tech-indep place (s)",
         "map (s)", "place+route eval (s)"],
        [(f"{r['scale']:g}", r["gates"], r["cells"],
          f"{r['t_place']:.2f}", f"{r['t_map']:.2f}", f"{r['t_eval']:.2f}")
         for r in rows],
        title="Scaling - congestion-aware mapping cost vs circuit size "
              "(paper 5: mapping is linear in netlist size)")
    publish("scaling", table)

    small, large = rows[0], rows[-1]
    gate_ratio = large["gates"] / small["gates"]
    time_ratio = large["t_map"] / max(small["t_map"], 1e-9)
    # Near-linear: allow a generous 1.8 exponent for interpreter and
    # cache effects at these small sizes.
    assert time_ratio <= gate_ratio ** 1.8, \
        f"mapping time grew x{time_ratio:.1f} for x{gate_ratio:.1f} gates"
    # Output size tracks input size.
    assert large["cells"] > small["cells"] * (gate_ratio / 2)
