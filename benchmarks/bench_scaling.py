"""Scaling — the paper's linear-time mapping claim (Section 5).

"The computational complexity of the technology mapping algorithm
described in Section 3 is linear with the size of the technology
independent netlist" — the property that makes the Figure-3 K-loop
cheap relative to re-synthesis.

This bench maps the SPLA stand-in at growing scales and checks that
mapping time grows near-linearly with base-gate count (a loose
super-linearity bound absorbs constant factors and interpreter noise).
The paper's cheapness argument compares re-mapping against re-running
*detailed* place & route or re-synthesis; our global-route evaluation
is deliberately light, so the bench asserts only the linearity and that
output size tracks input size.
"""

import time

import pytest

from conftest import publish
from repro.circuits import spla_like
from repro.core import (
    area_congestion,
    evaluate_netlist,
    k_sweep,
    map_network,
    run_k_point,
)
from repro.exec import default_workers
from repro.io import format_table
from repro.library import CORELIB018
from repro.network import decompose
from repro.place import Floorplan, place_base_network

SCALES = [0.03, 0.06, 0.125]

#: K schedule for the execution-layer bench (a prefix of the paper's).
SWEEP_K = [0.0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.5]

_cache = {}


def run_scaling(config):
    if "rows" in _cache:
        return _cache["rows"]
    rows = []
    for scale in SCALES:
        base = decompose(spla_like(scale))
        floorplan = Floorplan.for_area(base.num_gates() * 12.0 / 0.35,
                                       aspect=1.0)
        t0 = time.perf_counter()
        positions = place_base_network(base, floorplan)
        t_place = time.perf_counter() - t0
        t0 = time.perf_counter()
        mapping = map_network(base, CORELIB018, area_congestion(0.001),
                              partition_style="placement",
                              positions=positions)
        t_map = time.perf_counter() - t0
        t0 = time.perf_counter()
        evaluate_netlist(mapping.netlist, floorplan, config)
        t_eval = time.perf_counter() - t0
        rows.append({
            "scale": scale,
            "gates": base.num_gates(),
            "cells": mapping.netlist.num_cells(),
            "t_place": t_place,
            "t_map": t_map,
            "t_eval": t_eval,
        })
    _cache["rows"] = rows
    return rows


def test_scaling(benchmark, config):
    rows = benchmark.pedantic(run_scaling, args=(config,),
                              rounds=1, iterations=1)
    table = format_table(
        ["scale", "base gates", "cells", "tech-indep place (s)",
         "map (s)", "place+route eval (s)"],
        [(f"{r['scale']:g}", r["gates"], r["cells"],
          f"{r['t_place']:.2f}", f"{r['t_map']:.2f}", f"{r['t_eval']:.2f}")
         for r in rows],
        title="Scaling - congestion-aware mapping cost vs circuit size "
              "(paper 5: mapping is linear in netlist size)")
    publish("scaling", table)

    small, large = rows[0], rows[-1]
    gate_ratio = large["gates"] / small["gates"]
    time_ratio = large["t_map"] / max(small["t_map"], 1e-9)
    # Near-linear: allow a generous 1.8 exponent for interpreter and
    # cache effects at these small sizes.
    assert time_ratio <= gate_ratio ** 1.8, \
        f"mapping time grew x{time_ratio:.1f} for x{gate_ratio:.1f} gates"
    # Output size tracks input size.
    assert large["cells"] > small["cells"] * (gate_ratio / 2)


def _sweep_setup(config):
    base = decompose(spla_like(0.06))
    floorplan = Floorplan.for_area(base.num_gates() * 12.0 / 0.35,
                                   aspect=1.0)
    positions = place_base_network(base, floorplan, seed=config.seed)
    return base, floorplan, positions


def run_sweep_modes(config):
    """Time the K sweep cold, hoisted-serial and parallel."""
    base, floorplan, positions = _sweep_setup(config)

    # Cold: one independent mapping per K — no shared partition, no
    # match memo (what every K point cost before the execution layer).
    t0 = time.perf_counter()
    cold = [run_k_point(base, positions, floorplan, config, k)
            for k in SWEEP_K]
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = k_sweep(base, floorplan, config, k_values=SWEEP_K,
                     positions=positions, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = k_sweep(base, floorplan, config, k_values=SWEEP_K,
                       positions=positions, workers=4)
    t_parallel = time.perf_counter() - t0

    return {
        "t_cold": t_cold, "t_serial": t_serial, "t_parallel": t_parallel,
        "cold_rows": [p.row() for p in cold],
        "serial_rows": [p.row() for p in serial],
        "parallel_rows": [p.row() for p in parallel],
        "cache_hits": sum(p.stats["match_cache_hits"] for p in serial),
        "cache_misses": sum(p.stats["match_cache_misses"] for p in serial),
    }


def test_sweep_execution_layer(benchmark, config):
    """Wall-time of the K sweep across execution modes.

    Parallel results must be bit-identical to serial; the >= 2x speedup
    acceptance check for workers=4 only makes sense on a multi-core
    host, so it is gated on the CPUs actually available (this keeps the
    bench meaningful inside 1-CPU containers, where a process pool can
    only add overhead).
    """
    r = benchmark.pedantic(run_sweep_modes, args=(config,),
                           rounds=1, iterations=1)
    cpus = default_workers()
    table = format_table(
        ["mode", "workers", "wall (s)", "vs cold"],
        [("cold (per-K rebuild)", 1, f"{r['t_cold']:.2f}", "1.00x"),
         ("hoisted serial", 1, f"{r['t_serial']:.2f}",
          f"{r['t_cold'] / max(r['t_serial'], 1e-9):.2f}x"),
         ("process pool", 4, f"{r['t_parallel']:.2f}",
          f"{r['t_cold'] / max(r['t_parallel'], 1e-9):.2f}x")],
        title=f"K-sweep execution layer ({len(SWEEP_K)} K points, "
              f"{cpus} CPU(s) available; match cache "
              f"{r['cache_hits']:.0f} hits / {r['cache_misses']:.0f} misses)")
    publish("sweep_execution", table)

    # Bit-identical across all execution modes.
    assert r["serial_rows"] == r["cold_rows"]
    assert r["parallel_rows"] == r["serial_rows"]
    # Hoisting partition + match enumeration out of the per-K loop must
    # pay for itself: all Ks after the first hit the match memo.
    assert r["cache_hits"] > 0
    assert r["t_serial"] <= r["t_cold"] * 1.10
    if cpus >= 2:
        # The acceptance criterion proper: 4 workers at least halve the
        # sweep wall-time relative to one.
        assert r["t_parallel"] * 2.0 <= r["t_serial"], \
            (f"workers=4 took {r['t_parallel']:.2f}s vs serial "
             f"{r['t_serial']:.2f}s on a {cpus}-CPU host")
