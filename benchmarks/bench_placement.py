"""Placement & covering engines — vectorized vs scalar reference.

The placement stack (quadratic seed, spreading, legalization,
annealing) and the tree-covering DP both ship two engines: the flat
numpy ``vector`` engine used by default and the scalar ``reference``
oracles they replaced.  This bench runs the full map-and-place pipeline
through both engines at growing scales, asserts the results are
bit-identical, and records the per-phase timing breakdown to
``BENCH_placement.json``.

The acceptance floor applies to the *combined* placement + covering
time at the largest scale — the quantity the Figure-3 K-loop actually
pays once per K point.  The matcher is pre-warmed before timing, the
way a K sweep sees it (every K after the first hits the match memo).
"""

import os
import time

import pytest

from bench_common import write_bench_json
from conftest import publish
from repro.circuits import spla_like
from repro.core import Matcher, area_congestion, map_network
from repro.io import format_table
from repro.library import CORELIB018
from repro.network import decompose
from repro.place import Floorplan, place_base_network
from repro.place.placer import place_netlist

SCALES = [0.03, 0.06, 0.125]

#: Anneal budget per place_netlist call — enough for the cached-HPWL
#: incremental evaluation to dominate the anneal cost.
ANNEAL_MOVES = 4000

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Full-run acceptance: combined placement + covering through the
#: vector engine must at least halve the reference cost at the largest
#: scale (ISSUE 6 tentpole criterion).
PLACEMENT_SPEEDUP_FLOOR = 2.0

_cache = {}


def _run_engine(base, floorplan, matcher, engine):
    """One full mapping + placement pass; returns results and timings."""
    timings = {}
    t0 = time.perf_counter()
    positions = place_base_network(base, floorplan, engine=engine,
                                   timings=timings)
    t_place_ti = time.perf_counter() - t0

    t0 = time.perf_counter()
    mapping = map_network(base, CORELIB018, area_congestion(0.001),
                          partition_style="placement", positions=positions,
                          matcher=matcher, engine=engine)
    t_map = time.perf_counter() - t0

    t0 = time.perf_counter()
    placement = place_netlist(mapping.netlist, CORELIB018, floorplan,
                              anneal_moves=ANNEAL_MOVES, engine=engine,
                              timings=timings)
    t_place_cells = time.perf_counter() - t0

    t_dp = float(mapping.stats.get("cover.t_dp", 0.0))
    return {
        "positions": positions.as_points(),
        "cells": sorted((i.cell_name, tuple(sorted(i.pins.items())),
                         i.output)
                        for i in mapping.netlist.instances.values()),
        "placed": placement.positions,
        "total": t_place_ti + t_dp + t_place_cells,
        "t_place_ti": t_place_ti,
        "t_map": t_map,
        "t_dp": t_dp,
        "t_place_cells": t_place_cells,
        "phases": dict(timings),
    }


def run_placement_engines():
    if "rows" in _cache:
        return _cache["rows"]
    scales = SCALES[:1] if SMOKE else SCALES
    rows = []
    for scale in scales:
        base = decompose(spla_like(scale))
        floorplan = Floorplan.for_area(base.num_gates() * 12.0 / 0.35,
                                       aspect=1.0)
        # One shared matcher, pre-warmed: K-sweep reality is a hot
        # match memo, so the DP timing isolates covering, not matching.
        matcher = Matcher(base, CORELIB018)
        map_network(base, CORELIB018, area_congestion(0.001),
                    partition_style="placement",
                    positions=place_base_network(base, floorplan),
                    matcher=matcher)

        results = {engine: _run_engine(base, floorplan, matcher, engine)
                   for engine in ("vector", "reference")}
        vec, ref = results["vector"], results["reference"]

        # Equivalence gate: the engines must agree bitwise end to end.
        assert vec["positions"] == ref["positions"]
        assert vec["cells"] == ref["cells"]
        assert vec["placed"] == ref["placed"]

        rows.append({
            "scale": scale,
            "gates": base.num_gates(),
            "cells": len(vec["cells"]),
            "t_vector": vec["total"],
            "t_reference": ref["total"],
            "speedup": ref["total"] / max(vec["total"], 1e-9),
            "vector_phases": {
                "t_place_ti": vec["t_place_ti"],
                "t_dp": vec["t_dp"],
                "t_place_cells": vec["t_place_cells"],
                **{f"place.{k}": v for k, v in vec["phases"].items()},
            },
            "reference_phases": {
                "t_place_ti": ref["t_place_ti"],
                "t_dp": ref["t_dp"],
                "t_place_cells": ref["t_place_cells"],
                **{f"place.{k}": v for k, v in ref["phases"].items()},
            },
        })
    _cache["rows"] = rows
    return rows


def test_placement_engines(benchmark):
    """Vectorized placement + covering speedup over the scalar oracles."""
    rows = benchmark.pedantic(run_placement_engines, rounds=1, iterations=1)
    table = format_table(
        ["scale", "gates", "cells", "vector (s)",
         "ti-place/DP/cell-place (s)", "reference (s)", "speedup"],
        [(f"{r['scale']:g}", r["gates"], r["cells"],
          f"{r['t_vector']:.3f}",
          f"{r['vector_phases']['t_place_ti']:.3f}/"
          f"{r['vector_phases']['t_dp']:.3f}/"
          f"{r['vector_phases']['t_place_cells']:.3f}",
          f"{r['t_reference']:.3f}", f"{r['speedup']:.1f}x")
         for r in rows],
        title="Placement & covering engines - vectorized vs scalar "
              f"reference ({'smoke' if SMOKE else 'full'} mode; "
              "bit-identical results asserted per scale)")
    publish("placement_engines", table)

    payload = {
        "mode": "smoke" if SMOKE else "full",
        "speedup_floor": None if SMOKE else PLACEMENT_SPEEDUP_FLOOR,
        "anneal_moves": ANNEAL_MOVES,
        "rows": rows,
    }
    write_bench_json("placement", payload)

    assert all(r["t_vector"] > 0 and r["t_reference"] > 0 for r in rows)
    if not SMOKE:
        largest = rows[-1]
        assert largest["speedup"] >= PLACEMENT_SPEEDUP_FLOOR, \
            (f"vector engine only {largest['speedup']:.1f}x over the "
             f"reference at scale {largest['scale']:g} "
             f"(floor {PLACEMENT_SPEEDUP_FLOOR:.0f}x)")
