"""Table 5 — PDC static timing analysis results.

Same experiment as Table 3 on the PDC stand-in.  Paper shape: K = 0's
own critical path is slightly faster than K = 0.001's, but K = 0 needs
an extra row to route, and K = 0's critical endpoint *improves* inside
the K = 0.001 netlist; the SIS netlist is worst in both routability and
delay.
"""

import pytest

from conftest import ROUTABLE_TOLERANCE, SCALE, publish
from repro.circuits import pdc_like
from repro.core import (
    area_congestion,
    find_routable_die,
    map_network,
    sis_flow,
    timing_of_point,
)
from repro.io import sta_table
from repro.library import CORELIB018
from repro.timing import arrival_at_output

K_STAR = 0.001
START_ROWS = 30

_cache = {}


def run_sta(pdc_setup):
    if "data" in _cache:
        return _cache["data"]
    config = pdc_setup.config
    variants = {}
    for label, k in (("K=0", 0.0), (f"K={K_STAR:g}", K_STAR)):
        variants[label] = map_network(
            pdc_setup.base, CORELIB018, area_congestion(k),
            partition_style="placement", positions=pdc_setup.positions)
    variants["SIS"] = sis_flow(pdc_like(SCALE), CORELIB018)

    results = {}
    for label, mapping in variants.items():
        floorplan, point = find_routable_die(
            mapping.netlist, START_ROWS, config, max_extra_rows=14,
            tolerance=ROUTABLE_TOLERANCE)
        point.mapping = mapping
        report = timing_of_point(point, config)
        results[label] = (floorplan, point, report)
    _cache["data"] = results
    return results


def test_table5_pdc_sta(benchmark, pdc_setup):
    results = benchmark.pedantic(run_sta, args=(pdc_setup,),
                                 rounds=1, iterations=1)
    ref_report = results["K=0"][2]
    ref_po = ref_report.critical_output

    rows = []
    for label in ("K=0", f"K={K_STAR:g}", "SIS"):
        floorplan, point, report = results[label]
        start, end = report.path_endpoints()
        own = f"{start}(in) {end}(out) {report.critical_arrival:.2f}"
        ref = f"{ref_po}(out) {arrival_at_output(report, ref_po):.2f}"
        rows.append((label, own, ref,
                     f"{floorplan.area:.0f}", floorplan.num_rows))
    table = sta_table(rows, title=(
        "Table 5 - PDC static timing analysis "
        "(paper: K=0 21.48ns/75 rows, K=0.001 21.79ns/74 rows, "
        "SIS 23.26ns/77 rows)"))
    publish("table5_pdc_sta", table)

    fp0, _, rep0 = results["K=0"]
    fps, _, reps = results[f"K={K_STAR:g}"]
    fpsis, _, repsis = results["SIS"]

    # The congestion-aware netlist needs no more rows than K = 0.
    assert fps.num_rows <= fp0.num_rows
    # Timing competitive (the paper's own Table 5 shows K* slightly
    # slower on its own critical path but still winning overall).
    assert reps.critical_arrival <= rep0.critical_arrival * 1.15
    # The K=0 critical endpoint does not get slower in the K* netlist.
    assert arrival_at_output(reps, ref_po) <= \
        arrival_at_output(rep0, ref_po) * 1.10
    # SIS worst on at least one axis.
    assert (fpsis.num_rows >= fps.num_rows
            or repsis.critical_arrival >= reps.critical_arrival)
