"""Figure 1 — minimum-area vs congestion mapping of a placed netlist.

The paper's example: one small unbound (NAND2/INV) netlist, two
mappings on CORELIB-class cells:

* minimum area:  NAND3 + AOI21 + 2×INV  =  53.248 µm²
* congestion:    2×OR2 + 2×NAND2 + INV  =  65.536 µm²

with the congestion mapping placing fanin gates near their fanouts and
reducing wirelength.  This bench reconstructs the example around the
function ``f = (a + b)·c·d·e`` (which both cell sets implement), checks
the paper's exact areas, verifies both netlists are functionally
identical, and measures the wirelength trade-off under the
paper's-style relative placement.
"""

import numpy as np
import pytest

from conftest import publish
from repro.core import map_network, min_area
from repro.io import format_table
from repro.library import CORELIB018
from repro.network import (
    BaseNetwork,
    MappedNetlist,
    check_base_vs_mapped,
    exhaustive_stimulus,
    simulate_mapped,
)

#: Relative pin placement (paper: "each gate reflects its relative
#: geometrical location"): a, b and c cluster on the left, d and e on
#: the right, the output at the bottom.  The congestion mapping can pair
#: (a+b) with c locally and (d·e) locally; the NAND3 of the min-area
#: mapping must gather c, d and e at a single point.
PIN_PLACEMENT = {
    "a": (0.0, 35.0), "b": (0.0, 15.0), "c": (5.0, 0.0),
    "d": (45.0, 30.0), "e": (45.0, 10.0),
    "f": (25.0, 0.0),
}


def subject_network() -> BaseNetwork:
    """The unbound netlist for f = (a+b)·c·d·e, NAND3/AOI21-friendly."""
    net = BaseNetwork("figure1")
    a, b, c, d, e = (net.add_input(x) for x in "abcde")
    ia, ib = net.add_inv(a), net.add_inv(b)
    u = net.add_nand2(ia, ib)              # a + b
    cd = net.add_nand2(c, d)
    icd = net.add_inv(cd)                  # c d
    t3 = net.add_nand2(icd, e)             # NOT(c d e)
    it3 = net.add_inv(t3)                  # c d e
    w = net.add_nand2(u, it3)              # NOT((a+b) c d e)
    f = net.add_inv(w)
    net.set_output("f", f)
    return net


def min_area_netlist() -> MappedNetlist:
    """The paper's minimum-area mapping: NAND3 + AOI21 + 2 INV.

    f = AOI21(a', b', NAND3(c, d, e)) = NOT(a'b' + (cde)') = (a+b)cde.
    """
    nl = MappedNetlist("figure1_min_area")
    for pin in "abcde":
        nl.add_input(pin)
    nl.add_instance("INV_X1", {"A": "a"}, "na", name="inv_a")
    nl.add_instance("INV_X1", {"A": "b"}, "nb", name="inv_b")
    nl.add_instance("NAND3_X1", {"A": "c", "B": "d", "C": "e"}, "t3",
                    name="nd3_cde")
    nl.add_instance("AOI21_X1", {"A": "na", "B": "nb", "C": "t3"}, "f",
                    name="aoi_f")
    nl.add_output("f")
    return nl


def congestion_netlist() -> MappedNetlist:
    """The paper's congestion mapping: 2×OR2 + 2×NAND2 + INV.

    f = INV(NAND2-as-OR(x, y)) with x = NOT((a+b)·c), y = NOT(d·e):
    the distributed implementation that keeps every gate next to its
    fanins.
    """
    nl = MappedNetlist("figure1_congestion")
    for pin in "abcde":
        nl.add_input(pin)
    nl.add_instance("OR2_X1", {"A": "a", "B": "b"}, "u", name="or_ab")
    nl.add_instance("NAND2_X1", {"A": "u", "B": "c"}, "x", name="nd_uc")
    nl.add_instance("NAND2_X1", {"A": "d", "B": "e"}, "y", name="nd_de")
    nl.add_instance("OR2_X1", {"A": "x", "B": "y"}, "w", name="or_xy")
    nl.add_instance("INV_X1", {"A": "w"}, "f", name="inv_f")
    nl.add_output("f")
    return nl


def build() -> dict:
    subject = subject_network()
    # Our DP's own minimum-area cover (optimal tree covering; the
    # phase-flexible matcher finds a cheaper cover than the paper's
    # hand example — reported alongside for transparency).
    mapped_dp = map_network(subject, CORELIB018, min_area(),
                            partition_style="dagon")
    check_base_vs_mapped(subject, mapped_dp.netlist, CORELIB018)

    paper_min = min_area_netlist()
    congestion = congestion_netlist()
    # All three netlists compute f = (a+b) c d e — verify exhaustively.
    stim = exhaustive_stimulus(5)
    outs = [simulate_mapped(nl, CORELIB018, stim)["f"][0]
            for nl in (mapped_dp.netlist, paper_min, congestion)]
    mask = np.uint64((1 << 32) - 1)
    assert (outs[0] & mask) == (outs[1] & mask) == (outs[2] & mask)

    # Wirelength under the figure's relative placement: the min-area
    # netlist lumps everything near the root; the congestion netlist
    # places each gate at the centroid of its fanins.
    return {
        "hist_min": paper_min.cell_histogram(),
        "area_min": paper_min.total_area(CORELIB018),
        "area_con": congestion.total_area(CORELIB018),
        "area_dp": mapped_dp.netlist.total_area(CORELIB018),
        "hist_dp": mapped_dp.netlist.cell_histogram(),
        "wl_min": placed_wirelength(paper_min),
        "wl_con": placed_wirelength(congestion),
    }


def placed_wirelength(netlist: MappedNetlist) -> float:
    """HPWL of the netlist under its own optimal analytical placement.

    Each netlist's gates are placed by the quadratic solver against the
    fixed pin locations, so the comparison reflects the best each
    *structure* can do — exactly the figure's argument that the lumped
    NAND3/AOI21 implementation cannot avoid long gathering wires.
    """
    from repro.place import QpNet, solve_quadratic
    names = sorted(netlist.instances)
    index = {n: i for i, n in enumerate(names)}
    drivers = netlist.driver_map()
    sinks = netlist.sink_map()
    nets = []
    for net in netlist.nets():
        movables, fixed = [], []
        driver = drivers.get(net)
        if driver is not None:
            movables.append(index[driver])
        elif net in PIN_PLACEMENT:
            fixed.append(PIN_PLACEMENT[net])
        for inst, _pin in sinks.get(net, []):
            movables.append(index[inst])
        if len(movables) + len(fixed) >= 2:
            nets.append(QpNet(movables=movables, fixed=fixed))
    for po in netlist.outputs:
        driver = drivers.get(netlist.output_net[po])
        if driver is not None:
            nets.append(QpNet(movables=[index[driver]],
                              fixed=[PIN_PLACEMENT[po]]))
    positions = solve_quadratic(len(names), nets)
    total = 0.0
    for net in netlist.nets():
        points = []
        driver = drivers.get(net)
        if driver is not None:
            points.append(tuple(positions[index[driver]]))
        elif net in PIN_PLACEMENT:
            points.append(PIN_PLACEMENT[net])
        for inst, _pin in sinks.get(net, []):
            points.append(tuple(positions[index[inst]]))
        for po in netlist.outputs:
            if netlist.output_net[po] == net:
                points.append(PIN_PLACEMENT[po])
        total += _hpwl(points)
    return total


def _hpwl(points) -> float:
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if len(points) < 2:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def test_figure1(benchmark):
    data = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        ("1. Minimum area mapping (paper)",
         _hist_str(data["hist_min"]), f"{data['area_min']:.3f}",
         f"{data['wl_min']:.1f}"),
        ("2. Congestion minimization mapping (paper)",
         _hist_str(data["hist_con"]) if "hist_con" in data
         else "NAND2 x2, OR2 x2, INV x1",
         f"{data['area_con']:.3f}", f"{data['wl_con']:.1f}"),
        ("(bonus) our DP's optimal min-area cover",
         _hist_str(data["hist_dp"]), f"{data['area_dp']:.3f}", "-"),
    ]
    table = format_table(
        ["Mapping", "Cells", "Cell area (um2)", "Wirelength (um)"],
        rows, title="Figure 1 - minimum area vs congestion mapping "
                    "(paper: 53.248 vs 65.536 um2)")
    publish("figure1", table)

    # The paper's exact cell areas, from its exact cell sets.
    assert data["area_min"] == pytest.approx(53.248)
    assert data["area_con"] == pytest.approx(65.536)
    assert data["hist_min"] == {"NAND3_X1": 1, "AOI21_X1": 1, "INV_X1": 2}
    # Optimal tree covering can only match or beat the hand example.
    assert data["area_dp"] <= data["area_min"] + 1e-9
    # The trade-off: >= +10% area buys >= 20% less wirelength.
    assert data["area_con"] >= 1.10 * data["area_min"]
    assert data["wl_con"] <= 0.80 * data["wl_min"]


def _hist_str(hist: dict) -> str:
    return ", ".join(f"{name.split('_')[0]} x{count}"
                     for name, count in sorted(hist.items()))
