"""Adaptive K search — grid vs bisect vs portfolio.

The Tables 2/4 sweeps evaluate every K of the paper's grid; when only
the minimum routable K is wanted, :func:`repro.core.k_search` brackets
the routable window instead.  This bench runs all three strategies on
the calibrated marginal dies and asserts the ISSUE 7 acceptance:

* every strategy returns the *same* minimum routable K as the
  exhaustive ascending grid scan,
* the adaptive strategies (bisect, portfolio) need at most half the
  grid's evaluations on the Table 2/4 dies (full mode),
* every evaluated point reports a row bit-identical to the other
  strategies' evaluation of the same K (warm start ≡ cold start, shards
  and all), and a sharded parallel warm sweep matches the serial warm
  sweep row for row.

Smoke mode (``REPRO_BENCH_SMOKE=1``) runs the small CI die only
(spla@0.06 on 20 rows, the figure-3 CLI calibration die) and skips the
evaluation-budget floor; full mode runs the Table 2 SPLA and Table 4
PDC dies.  Results go to ``BENCH_ksearch.json``.
"""

import os

from bench_common import write_bench_json
from conftest import (
    PDC_ROWS,
    ROUTABLE_TOLERANCE,
    SCALE,
    SPLA_ROWS,
    _setup,
    publish,
)
from repro.circuits import pdc_like, spla_like
from repro.core import k_search, k_sweep
from repro.core.flow import PAPER_K_VALUES
from repro.core.ksearch import BISECT, GRID, PORTFOLIO
from repro.io import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Round width for the portfolio strategy (and pool fan-out).
WORKERS = 4

#: Full-run acceptance: the adaptive strategies must close in at most
#: this fraction of the grid (ISSUE 7 tentpole criterion).
EVAL_BUDGET = 0.5

#: The serial-vs-sharded identity check sweeps these K values twice.
IDENTITY_K = [0.0, 0.001, 0.01]

_cache = {}


def _setups():
    if SMOKE:
        return [_setup("SPLA@0.06", spla_like(0.06), 20)]
    return [_setup("SPLA", spla_like(SCALE), SPLA_ROWS),
            _setup("PDC", pdc_like(SCALE), PDC_ROWS)]


def run_ksearch():
    if "rows" in _cache:
        return _cache["rows"], _cache["identity"]
    rows = []
    for setup in _setups():
        by_strategy = {}
        for strategy in (GRID, BISECT, PORTFOLIO):
            result = k_search(setup.base, setup.floorplan, setup.config,
                              k_values=PAPER_K_VALUES,
                              positions=setup.positions,
                              strategy=strategy,
                              tolerance=ROUTABLE_TOLERANCE,
                              workers=WORKERS)
            by_strategy[strategy] = result
            rows.append({
                "circuit": setup.name,
                "strategy": strategy,
                "chosen_k": result.chosen_k,
                "verdict": result.verdict,
                "evaluations": result.evaluations,
                "grid_points": len(result.k_grid),
                "eval_ratio": result.evaluations / len(result.k_grid),
                "evaluated": [p.row() for p in result.table_points()],
            })
        # Acceptance: one minimum, whatever the strategy.
        chosen = {s: r.chosen_k for s, r in by_strategy.items()}
        assert None not in chosen.values(), \
            f"{setup.name}: no routable K found ({chosen})"
        assert len(set(chosen.values())) == 1, \
            f"{setup.name}: strategies disagree on the minimum ({chosen})"
        # Acceptance: commonly probed points report identical rows.
        tables = {s: {p.k: (p.row(), p.routed_wirelength)
                      for p in r.evaluated}
                  for s, r in by_strategy.items()}
        for s in (BISECT, PORTFOLIO):
            for k in set(tables[GRID]) & set(tables[s]):
                assert tables[s][k] == tables[GRID][k], \
                    f"{setup.name}: {s} row at K={k} differs from grid's"

    # Sharded parallel warm sweep ≡ serial warm sweep, row for row.
    setup = _setups()[0]
    serial = k_sweep(setup.base, setup.floorplan, setup.config,
                     k_values=IDENTITY_K, positions=setup.positions,
                     workers=1)
    sharded = k_sweep(setup.base, setup.floorplan, setup.config,
                      k_values=IDENTITY_K, positions=setup.positions,
                      workers=2)
    identity = {
        "circuit": setup.name,
        "k_values": IDENTITY_K,
        "workers": 2,
        "serial_rows": [p.row() for p in serial],
        "sharded_rows": [p.row() for p in sharded],
        "matches": [p.row() for p in serial] == [p.row() for p in sharded],
        "sharded_routes_reused": sum(
            int(p.stats.get("route.routes_reused", 0)) for p in sharded),
    }
    assert identity["matches"], \
        "sharded parallel sweep rows differ from the serial warm sweep"

    _cache["rows"] = rows
    _cache["identity"] = identity
    return rows, identity


def test_ksearch_strategies(benchmark):
    """Minimum-K agreement and evaluation budget across strategies."""
    rows, identity = benchmark.pedantic(run_ksearch, rounds=1, iterations=1)
    table = format_table(
        ["circuit", "strategy", "min routable K", "evaluations",
         "grid", "ratio"],
        [(r["circuit"], r["strategy"], f"{r['chosen_k']:g}",
          r["evaluations"], r["grid_points"], f"{r['eval_ratio']:.0%}")
         for r in rows],
        title=("Adaptive K search - grid vs bisect vs portfolio "
               f"({'smoke' if SMOKE else 'full'} mode, tolerance "
               f"{ROUTABLE_TOLERANCE}, portfolio width {WORKERS})"))
    publish("ksearch_strategies", table)

    payload = {
        "mode": "smoke" if SMOKE else "full",
        "tolerance": ROUTABLE_TOLERANCE,
        "workers": WORKERS,
        "eval_budget": None if SMOKE else EVAL_BUDGET,
        "k_grid": list(PAPER_K_VALUES),
        "rows": rows,
        "identity": identity,
    }
    write_bench_json("ksearch", payload)

    for r in rows:
        if r["strategy"] == GRID:
            continue
        if SMOKE:
            # The small die still has to beat the scan it replaces.
            assert r["evaluations"] < r["grid_points"]
        else:
            assert r["eval_ratio"] <= EVAL_BUDGET, \
                (f"{r['circuit']}: {r['strategy']} needed "
                 f"{r['evaluations']}/{r['grid_points']} evaluations "
                 f"(budget {EVAL_BUDGET:.0%})")
