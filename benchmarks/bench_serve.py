"""Batch-engine throughput — ``repro serve`` vs one-shot CLI runs.

The ISSUE 8 acceptance: on a mixed job stream (ksweep / flow / ksearch
requests drawn from the calibrated small dies), one long-lived
``repro serve`` process must deliver at least the speedup floor over
the same jobs issued as independent one-shot CLI invocations — each of
which pays the interpreter start, library build, netlist parse,
placement and cold routing from scratch — while emitting result lines
**byte-identical** to the one-shot runs.

Both sides run the same binary surface: the one-shot leg launches one
``repro serve`` subprocess *per job* (cold process, cold caches — the
``repro flow``/``ksweep``/``ksearch`` cost structure with a uniform
output format), the serve leg launches one subprocess for the whole
stream.  The serve leg runs twice, at ``--workers 1`` and
``--workers N``, and the two output files must be byte-identical —
the determinism half of the acceptance.

ISSUE 9 adds the cross-job legs: the same stream at ``--serve-workers
1/2/4`` (affinity-chain scheduling across the process pool) and with a
persistent ``--cache-dir`` (disk-cold populate, then disk-warm reuse).
Every leg must emit byte-identical rows; ``--serve-workers 4`` must
deliver the parallel jobs/sec floor over ``--serve-workers 1`` on
hosts with cores to spare (see :func:`_parallel_floor` — a single-core
host can only check the scheduler costs nothing).

ISSUE 10 adds the telemetry leg: the same stream with ``--status-file``
/ ``--metrics-out`` / ``--slow-job-s`` armed must emit byte-identical
rows, leave a final heartbeat whose tallies match the run, render a
Prometheus exposition that round-trips through our parser, and cost
at most 2x the plain leg.

Smoke mode (``REPRO_BENCH_SMOKE=1``): 12 jobs, 1.5x serve floor and a
relaxed 1.1x parallel floor (CI containers time poorly); full mode:
100 jobs, 3x serve floor, 1.5x parallel floor.  Results go to
``BENCH_serve.json``.
"""

import json
import os
import subprocess
import sys
import time

from bench_common import write_bench_json
from conftest import publish
from repro.io import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Acceptance floor for t_oneshot / t_serve on the mixed stream.
SPEEDUP_FLOOR = 1.5 if SMOKE else 3.0

#: Acceptance floor for jobs/sec at ``--serve-workers 4`` vs ``1``,
#: scaled to the cores actually available: the full floor needs >= 4
#: cores, two cores only fit two chains at once, and on a single core
#: cross-process parallelism is physically a no-op — there the bench
#: asserts the scheduler costs (almost) nothing rather than that it
#: gains anything.
PARALLEL_FLOOR = 1.1 if SMOKE else 1.5


def _parallel_floor(cpus):
    if cpus >= 4:
        return PARALLEL_FLOOR
    if cpus >= 2:
        return 1.05 if SMOKE else 1.2
    return 0.85  # single core: overhead guard, not a speedup claim

N_JOBS = 12 if SMOKE else 100

#: The mixed stream cycles these calibrated requests (all converge /
#: route within tolerance on their dies; ksearch lands on K=0.5, the
#: CI regression value).
TEMPLATES = [
    {"cmd": "ksweep", "source": "spla@0.01", "rows": 12,
     "k": [0.0, 0.005]},
    {"cmd": "flow", "source": "spla@0.02", "rows": 18, "tolerance": 6},
    {"cmd": "ksweep", "source": "spla@0.02", "rows": 16,
     "k": [0.0, 0.001, 0.01]},
    {"cmd": "ksearch", "source": "spla@0.06", "rows": 20, "tolerance": 6},
]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_cache = {}


def _make_jobs(n):
    return [dict(TEMPLATES[i % len(TEMPLATES)], id=f"j{i:03d}")
            for i in range(n)]


def _cli_env():
    env = dict(os.environ)
    src = os.path.join(_REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_serve(jobs_path, out_path, workers, summary_path="",
               serve_workers=1, cache_dir="", extra_args=()):
    """One ``repro serve`` subprocess over a job file; returns wall (s)."""
    argv = [sys.executable, "-m", "repro.cli", "serve", jobs_path,
            "-o", out_path, "--workers", str(workers),
            "--serve-workers", str(serve_workers)]
    if cache_dir:
        argv += ["--cache-dir", cache_dir]
    if summary_path:
        argv += ["--summary", summary_path]
    argv += list(extra_args)
    t0 = time.perf_counter()
    proc = subprocess.run(argv, env=_cli_env(), capture_output=True,
                          text=True)
    wall = time.perf_counter() - t0
    assert proc.returncode == 0, \
        f"serve failed ({proc.returncode}):\n{proc.stderr}"
    return wall


def run_serve_bench(tmpdir):
    if "result" in _cache:
        return _cache["result"]
    jobs = _make_jobs(N_JOBS)
    stream_path = os.path.join(tmpdir, "jobs.jsonl")
    with open(stream_path, "w") as fh:
        for job in jobs:
            fh.write(json.dumps(job) + "\n")

    # One-shot leg: a cold process (and cold caches) per job.
    oneshot_lines = []
    t0 = time.perf_counter()
    for i, job in enumerate(jobs):
        jpath = os.path.join(tmpdir, f"one_{i}.jsonl")
        opath = os.path.join(tmpdir, f"one_{i}.out")
        with open(jpath, "w") as fh:
            fh.write(json.dumps(job) + "\n")
        _run_serve(jpath, opath, workers=1)
        with open(opath) as fh:
            oneshot_lines.extend(fh.read().splitlines())
    t_oneshot = time.perf_counter() - t0

    # Serve leg: one process for the whole stream, both worker counts.
    out1 = os.path.join(tmpdir, "serve_w1.out")
    outn = os.path.join(tmpdir, "serve_wN.out")
    summary_path = os.path.join(tmpdir, "serve_summary.json")
    workers_n = max(2, os.cpu_count() or 1)
    t_serve_1 = _run_serve(stream_path, out1, workers=1,
                           summary_path=summary_path)
    with open(summary_path) as fh:
        summary_1 = json.load(fh)
    t_serve_n = _run_serve(stream_path, outn, workers=workers_n)

    with open(out1) as fh:
        serve_lines_1 = fh.read().splitlines()
    with open(outn) as fh:
        serve_lines_n = fh.read().splitlines()

    # Determinism acceptance: byte-identical result lines, job for job,
    # serve vs one-shot and workers=1 vs workers=N.
    assert len(serve_lines_1) == len(oneshot_lines) == N_JOBS
    mismatched = [i for i, (a, b) in
                  enumerate(zip(serve_lines_1, oneshot_lines)) if a != b]
    assert not mismatched, \
        f"serve rows differ from one-shot rows for jobs {mismatched[:5]}"
    assert serve_lines_n == serve_lines_1, \
        "serve output differs between --workers 1 and --workers N"
    assert all(json.loads(line)["ok"] for line in serve_lines_1), \
        "a calibrated job failed to converge"

    t_serve = min(t_serve_1, t_serve_n)
    result = {
        "jobs": N_JOBS,
        "workers_n": workers_n,
        "t_oneshot_s": t_oneshot,
        "t_serve_w1_s": t_serve_1,
        "t_serve_wN_s": t_serve_n,
        "oneshot_jobs_per_sec": N_JOBS / max(t_oneshot, 1e-9),
        "serve_jobs_per_sec": N_JOBS / max(t_serve, 1e-9),
        "speedup": t_oneshot / max(t_serve, 1e-9),
        "identical_rows": True,
        "cache": summary_1["cache"],
        "cache_hit_rates": summary_1["cache_hit_rates"],
        "engine_jobs_per_sec": summary_1["jobs_per_sec"],
    }
    _cache["result"] = result
    return result


def run_parallel_bench(tmpdir):
    """Serve-workers 1/2/4 legs plus disk-cold / disk-warm legs.

    All legs run the same N-job mixed stream in one subprocess each,
    with the per-job fan-out pinned at ``--workers 1`` so the only
    variable is the cross-job scheduler (and, for the disk legs, the
    persistent cache).  Every leg's output file must be byte-identical.
    """
    if "parallel" in _cache:
        return _cache["parallel"]
    jobs = _make_jobs(N_JOBS)
    stream_path = os.path.join(tmpdir, "jobs.jsonl")
    with open(stream_path, "w") as fh:
        for job in jobs:
            fh.write(json.dumps(job) + "\n")
    cache_dir = os.path.join(tmpdir, "serve-cache")

    def leg(name, serve_workers, use_disk=False):
        out = os.path.join(tmpdir, f"leg_{name}.out")
        summary = os.path.join(tmpdir, f"leg_{name}.json")
        wall = _run_serve(stream_path, out, workers=1,
                          serve_workers=serve_workers,
                          summary_path=summary,
                          cache_dir=cache_dir if use_disk else "")
        with open(out) as fh:
            lines = fh.read().splitlines()
        with open(summary) as fh:
            return {"name": name, "serve_workers": serve_workers,
                    "disk": use_disk, "wall_s": wall,
                    "jobs_per_sec": N_JOBS / max(wall, 1e-9),
                    "lines": lines, "summary": json.load(fh)}

    legs = [leg("sw1", 1), leg("sw2", 2), leg("sw4", 4),
            leg("sw1_disk_cold", 1, use_disk=True),
            leg("sw1_disk_warm", 1, use_disk=True),
            leg("sw4_disk_warm", 4, use_disk=True)]

    base = legs[0]
    assert len(base["lines"]) == N_JOBS
    for entry in legs[1:]:
        assert entry["lines"] == base["lines"], \
            f"leg {entry['name']} rows differ from --serve-workers 1"

    cold, warm = legs[3]["summary"], legs[4]["summary"]
    assert cold["cache"]["persist_writes"] > 0, \
        "disk-cold leg wrote no persistent entries"
    assert warm["cache"]["persist_hits"] > 0, \
        "disk-warm leg adopted no persistent entries"
    assert warm["cache"]["persist_skipped"] == 0
    sw4 = legs[2]["summary"]
    assert sw4["serve_workers"] == 4
    assert sw4["jobs"] == N_JOBS and sw4["ok"] == N_JOBS

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    result = {
        "cpus_available": cpus,
        "parallel_floor_applied": _parallel_floor(cpus),
        "legs": [{k: v for k, v in entry.items()
                  if k not in ("lines", "summary")} for entry in legs],
        "parallel_speedup": legs[2]["jobs_per_sec"] /
        max(base["jobs_per_sec"], 1e-9),
        "disk_warm_speedup": legs[4]["jobs_per_sec"] /
        max(legs[3]["jobs_per_sec"], 1e-9),
        "pool_fallbacks": sw4.get("pool_fallbacks", 0),
        "persist_writes_cold": cold["cache"]["persist_writes"],
        "persist_hits_warm": warm["cache"]["persist_hits"],
        "identical_rows": True,
    }
    _cache["parallel"] = result
    return result


def run_telemetry_bench(tmpdir):
    """The live-telemetry leg: status heartbeats + metrics exposition.

    The same stream runs plain and with every observability flag armed
    (``--status-file``, ``--metrics-out``, ``--slow-job-s`` with a
    sub-microsecond deadline so the watchdog fires on every job).  The
    instrumented leg must emit byte-identical result rows, leave a
    final heartbeat whose tallies match the run, and render a
    Prometheus exposition that round-trips through our parser.
    """
    if "telemetry" in _cache:
        return _cache["telemetry"]
    jobs = _make_jobs(N_JOBS)
    stream_path = os.path.join(tmpdir, "jobs.jsonl")
    with open(stream_path, "w") as fh:
        for job in jobs:
            fh.write(json.dumps(job) + "\n")

    plain_out = os.path.join(tmpdir, "telemetry_plain.out")
    obs_out = os.path.join(tmpdir, "telemetry_obs.out")
    status_path = os.path.join(tmpdir, "status.json")
    metrics_path = os.path.join(tmpdir, "metrics.prom")
    t_plain = _run_serve(stream_path, plain_out, workers=1,
                         serve_workers=2)
    t_obs = _run_serve(stream_path, obs_out, workers=1, serve_workers=2,
                       extra_args=["--status-file", status_path,
                                   "--metrics-out", metrics_path,
                                   "--slow-job-s", "0.000001"])

    with open(plain_out) as fh:
        plain_lines = fh.read().splitlines()
    with open(obs_out) as fh:
        obs_lines = fh.read().splitlines()
    assert len(plain_lines) == N_JOBS
    assert obs_lines == plain_lines, \
        "telemetry flags changed the result rows"

    # Final heartbeat: terminal state with tallies matching the run.
    with open(status_path) as fh:
        heartbeat = json.load(fh)
    assert heartbeat["state"] == "done"
    assert heartbeat["jobs_done"] == heartbeat["ok"] == N_JOBS
    assert heartbeat["failed"] == 0
    assert heartbeat["slow_jobs"] == N_JOBS  # the deadline always fires
    assert heartbeat["serve_workers"] == 2

    # Metrics exposition: the text form round-trips and agrees with the
    # JSON sibling on the job count.
    from repro.obs import parse_prometheus
    with open(metrics_path) as fh:
        families = parse_prometheus(fh.read())
    assert families["repro_serve_jobs_done"]["samples"][
        "repro_serve_jobs_done"] == N_JOBS
    job_hist = families["repro_serve_job_seconds"]
    assert job_hist["type"] == "histogram"
    assert job_hist["samples"]["repro_serve_job_seconds_count"] == N_JOBS
    with open(metrics_path + ".json") as fh:
        metrics_doc = json.load(fh)
    assert metrics_doc["counters"]["serve.jobs_done"] == N_JOBS
    assert metrics_doc["instruments"]["serve.job_seconds"]["sum"] > 0

    result = {
        "t_plain_s": t_plain,
        "t_telemetry_s": t_obs,
        "telemetry_overhead": t_obs / max(t_plain, 1e-9),
        "identical_rows": True,
        "heartbeat_jobs_done": heartbeat["jobs_done"],
        "slow_jobs": heartbeat["slow_jobs"],
        "prometheus_families": len(families),
        "instruments": sorted(metrics_doc["instruments"]),
    }
    _cache["telemetry"] = result
    return result


def _write_payload():
    """Emit everything measured so far into ``BENCH_serve.json``.

    Both tests route through this, so the file always reflects the
    union of the legs that actually ran, whichever test ran last.
    """
    payload = {
        "mode": "smoke" if SMOKE else "full",
        "speedup_floor": SPEEDUP_FLOOR,
        "parallel_floor": PARALLEL_FLOOR,
        "templates": TEMPLATES,
    }
    payload.update(_cache.get("result", {}))
    if "parallel" in _cache:
        payload["parallel"] = _cache["parallel"]
    if "telemetry" in _cache:
        payload["telemetry"] = _cache["telemetry"]
    write_bench_json("serve", payload)


def test_serve_throughput(benchmark, tmp_path):
    """Serve vs one-shot throughput on a mixed job stream."""
    r = benchmark.pedantic(run_serve_bench, args=(str(tmp_path),),
                           rounds=1, iterations=1)
    rates = r["cache_hit_rates"]
    table = format_table(
        ["mode", "jobs", "wall (s)", "jobs/s", "vs one-shot"],
        [("one-shot CLI (cold per job)", r["jobs"],
          f"{r['t_oneshot_s']:.1f}",
          f"{r['oneshot_jobs_per_sec']:.2f}", "1.00x"),
         ("serve --workers 1", r["jobs"], f"{r['t_serve_w1_s']:.1f}",
          f"{r['jobs'] / max(r['t_serve_w1_s'], 1e-9):.2f}",
          f"{r['t_oneshot_s'] / max(r['t_serve_w1_s'], 1e-9):.2f}x"),
         (f"serve --workers {r['workers_n']}", r["jobs"],
          f"{r['t_serve_wN_s']:.1f}",
          f"{r['jobs'] / max(r['t_serve_wN_s'], 1e-9):.2f}",
          f"{r['t_oneshot_s'] / max(r['t_serve_wN_s'], 1e-9):.2f}x")],
        title=("Batch engine - repro serve vs one-shot CLI "
               f"({'smoke' if SMOKE else 'full'} mode, "
               f"{len(TEMPLATES)} job templates, rows byte-identical; "
               f"cache hits: netlist {rates['netlist']:.0%}, layout "
               f"{rates['layout']:.0%}, route pool "
               f"{rates['route_pool']:.0%})"))
    publish("serve_throughput", table)
    _write_payload()

    assert r["speedup"] >= SPEEDUP_FLOOR, \
        (f"serve only {r['speedup']:.2f}x over one-shot "
         f"({r['jobs']} jobs, floor {SPEEDUP_FLOOR:.1f}x)")


def test_serve_telemetry(benchmark, tmp_path):
    """Observability leg: telemetry flags cost little and change nothing."""
    r = benchmark.pedantic(run_telemetry_bench, args=(str(tmp_path),),
                           rounds=1, iterations=1)
    table = format_table(
        ["mode", "jobs", "wall (s)", "overhead"],
        [("serve --serve-workers 2 (plain)", N_JOBS,
          f"{r['t_plain_s']:.1f}", "1.00x"),
         ("  + status/metrics/slow-job telemetry", N_JOBS,
          f"{r['t_telemetry_s']:.1f}",
          f"{r['telemetry_overhead']:.2f}x")],
        title=("Live telemetry - heartbeat + Prometheus exposition "
               f"({'smoke' if SMOKE else 'full'} mode, rows "
               f"byte-identical; {r['slow_jobs']} slow-job events, "
               f"{r['prometheus_families']} metric families)"))
    publish("serve_telemetry", table)
    _write_payload()

    assert r["identical_rows"]
    assert r["heartbeat_jobs_done"] == N_JOBS
    # The whole observability surface must stay out of the hot path:
    # generous 2x bound (absolute cost is one JSON write per heartbeat).
    assert r["telemetry_overhead"] <= 2.0, \
        (f"telemetry flags cost {r['telemetry_overhead']:.2f}x "
         f"(bound 2.0x)")


def test_serve_parallel_throughput(benchmark, tmp_path):
    """Cross-job scheduler and persistent-cache throughput legs."""
    r = benchmark.pedantic(run_parallel_bench, args=(str(tmp_path),),
                           rounds=1, iterations=1)
    base = r["legs"][0]
    rows = []
    for entry in r["legs"]:
        label = f"serve-workers {entry['serve_workers']}"
        if entry["disk"]:
            label += (" + disk (warm)" if "warm" in entry["name"]
                      else " + disk (cold)")
        rows.append((label, N_JOBS, f"{entry['wall_s']:.1f}",
                     f"{entry['jobs_per_sec']:.2f}",
                     f"{entry['jobs_per_sec'] / base['jobs_per_sec']:.2f}x"))
    table = format_table(
        ["mode", "jobs", "wall (s)", "jobs/s", "vs sw1 cold"],
        rows,
        title=("Cross-job scheduler - serve-workers / cache-dir legs "
               f"({'smoke' if SMOKE else 'full'} mode, rows "
               f"byte-identical across all legs; disk-warm adopted "
               f"{r['persist_hits_warm']} persistent entries)"))
    publish("serve_parallel", table)
    _write_payload()

    floor = r["parallel_floor_applied"]
    assert r["parallel_speedup"] >= floor, \
        (f"--serve-workers 4 only {r['parallel_speedup']:.2f}x over "
         f"--serve-workers 1 ({N_JOBS} jobs, "
         f"{r['cpus_available']} cores, floor {floor:.2f}x)")
