"""Batch-engine throughput — ``repro serve`` vs one-shot CLI runs.

The ISSUE 8 acceptance: on a mixed job stream (ksweep / flow / ksearch
requests drawn from the calibrated small dies), one long-lived
``repro serve`` process must deliver at least the speedup floor over
the same jobs issued as independent one-shot CLI invocations — each of
which pays the interpreter start, library build, netlist parse,
placement and cold routing from scratch — while emitting result lines
**byte-identical** to the one-shot runs.

Both sides run the same binary surface: the one-shot leg launches one
``repro serve`` subprocess *per job* (cold process, cold caches — the
``repro flow``/``ksweep``/``ksearch`` cost structure with a uniform
output format), the serve leg launches one subprocess for the whole
stream.  The serve leg runs twice, at ``--workers 1`` and
``--workers N``, and the two output files must be byte-identical —
the determinism half of the acceptance.

Smoke mode (``REPRO_BENCH_SMOKE=1``): 12 jobs, 1.5x floor (CI
containers time poorly); full mode: 100 jobs, 3x floor.  Results go to
``BENCH_serve.json``.
"""

import json
import os
import subprocess
import sys
import time

from bench_common import write_bench_json
from conftest import publish
from repro.io import format_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Acceptance floor for t_oneshot / t_serve on the mixed stream.
SPEEDUP_FLOOR = 1.5 if SMOKE else 3.0

N_JOBS = 12 if SMOKE else 100

#: The mixed stream cycles these calibrated requests (all converge /
#: route within tolerance on their dies; ksearch lands on K=0.5, the
#: CI regression value).
TEMPLATES = [
    {"cmd": "ksweep", "source": "spla@0.01", "rows": 12,
     "k": [0.0, 0.005]},
    {"cmd": "flow", "source": "spla@0.02", "rows": 18, "tolerance": 6},
    {"cmd": "ksweep", "source": "spla@0.02", "rows": 16,
     "k": [0.0, 0.001, 0.01]},
    {"cmd": "ksearch", "source": "spla@0.06", "rows": 20, "tolerance": 6},
]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_cache = {}


def _make_jobs(n):
    return [dict(TEMPLATES[i % len(TEMPLATES)], id=f"j{i:03d}")
            for i in range(n)]


def _cli_env():
    env = dict(os.environ)
    src = os.path.join(_REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_serve(jobs_path, out_path, workers, summary_path=""):
    """One ``repro serve`` subprocess over a job file; returns wall (s)."""
    argv = [sys.executable, "-m", "repro.cli", "serve", jobs_path,
            "-o", out_path, "--workers", str(workers)]
    if summary_path:
        argv += ["--summary", summary_path]
    t0 = time.perf_counter()
    proc = subprocess.run(argv, env=_cli_env(), capture_output=True,
                          text=True)
    wall = time.perf_counter() - t0
    assert proc.returncode == 0, \
        f"serve failed ({proc.returncode}):\n{proc.stderr}"
    return wall


def run_serve_bench(tmpdir):
    if "result" in _cache:
        return _cache["result"]
    jobs = _make_jobs(N_JOBS)
    stream_path = os.path.join(tmpdir, "jobs.jsonl")
    with open(stream_path, "w") as fh:
        for job in jobs:
            fh.write(json.dumps(job) + "\n")

    # One-shot leg: a cold process (and cold caches) per job.
    oneshot_lines = []
    t0 = time.perf_counter()
    for i, job in enumerate(jobs):
        jpath = os.path.join(tmpdir, f"one_{i}.jsonl")
        opath = os.path.join(tmpdir, f"one_{i}.out")
        with open(jpath, "w") as fh:
            fh.write(json.dumps(job) + "\n")
        _run_serve(jpath, opath, workers=1)
        with open(opath) as fh:
            oneshot_lines.extend(fh.read().splitlines())
    t_oneshot = time.perf_counter() - t0

    # Serve leg: one process for the whole stream, both worker counts.
    out1 = os.path.join(tmpdir, "serve_w1.out")
    outn = os.path.join(tmpdir, "serve_wN.out")
    summary_path = os.path.join(tmpdir, "serve_summary.json")
    workers_n = max(2, os.cpu_count() or 1)
    t_serve_1 = _run_serve(stream_path, out1, workers=1,
                           summary_path=summary_path)
    with open(summary_path) as fh:
        summary_1 = json.load(fh)
    t_serve_n = _run_serve(stream_path, outn, workers=workers_n)

    with open(out1) as fh:
        serve_lines_1 = fh.read().splitlines()
    with open(outn) as fh:
        serve_lines_n = fh.read().splitlines()

    # Determinism acceptance: byte-identical result lines, job for job,
    # serve vs one-shot and workers=1 vs workers=N.
    assert len(serve_lines_1) == len(oneshot_lines) == N_JOBS
    mismatched = [i for i, (a, b) in
                  enumerate(zip(serve_lines_1, oneshot_lines)) if a != b]
    assert not mismatched, \
        f"serve rows differ from one-shot rows for jobs {mismatched[:5]}"
    assert serve_lines_n == serve_lines_1, \
        "serve output differs between --workers 1 and --workers N"
    assert all(json.loads(line)["ok"] for line in serve_lines_1), \
        "a calibrated job failed to converge"

    t_serve = min(t_serve_1, t_serve_n)
    result = {
        "jobs": N_JOBS,
        "workers_n": workers_n,
        "t_oneshot_s": t_oneshot,
        "t_serve_w1_s": t_serve_1,
        "t_serve_wN_s": t_serve_n,
        "oneshot_jobs_per_sec": N_JOBS / max(t_oneshot, 1e-9),
        "serve_jobs_per_sec": N_JOBS / max(t_serve, 1e-9),
        "speedup": t_oneshot / max(t_serve, 1e-9),
        "identical_rows": True,
        "cache": summary_1["cache"],
        "cache_hit_rates": summary_1["cache_hit_rates"],
        "engine_jobs_per_sec": summary_1["jobs_per_sec"],
    }
    _cache["result"] = result
    return result


def test_serve_throughput(benchmark, tmp_path):
    """Serve vs one-shot throughput on a mixed job stream."""
    r = benchmark.pedantic(run_serve_bench, args=(str(tmp_path),),
                           rounds=1, iterations=1)
    rates = r["cache_hit_rates"]
    table = format_table(
        ["mode", "jobs", "wall (s)", "jobs/s", "vs one-shot"],
        [("one-shot CLI (cold per job)", r["jobs"],
          f"{r['t_oneshot_s']:.1f}",
          f"{r['oneshot_jobs_per_sec']:.2f}", "1.00x"),
         ("serve --workers 1", r["jobs"], f"{r['t_serve_w1_s']:.1f}",
          f"{r['jobs'] / max(r['t_serve_w1_s'], 1e-9):.2f}",
          f"{r['t_oneshot_s'] / max(r['t_serve_w1_s'], 1e-9):.2f}x"),
         (f"serve --workers {r['workers_n']}", r["jobs"],
          f"{r['t_serve_wN_s']:.1f}",
          f"{r['jobs'] / max(r['t_serve_wN_s'], 1e-9):.2f}",
          f"{r['t_oneshot_s'] / max(r['t_serve_wN_s'], 1e-9):.2f}x")],
        title=("Batch engine - repro serve vs one-shot CLI "
               f"({'smoke' if SMOKE else 'full'} mode, "
               f"{len(TEMPLATES)} job templates, rows byte-identical; "
               f"cache hits: netlist {rates['netlist']:.0%}, layout "
               f"{rates['layout']:.0%}, route pool "
               f"{rates['route_pool']:.0%})"))
    publish("serve_throughput", table)

    payload = {
        "mode": "smoke" if SMOKE else "full",
        "speedup_floor": SPEEDUP_FLOOR,
        "templates": TEMPLATES,
        **r,
    }
    write_bench_json("serve", payload)

    assert r["speedup"] >= SPEEDUP_FLOOR, \
        (f"serve only {r['speedup']:.2f}x over one-shot "
         f"({r['jobs']} jobs, floor {SPEEDUP_FLOOR:.1f}x)")
