"""Table 3 — SPLA static timing analysis results.

The paper compares three SPLA netlists after each is grown to its first
routable die (aspect 1): the DAGON-equivalent minimum-area mapping
(K = 0), the congestion-aware mapping (the flow's chosen K), and the
SIS flow.  For each it reports the critical-path arrival time, the
arrival of the K = 0 netlist's critical endpoint in the other netlists,
and the chip area / row count.

Shape targets (paper Table 3):

* the congestion-aware netlist routes in the smallest die,
* its timing is competitive with K = 0 (the paper's improved slightly;
  ours must stay within a small factor),
* the SIS netlist needs the largest die of the three.
"""

import pytest

from conftest import ROUTABLE_TOLERANCE, SCALE, publish
from repro.circuits import spla_like
from repro.core import (
    area_congestion,
    find_routable_die,
    map_network,
    sis_flow,
    timing_of_point,
)
from repro.io import sta_table
from repro.library import CORELIB018
from repro.timing import arrival_at_output

#: The chosen window K (the paper's Table 3 uses K = 0.001).
K_STAR = 0.001
#: Die search starts here (a few rows under the Table 2 die).
START_ROWS = 28

_cache = {}


def run_sta(spla_setup):
    if "data" in _cache:
        return _cache["data"]
    config = spla_setup.config
    variants = {}
    for label, k in (("K=0", 0.0), (f"K={K_STAR:g}", K_STAR)):
        mapping = map_network(spla_setup.base, CORELIB018,
                              area_congestion(k),
                              partition_style="placement",
                              positions=spla_setup.positions)
        variants[label] = mapping
    variants["SIS"] = sis_flow(spla_like(SCALE), CORELIB018)

    results = {}
    for label, mapping in variants.items():
        floorplan, point = find_routable_die(
            mapping.netlist, START_ROWS, config, max_extra_rows=14,
            tolerance=ROUTABLE_TOLERANCE)
        point.mapping = mapping
        report = timing_of_point(point, config)
        results[label] = (floorplan, point, report)
    _cache["data"] = results
    return results


def test_table3_spla_sta(benchmark, spla_setup):
    results = benchmark.pedantic(run_sta, args=(spla_setup,),
                                 rounds=1, iterations=1)
    ref_label = "K=0"
    ref_report = results[ref_label][2]
    ref_po = ref_report.critical_output

    rows = []
    for label in ("K=0", f"K={K_STAR:g}", "SIS"):
        floorplan, point, report = results[label]
        start, end = report.path_endpoints()
        own = f"{start}(in) {end}(out) {report.critical_arrival:.2f}"
        ref = (f"{ref_po}(out) "
               f"{arrival_at_output(report, ref_po):.2f}")
        rows.append((label, own, ref,
                     f"{floorplan.area:.0f}", floorplan.num_rows))
    table = sta_table(rows, title=(
        "Table 3 - SPLA static timing analysis "
        "(paper: K=0 17.85ns/72 rows, K=0.001 17.43ns/71 rows, "
        "SIS 18.57ns/75 rows)"))
    publish("table3_spla_sta", table)

    fp0, _, rep0 = results["K=0"]
    fps, _, reps = results[f"K={K_STAR:g}"]
    fpsis, _, repsis = results["SIS"]

    # The congestion-aware netlist routes in the smallest die.
    assert fps.num_rows <= fp0.num_rows
    assert fps.num_rows <= fpsis.num_rows
    # Its timing stays competitive with the minimum-area netlist.
    assert reps.critical_arrival <= rep0.critical_arrival * 1.15
    # The K=0 critical endpoint does not get slower in the K* netlist.
    assert arrival_at_output(reps, ref_po) <= \
        arrival_at_output(rep0, ref_po) * 1.10
    # The SIS netlist is worst on at least one axis (die or delay).
    assert (fpsis.num_rows >= fps.num_rows
            or repsis.critical_arrival >= reps.critical_arrival)
