"""Shared schema for the ``BENCH_*.json`` result files.

Every bench that emits a machine-readable payload routes it through
:func:`write_bench_json`, which wraps the bench-specific body in one
common envelope::

    {
      "schema_version": 1,
      "bench": "<name>",              # BENCH_<name>.json
      "generated_unix": 1754650000.0, # time.time() at write
      "generated_at": "2026-08-08T12:00:00Z",
      "git": "8badb7f",                # short SHA ("unknown" outside git)
      "host": {"python": "3.11.9", "platform": "Linux-...", "cpus": 1},
      ...bench-specific payload keys...
    }

Downstream consumers (CI artifact diffing, EXPERIMENTS.md tooling) can
then key on ``schema_version``/``bench`` instead of guessing each
file's shape, and all timestamp/host fields share one spelling.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict

from conftest import RESULTS_DIR

__all__ = ["SCHEMA_VERSION", "bench_envelope", "git_revision",
           "write_bench_json"]

#: Bump when an envelope field is renamed or removed (additions are free).
SCHEMA_VERSION = 1


def _host_info() -> Dict[str, Any]:
    """The machine fingerprint stamped into every payload."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
    }


def git_revision() -> str:
    """The repo's short commit SHA; ``"unknown"`` outside a checkout.

    Lets ``repro benchreport`` trend tables attribute an envelope to
    the commit that produced it.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def bench_envelope(name: str) -> Dict[str, Any]:
    """The common envelope fields for bench ``name``."""
    now = time.time()
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "generated_unix": now,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime(now)),
        "git": git_revision(),
        "host": _host_info(),
    }


def write_bench_json(name: str, payload: Dict[str, Any]) -> str:
    """Write ``BENCH_<name>.json`` (envelope + payload); returns the path.

    Payload keys win over envelope keys only if they don't collide with
    the reserved envelope fields — a bench overwriting ``bench`` or
    ``schema_version`` is a bug, so collisions raise.
    """
    envelope = bench_envelope(name)
    collisions = set(payload) & set(envelope)
    if collisions:
        raise ValueError(f"payload overrides envelope fields: "
                         f"{sorted(collisions)}")
    envelope.update(payload)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(envelope, handle, indent=2)
        handle.write("\n")
    return path


if __name__ == "__main__":  # pragma: no cover
    json.dump(bench_envelope("demo"), sys.stdout, indent=2)
