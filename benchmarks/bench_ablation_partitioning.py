"""Ablation — DAG partitioning schemes (Section 3.1 / Figure 2).

Compares the three partitioners on the placed SPLA network:

* DAGON (break at every multi-fanout vertex),
* MIS-style cones (DFS-order fathers, absorption allowed),
* the paper's placement-driven partitioning (nearest-reader fathers).

Reports tree statistics and the quality of the min-area cover each
partitioning admits, plus the two properties Section 3.1 claims for the
placement-driven scheme: order independence and geometric clustering of
the subject trees.
"""

import pytest

from conftest import publish
from repro.core import (
    Matcher,
    area_congestion,
    cone_partition,
    dagon_partition,
    map_network,
    placement_partition,
)
from repro.io import format_table
from repro.library import CORELIB018

_cache = {}


def tree_spread(part, positions):
    """Mean geometric spread (std-dev radius) of multi-vertex trees."""
    import numpy as np
    spreads = []
    for tree in part.trees.values():
        if len(tree.members) < 2:
            continue
        pts = np.array([positions.get(v) for v in tree.members])
        spreads.append(float(pts.std(axis=0).sum()))
    return sum(spreads) / len(spreads) if spreads else 0.0


def run_ablation(spla_setup):
    if "data" in _cache:
        return _cache["data"]
    base = spla_setup.base
    positions = spla_setup.positions
    parts = {
        "dagon": dagon_partition(base),
        "cone": cone_partition(base),
        "placement": placement_partition(base, positions),
    }
    stats = {}
    for label, part in parts.items():
        style = label if label != "cone" else "cone"
        mapping = map_network(base, CORELIB018, area_congestion(0.001),
                              partition_style=style, positions=positions)
        sizes = part.tree_sizes()
        stats[label] = {
            "trees": len(part.roots),
            "max_tree": max(sizes),
            "duplication": part.duplication(),
            "spread": tree_spread(part, positions),
            "area": mapping.stats["cell_area"],
            "wire": mapping.estimated_wirelength,
        }
    _cache["data"] = stats
    return stats


def test_ablation_partitioning(benchmark, spla_setup):
    stats = benchmark.pedantic(run_ablation, args=(spla_setup,),
                               rounds=1, iterations=1)
    rows = [(label,
             s["trees"], s["max_tree"], s["duplication"],
             f"{s['spread']:.2f}", f"{s['area']:.0f}", f"{s['wire']:.0f}")
            for label, s in stats.items()]
    table = format_table(
        ["Partitioning", "Trees", "Max tree", "Duplication",
         "Mean tree spread (um)", "Mapped area (um2)", "Wire estimate (um)"],
        rows, title="Ablation - DAG partitioning schemes on SPLA "
                    "(K = 0.001 covering)")
    publish("ablation_partitioning", table)

    # DAGON never duplicates logic; cones / placement may.
    assert stats["dagon"]["duplication"] == 0
    # Placement-driven trees cluster geometrically at least as tightly
    # as DFS-order cones (the Section 3.1 claim).
    assert stats["placement"]["spread"] <= stats["cone"]["spread"] + 1e-6
    # All three admit comparable-quality min-area covers (within 10%).
    areas = [s["area"] for s in stats.values()]
    assert max(areas) <= min(areas) * 1.10


def test_placement_partition_order_independence(benchmark, spla_setup):
    """Figure 2's property: the result depends only on the placement."""
    base = spla_setup.base
    positions = spla_setup.positions

    def both():
        return (placement_partition(base, positions),
                placement_partition(base, positions))

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    assert a.fathers == b.fathers
    assert a.roots == b.roots
