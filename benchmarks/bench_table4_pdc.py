"""Table 4 — PDC: congestion minimization vs place & route results.

Same experiment as Table 2 on the PDC stand-in.  The paper's own PDC
table is noisy at the region boundaries (violations 2, 0, 3673, 0, 9, 0
across adjacent K values; it calls the 2- and 9-violation rows
"basically routable"), so the assertions here are the same coarse
three-region properties.
"""

import pytest

from conftest import ROUTABLE_TOLERANCE, publish
from repro.core import k_sweep
from repro.core.flow import PAPER_K_VALUES
from repro.io import k_sweep_table

#: Paper's Table 4 violation column.
PAPER_VIOLATIONS = {
    0.0: 5447, 0.0001: 3592, 0.00025: 2, 0.0005: 0, 0.00075: 3673,
    0.001: 0, 0.0025: 9, 0.005: 0, 0.0075: 0, 0.01: 86,
    0.05: 158, 0.1: 37, 0.5: 6270, 1.0: 7770,
}

#: PDC's routable window sits higher than SPLA's on our 1/8-scale die
#: (K = 0.1 is the clean point; the paper's own PDC window is just as
#: jagged — 2, 0, 3673, 0, 9, 0 across adjacent K).
WINDOW = [k for k in PAPER_K_VALUES if 0.0001 <= k <= 0.1]

#: Scale-shifted region 3, as in bench_table2_spla: the area blow-up
#: the paper sees at K >= 0.5 needs K an order of magnitude larger at
#: 1/8 scale, so the sweep extends the paper's K column upward.
REGION3_K = [0.5, 1.0, 2.0, 5.0, 10.0]
SWEEP_K = list(PAPER_K_VALUES) + [2.0, 5.0, 10.0]

_cache = {}


def run_sweep(pdc_setup):
    if "points" not in _cache:
        _cache["points"] = k_sweep(
            pdc_setup.base, pdc_setup.floorplan, pdc_setup.config,
            k_values=SWEEP_K, positions=pdc_setup.positions)
    return _cache["points"]


def test_table4_pdc(benchmark, pdc_setup):
    points = benchmark.pedantic(run_sweep, args=(pdc_setup,),
                                rounds=1, iterations=1)
    table = k_sweep_table(
        points,
        title=(f"Table 4 - PDC congestion minimization vs place&route "
               f"(die {pdc_setup.floorplan.area:.0f} um2, "
               f"{pdc_setup.floorplan.num_rows} rows, 3 metal layers; "
               f"paper die 229786 um2, 74 rows)"))
    lines = [table, "", "paper violations per K, for comparison:"]
    lines.append("  " + "  ".join(
        f"K={k:g}:{PAPER_VIOLATIONS[k]}" for k in PAPER_K_VALUES))
    publish("table4_pdc", "\n".join(lines))

    by_k = {p.k: p for p in points}

    # Region 1: minimum area does not route.
    assert by_k[0.0].violations > ROUTABLE_TOLERANCE
    # Region 2: a basically-routable window exists.
    window_best = min(by_k[k].violations for k in WINDOW)
    assert window_best <= ROUTABLE_TOLERANCE
    # The window beats the baseline everywhere it matters.
    assert window_best < by_k[0.0].violations
    # Region 3: large K unroutable with a large area penalty.
    for k in REGION3_K:
        assert by_k[k].violations > ROUTABLE_TOLERANCE
    assert by_k[REGION3_K[-1]].cell_area > 1.2 * by_k[0.0].cell_area
    # Monotone area/cells/utilization trends.
    areas = [p.cell_area for p in points]
    assert all(b >= a - 1e-6 for a, b in zip(areas, areas[1:]))
    assert points[-1].num_cells > points[0].num_cells
    assert points[-1].utilization > points[0].utilization
