"""Tests for path comparison reporting (Tables 3/5 machinery)."""

import pytest

from repro.library import CORELIB018
from repro.network import MappedNetlist
from repro.timing import StaticTimingAnalyzer, compare_against_reference


def two_output_netlist(extra_depth=0):
    nl = MappedNetlist("two")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_instance("INV_X1", {"A": "a"}, "n0", name="u0")
    prev = "n0"
    for i in range(extra_depth):
        nl.add_instance("INV_X1", {"A": prev}, f"m{i}", name=f"d{i}")
        prev = f"m{i}"
    nl.add_instance("NAND2_X1", {"A": prev, "B": "b"}, "y1", name="u1")
    nl.add_instance("INV_X1", {"A": "b"}, "y2", name="u2")
    nl.add_output("y1")
    nl.add_output("y2")
    return nl


class TestCompareAgainstReference:
    def test_rows_cover_all_reports(self):
        sta = StaticTimingAnalyzer(CORELIB018)
        reports = {
            "K=0": sta.analyze(two_output_netlist(extra_depth=3)),
            "K=0.001": sta.analyze(two_output_netlist(extra_depth=1)),
        }
        rows = compare_against_reference(reports, "K=0")
        assert [r.label for r in rows] == ["K=0", "K=0.001"]

    def test_reference_row_self_consistent(self):
        sta = StaticTimingAnalyzer(CORELIB018)
        reports = {"ref": sta.analyze(two_output_netlist(2))}
        row = compare_against_reference(reports, "ref")[0]
        assert row.reference_end == row.critical_end
        assert row.reference_arrival == pytest.approx(row.critical_arrival)

    def test_faster_netlist_improves_reference_path(self):
        sta = StaticTimingAnalyzer(CORELIB018)
        slow = sta.analyze(two_output_netlist(extra_depth=5))
        fast = sta.analyze(two_output_netlist(extra_depth=0))
        rows = compare_against_reference({"slow": slow, "fast": fast},
                                         "slow")
        by_label = {r.label: r for r in rows}
        # The slow netlist's critical endpoint (y1) is faster in 'fast'.
        assert by_label["fast"].reference_arrival < \
            by_label["slow"].reference_arrival

    def test_row_formatting(self):
        sta = StaticTimingAnalyzer(CORELIB018)
        reports = {"ref": sta.analyze(two_output_netlist(1))}
        label, own, ref = compare_against_reference(reports, "ref")[0].row()
        assert label == "ref"
        assert "(in)" in own and "(out)" in own
        assert "(out)" in ref
