"""Tests for timing-driven gate sizing and fanout buffering."""

import pytest

from repro.circuits import random_pla
from repro.core import map_network, min_area
from repro.errors import LibraryError
from repro.library import CORELIB018, CellLibrary, LibCell, leaf, pinv, pnand
from repro.network import MappedNetlist, check_base_vs_mapped, decompose
from repro.timing import (
    StaticTimingAnalyzer,
    buffer_fanout,
    drive_variants,
    find_buffer,
    size_gates,
)


def fanout_netlist(fanout=12):
    """One inverter driving many sinks."""
    nl = MappedNetlist("fan")
    nl.add_input("a")
    nl.add_instance("INV_X1", {"A": "a"}, "n", name="drv")
    for k in range(fanout):
        nl.add_instance("INV_X1", {"A": "n"}, f"y{k}", name=f"s{k}")
        nl.add_output(f"y{k}")
    return nl


class TestDriveVariants:
    def test_inverter_variants(self):
        inv = CORELIB018.cell("INV_X1")
        names = {c.name for c in drive_variants(CORELIB018, inv)}
        assert names == {"INV_X2", "INV_X4"}

    def test_function_must_match(self):
        nand = CORELIB018.cell("NAND2_X1")
        names = {c.name for c in drive_variants(CORELIB018, nand)}
        assert "NOR2_X1" not in names
        assert "NAND2_X2" in names


class TestSizing:
    def test_upsizes_loaded_driver(self):
        nl = fanout_netlist(12)
        # Long wire on the loaded net makes the weak driver critical.
        lengths = {"n": 400.0}
        report = size_gates(nl, CORELIB018, net_wirelength=lengths)
        assert report.swaps >= 1
        assert report.arrival_after < report.arrival_before
        assert nl.instances["drv"].cell_name in ("INV_X2", "INV_X4")

    def test_reports_area_penalty(self):
        nl = fanout_netlist(12)
        report = size_gates(nl, CORELIB018, net_wirelength={"n": 400.0})
        if report.swaps:
            assert report.area_after > report.area_before
            assert report.area_penalty > 0

    def test_no_swaps_when_unloaded(self):
        nl = fanout_netlist(2)
        report = size_gates(nl, CORELIB018)
        assert report.arrival_after <= report.arrival_before + 1e-12

    def test_function_preserved(self):
        base = decompose(random_pla("sz", 6, 3, 10, literals=(2, 3),
                                    outputs_per_product=(1, 2),
                                    seed=4).to_network())
        result = map_network(base, CORELIB018, min_area())
        size_gates(result.netlist, CORELIB018,
                   net_wirelength={n: 200.0
                                   for n in result.netlist.nets()})
        check_base_vs_mapped(base, result.netlist, CORELIB018)


class TestFindBuffer:
    def test_smallest_buffer(self):
        assert find_buffer(CORELIB018).name == "BUF_X1"

    def test_missing_buffer_raises(self):
        inv = LibCell(name="INV", patterns=(pinv(leaf("A")),), area=1.0,
                      intrinsic_delay=0.02, drive_resistance=5.0,
                      pin_caps={"A": 0.002})
        nand = LibCell(name="ND2", patterns=(pnand(leaf("A"), leaf("B")),),
                       area=2.0, intrinsic_delay=0.03, drive_resistance=6.0,
                       pin_caps={"A": 0.002, "B": 0.002})
        tiny = CellLibrary("tiny", [inv, nand])
        with pytest.raises(LibraryError, match="buffer"):
            find_buffer(tiny)


class TestBuffering:
    def test_bounds_fanout(self):
        nl = fanout_netlist(20)
        report = buffer_fanout(nl, CORELIB018, max_fanout=4)
        assert report.nets_buffered == 1
        assert report.buffers_added >= 5
        for net, sinks in nl.sink_map().items():
            assert len(sinks) <= 4, f"net {net} still has {len(sinks)} sinks"

    def test_small_fanout_untouched(self):
        nl = fanout_netlist(3)
        report = buffer_fanout(nl, CORELIB018, max_fanout=8)
        assert report.buffers_added == 0
        assert nl.num_cells() == 4

    def test_function_preserved(self):
        base = decompose(random_pla("bf", 8, 4, 20, literals=(2, 4),
                                    outputs_per_product=(1, 3),
                                    seed=6).to_network())
        result = map_network(base, CORELIB018, min_area())
        buffer_fanout(result.netlist, CORELIB018, max_fanout=3)
        check_base_vs_mapped(base, result.netlist, CORELIB018)

    def test_area_accounting(self):
        nl = fanout_netlist(20)
        before = nl.total_area(CORELIB018)
        report = buffer_fanout(nl, CORELIB018, max_fanout=4)
        assert nl.total_area(CORELIB018) == pytest.approx(
            before + report.area_added)

    def test_bad_max_fanout_rejected(self):
        with pytest.raises(ValueError):
            buffer_fanout(fanout_netlist(4), CORELIB018, max_fanout=1)

    def test_improves_timing_under_load(self):
        heavy = fanout_netlist(24)
        light = fanout_netlist(24)
        buffer_fanout(light, CORELIB018, max_fanout=6)
        sta = StaticTimingAnalyzer(CORELIB018)
        assert sta.analyze(light).critical_arrival < \
            sta.analyze(heavy).critical_arrival
