"""Tests for the static timing analyzer."""

import pytest

from repro.errors import TimingError
from repro.library import CORELIB018
from repro.network import MappedNetlist
from repro.timing import (
    DelayModel,
    StaticTimingAnalyzer,
    TimingReport,
    WireModel,
    arrival_at_output,
)


def chain_netlist(depth=3):
    """a -> INV -> INV -> ... -> y."""
    nl = MappedNetlist("chain")
    nl.add_input("a")
    prev = "a"
    for i in range(depth):
        net = f"n{i}" if i < depth - 1 else "y"
        nl.add_instance("INV_X1", {"A": prev}, net, name=f"u{i}")
        prev = net
    nl.add_output("y")
    return nl


def diamond_netlist():
    """Two paths of different depth converging on a NAND."""
    nl = MappedNetlist("diamond")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_instance("INV_X1", {"A": "a"}, "n1", name="u1")
    nl.add_instance("INV_X1", {"A": "n1"}, "n2", name="u2")
    nl.add_instance("NAND2_X1", {"A": "n2", "B": "b"}, "y", name="u3")
    nl.add_output("y")
    return nl


@pytest.fixture
def sta():
    return StaticTimingAnalyzer(CORELIB018)


class TestArrivalPropagation:
    def test_deeper_chain_is_slower(self, sta):
        short = sta.analyze(chain_netlist(2))
        long = sta.analyze(chain_netlist(6))
        assert long.critical_arrival > short.critical_arrival

    def test_arrival_monotone_along_path(self, sta):
        report = sta.analyze(chain_netlist(4))
        assert report.arrival["n0"] < report.arrival["n1"] \
            < report.arrival["n2"] < report.arrival["y"]

    def test_worst_input_dominates(self, sta):
        report = sta.analyze(diamond_netlist())
        # The two-inverter path through 'a' dominates the direct 'b'.
        assert report.critical_path[0] == "a"

    def test_wirelength_increases_delay(self, sta):
        nl = chain_netlist(3)
        fast = sta.analyze(nl)
        slow = sta.analyze(nl, net_wirelength={"n0": 500.0, "n1": 500.0})
        assert slow.critical_arrival > fast.critical_arrival

    def test_no_outputs_rejected(self, sta):
        nl = MappedNetlist("empty")
        nl.add_input("a")
        with pytest.raises(TimingError):
            sta.analyze(nl)


class TestCriticalPath:
    def test_path_endpoints(self, sta):
        report = sta.analyze(chain_netlist(3))
        start, end = report.path_endpoints()
        assert start == "a"
        assert end == "y"

    def test_path_contains_instances(self, sta):
        report = sta.analyze(chain_netlist(3))
        assert report.critical_path == ["a", "u0", "u1", "u2", "y"]

    def test_describe_format(self, sta):
        report = sta.analyze(chain_netlist(2))
        text = report.describe_critical()
        assert "a(in)" in text and "y(out)" in text

    def test_output_arrival_lookup(self, sta):
        report = sta.analyze(diamond_netlist())
        assert arrival_at_output(report, "y") == report.critical_arrival
        with pytest.raises(TimingError):
            arrival_at_output(report, "nope")


class TestLoadModel:
    def test_bigger_load_slower(self, sta):
        """A cell driving more sinks arrives later."""
        light = MappedNetlist("light")
        light.add_input("a")
        light.add_instance("INV_X1", {"A": "a"}, "n", name="u0")
        light.add_instance("INV_X1", {"A": "n"}, "y", name="u1")
        light.add_output("y")
        heavy = MappedNetlist("heavy")
        heavy.add_input("a")
        heavy.add_instance("INV_X1", {"A": "a"}, "n", name="u0")
        heavy.add_instance("INV_X1", {"A": "n"}, "y", name="u1")
        for k in range(6):
            heavy.add_instance("INV_X2", {"A": "n"}, f"l{k}", name=f"x{k}")
            heavy.add_output(f"l{k}")
        heavy.add_output("y")
        l_rep = sta.analyze(light)
        h_rep = sta.analyze(heavy)
        assert h_rep.output_arrival["y"] > l_rep.output_arrival["y"]

    def test_stronger_driver_faster_under_load(self, sta):
        def netlist(drive):
            nl = MappedNetlist("d")
            nl.add_input("a")
            nl.add_instance(drive, {"A": "a"}, "n", name="u0")
            for k in range(8):
                nl.add_instance("INV_X1", {"A": "n"}, f"y{k}", name=f"s{k}")
                nl.add_output(f"y{k}")
            return nl

        weak = sta.analyze(netlist("INV_X1"))
        strong = sta.analyze(netlist("INV_X4"))
        assert strong.output_arrival["y0"] < weak.output_arrival["y0"]


class TestWireModel:
    def test_elmore_monotone_in_length(self):
        wm = WireModel()
        assert wm.elmore_delay(200.0, 0.01) > wm.elmore_delay(100.0, 0.01)

    def test_elmore_monotone_in_cap(self):
        wm = WireModel()
        assert wm.elmore_delay(100.0, 0.02) > wm.elmore_delay(100.0, 0.01)

    def test_wire_cap_dominates_gate_cap_in_dsm(self):
        """The paper's premise: a few hundred µm of wire out-weighs a pin."""
        wm = WireModel()
        pin_cap = CORELIB018.cell("NAND2_X1").input_cap("A")
        assert wm.wire_cap(100.0) > pin_cap

    def test_load_on_driver(self):
        wm = WireModel()
        assert wm.load_on_driver(100.0, 0.005) == pytest.approx(
            wm.wire_cap(100.0) + 0.005)


class TestDelayModel:
    def test_input_delay_scales_with_load(self):
        dm = DelayModel()
        assert dm.input_delay(0.02) > dm.input_delay(0.01)

    def test_cell_delay_delegates(self):
        dm = DelayModel()
        cell = CORELIB018.cell("INV_X1")
        assert dm.cell_delay(cell, 0.01) == pytest.approx(cell.delay(0.01))
