"""Vectorized engine vs per-edge reference engine equivalence.

The vectorized router must be a pure speedup: on any net set it has to
report the same violations, overflowed-net count and wirelength as the
per-edge reference implementation of the identical algorithm — uncongested
and congested designs alike.
"""

import numpy as np
import pytest

from repro.place import Floorplan
from repro.route import (
    GlobalRouter,
    RouteCache,
    RoutingGrid,
    RoutingResources,
    victim_order,
)
from repro.route.steiner import gcell_signature

FLOORPLAN = Floorplan(width=104.0, row_height=5.2, num_rows=20)

#: Ample and starved metal stacks: the second forces heavy negotiation.
AMPLE = RoutingResources()
STARVED = RoutingResources(metal_layers=2, derate=0.25, m1_usable=0.0)


def random_nets(seed, count, max_pins=5):
    rng = np.random.default_rng(seed)
    nets = {}
    for k in range(count):
        pins = [(float(rng.uniform(0, 104.0)), float(rng.uniform(0, 104.0)))
                for _ in range(int(rng.integers(2, max_pins + 1)))]
        nets[f"n{k}"] = pins
    return nets


def routers(resources, seed=0, max_iterations=6):
    vec = GlobalRouter(FLOORPLAN, resources, max_iterations=max_iterations,
                       seed=seed, engine="vector")
    ref = GlobalRouter(FLOORPLAN, resources, max_iterations=max_iterations,
                       seed=seed, engine="reference")
    return vec, ref


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("resources", [AMPLE, STARVED],
                             ids=["ample", "starved"])
    def test_random_net_sets_agree(self, seed, resources):
        """Property: both engines agree on every routing verdict."""
        nets = random_nets(seed, count=60 + 20 * seed)
        vec, ref = routers(resources, seed=seed)
        a = vec.route(nets)
        b = ref.route(nets)
        assert a.violations == b.violations
        assert a.overflowed_nets == b.overflowed_nets
        assert a.iterations == b.iterations
        assert a.total_wirelength == b.total_wirelength
        for name in nets:
            assert sorted(a.routes[name].edges) == \
                sorted(b.routes[name].edges), name

    def test_multi_pin_and_degenerate_nets(self):
        nets = {
            "same_gcell": [(5.0, 5.0), (5.5, 5.5)],
            "single_pin": [(50.0, 50.0)],
            "straight": [(5.0, 50.0), (100.0, 50.0)],
            "fanout": [(5.0, 5.0), (90.0, 10.0), (50.0, 95.0), (10.0, 60.0)],
        }
        vec, ref = routers(AMPLE)
        a, b = vec.route(nets), ref.route(nets)
        assert a.violations == b.violations == 0
        assert a.total_wirelength == b.total_wirelength
        assert a.routes["same_gcell"].edges == []
        assert a.routes["single_pin"].edges == []

    def test_demand_books_match_routes(self):
        """Both engines keep demand == committed edges (incremental
        rip-up must never leak or double-count demand)."""
        nets = random_nets(3, count=120)
        for router in routers(STARVED, seed=3):
            result = router.route(nets)
            total_edges = sum(len(r.edges) for r in result.routes.values())
            assert total_edges == int(result.grid.demand_flat.sum())

    def test_engine_name_recorded(self):
        nets = random_nets(0, count=10)
        vec, ref = routers(AMPLE)
        assert vec.route(nets).engine == "vector"
        assert ref.route(nets).engine == "reference"

    def test_unknown_engine_rejected(self):
        from repro.errors import RoutingError
        with pytest.raises(RoutingError):
            GlobalRouter(FLOORPLAN, engine="quantum")


class TestRouterStats:
    def test_phase_stats_present(self):
        nets = random_nets(1, count=80)
        result = GlobalRouter(FLOORPLAN, STARVED,
                              max_iterations=6).route(nets)
        for key in ("route.t_init", "route.t_negotiate",
                    "route.nets_rerouted", "route.segments_rerouted",
                    "route.routes_reused"):
            assert key in result.stats
        assert result.stats["segments_rerouted"] >= \
            result.stats["nets_rerouted"] > 0
        assert result.stats["routes_reused"] == 0

    def test_incremental_ripup_touches_fewer_segments(self):
        """Only segments crossing overflow are rerouted: nets far away
        from the hot spot must never be ripped up."""
        rng = np.random.default_rng(2)
        nets = {}
        for k in range(60):  # hot cluster crammed into one corner
            nets[f"hot{k}"] = [
                (float(rng.uniform(0, 20.0)), float(rng.uniform(0, 20.0)))
                for _ in range(2)]
        for k in range(40):  # cold nets along the far edge of the die
            nets[f"cold{k}"] = [
                (float(rng.uniform(80.0, 104.0)),
                 float(rng.uniform(80.0, 104.0))) for _ in range(2)]
        result = GlobalRouter(FLOORPLAN, STARVED,
                              max_iterations=6).route(nets)
        total_segments = sum(len(r.segments) for r in result.routes.values())
        assert result.iterations > 0
        assert result.stats["nets_rerouted"] > 0
        assert result.stats["segments_rerouted"] < \
            total_segments * result.iterations


class TestVictimOrdering:
    def test_seed_reaches_victim_order(self):
        orders = [victim_order(20, np.random.default_rng(seed)).tolist()
                  for seed in (0, 1)]
        assert orders[0] != orders[1]

    def test_routing_deterministic_per_seed(self):
        nets = random_nets(4, count=90)
        first = GlobalRouter(FLOORPLAN, STARVED, seed=5).route(nets)
        second = GlobalRouter(FLOORPLAN, STARVED, seed=5).route(nets)
        assert first.violations == second.violations
        assert first.total_wirelength == second.total_wirelength

    def test_engines_share_seeded_order(self):
        nets = random_nets(5, count=90)
        for seed in (0, 9):
            vec, ref = routers(STARVED, seed=seed)
            a, b = vec.route(nets), ref.route(nets)
            assert a.violations == b.violations
            assert a.total_wirelength == b.total_wirelength


class TestRouteCache:
    def test_full_reuse_on_identical_nets(self):
        nets = random_nets(6, count=50)
        cache = RouteCache()
        router = GlobalRouter(FLOORPLAN, max_iterations=6)
        first = router.route(nets, cache=cache)
        cache.store(first)
        second = router.route(nets, cache=cache)
        assert second.stats["routes_reused"] == len(nets)
        assert second.violations == first.violations
        assert second.total_wirelength == first.total_wirelength

    def test_partial_reuse_keeps_books_consistent(self):
        nets = random_nets(7, count=40)
        cache = RouteCache()
        router = GlobalRouter(FLOORPLAN, max_iterations=6)
        cache.store(router.route(nets, cache=cache))
        moved = dict(nets)
        moved["n0"] = [(1.0, 1.0), (99.0, 99.0), (1.0, 99.0)]
        result = router.route(moved, cache=cache)
        assert 0 < result.stats["routes_reused"] < len(moved)
        total_edges = sum(len(r.edges) for r in result.routes.values())
        assert total_edges == int(result.grid.demand_flat.sum())

    def test_grid_mismatch_disables_reuse(self):
        nets = random_nets(8, count=30)
        cache = RouteCache()
        router = GlobalRouter(FLOORPLAN, max_iterations=4)
        cache.store(router.route(nets, cache=cache))
        other_fp = Floorplan(width=78.0, row_height=5.2, num_rows=15)
        other = GlobalRouter(other_fp, max_iterations=4)
        result = other.route(nets, cache=cache)
        assert result.stats["routes_reused"] == 0

    def test_reference_engine_reuses_too(self):
        nets = random_nets(9, count=30)
        cache = RouteCache()
        vec, ref = routers(AMPLE)
        cache.store(vec.route(nets, cache=cache))
        result = ref.route(nets, cache=cache)
        assert result.stats["routes_reused"] == len(nets)
        assert result.violations == 0

    def test_cross_gcell_move_invalidates(self):
        """A pin moved into another GCell changes the net's signature,
        so its cached route must NOT warm-start the new net."""
        nets = random_nets(10, count=40)
        cache = RouteCache()
        router = GlobalRouter(FLOORPLAN, max_iterations=6)
        cache.store(router.route(nets, cache=cache))

        grid = RoutingGrid(FLOORPLAN, AMPLE, gcell_rows=2)
        moved = dict(nets)
        old_pin = moved["n3"][0]
        new_pin = (old_pin[0], (old_pin[1] + 52.0) % 104.0)
        assert grid.gcell_of(new_pin) != grid.gcell_of(old_pin)
        moved["n3"] = [new_pin] + list(moved["n3"][1:])

        result = router.route(moved, cache=cache)
        assert result.stats["routes_reused"] == len(moved) - 1
        # The moved net's fresh route matches a cold route of the same
        # net set (reuse may not leak the stale geometry in).
        cold = router.route(moved)
        assert sorted(result.routes["n3"].edges) == \
            sorted(cold.routes["n3"].edges)

    def test_intra_gcell_move_reuses(self):
        """A move within the same GCell keeps the signature — the
        cached route stays valid and is reused."""
        nets = random_nets(11, count=40)
        cache = RouteCache()
        router = GlobalRouter(FLOORPLAN, max_iterations=6)
        cache.store(router.route(nets, cache=cache))

        grid = RoutingGrid(FLOORPLAN, AMPLE, gcell_rows=2)
        moved = dict(nets)
        old_pin = moved["n3"][0]
        cell = grid.gcell_of(old_pin)
        new_pin = (cell[0] * grid.gw + 0.25 * grid.gw,
                   cell[1] * grid.gh + 0.25 * grid.gh)
        assert grid.gcell_of(new_pin) == cell
        moved["n3"] = [new_pin] + list(moved["n3"][1:])

        result = router.route(moved, cache=cache)
        assert result.stats["routes_reused"] == len(moved)

    def test_reuse_skipped_counter(self):
        """A warm cache that contributes nothing is observable: the
        grid-mismatch drop records ``route.reuse_skipped`` instead of
        silently routing cold (the ISSUE 7 satellite bugfix)."""
        nets = random_nets(13, count=30)
        cache = RouteCache()
        router = GlobalRouter(FLOORPLAN, max_iterations=4)
        first = router.route(nets, cache=cache)
        assert first.stats["route.reuse_skipped"] == 0  # cache was empty
        cache.store(first)
        other_fp = Floorplan(width=78.0, row_height=5.2, num_rows=15)
        other = GlobalRouter(other_fp, max_iterations=4)
        mismatched = other.route(nets, cache=cache)
        assert mismatched.stats["route.reuse_skipped"] == 1
        assert mismatched.stats["routes_reused"] == 0
        warm = router.route(nets, cache=cache)
        assert warm.stats["route.reuse_skipped"] == 0
        assert warm.stats["routes_reused"] > 0

    def test_clone_is_an_independent_shard(self):
        """clone() decouples the signature table: storing into a shard
        never mutates the parent snapshot (the property the parallel
        sweep rounds rely on)."""
        nets = random_nets(14, count=25)
        cache = RouteCache()
        router = GlobalRouter(FLOORPLAN, max_iterations=6)
        cache.store(router.route(nets, cache=cache))
        before = {sig: list(arrs) for sig, arrs in cache.routes.items()}

        shard = cache.clone()
        assert shard.grid_key == cache.grid_key
        assert set(shard.routes) == set(cache.routes)
        kept = {k: v for k, v in nets.items() if k != "n0"}
        shard.store(router.route(kept, cache=shard))
        # The parent snapshot is untouched, signature for signature.
        assert set(cache.routes) == set(before)
        for sig, arrs in cache.routes.items():
            assert all(a is b for a, b in zip(arrs, before[sig]))
        assert len(shard.routes) == len(kept)

    def test_store_replaces_stale_routes(self):
        """store() snapshots exactly the latest result: old signatures
        vanish, so a deleted net cannot resurrect a stale route."""
        nets = random_nets(12, count=20)
        cache = RouteCache()
        router = GlobalRouter(FLOORPLAN, max_iterations=6)
        cache.store(router.route(nets, cache=cache))
        assert len(cache.routes) == len(nets)

        kept = {k: v for k, v in nets.items() if k not in ("n0", "n1")}
        cache.store(router.route(kept, cache=cache))
        assert len(cache.routes) == len(kept)
        grid = RoutingGrid(FLOORPLAN, AMPLE, 2)
        signatures = {gcell_signature([grid.gcell_of(p) for p in pins])
                      for pins in kept.values()}
        assert set(cache.routes) == signatures


class TestAutoEngine:
    """--route-engine auto: pick by design size, identical results."""

    def test_auto_matches_both_engines(self):
        for count in (20, 100):            # straddles AUTO_NET_THRESHOLD
            nets = random_nets(13, count=count)
            auto = GlobalRouter(FLOORPLAN, AMPLE, max_iterations=6,
                                engine="auto")
            vec, ref = routers(AMPLE)
            a, v, r = auto.route(nets), vec.route(nets), ref.route(nets)
            for other in (v, r):
                assert a.violations == other.violations
                assert a.total_wirelength == other.total_wirelength
                assert a.iterations == other.iterations

    def test_auto_is_the_default_flow_engine(self):
        from repro.core.flow import FlowConfig
        from repro.library import CORELIB018
        assert FlowConfig(library=CORELIB018).route_engine == "auto"

    def test_unknown_engine_rejected(self):
        from repro.errors import RoutingError
        with pytest.raises(RoutingError):
            GlobalRouter(FLOORPLAN, engine="turbo")
