"""Tests for L-shape and maze routing."""

import pytest

from repro.place import Floorplan
from repro.route import HORIZONTAL, RoutingGrid, RoutingResources, VERTICAL
from repro.route.maze import l_route_edges, maze_route


@pytest.fixture
def grid():
    fp = Floorplan(width=104.0, row_height=5.2, num_rows=20)
    return RoutingGrid(fp, RoutingResources(), gcell_rows=2)


def route_is_connected(edges, source, target):
    """Edges must form a walk from source to target."""
    if source == target:
        return edges == []
    adjacency = {}
    for direction, ex, ey in edges:
        if direction == HORIZONTAL:
            a, b = (ex, ey), (ex + 1, ey)
        else:
            a, b = (ex, ey), (ex, ey + 1)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    seen = {source}
    frontier = [source]
    while frontier:
        cell = frontier.pop()
        for nxt in adjacency.get(cell, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return target in seen


class TestLRoute:
    def test_horizontal_first(self):
        edges = l_route_edges((0, 0), (2, 2), horizontal_first=True)
        assert (HORIZONTAL, 0, 0) in edges
        assert (VERTICAL, 2, 0) in edges
        assert len(edges) == 4

    def test_vertical_first(self):
        edges = l_route_edges((0, 0), (2, 2), horizontal_first=False)
        assert (VERTICAL, 0, 0) in edges
        assert (HORIZONTAL, 0, 2) in edges

    def test_straight_line(self):
        edges = l_route_edges((0, 3), (4, 3))
        assert len(edges) == 4
        assert all(d == HORIZONTAL for d, _, _ in edges)

    def test_same_cell(self):
        assert l_route_edges((1, 1), (1, 1)) == []

    def test_connectivity(self):
        for target in [(3, 0), (0, 3), (3, 3), (1, 2)]:
            edges = l_route_edges((0, 0), target)
            assert route_is_connected(edges, (0, 0), target)


class TestMazeRoute:
    def test_shortest_when_uncongested(self, grid):
        edges = maze_route(grid, (0, 0), (4, 3))
        assert len(edges) == 7  # Manhattan distance

    def test_connected(self, grid):
        for target in [(5, 5), (0, 7), (8, 0)]:
            edges = maze_route(grid, (1, 1), target)
            assert route_is_connected(edges, (1, 1), target)

    def test_same_cell(self, grid):
        assert maze_route(grid, (2, 2), (2, 2)) == []

    def test_detours_around_congestion(self, grid):
        # Block the direct corridor between (0,0) and (4,0).
        for x in range(4):
            grid.demand[HORIZONTAL][x, 0] = grid.hcap + 50
        edges = maze_route(grid, (0, 0), (4, 0))
        assert route_is_connected(edges, (0, 0), (4, 0))
        blocked = {(HORIZONTAL, x, 0) for x in range(4)}
        assert not blocked.issubset(set(edges)), \
            "route should detour off the saturated row"
        assert len(edges) > 4  # the detour costs extra length

    def test_history_discourages_reuse(self, grid):
        grid.history[HORIZONTAL][:, 0] = 50.0
        edges = maze_route(grid, (0, 0), (4, 0))
        assert route_is_connected(edges, (0, 0), (4, 0))
        assert not any(d == HORIZONTAL and ey == 0 for d, _, ey in edges)


class TestMazeFallback:
    """Regressions for degenerate windows and unreachable targets."""

    def test_source_equals_target_zero_margin(self, grid):
        assert maze_route(grid, (3, 3), (3, 3), margin=0) == []

    def test_zero_margin_straight_line(self, grid):
        # A margin-0 window around a straight pair is a 1-cell-high
        # corridor; the route must stay inside it and still connect.
        edges = maze_route(grid, (0, 4), (5, 4), margin=0)
        assert route_is_connected(edges, (0, 4), (5, 4))
        assert len(edges) == 5
        assert all(d == HORIZONTAL and ey == 4 for d, _, ey in edges)

    def test_zero_margin_l_pair(self, grid):
        edges = maze_route(grid, (1, 1), (4, 6), margin=0)
        assert route_is_connected(edges, (1, 1), (4, 6))
        assert len(edges) == 8  # Manhattan distance within the bbox

    def test_unreachable_target_falls_back_to_l(self, grid):
        # A negative margin shrinks the search window until the heap
        # exhausts before reaching the target; the fallback must still
        # return a connected route (the cheaper of the two Ls).
        edges = maze_route(grid, (0, 0), (5, 5), margin=-1)
        assert route_is_connected(edges, (0, 0), (5, 5))
        assert len(edges) == 10

    def test_fallback_picks_cheaper_l(self, grid):
        # Saturate the horizontal-first L's first row so the fallback
        # must prefer the vertical-first alternative.
        for x in range(5):
            grid.demand[HORIZONTAL][x, 0] = grid.hcap + 50
        edges = maze_route(grid, (0, 0), (5, 5), margin=-1)
        assert route_is_connected(edges, (0, 0), (5, 5))
        assert (VERTICAL, 0, 0) in edges
        assert (HORIZONTAL, 0, 0) not in edges
