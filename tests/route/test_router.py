"""Tests for the global router."""

import pytest

from repro.place import Floorplan
from repro.route import GlobalRouter, RoutingResources

from .test_maze import route_is_connected


@pytest.fixture
def floorplan():
    return Floorplan(width=104.0, row_height=5.2, num_rows=20)


@pytest.fixture
def router(floorplan):
    return GlobalRouter(floorplan, max_iterations=8)


class TestBasicRouting:
    def test_single_two_pin_net(self, router, floorplan):
        result = router.route({"n1": [(5.0, 5.0), (80.0, 80.0)]})
        assert result.routable
        assert result.total_wirelength > 0
        assert result.net_wirelength("n1") > 0

    def test_multi_pin_net_connected(self, router):
        pins = [(5.0, 5.0), (90.0, 10.0), (50.0, 95.0), (10.0, 60.0)]
        result = router.route({"n1": pins})
        route = result.routes["n1"]
        gcells = route.pins
        for pin in gcells[1:]:
            assert route_is_connected(route.edges, gcells[0], pin)

    def test_net_within_one_gcell_is_free(self, router):
        result = router.route({"n1": [(5.0, 5.0), (6.0, 6.0)]})
        assert result.net_wirelength("n1") == 0.0
        assert result.routable

    def test_empty_netlist(self, router):
        result = router.route({})
        assert result.routable
        assert result.total_wirelength == 0.0

    def test_deterministic(self, router):
        nets = {f"n{k}": [(5.0 * k, 5.0), (90.0, 5.0 * k + 3)]
                for k in range(8)}
        a = router.route(nets)
        b = router.route(nets)
        assert a.violations == b.violations
        assert a.total_wirelength == pytest.approx(b.total_wirelength)


class TestCongestionBehaviour:
    def test_parallel_nets_overflow_small_capacity(self, floorplan):
        # Saturate one corridor with many parallel nets: with a single
        # metal pair the capacity is tiny and overflow must appear.
        router = GlobalRouter(
            floorplan,
            RoutingResources(metal_layers=2, derate=0.2, m1_usable=0.0),
            max_iterations=3)
        nets = {f"n{k}": [(2.0, 50.0 + 0.01 * k), (100.0, 50.0 + 0.01 * k)]
                for k in range(60)}
        result = router.route(nets)
        assert result.violations > 0
        assert result.overflowed_nets > 0

    def test_rerouting_reduces_overflow(self, floorplan):
        nets = {f"n{k}": [(2.0, 50.0 + 0.01 * k), (100.0, 50.0 + 0.01 * k)]
                for k in range(40)}
        lazy = GlobalRouter(floorplan, max_iterations=0).route(nets)
        eager = GlobalRouter(floorplan, max_iterations=8).route(nets)
        assert eager.violations <= lazy.violations

    def test_wirelength_grows_with_detours(self, floorplan):
        nets = {f"n{k}": [(2.0, 50.0 + 0.01 * k), (100.0, 50.0 + 0.01 * k)]
                for k in range(40)}
        lazy = GlobalRouter(floorplan, max_iterations=0).route(nets)
        eager = GlobalRouter(floorplan, max_iterations=8).route(nets)
        if eager.violations < lazy.violations:
            assert eager.total_wirelength >= lazy.total_wirelength


class TestResultInvariants:
    def test_demand_matches_routes(self, router):
        nets = {f"n{k}": [(10.0 * k + 5, 8.0), (10.0 * k + 5, 95.0)]
                for k in range(6)}
        result = router.route(nets)
        import numpy as np
        total_edges = sum(len(r.edges) for r in result.routes.values())
        demand_sum = int(result.grid.demand[0].sum()
                         + result.grid.demand[1].sum())
        assert total_edges == demand_sum

    def test_overflowed_nets_counted(self, floorplan):
        router = GlobalRouter(
            floorplan,
            RoutingResources(metal_layers=2, derate=0.2, m1_usable=0.0),
            max_iterations=2)
        nets = {f"n{k}": [(2.0, 50.0), (100.0, 50.0)] for k in range(50)}
        result = router.route(nets)
        assert 0 < result.overflowed_nets <= len(nets)
