"""Tests for the routing grid and resource model."""

import pytest

from repro.errors import RoutingError
from repro.place import Floorplan
from repro.route import HORIZONTAL, RoutingGrid, RoutingResources, VERTICAL


@pytest.fixture
def grid():
    fp = Floorplan(width=52.0, row_height=5.2, num_rows=10)
    return RoutingGrid(fp, RoutingResources(), gcell_rows=2)


class TestResources:
    def test_three_layer_shares(self):
        h, v = RoutingResources(metal_layers=3).layer_shares()
        assert h == pytest.approx(1.25)
        assert v == pytest.approx(1.0)

    def test_four_layer_shares(self):
        h, v = RoutingResources(metal_layers=4).layer_shares()
        assert v == pytest.approx(2.0)

    def test_too_few_layers(self):
        with pytest.raises(RoutingError):
            RoutingResources(metal_layers=1)

    def test_more_layers_more_capacity(self):
        fp = Floorplan(width=52.0, row_height=5.2, num_rows=10)
        g3 = RoutingGrid(fp, RoutingResources(metal_layers=3))
        g5 = RoutingGrid(fp, RoutingResources(metal_layers=5))
        assert g5.hcap > g3.hcap
        assert g5.vcap > g3.vcap


class TestGeometry:
    def test_grid_dimensions(self, grid):
        assert grid.nx >= 2 and grid.ny >= 2

    def test_gcell_of_clamps(self, grid):
        assert grid.gcell_of((-5.0, -5.0)) == (0, 0)
        assert grid.gcell_of((1e9, 1e9)) == (grid.nx - 1, grid.ny - 1)

    def test_center_roundtrip(self, grid):
        for cell in [(0, 0), (1, 2), (grid.nx - 1, grid.ny - 1)]:
            assert grid.gcell_of(grid.gcell_center(cell)) == cell

    def test_edge_between(self, grid):
        assert grid.edge_between((0, 0), (1, 0)) == (HORIZONTAL, 0, 0)
        assert grid.edge_between((1, 1), (1, 0)) == (VERTICAL, 1, 0)

    def test_edge_between_nonadjacent(self, grid):
        with pytest.raises(RoutingError):
            grid.edge_between((0, 0), (2, 0))


class TestDemand:
    def test_add_and_overflow(self, grid):
        edge = (HORIZONTAL, 0, 0)
        grid.add_demand([edge] * (grid.hcap + 3))
        assert grid.overflow_total() == 3
        assert grid.overflow_max() == 3
        assert grid.overflowed_edges() == [edge]

    def test_negative_adjustment(self, grid):
        edge = (VERTICAL, 0, 0)
        grid.add_demand([edge], amount=5)
        grid.add_demand([edge], amount=-5)
        assert grid.overflow_total() == 0
        assert grid.demand[VERTICAL][0, 0] == 0

    def test_congestion_fraction(self, grid):
        edge = (HORIZONTAL, 1, 1)
        grid.add_demand([edge], amount=grid.hcap)
        assert grid.edge_congestion(*edge) == pytest.approx(1.0)

    def test_reset(self, grid):
        grid.add_demand([(HORIZONTAL, 0, 0)], amount=99)
        grid.reset_demand()
        assert grid.overflow_total() == 0

    def test_utilization_map_shape(self, grid):
        util = grid.utilization_map()
        assert util.shape == (grid.nx, grid.ny)
