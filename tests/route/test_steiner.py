"""Tests for net decomposition (MST)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.route import hpwl_of_points, manhattan, mst_segments


class TestManhattan:
    def test_basic(self):
        assert manhattan((0, 0), (3, 4)) == 7

    def test_zero(self):
        assert manhattan((2, 2), (2, 2)) == 0


class TestMst:
    def test_two_points(self):
        segs = mst_segments([(0, 0), (3, 0)])
        assert segs == [((0, 0), (3, 0))]

    def test_degenerate(self):
        assert mst_segments([]) == []
        assert mst_segments([(1, 1)]) == []
        assert mst_segments([(1, 1), (1, 1)]) == []

    def test_collinear_chain(self):
        points = [(0, 0), (10, 0), (5, 0)]
        segs = mst_segments(points)
        total = sum(manhattan(a, b) for a, b in segs)
        assert total == 10  # chain, not star

    def test_spanning(self):
        points = [(0, 0), (4, 0), (0, 4), (4, 4), (2, 2)]
        segs = mst_segments(points)
        assert len(segs) == len(set(points)) - 1
        # Connectivity: union-find over segments.
        parent = {p: p for p in points}

        def find(p):
            while parent[p] != p:
                parent[p] = parent[parent[p]]
                p = parent[p]
            return p

        for a, b in segs:
            parent[find(a)] = find(b)
        roots = {find(p) for p in points}
        assert len(roots) == 1

    def test_mst_optimal_on_triangle(self):
        segs = mst_segments([(0, 0), (1, 0), (10, 0)])
        total = sum(manhattan(a, b) for a, b in segs)
        assert total == 10

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                    min_size=2, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_property_tree_and_connected(self, points):
        unique = sorted(set(points))
        segs = mst_segments(points)
        assert len(segs) == max(0, len(unique) - 1)
        if len(unique) < 2:
            return
        parent = {p: p for p in unique}

        def find(p):
            while parent[p] != p:
                parent[p] = parent[parent[p]]
                p = parent[p]
            return p

        for a, b in segs:
            assert find(a) != find(b), "MST must not create cycles"
            parent[find(a)] = find(b)
        assert len({find(p) for p in unique}) == 1

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                    min_size=2, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_property_mst_at_least_hpwl(self, points):
        unique = sorted(set(points))
        if len(unique) < 2:
            return
        segs = mst_segments(points)
        total = sum(manhattan(a, b) for a, b in segs)
        assert total >= hpwl_of_points(unique) / 2.0 - 1e-9


class TestHpwl:
    def test_bbox(self):
        assert hpwl_of_points([(0, 0), (3, 4), (1, 1)]) == 7

    def test_degenerate(self):
        assert hpwl_of_points([(5, 5)]) == 0
