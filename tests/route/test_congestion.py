"""Tests for congestion statistics and rendering."""

import pytest

from repro.place import Floorplan
from repro.route import (
    GlobalRouter,
    RoutingResources,
    congestion_stats,
    render_congestion_map,
)


@pytest.fixture
def routed():
    fp = Floorplan(width=104.0, row_height=5.2, num_rows=20)
    router = GlobalRouter(fp, max_iterations=4)
    nets = {f"n{k}": [(5.0, 5.0 + 4 * k), (95.0, 5.0 + 4 * k)]
            for k in range(10)}
    return router.route(nets)


class TestStats:
    def test_fields(self, routed):
        stats = congestion_stats(routed)
        assert stats.violations == routed.violations
        assert 0.0 <= stats.mean_utilization
        assert stats.peak_utilization >= stats.mean_utilization
        assert 0.0 <= stats.congested_fraction <= 1.0

    def test_acceptable_gate(self, routed):
        stats = congestion_stats(routed)
        assert stats.acceptable == (routed.violations == 0)

    def test_overflowed_stats(self):
        fp = Floorplan(width=104.0, row_height=5.2, num_rows=20)
        router = GlobalRouter(
            fp, RoutingResources(metal_layers=2, derate=0.2, m1_usable=0.0),
            max_iterations=1)
        nets = {f"n{k}": [(2.0, 50.0), (100.0, 50.0)] for k in range(50)}
        stats = congestion_stats(router.route(nets))
        assert not stats.acceptable
        assert stats.max_edge_overflow > 0


class TestRender:
    def test_render_dimensions(self, routed):
        text = render_congestion_map(routed.grid)
        lines = text.splitlines()
        assert len(lines) == routed.grid.ny + 1  # header + rows
        assert all(len(line) == routed.grid.nx for line in lines[1:])

    def test_render_header(self, routed):
        text = render_congestion_map(routed.grid)
        assert "congestion map" in text.splitlines()[0]
