"""Tests for the batch engine: cache sharing, isolation, determinism."""

import pytest

from repro.core import FlowConfig
from repro.library import CORELIB018
from repro.serve import Job, ServeEngine, SessionCaches, source_key

#: Tiny calibrated requests: spla@0.01 on 12 rows routes clean at K=0.
SWEEP12 = Job(id="s12", cmd="ksweep", source="spla@0.01", rows=12,
              k=(0.0, 0.005))
SWEEP12B = Job(id="s12b", cmd="ksweep", source="spla@0.01", rows=12,
               k=(0.0, 0.005))
SWEEP13 = Job(id="s13", cmd="ksweep", source="spla@0.01", rows=13,
              k=(0.0,))
FLOW12 = Job(id="f12", cmd="flow", source="spla@0.01", rows=12)


def _config():
    return FlowConfig(library=CORELIB018)


def _lines(results):
    return [r.to_json() for r in results]


@pytest.fixture(scope="module")
def warm_run():
    """One engine over the module's job mix (shared by the tests)."""
    engine = ServeEngine(_config())
    results = engine.run([SWEEP12, SWEEP12B, SWEEP13, FLOW12])
    return engine, results


class TestStream:
    def test_results_in_submission_order(self, warm_run):
        _, results = warm_run
        assert [r.id for r in results] == ["s12", "s12b", "s13", "f12"]

    def test_on_result_streams_in_order(self):
        seen = []
        engine = ServeEngine(_config())
        engine.run([SWEEP12, SWEEP13],
                   on_result=lambda r: seen.append(r.id))
        assert seen == ["s12", "s13"]

    def test_all_jobs_ok(self, warm_run):
        _, results = warm_run
        assert all(r.ok for r in results)
        assert results[3].verdict == "converged"
        assert results[3].chosen_k == 0.0

    def test_error_job_does_not_stop_the_stream(self):
        engine = ServeEngine(_config())
        bad = Job(id="bad", cmd="flow", source="no_such_bench@0.01")
        results = engine.run([bad, SWEEP12])
        assert not results[0].ok
        assert results[0].verdict == "error"
        assert results[0].error
        assert results[0].rows == []
        assert results[1].ok
        summary = engine.summary()
        assert summary["jobs"] == 2
        assert summary["ok"] == 1


class TestCacheSharing:
    def test_repeat_job_hits_every_family(self, warm_run):
        engine, _ = warm_run
        counters = engine.caches.counters()
        # s12b repeats s12 exactly; s13/f12 share netlist + matcher too.
        assert counters["netlist_misses"] == 1
        assert counters["netlist_hits"] == 3
        assert counters["matcher_misses"] == 1
        assert counters["matcher_hits"] == 3
        # Two dies (12 and 13 rows) -> two layout/route-pool entries.
        assert counters["layout_entries"] == 2
        assert counters["route_pool_entries"] == 2
        assert counters["layout_hits"] == 2      # s12b + f12
        assert counters["route_pool_hits"] == 2

    def test_repeat_rows_identical_to_first(self, warm_run):
        _, results = warm_run
        first, repeat = results[0], results[1]
        assert repeat.rows == first.rows
        assert repeat.verdict == first.verdict

    def test_summary_shape(self, warm_run):
        engine, _ = warm_run
        summary = engine.summary()
        assert summary["jobs"] == 4
        assert summary["ok"] == 4
        assert summary["jobs_per_sec"] > 0
        assert set(summary["cache_hit_rates"]) == {
            "netlist", "layout", "matcher", "route_pool", "library_build"}
        assert summary["cache_hit_rates"]["netlist"] == 0.75
        assert len(summary["per_job"]) == 4
        assert {entry["id"] for entry in summary["per_job"]} == \
            {"s12", "s12b", "s13", "f12"}


class TestDieIsolation:
    """A job on a different die never adopts another job's route shard."""

    def test_route_pools_keyed_by_die(self):
        engine = ServeEngine(_config())
        engine.run([Job(id="a", cmd="ksweep", source="spla@0.01",
                        rows=12, k=(0.0,)),
                    Job(id="b", cmd="ksweep", source="spla@0.01",
                        rows=13, k=(0.0,))])
        keys = engine.caches.route_pool_keys
        assert len(keys) == 2
        netlist_keys = {key for key, _die in keys}
        assert netlist_keys == {source_key("spla@0.01")}
        assert len({die for _key, die in keys}) == 2
        # Single-K jobs on fresh dies: nothing to reuse, nothing to
        # skip — cross-die adoption would show up in either counter.
        work = engine.summary()["cache"]
        assert work["route.routes_reused"] == 0
        assert work["route.reuse_skipped"] == 0

    def test_same_die_repeat_warm_starts(self):
        engine = ServeEngine(_config())
        job = Job(id="a", cmd="ksweep", source="spla@0.01", rows=12,
                  k=(0.0,))
        engine.run([job, Job(id="b", cmd="ksweep", source="spla@0.01",
                             rows=12, k=(0.0,))])
        work = engine.summary()["cache"]
        assert work["route.routes_reused"] > 0
        assert work["route.reuse_skipped"] == 0

    def test_route_reuse_off_keeps_pools_empty(self):
        config = FlowConfig(library=CORELIB018, route_reuse=False)
        engine = ServeEngine(config)
        engine.run([SWEEP12, SWEEP12B])
        assert engine.caches.route_pool_keys == ()
        assert engine.summary()["cache"]["route.routes_reused"] == 0


class TestDeterminism:
    def test_workers_do_not_change_result_lines(self, warm_run):
        _, results = warm_run
        engine2 = ServeEngine(_config(), workers=2)
        results2 = engine2.run([SWEEP12, SWEEP12B, SWEEP13, FLOW12])
        assert _lines(results2) == _lines(results)

    def test_cold_engines_match_the_warm_stream(self, warm_run):
        _, results = warm_run
        cold = []
        for job in (SWEEP12, SWEEP12B, SWEEP13, FLOW12):
            cold.extend(ServeEngine(_config()).run([job]))
        assert _lines(cold) == _lines(results)

    def test_job_workers_override_is_pure(self, warm_run):
        _, results = warm_run
        job = Job(id="s12", cmd="ksweep", source="spla@0.01", rows=12,
                  k=(0.0, 0.005), workers=2)
        result = ServeEngine(_config()).run([job])[0]
        assert result.to_json() == results[0].to_json()


class TestSessionCachesUnit:
    def test_source_key_forms(self, tmp_path):
        assert source_key("spla@0.01") == "bench:spla@0.01"
        assert source_key("SPLA") == "bench:spla@0.125"
        blif = tmp_path / "c.blif"
        blif.write_text(".model c\n.inputs a\n.outputs y\n"
                        ".names a y\n1 1\n.end\n")
        key = source_key(str(blif))
        assert key.startswith("blif:sha256:")
        twin = tmp_path / "copy.blif"
        twin.write_text(blif.read_text())
        assert source_key(str(twin)) == key

    def test_network_cache_content_keyed(self):
        caches = SessionCaches(CORELIB018)
        key1, network1, base1 = caches.network("spla@0.01")
        key2, network2, base2 = caches.network("spla@0.01")
        assert key1 == key2
        assert network1 is network2
        assert base1 is base2
        assert caches.counters()["netlist_hits"] == 1

    def test_stats_registry_names(self):
        caches = SessionCaches(CORELIB018)
        caches.network("spla@0.01")
        stats = caches.stats()
        assert stats["serve.netlist_misses"] == 1
        assert stats["serve.netlist_entries"] == 1
