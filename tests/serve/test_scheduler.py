"""Tests for the cross-job parallel scheduler.

The contract under test: ``serve_workers > 1`` groups jobs into
(netlist, die) affinity chains, same-key jobs stay ordered, and the
emitted result stream is byte-identical to the sequential engine —
including error lines and interleaved chains.
"""

import pytest

from repro.core import FlowConfig
from repro.library import CORELIB018
from repro.serve import Job, ServeEngine, affinity_key, plan_chains

#: A mixed stream: three affinity chains (two interleaved) + a repeat.
MIXED = [
    Job(id="a0", cmd="ksweep", source="spla@0.01", rows=12, k=(0.0, 0.005)),
    Job(id="b0", cmd="ksweep", source="spla@0.01", rows=13, k=(0.0,)),
    Job(id="a1", cmd="ksweep", source="spla@0.01", rows=12, k=(0.0,)),
    Job(id="c0", cmd="flow", source="spla@0.02", rows=18, tolerance=6),
    Job(id="b1", cmd="ksweep", source="spla@0.01", rows=13, k=(0.005,)),
]


def _config():
    return FlowConfig(library=CORELIB018)


def _lines(results):
    return [r.to_json() for r in results]


class TestAffinityPlanning:
    def test_affinity_key_is_netlist_and_die(self):
        same_a = affinity_key(Job(id="x", cmd="flow", source="spla@0.01",
                                  rows=12))
        same_b = affinity_key(Job(id="y", cmd="ksweep", source="SPLA@0.01",
                                  rows=12))
        assert same_a == same_b          # command does not split chains
        other_die = affinity_key(Job(id="z", cmd="flow", source="spla@0.01",
                                     rows=13))
        other_net = affinity_key(Job(id="w", cmd="flow", source="spla@0.02",
                                     rows=12))
        assert other_die != same_a
        assert other_net != same_a

    def test_blif_twins_share_a_chain(self, tmp_path):
        text = ".model c\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        one = tmp_path / "one.blif"
        two = tmp_path / "two.blif"
        one.write_text(text)
        two.write_text(text)
        job = Job(id="x", cmd="flow", source=str(one), rows=4)
        twin = Job(id="y", cmd="flow", source=str(two), rows=4)
        assert affinity_key(job) == affinity_key(twin)

    def test_unreadable_source_gets_a_fallback_key(self):
        job = Job(id="x", cmd="flow", source="/no/such/file.blif", rows=4)
        key = affinity_key(job)
        assert key == ("raw:/no/such/file.blif", 4)

    def test_plan_chains_orders_and_groups(self):
        chains = plan_chains(MIXED)
        assert chains == [[0, 2], [1, 4], [3]]

    def test_chain_zero_holds_submission_index_zero(self):
        # The in-order streaming argument rests on this invariant.
        for jobs in ([MIXED[0]], MIXED, list(reversed(MIXED))):
            assert plan_chains(jobs)[0][0] == 0


class TestParallelByteIdentity:
    @pytest.fixture(scope="class")
    def sequential(self):
        engine = ServeEngine(_config())
        return engine, engine.run(MIXED)

    def test_serve_workers_2_matches_sequential(self, sequential):
        _, expected = sequential
        engine = ServeEngine(_config(), serve_workers=2)
        results = engine.run(MIXED)
        assert _lines(results) == _lines(expected)

    def test_streaming_order_is_submission_order(self, sequential):
        _, expected = sequential
        seen = []
        engine = ServeEngine(_config(), serve_workers=3)
        engine.run(MIXED, on_result=lambda r: seen.append(r.id))
        assert seen == [r.id for r in expected]

    def test_error_lines_identical_across_modes(self):
        jobs = [Job(id="bad", cmd="flow", source="zzz@0.01"),
                Job(id="ok", cmd="ksweep", source="spla@0.01", rows=12,
                    k=(0.0,))]
        seq = ServeEngine(_config()).run(jobs)
        par = ServeEngine(_config(), serve_workers=2).run(jobs)
        assert _lines(par) == _lines(seq)
        assert not par[0].ok and par[1].ok

    def test_parallel_summary_aggregates_chain_counters(self, sequential):
        engine = ServeEngine(_config(), serve_workers=2)
        engine.run(MIXED)
        summary = engine.summary()
        assert summary["jobs"] == len(MIXED)
        assert summary["ok"] == len(MIXED)
        assert summary["serve_workers"] == 2
        cache = summary["cache"]
        # Chain (spla@0.01, rows 12) repeats its netlist/die: the
        # chain-local caches must report hits even though the parent
        # engine's own caches never ran a job.
        assert cache["netlist_hits"] >= 2
        assert cache["layout_hits"] >= 1
        assert cache["route_pool_hits"] >= 1
        # Three affinity chains -> three chain-local route pools.
        assert cache["route_pool_entries"] == 3
        assert len(summary["per_job"]) == len(MIXED)
        assert {e["id"] for e in summary["per_job"]} == \
            {j.id for j in MIXED}

    def test_single_chain_stream_still_works(self):
        jobs = [Job(id="x0", cmd="ksweep", source="spla@0.01", rows=12,
                    k=(0.0,)),
                Job(id="x1", cmd="ksweep", source="spla@0.01", rows=12,
                    k=(0.005,))]
        seq = ServeEngine(_config()).run(jobs)
        par = ServeEngine(_config(), serve_workers=4).run(jobs)
        assert _lines(par) == _lines(seq)
