"""Tests for the ``repro serve`` CLI wiring and shared parent flags."""

import json

import pytest

from repro.cli import build_parser, main

JOBS = """\
# two tiny calibrated jobs
{"id": "a", "cmd": "ksweep", "source": "spla@0.01", "rows": 12, "k": [0.0]}
{"id": "b", "cmd": "flow", "source": "spla@0.01", "rows": 12}
"""


class TestParserInheritance:
    """The shared execution flags come from one parent parser."""

    @pytest.mark.parametrize("command,extra", [
        ("flow", ["spla@0.01"]),
        ("ksweep", ["spla@0.01"]),
        ("ksearch", ["spla@0.01"]),
        ("serve", []),
    ])
    def test_shared_flags_accepted(self, command, extra):
        args = build_parser().parse_args(
            [command] + extra + ["--rows", "9", "--workers", "3",
                                 "--route-engine", "vector",
                                 "--place-engine", "reference",
                                 "--no-route-reuse"])
        assert args.rows == 9
        assert args.workers == 3
        assert args.route_engine == "vector"
        assert args.place_engine == "reference"
        assert args.no_route_reuse is True

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.jobs == "-"
        assert args.output == ""
        assert args.summary == ""
        assert args.workers == 1


class TestServeCommand:
    def test_file_stream_to_output_and_summary(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(JOBS)
        out = tmp_path / "results.jsonl"
        summary = tmp_path / "summary.json"
        rc = main(["serve", str(jobs), "-o", str(out),
                   "--summary", str(summary)])
        assert rc == 0
        lines = out.read_text().splitlines()
        assert [json.loads(line)["id"] for line in lines] == ["a", "b"]
        assert all(json.loads(line)["ok"] for line in lines)
        data = json.loads(summary.read_text())
        assert data["jobs"] == 2
        assert data["ok"] == 2
        assert data["jobs_per_sec"] > 0
        assert "serve: 2/2 jobs ok" in capsys.readouterr().err

    def test_stdin_stream_to_stdout(self, monkeypatch, capsys, tmp_path):
        import io
        import sys as _sys
        monkeypatch.setattr(_sys, "stdin", io.StringIO(JOBS))
        rc = main(["serve"])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert [json.loads(line)["id"] for line in lines] == ["a", "b"]

    def test_malformed_stream_exits_2(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text('{"cmd": "nope", "source": "s"}\n')
        rc = main(["serve", str(jobs)])
        assert rc == 2
        assert "serve:" in capsys.readouterr().err

    def test_failing_job_exits_1_but_streams_all(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            '{"id": "bad", "cmd": "flow", "source": "zzz@0.01"}\n'
            '{"id": "ok", "cmd": "ksweep", "source": "spla@0.01", '
            '"rows": 12, "k": [0.0]}\n')
        out = tmp_path / "results.jsonl"
        rc = main(["serve", str(jobs), "-o", str(out)])
        assert rc == 1
        lines = [json.loads(line) for line in
                 out.read_text().splitlines()]
        assert [line["ok"] for line in lines] == [False, True]

    def test_trace_emission(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(JOBS)
        out = tmp_path / "results.jsonl"
        trace = tmp_path / "trace.jsonl"
        rc = main(["serve", str(jobs), "-o", str(out),
                   "--trace", str(trace)])
        assert rc == 0
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        assert events
        job_spans = [e for e in events if e.get("name") == "job"]
        assert {span["attrs"]["id"] for span in job_spans} == {"a", "b"}
