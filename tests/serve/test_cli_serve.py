"""Tests for the ``repro serve`` CLI wiring and shared parent flags."""

import json

import pytest

from repro.cli import build_parser, main

JOBS = """\
# two tiny calibrated jobs
{"id": "a", "cmd": "ksweep", "source": "spla@0.01", "rows": 12, "k": [0.0]}
{"id": "b", "cmd": "flow", "source": "spla@0.01", "rows": 12}
"""


class TestParserInheritance:
    """The shared execution flags come from one parent parser."""

    @pytest.mark.parametrize("command,extra", [
        ("flow", ["spla@0.01"]),
        ("ksweep", ["spla@0.01"]),
        ("ksearch", ["spla@0.01"]),
        ("serve", []),
    ])
    def test_shared_flags_accepted(self, command, extra):
        args = build_parser().parse_args(
            [command] + extra + ["--rows", "9", "--workers", "3",
                                 "--route-engine", "vector",
                                 "--place-engine", "reference",
                                 "--no-route-reuse"])
        assert args.rows == 9
        assert args.workers == 3
        assert args.route_engine == "vector"
        assert args.place_engine == "reference"
        assert args.no_route_reuse is True

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.jobs == "-"
        assert args.output == ""
        assert args.summary == ""
        assert args.workers == 1


class TestServeCommand:
    def test_file_stream_to_output_and_summary(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(JOBS)
        out = tmp_path / "results.jsonl"
        summary = tmp_path / "summary.json"
        rc = main(["serve", str(jobs), "-o", str(out),
                   "--summary", str(summary)])
        assert rc == 0
        lines = out.read_text().splitlines()
        assert [json.loads(line)["id"] for line in lines] == ["a", "b"]
        assert all(json.loads(line)["ok"] for line in lines)
        data = json.loads(summary.read_text())
        assert data["jobs"] == 2
        assert data["ok"] == 2
        assert data["jobs_per_sec"] > 0
        assert "serve: 2/2 jobs ok" in capsys.readouterr().err

    def test_stdin_stream_to_stdout(self, monkeypatch, capsys, tmp_path):
        import io
        import sys as _sys
        monkeypatch.setattr(_sys, "stdin", io.StringIO(JOBS))
        rc = main(["serve"])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert [json.loads(line)["id"] for line in lines] == ["a", "b"]

    def test_malformed_stream_exits_2(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text('{"cmd": "nope", "source": "s"}\n')
        rc = main(["serve", str(jobs)])
        assert rc == 2
        assert "serve:" in capsys.readouterr().err

    def test_failing_job_exits_1_but_streams_all(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            '{"id": "bad", "cmd": "flow", "source": "zzz@0.01"}\n'
            '{"id": "ok", "cmd": "ksweep", "source": "spla@0.01", '
            '"rows": 12, "k": [0.0]}\n')
        out = tmp_path / "results.jsonl"
        rc = main(["serve", str(jobs), "-o", str(out)])
        assert rc == 1
        lines = [json.loads(line) for line in
                 out.read_text().splitlines()]
        assert [line["ok"] for line in lines] == [False, True]

    def test_trace_emission(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(JOBS)
        out = tmp_path / "results.jsonl"
        trace = tmp_path / "trace.jsonl"
        rc = main(["serve", str(jobs), "-o", str(out),
                   "--trace", str(trace)])
        assert rc == 0
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        assert events
        job_spans = [e for e in events if e.get("name") == "job"]
        assert {span["attrs"]["id"] for span in job_spans} == {"a", "b"}


class TestServeTelemetry:
    """--status-file / --metrics-out / --slow-job-s are side channels:
    they may not change one result byte, and the final heartbeat must
    agree with the summary."""

    JOBS4 = (
        '{"id": "a0", "cmd": "ksweep", "source": "spla@0.01", '
        '"rows": 12, "k": [0.0, 0.005]}\n'
        '{"id": "b0", "cmd": "ksweep", "source": "spla@0.01", '
        '"rows": 13, "k": [0.0]}\n'
        '{"id": "a1", "cmd": "ksweep", "source": "spla@0.01", '
        '"rows": 12, "k": [0.0]}\n'
        '{"id": "b1", "cmd": "ksweep", "source": "spla@0.01", '
        '"rows": 13, "k": [0.005]}\n')

    def _run(self, tmp_path, tag, extra):
        jobs = tmp_path / "jobs.jsonl"
        if not jobs.exists():
            jobs.write_text(self.JOBS4)
        out = tmp_path / f"results_{tag}.jsonl"
        rc = main(["serve", str(jobs), "-o", str(out)] + extra)
        assert rc == 0
        return out.read_bytes()

    @pytest.mark.parametrize("serve_workers", ["1", "4"])
    def test_result_bytes_unchanged_by_telemetry(self, tmp_path,
                                                 serve_workers):
        plain = self._run(tmp_path, f"plain{serve_workers}",
                          ["--serve-workers", serve_workers])
        status = tmp_path / f"status{serve_workers}.json"
        metrics = tmp_path / f"metrics{serve_workers}.prom"
        instrumented = self._run(
            tmp_path, f"obs{serve_workers}",
            ["--serve-workers", serve_workers,
             "--status-file", str(status),
             "--metrics-out", str(metrics),
             "--slow-job-s", "0.000001"])
        assert instrumented == plain
        assert status.exists() and metrics.exists()

    def test_final_heartbeat_matches_summary(self, tmp_path):
        status = tmp_path / "status.json"
        summary_path = tmp_path / "summary.json"
        self._run(tmp_path, "hb",
                  ["--status-file", str(status),
                   "--summary", str(summary_path),
                   "--slow-job-s", "0.000001"])
        heartbeat = json.loads(status.read_text())
        summary = json.loads(summary_path.read_text())
        assert heartbeat["state"] == "done"
        assert heartbeat["jobs_done"] == summary["jobs"] == 4
        assert heartbeat["ok"] == summary["ok"] == 4
        assert heartbeat["failed"] == summary["jobs"] - summary["ok"]
        assert heartbeat["slow_jobs"] == summary["slow_jobs"] == 4
        assert heartbeat["jobs_total"] == 4
        assert heartbeat["cache"] == summary["cache"]
        hist = heartbeat["instruments"]["serve.job_seconds"]
        assert hist["kind"] == "hist" and hist["count"] == 4

    def test_metrics_out_renders_prometheus_and_json(self, tmp_path):
        from repro.obs import parse_prometheus
        metrics = tmp_path / "metrics.prom"
        self._run(tmp_path, "prom", ["--metrics-out", str(metrics)])
        parsed = parse_prometheus(metrics.read_text())
        job_seconds = parsed["repro_serve_job_seconds"]
        assert job_seconds["type"] == "histogram"
        assert job_seconds["samples"]["repro_serve_job_seconds_count"] == 4
        assert parsed["repro_serve_jobs_done"]["samples"][
            "repro_serve_jobs_done"] == 4
        doc = json.loads((tmp_path / "metrics.prom.json").read_text())
        assert doc["counters"]["serve.jobs_done"] == 4
        assert doc["instruments"]["serve.job_seconds"]["count"] == 4

    def test_follow_subcommand_drains_results(self, tmp_path, capsys):
        self._run(tmp_path, "follow", [])
        results = tmp_path / "results_follow.jsonl"
        rc = main(["follow", str(results), "--timeout", "0.2",
                   "--poll", "0.02"])
        captured = capsys.readouterr()
        assert rc == 1  # results stream has no end marker: timeout
        ids = [json.loads(line)["id"]
               for line in captured.out.splitlines()]
        assert ids == ["a0", "b0", "a1", "b1"]
        assert "(timeout)" in captured.err

    def test_follow_subcommand_ends_on_final_heartbeat(self, tmp_path,
                                                       capsys):
        status = tmp_path / "status.json"
        self._run(tmp_path, "hb2", ["--status-file", str(status)])
        rc = main(["follow", str(status), "--timeout", "5"])
        captured = capsys.readouterr()
        assert rc == 0
        assert json.loads(captured.out.splitlines()[-1])["state"] == "done"
        assert "(end)" in captured.err

    def test_follow_count_flag(self, tmp_path, capsys):
        self._run(tmp_path, "cnt", [])
        results = tmp_path / "results_cnt.jsonl"
        rc = main(["follow", str(results), "--timeout", "5",
                   "--count", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert len(captured.out.splitlines()) == 2
