"""Tests for the persistent on-disk cache tier.

Covers the unit contract (guards skip, never fail), the session-level
round trip (a cold engine byte-identically reuses a warm engine's disk
cache), and the failure modes the ISSUE names: corrupted and
version-mismatched entries are skipped, not fatal.
"""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.core import FlowConfig
from repro.library import CORELIB018
from repro.serve import (
    CacheBounds,
    Job,
    PersistentCache,
    ServeEngine,
    cache_fingerprint,
)
from repro.serve.persist import CACHE_FORMAT

JOBS = [Job(id="a", cmd="ksweep", source="spla@0.01", rows=12,
            k=(0.0, 0.005)),
        Job(id="b", cmd="flow", source="spla@0.01", rows=12)]


def _config():
    return FlowConfig(library=CORELIB018)


def _lines(results):
    return [r.to_json() for r in results]


class TestPersistentCacheUnit:
    def test_round_trip(self, tmp_path):
        cache = PersistentCache(str(tmp_path), "fp")
        assert cache.load("layout", ("k", 1)) is None
        assert cache.store("layout", ("k", 1), {"x": [1, 2, 3]})
        assert cache.load("layout", ("k", 1)) == {"x": [1, 2, 3]}
        assert cache.counters() == {"persist_hits": 1, "persist_misses": 1,
                                    "persist_skipped": 0,
                                    "persist_writes": 1}

    def test_kinds_do_not_alias(self, tmp_path):
        cache = PersistentCache(str(tmp_path), "fp")
        cache.store("layout", "k", "L")
        assert cache.load("route", "k") is None

    def test_fingerprint_mismatch_skipped(self, tmp_path):
        PersistentCache(str(tmp_path), "fp-old").store("layout", "k", "v")
        cache = PersistentCache(str(tmp_path), "fp-new")
        assert cache.load("layout", "k") is None
        assert cache.counters()["persist_skipped"] == 1

    def test_format_version_mismatch_skipped(self, tmp_path):
        cache = PersistentCache(str(tmp_path), "fp")
        cache.store("layout", "k", "v")
        path = cache._path("layout", "k")
        with open(path, "rb") as handle:
            entry = pickle.load(handle)
        entry["format"] = CACHE_FORMAT + 1
        with open(path, "wb") as handle:
            pickle.dump(entry, handle)
        assert cache.load("layout", "k") is None
        assert cache.counters()["persist_skipped"] == 1

    def test_key_echo_guards_renamed_files(self, tmp_path):
        cache = PersistentCache(str(tmp_path), "fp")
        cache.store("layout", "honest", "v")
        os.rename(cache._path("layout", "honest"),
                  cache._path("layout", "imposter"))
        assert cache.load("layout", "imposter") is None
        assert cache.counters()["persist_skipped"] == 1

    def test_corrupt_file_skipped_not_fatal(self, tmp_path):
        cache = PersistentCache(str(tmp_path), "fp")
        cache.store("layout", "k", "v")
        with open(cache._path("layout", "k"), "wb") as handle:
            handle.write(b"\x80garbage")
        assert cache.load("layout", "k") is None
        assert cache.counters()["persist_skipped"] == 1
        # Overwriting repairs the entry.
        cache.store("layout", "k", "v2")
        assert cache.load("layout", "k") == "v2"

    def test_unpicklable_payload_reports_false(self, tmp_path):
        cache = PersistentCache(str(tmp_path), "fp")
        assert cache.store("layout", "k", lambda: None) is False
        assert cache.counters()["persist_writes"] == 0
        assert not [name for name in os.listdir(tmp_path)
                    if not name.startswith(".")]

    def test_fingerprint_covers_library_content(self):
        assert cache_fingerprint(CORELIB018) == \
            cache_fingerprint(CORELIB018)
        assert cache_fingerprint(CORELIB018).startswith("sha256:")


class TestSessionRoundTrip:
    @pytest.fixture(scope="class")
    def warm_dir(self, tmp_path_factory):
        """A cache dir populated by a warm engine, plus its results."""
        cache_dir = str(tmp_path_factory.mktemp("serve-cache"))
        engine = ServeEngine(_config(), cache_dir=cache_dir)
        results = engine.run(JOBS)
        return cache_dir, _lines(results), engine.cache_counters()

    def test_warm_engine_writes_entries(self, warm_dir):
        cache_dir, _, counters = warm_dir
        assert counters["persist_writes"] > 0
        assert [name for name in os.listdir(cache_dir)
                if name.startswith("layout-")]
        assert [name for name in os.listdir(cache_dir)
                if name.startswith("route-")]

    def test_cold_engine_reuses_disk_byte_identically(self, warm_dir):
        cache_dir, expected, _ = warm_dir
        cold = ServeEngine(_config(), cache_dir=cache_dir)
        results = cold.run(JOBS)
        assert _lines(results) == expected
        counters = cold.cache_counters()
        assert counters["persist_hits"] > 0
        # The layout was adopted from disk: no recompute, so the disk
        # tier skipped exactly the placement the warm engine paid for.
        assert counters["layout_misses"] > 0

    def test_corrupted_dir_degrades_to_cold(self, warm_dir):
        cache_dir, expected, _ = warm_dir
        broken = str(warm_dir[0]) + "-broken"
        os.makedirs(broken, exist_ok=True)
        for name in os.listdir(cache_dir):
            with open(os.path.join(cache_dir, name), "rb") as handle:
                data = handle.read()
            with open(os.path.join(broken, name), "wb") as handle:
                handle.write(data[: len(data) // 2])  # truncate all
        engine = ServeEngine(_config(), cache_dir=broken)
        results = engine.run(JOBS)
        assert _lines(results) == expected
        counters = engine.cache_counters()
        assert counters["persist_skipped"] > 0
        assert all(r.ok for r in results)

    def test_eviction_composes_with_disk(self, warm_dir):
        cache_dir, expected, _ = warm_dir
        engine = ServeEngine(_config(), cache_dir=cache_dir,
                             bounds=CacheBounds(max_entries=1))
        results = engine.run(JOBS + JOBS)
        assert _lines(results[: len(JOBS)]) == expected
        counters = engine.cache_counters()
        assert counters["persist_hits"] > 0


class TestProcessColdStart:
    def test_killed_process_leaves_reusable_cache(self, tmp_path):
        """Warm process -> exit -> cold process reuses the disk cache."""
        jobs_path = tmp_path / "jobs.jsonl"
        jobs_path.write_text(
            '{"id": "a", "cmd": "ksweep", "source": "spla@0.01", '
            '"rows": 12, "k": [0.0]}\n')
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def run(out_name, summary_name):
            argv = [sys.executable, "-m", "repro.cli", "serve",
                    str(jobs_path), "-o", str(tmp_path / out_name),
                    "--cache-dir", str(cache_dir),
                    "--summary", str(tmp_path / summary_name)]
            proc = subprocess.run(argv, env=env, capture_output=True,
                                  text=True)
            assert proc.returncode == 0, proc.stderr
            return ((tmp_path / out_name).read_text(),
                    json.loads((tmp_path / summary_name).read_text()))

        warm_out, warm_summary = run("warm.out", "warm.json")
        cold_out, cold_summary = run("cold.out", "cold.json")
        assert cold_out == warm_out
        assert warm_summary["cache"]["persist_writes"] > 0
        assert cold_summary["cache"]["persist_hits"] > 0
        assert cold_summary["cache"]["persist_skipped"] == 0
