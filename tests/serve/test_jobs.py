"""Tests for the serve job/result model (JSONL parsing + validation)."""

import json

import pytest

from repro.serve import Job, JobError, JobResult, parse_job, parse_jobs


class TestParseJob:
    def test_minimal(self):
        job = parse_job({"cmd": "flow", "source": "spla@0.01"}, index=3)
        assert job.id == "job3"
        assert job.cmd == "flow"
        assert job.rows == 0
        assert job.k is None
        assert job.workers is None

    def test_full(self):
        job = parse_job({"id": "a", "cmd": "ksearch", "source": "x.blif",
                         "rows": 20, "k": [0.0, 0.5], "tolerance": 6,
                         "strategy": "portfolio", "workers": 4})
        assert job.k == (0.0, 0.5)
        assert job.strategy == "portfolio"
        assert job.workers == 4

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown fields"):
            parse_job({"cmd": "flow", "source": "s", "roes": 5})

    def test_bad_cmd(self):
        with pytest.raises(JobError, match="cmd must be one of"):
            parse_job({"cmd": "sweep", "source": "s"})

    def test_missing_source(self):
        with pytest.raises(JobError, match="missing source"):
            parse_job({"cmd": "flow"})

    def test_bad_rows(self):
        with pytest.raises(JobError, match="rows"):
            parse_job({"cmd": "flow", "source": "s", "rows": -1})

    def test_bad_k(self):
        with pytest.raises(JobError, match="k must be"):
            parse_job({"cmd": "flow", "source": "s", "k": "0.5"})
        with pytest.raises(JobError, match="non-empty"):
            parse_job({"cmd": "flow", "source": "s", "k": []})

    def test_bad_workers(self):
        with pytest.raises(JobError, match="workers"):
            parse_job({"cmd": "flow", "source": "s", "workers": 0})

    def test_not_an_object(self):
        with pytest.raises(JobError, match="expected a JSON object"):
            parse_job([1, 2], index=1)

    def test_roundtrip(self):
        job = parse_job({"id": "r", "cmd": "ksweep", "source": "s",
                         "rows": 12, "k": [0.0, 0.005]})
        again = parse_job(json.loads(job.to_json()))
        assert again == job


class TestParseJobs:
    def test_stream_with_comments_and_blanks(self):
        jobs = parse_jobs([
            "# a comment",
            "",
            '{"id": "a", "cmd": "flow", "source": "s"}',
            '  {"id": "b", "cmd": "ksweep", "source": "s"}  ',
        ])
        assert [j.id for j in jobs] == ["a", "b"]

    def test_invalid_json_names_line(self):
        with pytest.raises(JobError, match="line 2"):
            parse_jobs(['{"id": "a", "cmd": "flow", "source": "s"}',
                        "{not json}"])

    def test_duplicate_id_rejected(self):
        with pytest.raises(JobError, match="duplicate job id"):
            parse_jobs(['{"id": "a", "cmd": "flow", "source": "s"}',
                        '{"id": "a", "cmd": "flow", "source": "s"}'])

    def test_auto_ids_count_jobs_not_lines(self):
        jobs = parse_jobs(["# skip", '{"cmd": "flow", "source": "s"}',
                           "", '{"cmd": "flow", "source": "t"}'])
        assert [j.id for j in jobs] == ["job1", "job2"]


class TestJobResult:
    def test_json_line_is_sorted_and_stable(self):
        result = JobResult(id="a", cmd="flow", source="s", ok=True,
                           verdict="converged", chosen_k=0.5,
                           rows=[(0.5, 10.0, 3, 50.0, 0)])
        line = result.to_json()
        data = json.loads(line)
        assert list(data) == sorted(data)
        assert data["rows"] == [[0.5, 10.0, 3, 50.0, 0]]
        assert "error" not in data

    def test_error_field_only_when_set(self):
        result = JobResult(id="a", cmd="flow", source="s", ok=False,
                           verdict="error", error="boom")
        assert json.loads(result.to_json())["error"] == "boom"
