"""Tests for the live-status plumbing: atomic heartbeats and follow."""

import json
import os
import threading
import time

from repro.serve import (
    STATUS_SCHEMA_VERSION,
    StatusWriter,
    follow,
    is_end_marker,
    write_atomic_json,
)


def _doc(jobs_done, state="running", **extra):
    doc = {"schema_version": STATUS_SCHEMA_VERSION, "event": "status",
           "state": state, "jobs_done": jobs_done}
    doc.update(extra)
    return doc


class TestAtomicWrites:
    def test_write_is_one_complete_json_line(self, tmp_path):
        path = tmp_path / "sub" / "status.json"
        write_atomic_json(str(path), _doc(1))
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["jobs_done"] == 1

    def test_replacement_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "status.json"
        for i in range(5):
            write_atomic_json(str(path), _doc(i))
        assert os.listdir(tmp_path) == ["status.json"]
        assert json.loads(path.read_text())["jobs_done"] == 4


class TestStatusWriter:
    def test_every_jobs_throttle(self, tmp_path):
        writer = StatusWriter(str(tmp_path / "s.json"), every_jobs=3)
        wrote = [writer.update(_doc(i)) for i in range(10)]
        # first write, then every 3rd finished job
        assert wrote == [True, False, False, True, False, False, True,
                         False, False, True]
        assert writer.writes == 4

    def test_force_always_writes(self, tmp_path):
        writer = StatusWriter(str(tmp_path / "s.json"), every_jobs=100)
        assert writer.update(_doc(0))
        assert not writer.update(_doc(1))
        assert writer.update(_doc(1, state="done"), force=True)
        assert json.loads((tmp_path / "s.json").read_text())["state"] == \
            "done"

    def test_elapsed_seconds_throttle(self, tmp_path):
        writer = StatusWriter(str(tmp_path / "s.json"), every_jobs=100,
                              every_s=0.05)
        assert writer.update(_doc(0))
        assert not writer.update(_doc(0))
        time.sleep(0.06)
        assert writer.update(_doc(0))

    def test_on_write_hook_fires_per_actual_write(self, tmp_path):
        seen = []
        writer = StatusWriter(str(tmp_path / "s.json"), every_jobs=2)
        writer.on_write = lambda doc: seen.append(doc["jobs_done"])
        for i in range(4):
            writer.update(_doc(i))
        assert seen == [0, 2]


class TestEndMarker:
    def test_done_state_and_end_event(self):
        assert is_end_marker(json.dumps(_doc(3, state="done")))
        assert is_end_marker('{"event": "end"}')
        assert not is_end_marker(json.dumps(_doc(3)))
        assert not is_end_marker("not json at all")
        assert not is_end_marker('["state", "done"]')


class TestFollow:
    def test_drains_existing_file_then_times_out(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"id": "a"}\n{"id": "b"}\n')
        lines = []
        delivered, reason = follow(str(path), lines.append,
                                   timeout_s=0.2, poll_s=0.02)
        assert (delivered, reason) == (2, "timeout")
        assert [json.loads(line)["id"] for line in lines] == ["a", "b"]

    def test_terminates_on_end_marker(self, tmp_path):
        path = tmp_path / "status.json"
        write_atomic_json(str(path), _doc(5, state="done"))
        delivered, reason = follow(str(path), lambda line: None,
                                   timeout_s=5.0, poll_s=0.02)
        assert (delivered, reason) == (1, "end")

    def test_terminates_on_count(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"id": "a"}\n{"id": "b"}\n{"id": "c"}\n')
        delivered, reason = follow(str(path), lambda line: None,
                                   timeout_s=5.0, poll_s=0.02, count=2)
        assert (delivered, reason) == (2, "count")

    def test_sees_growth_and_atomic_replacement(self, tmp_path):
        """A writer thread appends, then atomically replaces: the
        follower must deliver every complete line and stop on the
        final done heartbeat (new inode via os.replace)."""
        path = tmp_path / "stream.jsonl"

        def writer():
            with open(path, "a") as handle:
                for i in range(3):
                    handle.write(json.dumps({"id": i}) + "\n")
                    handle.flush()
                    time.sleep(0.03)
            time.sleep(0.03)
            write_atomic_json(str(path), _doc(3, state="done"))

        lines = []
        thread = threading.Thread(target=writer)
        thread.start()
        try:
            delivered, reason = follow(str(path), lines.append,
                                       timeout_s=5.0, poll_s=0.01)
        finally:
            thread.join()
        assert reason == "end"
        assert json.loads(lines[-1])["state"] == "done"

    def test_missing_file_times_out(self, tmp_path):
        delivered, reason = follow(str(tmp_path / "never.jsonl"),
                                   lambda line: None,
                                   timeout_s=0.1, poll_s=0.02)
        assert (delivered, reason) == (0, "timeout")

    def test_unterminated_final_line_flushes_at_timeout(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"id": "a"}\n{"id": "tail"}')  # no newline
        lines = []
        delivered, reason = follow(str(path), lines.append,
                                   timeout_s=0.2, poll_s=0.02)
        assert delivered == 2
        assert json.loads(lines[-1])["id"] == "tail"
