"""Tests for cache lifecycle: LRU bounds, eviction arithmetic, sizing.

The fast tests drive the cheap ``route_pool`` family (a miss allocates
an empty :class:`RouteCache` — no placement or routing) and the
white-box ``_put`` path with synthetic numpy payloads, so a 100-access
mixed stream runs in milliseconds; one engine-level test then checks
that bounded caches change nothing but the wall clock.
"""

import numpy as np
import pytest

from repro.core import FlowConfig
from repro.library import CORELIB018
from repro.place import Floorplan
from repro.serve import CacheBounds, Job, ServeEngine, SessionCaches
from repro.serve.caches import approx_nbytes


def _mixed_keys(n):
    """A 100-job-style mixed stream of (netlist, die) route-pool keys.

    Cycles 10 netlists over 3 dies with a skewed revisit pattern, so
    the stream has genuine hits, misses and re-misses after eviction.
    """
    keys = []
    for i in range(n):
        net = f"bench:n{i % 10}@0.01"
        rows = 12 + (i % 3)
        keys.append((net, Floorplan.from_rows(rows)))
        if i % 4 == 0:  # revisit the hottest key
            keys.append(("bench:n0@0.01", Floorplan.from_rows(12)))
    return keys


class TestEntryBounds:
    def test_100_job_mixed_stream_respects_entry_bound(self):
        bounds = CacheBounds(max_entries=8)
        caches = SessionCaches(CORELIB018, bounds=bounds)
        keys = _mixed_keys(100)
        for net, floorplan in keys:
            caches.route_pool(net, floorplan)
            assert len(caches.route_pool_keys) <= 8
        counters = caches.counters()
        accesses = len(keys)
        # hits + misses == accesses; inserts == misses; whatever was
        # inserted is either still resident or was evicted.
        assert counters["route_pool_hits"] + \
            counters["route_pool_misses"] == accesses
        assert counters["route_pool_misses"] == \
            counters["route_pool_entries"] + \
            counters["route_pool_evictions"]
        assert counters["route_pool_evictions"] > 0
        assert counters["evictions"] == counters["route_pool_evictions"]

    def test_unbounded_never_evicts(self):
        caches = SessionCaches(CORELIB018)
        for net, floorplan in _mixed_keys(100):
            caches.route_pool(net, floorplan)
        assert caches.counters()["evictions"] == 0

    def test_lru_evicts_least_recently_used(self):
        caches = SessionCaches(CORELIB018, bounds=CacheBounds(max_entries=2))
        f = Floorplan.from_rows(12)
        caches.route_pool("bench:a@1", f)
        caches.route_pool("bench:b@1", f)
        caches.route_pool("bench:a@1", f)     # refresh a
        caches.route_pool("bench:c@1", f)     # must evict b, not a
        keys = {net for net, _die in caches.route_pool_keys}
        assert keys == {"bench:a@1", "bench:c@1"}


class TestByteBounds:
    def test_byte_bound_evicts_globally_oldest(self):
        bounds = CacheBounds(max_bytes=64 * 1024)
        caches = SessionCaches(CORELIB018, bounds=bounds)
        for i in range(20):
            caches._put("layout", f"k{i}", np.zeros(4096))  # ~32 KiB each
            assert caches.cache_bytes() <= bounds.max_bytes
        counters = caches.counters()
        assert counters["layout_evictions"] == 20 - \
            counters["layout_entries"]
        # The survivors are exactly the most recent insertions.
        survivors = set(caches._families["layout"])
        assert survivors == {f"k{19 - i}" for i in range(len(survivors))}
        assert survivors

    def test_byte_bound_spans_families(self):
        caches = SessionCaches(CORELIB018,
                               bounds=CacheBounds(max_bytes=64 * 1024))
        caches._put("layout", "old", np.zeros(4096))
        caches._put("matcher", "new", np.zeros(4096))
        caches._put("route_pool", "newer", np.zeros(4096))
        # 96 KiB total: the globally oldest entry goes first.
        assert "old" not in caches._families["layout"]
        assert caches.counters()["layout_evictions"] == 1

    def test_counters_report_cache_bytes(self):
        caches = SessionCaches(CORELIB018)
        assert caches.counters()["cache_bytes"] == 0
        caches._put("layout", "k", np.zeros(1024))
        assert caches.counters()["cache_bytes"] >= 8192

    def test_stats_kinds(self):
        caches = SessionCaches(CORELIB018,
                               bounds=CacheBounds(max_entries=1))
        caches._put("layout", "a", np.zeros(8))
        caches._put("layout", "b", np.zeros(8))
        stats = caches.stats()
        assert stats["serve.evictions"] == 1
        assert stats.kind("serve.evictions") == "work"
        assert stats.kind("serve.cache_bytes") == "gauge"
        assert stats["serve.cache_bytes"] > 0


class TestApproxNbytes:
    def test_arrays_dominate(self):
        small = approx_nbytes({"x": 1})
        big = approx_nbytes({"x": np.zeros(100_000)})
        assert big - small >= 800_000

    def test_shared_objects_counted_once_per_entry(self):
        arr = np.zeros(10_000)
        assert approx_nbytes([arr, arr]) < 2 * approx_nbytes([arr])

    def test_library_is_opaque(self):
        assert approx_nbytes(CORELIB018) < 1024

    def test_deterministic(self):
        value = {"a": [np.arange(64), (1, 2.5, "s")], "b": {3, 4}}
        assert approx_nbytes(value) == approx_nbytes(value)


class TestEngineWithBounds:
    #: Three tiny calibrated jobs over two dies.
    JOBS = [Job(id="a", cmd="ksweep", source="spla@0.01", rows=12,
                k=(0.0,)),
            Job(id="b", cmd="ksweep", source="spla@0.01", rows=13,
                k=(0.0,)),
            Job(id="c", cmd="ksweep", source="spla@0.01", rows=12,
                k=(0.005,))]

    @pytest.fixture(scope="class")
    def unbounded(self):
        return ServeEngine(FlowConfig(library=CORELIB018)).run(self.JOBS)

    def test_eviction_changes_nothing_but_work(self, unbounded):
        engine = ServeEngine(FlowConfig(library=CORELIB018),
                             bounds=CacheBounds(max_entries=1))
        results = engine.run(self.JOBS)
        assert [r.to_json() for r in results] == \
            [r.to_json() for r in unbounded]
        counters = engine.cache_counters()
        assert counters["evictions"] > 0
        for family in ("netlist", "layout", "matcher", "route_pool"):
            assert counters[f"{family}_entries"] <= 1
        summary = engine.summary()
        assert summary["cache"]["evictions"] == counters["evictions"]
