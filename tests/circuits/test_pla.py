"""Tests for the PLA type and .pla format."""

import pytest

from repro.circuits import Pla, dump_pla, parse_pla
from repro.errors import ParseError
from repro.network import exhaustive_stimulus, simulate_boolnet


@pytest.fixture
def xor_pla():
    pla = Pla(name="xor", inputs=["a", "b"], outputs=["y"])
    pla.add_product("10", "1")
    pla.add_product("01", "1")
    return pla


class TestPlaType:
    def test_validation_width(self, xor_pla):
        with pytest.raises(ParseError):
            xor_pla.add_product("1", "1")
        with pytest.raises(ParseError):
            xor_pla.add_product("10", "11")

    def test_validation_chars(self, xor_pla):
        with pytest.raises(ParseError):
            xor_pla.add_product("1x", "1")
        with pytest.raises(ParseError):
            xor_pla.add_product("10", "-")

    def test_counts(self, xor_pla):
        assert xor_pla.num_products() == 2
        assert xor_pla.product_sharing() == pytest.approx(1.0)

    def test_to_network_function(self, xor_pla):
        net = xor_pla.to_network()
        out = simulate_boolnet(net, exhaustive_stimulus(2))
        assert int(out["y"][0]) & 0b1111 == 0b0110  # XOR truth table

    def test_dont_care_input(self):
        pla = Pla(name="t", inputs=["a", "b"], outputs=["y"])
        pla.add_product("1-", "1")
        net = pla.to_network()
        out = simulate_boolnet(net, exhaustive_stimulus(2))
        assert int(out["y"][0]) & 0b1111 == 0b1010  # y == a

    def test_output_sharing(self):
        pla = Pla(name="t", inputs=["a"], outputs=["y", "z"])
        pla.add_product("1", "11")
        assert pla.product_sharing() == pytest.approx(2.0)


class TestFormat:
    def test_roundtrip(self, xor_pla):
        text = dump_pla(xor_pla)
        back = parse_pla(text, name="xor")
        assert back.inputs == xor_pla.inputs
        assert back.outputs == xor_pla.outputs
        assert back.products == xor_pla.products

    def test_parse_minimal(self):
        pla = parse_pla(".i 2\n.o 1\n10 1\n01 1\n.e\n")
        assert pla.inputs == ["i0", "i1"]
        assert pla.num_products() == 2

    def test_parse_with_names(self):
        pla = parse_pla(".i 1\n.o 1\n.ilb x\n.ob f\n1 1\n.e\n")
        assert pla.inputs == ["x"]
        assert pla.outputs == ["f"]

    def test_comments_ignored(self):
        pla = parse_pla("# header\n.i 1\n.o 1\n1 1  # row\n.e\n")
        assert pla.num_products() == 1

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError):
            parse_pla("10 1\n")

    def test_name_list_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_pla(".i 2\n.o 1\n.ilb x\n10 1\n.e\n")

    def test_joined_row_format(self):
        pla = parse_pla(".i 2\n.o 1\n101\n.e\n")
        assert pla.products == [("10", "1")]
