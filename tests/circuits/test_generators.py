"""Tests for the synthetic circuit generators."""

import pytest

from repro.circuits import random_logic_network, random_pla
from repro.network import decompose


class TestRandomPla:
    def test_deterministic_in_seed(self):
        a = random_pla("t", 8, 4, 20, seed=3)
        b = random_pla("t", 8, 4, 20, seed=3)
        assert a.products == b.products

    def test_seeds_differ(self):
        a = random_pla("t", 8, 4, 20, seed=3)
        b = random_pla("t", 8, 4, 20, seed=4)
        assert a.products != b.products

    def test_every_output_covered(self):
        pla = random_pla("t", 8, 6, 10, outputs_per_product=(1, 1), seed=9)
        for o in range(6):
            assert any(out[o] == "1" for _, out in pla.products)

    def test_literal_bounds(self):
        pla = random_pla("t", 12, 4, 30, literals=(3, 5), seed=1)
        for inp, _ in pla.products:
            width = sum(1 for c in inp if c != "-")
            assert 3 <= width <= 5

    def test_sharing_bounds(self):
        pla = random_pla("t", 8, 6, 30, outputs_per_product=(2, 3), seed=1)
        for _, out in pla.products:
            assert 2 <= out.count("1") <= 3

    def test_grouping_restricts_outputs(self):
        pla = random_pla("t", 12, 8, 40, outputs_per_product=(1, 2),
                         groups=4, input_window=6, seed=2)
        # Products of group g only feed outputs 2g..2g+1.
        for p, (inp, out) in enumerate(pla.products):
            g = p % 4
            allowed = {2 * g, 2 * g + 1}
            used = {i for i, c in enumerate(out) if c == "1"}
            assert used <= allowed

    def test_grouping_restricts_inputs(self):
        pla = random_pla("t", 12, 8, 40, groups=4, input_window=5,
                         literals=(2, 4), seed=2)
        for p, (inp, _) in enumerate(pla.products):
            g = p % 4
            start = round(g * 12 / 4) % 12
            window = {(start + j) % 12 for j in range(5)}
            used = {i for i, c in enumerate(inp) if c != "-"}
            assert used <= window

    def test_flat_pla_uses_all_inputs(self):
        pla = random_pla("t", 8, 4, 60, groups=1, seed=1)
        used = set()
        for inp, _ in pla.products:
            used |= {i for i, c in enumerate(inp) if c != "-"}
        assert len(used) == 8


class TestRandomLogicNetwork:
    def test_deterministic(self):
        a = random_logic_network("t", 8, 20, 4, seed=5)
        b = random_logic_network("t", 8, 20, 4, seed=5)
        assert {n: node.sop for n, node in a.nodes.items()} == \
            {n: node.sop for n, node in b.nodes.items()}

    def test_valid_network(self):
        net = random_logic_network("t", 8, 30, 6, seed=5)
        net.check()
        base = decompose(net)
        base.check()

    def test_outputs_exist(self):
        net = random_logic_network("t", 8, 30, 6, seed=5)
        assert 1 <= len(net.outputs) <= 6

    def test_locality_bounds_fanin_reach(self):
        net = random_logic_network("t", 4, 40, 4, locality=6, seed=7)
        order = ["i0", "i1", "i2", "i3"] + [f"g{j}" for j in range(40)]
        index = {name: i for i, name in enumerate(order)}
        for name, node in net.nodes.items():
            for fanin in node.fanin_names:
                assert index[name] - index[fanin] <= 6 + 4
