"""Functional tests for the arithmetic circuit constructors."""

import numpy as np
import pytest

from repro.circuits import (
    array_multiplier,
    comparator,
    mux_tree,
    ripple_carry_adder,
)
from repro.errors import NetworkError
from repro.network import exhaustive_stimulus, simulate_boolnet


def unpack_bits(word, count):
    return [(int(word) >> i) & 1 for i in range(count)]


class TestAdder:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_adds_correctly(self, width):
        net = ripple_carry_adder(width)
        stim = exhaustive_stimulus(len(net.inputs))
        out = simulate_boolnet(net, stim)
        vectors = 1 << len(net.inputs)
        order = net.inputs  # a0..a{n-1}, b0.., cin
        for vec in range(vectors):
            word, bit = divmod(vec, 64)
            env = {}
            for row, name in enumerate(order):
                env[name] = (int(stim[row, word]) >> bit) & 1
            a = sum(env[f"a{k}"] << k for k in range(width))
            b = sum(env[f"b{k}"] << k for k in range(width))
            total = a + b + env["cin"]
            got = sum(((int(out[f"s{k}"][word]) >> bit) & 1) << k
                      for k in range(width))
            got += ((int(out[f"c{width-1}"][word]) >> bit) & 1) << width
            assert got == total, f"a={a} b={b} cin={env['cin']}"

    def test_zero_width_rejected(self):
        with pytest.raises(NetworkError):
            ripple_carry_adder(0)


class TestMultiplier:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_multiplies_correctly(self, width):
        net = array_multiplier(width)
        stim = exhaustive_stimulus(len(net.inputs))
        out = simulate_boolnet(net, stim)
        vectors = 1 << len(net.inputs)
        for vec in range(vectors):
            word, bit = divmod(vec, 64)
            env = {name: (int(stim[row, word]) >> bit) & 1
                   for row, name in enumerate(net.inputs)}
            a = sum(env[f"a{k}"] << k for k in range(width))
            b = sum(env[f"b{k}"] << k for k in range(width))
            got = sum(((int(out[f"m{k}"][word]) >> bit) & 1) << k
                      for k in range(2 * width))
            assert got == a * b, f"{a} * {b}"


class TestComparator:
    @pytest.mark.parametrize("width", [1, 3])
    def test_compares_correctly(self, width):
        net = comparator(width)
        stim = exhaustive_stimulus(len(net.inputs))
        out = simulate_boolnet(net, stim)
        vectors = 1 << len(net.inputs)
        for vec in range(vectors):
            word, bit = divmod(vec, 64)
            env = {name: (int(stim[row, word]) >> bit) & 1
                   for row, name in enumerate(net.inputs)}
            a = sum(env[f"a{k}"] << k for k in range(width))
            b = sum(env[f"b{k}"] << k for k in range(width))
            eq = (int(out["eq"][word]) >> bit) & 1
            gt = (int(out["gt"][word]) >> bit) & 1
            assert eq == (a == b)
            assert gt == (a > b)


class TestMux:
    @pytest.mark.parametrize("bits", [1, 2])
    def test_selects_correctly(self, bits):
        net = mux_tree(bits)
        stim = exhaustive_stimulus(len(net.inputs))
        out = simulate_boolnet(net, stim)
        vectors = 1 << len(net.inputs)
        for vec in range(vectors):
            word, bit = divmod(vec, 64)
            env = {name: (int(stim[row, word]) >> bit) & 1
                   for row, name in enumerate(net.inputs)}
            sel = sum(env[f"s{k}"] << k for k in range(bits))
            expected = env[f"d{sel}"]
            got = (int(out["y"][word]) >> bit) & 1
            assert got == expected
