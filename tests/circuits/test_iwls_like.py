"""Tests for the IWLS93-like benchmark stand-ins."""

import pytest

from repro.circuits import (
    PDC_PROFILE,
    SPLA_PROFILE,
    TOO_LARGE_PROFILE,
    benchmark,
    pdc_like,
    spla_like,
    too_large_like,
)
from repro.network import decompose


class TestProfiles:
    def test_paper_gate_targets_recorded(self):
        assert SPLA_PROFILE.paper_base_gates == 22_834
        assert PDC_PROFILE.paper_base_gates == 23_058
        assert TOO_LARGE_PROFILE.paper_base_gates == 27_977

    @pytest.mark.parametrize("gen,profile", [
        (spla_like, SPLA_PROFILE),
        (pdc_like, PDC_PROFILE),
        (too_large_like, TOO_LARGE_PROFILE),
    ])
    def test_default_scale_size(self, gen, profile):
        """At scale 1/8 the decomposed gate count lands near 1/8 target."""
        base = decompose(gen(0.125))
        target = profile.paper_base_gates * 0.125
        assert 0.4 * target <= base.num_gates() <= 1.6 * target

    def test_deterministic(self):
        a = decompose(spla_like(0.05))
        b = decompose(spla_like(0.05))
        assert a.stats() == b.stats()

    def test_scale_grows_circuit(self):
        small = decompose(spla_like(0.05)).num_gates()
        large = decompose(spla_like(0.2)).num_gates()
        assert large > 2 * small

    def test_input_counts_match_paper(self):
        assert len(spla_like(0.125).inputs) == 16
        assert len(pdc_like(0.125).inputs) == 16
        assert len(too_large_like(0.125).inputs) == 38

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            spla_like(0.0)
        with pytest.raises(ValueError):
            spla_like(2.0)


class TestBenchmarkLookup:
    def test_by_name(self):
        net = benchmark("spla", 0.05)
        assert net.name.startswith("spla_like")

    def test_case_insensitive_and_suffix(self):
        assert benchmark("PDC", 0.05).name.startswith("pdc_like")
        assert benchmark("spla_like", 0.05).name.startswith("spla_like")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            benchmark("c6288")


class TestStructure:
    def test_valid_networks(self):
        for gen in (spla_like, pdc_like, too_large_like):
            net = gen(0.05)
            net.check()
            decompose(net).check()

    def test_two_level_form(self):
        net = spla_like(0.05)
        # PLA networks are two-level: every node reads only inputs.
        inputs = set(net.inputs)
        for node in net.nodes.values():
            assert node.fanin_names <= inputs
