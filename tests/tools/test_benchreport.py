"""Tests for the bench-regression reporter behind ``repro benchreport``.

The gate contract: pristine copies of the baselines pass, a
synthetically perturbed envelope (broken determinism or a big
throughput drop) fails, a smoke-vs-full mode mismatch skips instead of
comparing apples to oranges, and a bench that silently stopped running
fails.
"""

import copy
import json
import os

from repro.cli import main
from repro.tools import (
    compare_benches,
    load_envelopes,
    run_benchreport,
)

SERVE = {
    "schema_version": 1,
    "bench": "serve",
    "mode": "smoke",
    "jobs": 12,
    "speedup": 3.2,
    "serve_jobs_per_sec": 1.5,
    "identical_rows": True,
    "parallel": {"identical_rows": True, "parallel_speedup": 1.3,
                 "pool_fallbacks": 0},
}

KSEARCH = {
    "schema_version": 1,
    "bench": "ksearch",
    "mode": "smoke",
    "identity": {"matches": True},
    "rows": [
        {"strategy": "grid", "evaluations": 14, "chosen_k": 0.5},
        {"strategy": "bisect", "evaluations": 5, "chosen_k": 0.5},
        {"strategy": "portfolio", "evaluations": 7, "chosen_k": 0.5},
    ],
}


def _write_dir(path, *envelopes):
    os.makedirs(path, exist_ok=True)
    for env in envelopes:
        with open(os.path.join(path, f"BENCH_{env['bench']}.json"),
                  "w") as handle:
            json.dump(env, handle)
    return str(path)


class TestComparisons:
    def test_pristine_copy_passes(self, tmp_path):
        base = _write_dir(tmp_path / "base", SERVE, KSEARCH)
        res = _write_dir(tmp_path / "res", SERVE, KSEARCH)
        comps = compare_benches(load_envelopes(res), load_envelopes(base))
        assert not any(c.failed for c in comps)
        assert {c.bench for c in comps} == {"ksearch", "serve"}

    def test_broken_determinism_regresses(self, tmp_path):
        perturbed = copy.deepcopy(SERVE)
        perturbed["identical_rows"] = False
        base = _write_dir(tmp_path / "base", SERVE)
        res = _write_dir(tmp_path / "res", perturbed)
        comps = compare_benches(load_envelopes(res), load_envelopes(base))
        (comp,) = comps
        assert comp.failed
        flagged = {m.name for m in comp.metrics if m.status == "regressed"}
        assert flagged == {"identical_rows"}

    def test_throughput_noise_floor(self, tmp_path):
        # -40% is inside the 50% floor; -80% is not.
        wobble = copy.deepcopy(SERVE)
        wobble["speedup"] = SERVE["speedup"] * 0.6
        crash = copy.deepcopy(SERVE)
        crash["speedup"] = SERVE["speedup"] * 0.2
        base = _write_dir(tmp_path / "base", SERVE)
        ok = compare_benches(
            load_envelopes(_write_dir(tmp_path / "ok", wobble)),
            load_envelopes(base))
        bad = compare_benches(
            load_envelopes(_write_dir(tmp_path / "bad", crash)),
            load_envelopes(base))
        assert not ok[0].failed
        assert bad[0].failed

    def test_faster_is_never_a_regression(self, tmp_path):
        faster = copy.deepcopy(SERVE)
        faster["speedup"] = SERVE["speedup"] * 10
        comps = compare_benches(
            load_envelopes(_write_dir(tmp_path / "res", faster)),
            load_envelopes(_write_dir(tmp_path / "base", SERVE)))
        assert not comps[0].failed

    def test_mode_mismatch_skips(self, tmp_path):
        full = copy.deepcopy(SERVE)
        full["mode"] = "full"
        full["speedup"] = 0.01  # would regress hard if compared
        comps = compare_benches(
            load_envelopes(_write_dir(tmp_path / "res", full)),
            load_envelopes(_write_dir(tmp_path / "base", SERVE)))
        (comp,) = comps
        assert comp.status == "skipped"
        assert not comp.failed

    def test_missing_bench_fails_new_bench_informs(self, tmp_path):
        base = _write_dir(tmp_path / "base", SERVE, KSEARCH)
        res = _write_dir(tmp_path / "res", KSEARCH)  # serve vanished
        comps = compare_benches(load_envelopes(res), load_envelopes(base))
        by_bench = {c.bench: c for c in comps}
        assert by_bench["serve"].status == "missing"
        assert by_bench["serve"].failed
        extra = copy.deepcopy(SERVE)
        extra["bench"] = "brandnew"
        res2 = _write_dir(tmp_path / "res2", SERVE, KSEARCH, extra)
        comps2 = compare_benches(load_envelopes(res2),
                                 load_envelopes(base))
        by_bench2 = {c.bench: c for c in comps2}
        assert by_bench2["brandnew"].status == "new"
        assert not by_bench2["brandnew"].failed

    def test_schema_version_mismatch_fails(self, tmp_path):
        v2 = copy.deepcopy(SERVE)
        v2["schema_version"] = 2
        comps = compare_benches(
            load_envelopes(_write_dir(tmp_path / "res", v2)),
            load_envelopes(_write_dir(tmp_path / "base", SERVE)))
        assert comps[0].status == "schema"
        assert comps[0].failed

    def test_ksearch_evaluation_counts_are_exact(self, tmp_path):
        drift = copy.deepcopy(KSEARCH)
        drift["rows"][1]["evaluations"] = 6  # bisect did extra work
        comps = compare_benches(
            load_envelopes(_write_dir(tmp_path / "res", drift)),
            load_envelopes(_write_dir(tmp_path / "base", KSEARCH)))
        flagged = {m.name for m in comps[0].metrics
                   if m.status == "regressed"}
        assert flagged == {"bisect.evaluations"}


class TestRunner:
    def test_writes_table_and_exit_codes(self, tmp_path, capsys):
        base = _write_dir(tmp_path / "base", SERVE)
        res = _write_dir(tmp_path / "res", SERVE)
        out = tmp_path / "trend.md"
        assert run_benchreport(res, base, str(out)) == 0
        table = out.read_text()
        assert "| serve | speedup " in table
        assert "all gates passed" in table
        perturbed = copy.deepcopy(SERVE)
        perturbed["identical_rows"] = False
        res_bad = _write_dir(tmp_path / "res_bad", perturbed)
        assert run_benchreport(res_bad, base, str(out)) == 1
        assert "**REGRESSED**" in out.read_text()
        assert "REGRESSED" in capsys.readouterr().out

    def test_empty_baselines_fail_loudly(self, tmp_path, capsys):
        res = _write_dir(tmp_path / "res", SERVE)
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert run_benchreport(res, str(empty),
                               str(tmp_path / "t.md")) == 2
        assert "no BENCH_" in capsys.readouterr().out

    def test_default_out_path_lands_in_results_dir(self, tmp_path):
        base = _write_dir(tmp_path / "base", SERVE)
        res = _write_dir(tmp_path / "res", SERVE)
        assert run_benchreport(res, base) == 0
        assert os.path.exists(os.path.join(res, "BENCHREPORT.md"))

    def test_cli_subcommand_round_trip(self, tmp_path, capsys):
        base = _write_dir(tmp_path / "base", SERVE, KSEARCH)
        res = _write_dir(tmp_path / "res", SERVE, KSEARCH)
        out = tmp_path / "trend.md"
        rc = main(["benchreport", "--results", res, "--baselines", base,
                   "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "all gates passed" in capsys.readouterr().out

    def test_unparsable_envelope_fails(self, tmp_path):
        base = _write_dir(tmp_path / "base", SERVE)
        res = _write_dir(tmp_path / "res", SERVE)
        with open(os.path.join(res, "BENCH_broken.json"), "w") as handle:
            handle.write("{not json")
        comps = compare_benches(load_envelopes(res), load_envelopes(base))
        assert any(c.status == "schema" and c.failed for c in comps)
