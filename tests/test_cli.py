"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io import parse_blif


@pytest.fixture
def blif_file(tmp_path, small_network):
    from repro.io import dump_blif
    path = tmp_path / "small.blif"
    path.write_text(dump_blif(small_network))
    return str(path)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("info", "synth", "map", "flow", "ksweep"):
            args = parser.parse_args([cmd, "spla@0.01"]
                                     if cmd != "map" else [cmd, "spla@0.01"])
            assert args.command == cmd

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info_benchmark(self, capsys):
        assert main(["info", "spla@0.02"]) == 0
        out = capsys.readouterr().out
        assert "BooleanNetwork" in out
        assert "BaseNetwork" in out

    def test_info_blif(self, blif_file, capsys):
        assert main(["info", blif_file]) == 0
        assert "small" in capsys.readouterr().out

    def test_synth_roundtrip(self, blif_file, tmp_path, capsys):
        out_path = str(tmp_path / "out.blif")
        assert main(["synth", blif_file, "-o", out_path,
                     "--effort", "fast"]) == 0
        net = parse_blif(open(out_path).read())
        assert net.outputs == ["g2", "g3", "g4"]

    def test_map_to_verilog(self, blif_file, tmp_path):
        out_path = str(tmp_path / "out.v")
        assert main(["map", blif_file, "-o", out_path]) == 0
        text = open(out_path).read()
        assert "module" in text and "endmodule" in text

    def test_map_with_congestion(self, blif_file, tmp_path):
        out_path = str(tmp_path / "out.v")
        assert main(["map", blif_file, "-o", out_path, "--k", "0.01",
                     "--partition", "placement"]) == 0
        assert "module" in open(out_path).read()

    def test_ksweep_prints_table(self, capsys):
        assert main(["ksweep", "spla@0.02", "--k", "0.0,0.01",
                     "--rows", "16"]) == 0
        out = capsys.readouterr().out
        assert "Cell Area" in out

    def test_flow_runs(self, capsys):
        code = main(["flow", "spla@0.02", "--rows", "18",
                     "--tolerance", "50"])
        out = capsys.readouterr().out
        assert "K=0" in out
        assert code in (0, 1)


class TestObservabilityFlags:
    def test_sweep_alias_parses(self):
        args = build_parser().parse_args(["sweep", "spla@0.01"])
        assert args.func.__name__ == "_cmd_ksweep"

    def test_sweep_trace_profile_artifacts(self, tmp_path, capsys):
        import json
        trace = str(tmp_path / "out.jsonl")
        assert main(["sweep", "spla@0.02", "--rows", "16",
                     "--k", "0.0,0.01", "--trace", trace,
                     "--profile"]) == 0
        captured = capsys.readouterr()
        assert "Per-phase breakdown" in captured.out
        assert "Merged counters" in captured.out
        rows = [json.loads(line)
                for line in open(trace).read().strip().split("\n")]
        assert rows[0]["event"] == "meta"
        assert any(r.get("name") == "k_point" for r in rows)
        # One CSV + one ASCII heatmap per evaluated K point, in the
        # default <trace>.artifacts directory.
        import os
        artifacts = sorted(os.listdir(trace + ".artifacts"))
        assert len(artifacts) == 4
        assert artifacts[0].endswith(".csv") and "k0" in artifacts[0]

    def test_flow_trace_to_explicit_artifacts_dir(self, tmp_path, capsys):
        import os
        trace = str(tmp_path / "flow.jsonl")
        art = str(tmp_path / "maps")
        code = main(["flow", "spla@0.02", "--rows", "18",
                     "--tolerance", "50", "--trace", trace,
                     "--artifacts", art])
        assert code in (0, 1)
        assert os.path.exists(trace)
        assert any(name.endswith(".txt") for name in os.listdir(art))

    def test_profile_without_trace(self, capsys):
        assert main(["ksweep", "spla@0.02", "--rows", "16",
                     "--k", "0.0", "--profile"]) == 0
        assert "run/sweep/k_point" in capsys.readouterr().out


class TestStaCommand:
    def test_sta_report(self, capsys):
        assert main(["sta", "spla@0.02", "--rows", "16", "--paths", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical" in out
        assert "path" in out
        assert "(in)" in out and "(out)" in out

    def test_sta_with_k(self, capsys):
        assert main(["sta", "spla@0.02", "--rows", "16", "--k", "0.002"]) == 0
        assert "violations" in capsys.readouterr().out

    def test_synth_rugged_effort(self, blif_file, tmp_path):
        out_path = str(tmp_path / "rugged.blif")
        assert main(["synth", blif_file, "-o", out_path,
                     "--effort", "rugged"]) == 0
        net = parse_blif(open(out_path).read())
        assert net.outputs == ["g2", "g3", "g4"]
