"""Vectorized placement/covering engines vs scalar reference oracles.

The batched kernels added for the flat-array placement stack — sparse
quadratic assembly, level-synchronous spreading, fast legalization,
cached-HPWL annealing — and the array covering DP must all be pure
speedups: on any input they produce *bit-identical* results to the
scalar reference implementations they replace.  These tests pin that
contract at every level: kernel, placer, covering DP, and full flow
(serial and process fan-out).
"""

import random

import numpy as np
import pytest

from repro.circuits import spla_like
from repro.core import (
    BoundaryInfo,
    Matcher,
    PositionMap,
    area_congestion,
    cover_tree,
    dagon_partition,
    k_sweep,
    map_network,
    min_area,
)
from repro.core.flow import FlowConfig
from repro.library import CORELIB018
from repro.network import decompose
from repro.network.dag import BaseNetwork
from repro.place import Floorplan
from repro.place.annealing import anneal
from repro.place.legalize import check_legal, legalize_rows
from repro.place.placer import place_base_network, place_netlist
from repro.place.quadratic import QpNet, solve_quadratic
from repro.place.spreading import spread

FLOORPLANS = [
    Floorplan(width=104.0, row_height=5.2, num_rows=20),
    Floorplan(width=62.4, row_height=5.2, num_rows=12),
]


def random_qp_nets(seed, count, num_movable, max_degree=10):
    """Random nets spanning cliques, stars and duplicate pins."""
    rng = np.random.default_rng(seed)
    nets = []
    for _ in range(count):
        degree = int(rng.integers(2, max_degree + 1))
        movables = [int(v) for v in rng.integers(0, num_movable, degree)]
        if rng.random() < 0.3:          # duplicate pins on purpose
            movables.append(movables[0])
        fixed = [(float(rng.uniform(0, 100.0)), float(rng.uniform(0, 100.0)))
                 for _ in range(int(rng.integers(0, 3)))]
        if len(movables) + len(fixed) < 2:
            continue
        nets.append(QpNet(movables=movables, fixed=fixed))
    return nets


def random_positions(seed, n, floorplan):
    rng = np.random.default_rng(seed)
    return np.column_stack([rng.uniform(0, floorplan.width, n),
                            rng.uniform(0, floorplan.height, n)])


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_quadratic_assembly(self, seed):
        """COO assembly order reproduction: solutions match bitwise."""
        num_movable = 40 + 30 * seed
        nets = random_qp_nets(seed, count=80 + 40 * seed,
                              num_movable=num_movable)
        ref = solve_quadratic(num_movable, nets, engine="reference")
        vec = solve_quadratic(num_movable, nets, engine="vector")
        assert np.array_equal(ref, vec)

    def test_quadratic_star_only_and_clique_only(self):
        """Degenerate mixes: all-star and all-clique net sets."""
        stars = [QpNet(movables=list(range(k, k + 9)), fixed=[])
                 for k in range(0, 27, 9)]
        cliques = [QpNet(movables=[k, k + 1], fixed=[(1.0 * k, 2.0 * k)])
                   for k in range(30)]
        for nets in (stars, cliques, stars + cliques):
            ref = solve_quadratic(36, nets, engine="reference")
            vec = solve_quadratic(36, nets, engine="vector")
            assert np.array_equal(ref, vec)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("floorplan", FLOORPLANS,
                             ids=["20rows", "12rows"])
    def test_spreading(self, seed, floorplan):
        n = 5 + 120 * seed
        pos = random_positions(seed, n, floorplan)
        weights = np.random.default_rng(seed + 99).uniform(0.5, 4.0, n)
        for w in (None, weights):
            ref = spread(pos, floorplan, weights=w, engine="reference")
            vec = spread(pos, floorplan, weights=w, engine="vector")
            assert np.array_equal(ref, vec)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("floorplan", FLOORPLANS,
                             ids=["20rows", "12rows"])
    def test_legalize(self, seed, floorplan):
        rng = np.random.default_rng(seed)
        capacity = floorplan.width * floorplan.num_rows
        n = min(40 + 60 * seed, int(capacity / 5.5))
        pos = random_positions(seed, n, floorplan)
        widths = rng.choice([2.4, 3.6, 4.8], n)
        ref = legalize_rows(pos, widths, floorplan, engine="reference")
        vec = legalize_rows(pos, widths, floorplan, engine="vector")
        assert np.array_equal(ref, vec)
        check_legal(vec, widths, floorplan)

    @pytest.mark.parametrize("seed", range(3))
    def test_anneal(self, seed):
        """Same RNG stream, same accept/reject stream, same swaps."""
        floorplan = FLOORPLANS[0]
        rng = np.random.default_rng(seed)
        n = 30 + 40 * seed
        pos = random_positions(seed, n, floorplan)
        nets = [[int(v) for v in rng.integers(0, n, int(rng.integers(1, 7)))]
                for _ in range(2 * n)]
        fixed = [[(float(rng.uniform(0, 104.0)), float(rng.uniform(0, 104.0)))
                  for _ in range(int(rng.integers(0, 3)))]
                 for _ in range(2 * n)]
        ref = anneal(pos, nets, fixed, floorplan, moves=1500, seed=seed,
                     engine="reference")
        vec = anneal(pos, nets, fixed, floorplan, moves=1500, seed=seed,
                     engine="vector")
        assert np.array_equal(ref, vec)


def random_tree_network(seed, size=16):
    """A random NAND2/INV base network (several subject trees)."""
    rng = random.Random(seed)
    net = BaseNetwork(f"rand{seed}")
    frontier = [net.add_input(f"i{k}") for k in range(5)]
    for _ in range(size):
        if rng.random() < 0.35:
            v = net.add_inv(rng.choice(frontier))
        else:
            v = net.add_nand2(rng.choice(frontier), rng.choice(frontier))
        frontier.append(v)
    for k, v in enumerate(frontier[-3:]):
        net.set_output(f"o{k}", v)
    return net


def solution_key(sol):
    """Every decision-relevant field of a covering Solution."""
    return (sol.cost, sol.area, sol.wire1, sol.wire, sol.wire_transitive,
            sol.arrival, sol.com,
            None if sol.match is None else
            (sol.match.cell.name, sol.match.root, sol.match.phase,
             tuple(sol.match.leaves)),
            sol.inv_source_phase)


class TestCoveringEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [0.0, 0.001, 0.05])
    def test_random_trees_bitwise(self, seed, k):
        """Per-(vertex, phase) solutions agree bitwise on random trees."""
        base = random_tree_network(seed)
        part = dagon_partition(base)
        matcher = Matcher(base, CORELIB018)
        rng = np.random.default_rng(seed)
        positions = PositionMap(
            [(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
             for _ in range(base.num_vertices())])
        objective = area_congestion(k) if k else min_area()
        boundary = BoundaryInfo(positions)
        for root in part.roots:
            ref = cover_tree(base, part.trees[root], matcher, CORELIB018,
                             objective, boundary, part.materialized,
                             engine="reference")
            vec = cover_tree(base, part.trees[root], matcher, CORELIB018,
                             objective, boundary, part.materialized,
                             engine="vector")
            assert set(ref.solutions) == set(vec.solutions)
            for key in ref.solutions:
                assert solution_key(ref.solutions[key]) == \
                    solution_key(vec.solutions[key]), key

    @pytest.mark.parametrize("k", [0.0, 0.01])
    def test_mapper_end_to_end(self, k):
        """map_network with either engine emits the identical netlist."""
        base = decompose(spla_like(0.02))
        floorplan = Floorplan.from_rows(16)
        positions = place_base_network(base, floorplan)
        results = {}
        for engine in ("vector", "reference"):
            r = map_network(base, CORELIB018, area_congestion(k),
                            partition_style="placement",
                            positions=positions, engine=engine)
            results[engine] = r
        vec, ref = results["vector"], results["reference"]
        assert vec.netlist.num_cells() == ref.netlist.num_cells()
        assert sorted((i.cell_name, tuple(sorted(i.pins.items())), i.output)
                      for i in vec.netlist.instances.values()) == \
            sorted((i.cell_name, tuple(sorted(i.pins.items())), i.output)
                   for i in ref.netlist.instances.values())
        assert vec.estimated_wirelength == ref.estimated_wirelength
        assert vec.instance_positions == ref.instance_positions


class TestPlacementEquivalence:
    @pytest.fixture(scope="class")
    def netlist(self):
        base = decompose(spla_like(0.02))
        floorplan = Floorplan.from_rows(16)
        positions = place_base_network(base, floorplan)
        result = map_network(base, CORELIB018, area_congestion(0.001),
                             partition_style="placement",
                             positions=positions)
        return result.netlist

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("rows", [16, 18])
    def test_place_netlist_bitwise(self, netlist, seed, rows):
        floorplan = Floorplan.from_rows(rows)
        ref = place_netlist(netlist, CORELIB018, floorplan, seed=seed,
                            engine="reference")
        vec = place_netlist(netlist, CORELIB018, floorplan, seed=seed,
                            engine="vector")
        assert ref.positions == vec.positions
        assert ref.pads == vec.pads

    def test_place_netlist_with_anneal(self, netlist):
        floorplan = Floorplan.from_rows(16)
        ref = place_netlist(netlist, CORELIB018, floorplan,
                            anneal_moves=800, engine="reference")
        vec = place_netlist(netlist, CORELIB018, floorplan,
                            anneal_moves=800, engine="vector")
        assert ref.positions == vec.positions

    def test_place_base_network_bitwise(self):
        base = decompose(spla_like(0.02))
        floorplan = Floorplan.from_rows(16)
        ref = place_base_network(base, floorplan, engine="reference")
        vec = place_base_network(base, floorplan, engine="vector")
        assert ref.as_points() == vec.as_points()

    def test_timings_recorded(self, netlist):
        floorplan = Floorplan.from_rows(16)
        timings = {}
        place_netlist(netlist, CORELIB018, floorplan, anneal_moves=100,
                      engine="vector", timings=timings)
        assert timings.keys() >= {"t_quadratic", "t_mincut", "t_legalize",
                                  "t_anneal"}
        assert all(t >= 0.0 for t in timings.values())


class TestFlowEquivalence:
    K_VALUES = [0.0, 0.001, 0.01]

    def _sweep(self, place_engine, workers=1):
        base = decompose(spla_like(0.02))
        floorplan = Floorplan.from_rows(18)
        config = FlowConfig(library=CORELIB018, place_engine=place_engine,
                            workers=workers)
        points = k_sweep(base, floorplan, config, k_values=self.K_VALUES)
        return [(p.row(), p.hpwl, p.routed_wirelength) for p in points]

    def test_flow_engines_agree_serial(self):
        assert self._sweep("vector") == self._sweep("reference")

    def test_flow_engines_agree_parallel(self):
        """place_engine=vector, serial vs ``--workers 4`` fan-out."""
        assert self._sweep("vector") == self._sweep("vector", workers=4)

    def test_flow_reference_parallel(self):
        """place_engine=reference survives the process pool too."""
        assert self._sweep("reference") == \
            self._sweep("reference", workers=4)
