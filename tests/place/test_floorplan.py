"""Tests for floorplans and pad assignment."""

import pytest

from repro.errors import PlacementError
from repro.place import Floorplan, assign_pads


class TestFloorplan:
    def test_dimensions(self):
        fp = Floorplan(width=100.0, row_height=5.0, num_rows=20)
        assert fp.height == pytest.approx(100.0)
        assert fp.area == pytest.approx(10_000.0)

    def test_invalid_dimensions(self):
        with pytest.raises(PlacementError):
            Floorplan(width=-1.0, row_height=5.0, num_rows=10)
        with pytest.raises(PlacementError):
            Floorplan(width=10.0, row_height=5.0, num_rows=0)

    def test_row_y_centers(self):
        fp = Floorplan(width=10.0, row_height=4.0, num_rows=3)
        assert fp.row_y(0) == pytest.approx(2.0)
        assert fp.row_y(2) == pytest.approx(10.0)

    def test_row_y_out_of_range(self):
        fp = Floorplan(width=10.0, row_height=4.0, num_rows=3)
        with pytest.raises(PlacementError):
            fp.row_y(3)

    def test_from_rows_aspect(self):
        fp = Floorplan.from_rows(10, row_height=5.2, aspect=2.0)
        assert fp.height == pytest.approx(52.0)
        assert fp.width == pytest.approx(104.0)

    def test_for_area_close(self):
        fp = Floorplan.for_area(10_000.0, aspect=1.0)
        assert fp.area == pytest.approx(10_000.0, rel=0.02)

    def test_with_rows(self):
        fp = Floorplan.from_rows(10)
        bigger = fp.with_rows(12)
        assert bigger.width == fp.width
        assert bigger.num_rows == 12

    def test_utilization(self):
        fp = Floorplan(width=100.0, row_height=10.0, num_rows=10)
        assert fp.utilization(5000.0) == pytest.approx(50.0)

    def test_contains(self):
        fp = Floorplan(width=10.0, row_height=1.0, num_rows=10)
        assert fp.contains((5.0, 5.0))
        assert not fp.contains((11.0, 5.0))


class TestPads:
    def test_all_on_perimeter(self):
        fp = Floorplan.from_rows(10)
        pads = assign_pads(fp, [f"i{k}" for k in range(6)],
                           [f"o{k}" for k in range(4)])
        assert len(pads) == 10
        for x, y in pads.values():
            on_x = x == pytest.approx(0.0) or x == pytest.approx(fp.width)
            on_y = y == pytest.approx(0.0) or y == pytest.approx(fp.height)
            assert on_x or on_y

    def test_deterministic(self):
        fp = Floorplan.from_rows(10)
        a = assign_pads(fp, ["a", "b"], ["y"])
        b = assign_pads(fp, ["a", "b"], ["y"])
        assert a == b

    def test_distinct_positions(self):
        fp = Floorplan.from_rows(10)
        pads = assign_pads(fp, [f"i{k}" for k in range(20)], [])
        assert len(set(pads.values())) == 20

    def test_empty(self):
        fp = Floorplan.from_rows(10)
        assert assign_pads(fp, [], []) == {}
