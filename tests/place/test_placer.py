"""Tests for the placement facade (base networks and mapped netlists)."""

import pytest

from repro.core import map_network, min_area
from repro.errors import PlacementError
from repro.library import CORELIB018
from repro.place import Floorplan, check_legal, place_base_network, place_netlist
from repro.place.spreading import spread
from repro.place.annealing import anneal, hpwl as sa_hpwl

import numpy as np


class TestPlaceBaseNetwork:
    def test_all_vertices_positioned(self, small_base, tiny_floorplan):
        positions = place_base_network(small_base, tiny_floorplan)
        assert len(positions) == small_base.num_vertices()

    def test_gates_inside_die(self, medium_base, small_floorplan):
        positions = place_base_network(medium_base, small_floorplan)
        for v in medium_base.gates():
            assert small_floorplan.contains(positions.get(v))

    def test_inputs_on_pads(self, small_base, tiny_floorplan):
        positions = place_base_network(small_base, tiny_floorplan)
        fp = tiny_floorplan
        for name, v in small_base.input_vertex.items():
            x, y = positions.get(v)
            on_edge = (x in (0.0, fp.width)) or (y in (0.0, fp.height)) or \
                abs(x) < 1e-9 or abs(x - fp.width) < 1e-9 or \
                abs(y) < 1e-9 or abs(y - fp.height) < 1e-9
            assert on_edge

    def test_deterministic(self, small_base, tiny_floorplan):
        a = place_base_network(small_base, tiny_floorplan)
        b = place_base_network(small_base, tiny_floorplan)
        assert a.as_points() == b.as_points()


class TestPlaceNetlist:
    @pytest.fixture
    def mapped(self, medium_base):
        return map_network(medium_base, CORELIB018, min_area()).netlist

    @pytest.fixture
    def small_floorplan(self):
        # Sized for the medium mapped netlist at ~55% utilization.
        return Floorplan.from_rows(22, aspect=1.0)

    def test_placement_is_legal(self, mapped, small_floorplan):
        placement = place_netlist(mapped, CORELIB018, small_floorplan)
        names = sorted(placement.positions)
        pos = np.array([placement.positions[n] for n in names])
        widths = [CORELIB018.cell_width(mapped.instances[n].cell_name)
                  for n in names]
        check_legal(pos, widths, small_floorplan)

    def test_all_instances_placed(self, mapped, small_floorplan):
        placement = place_netlist(mapped, CORELIB018, small_floorplan)
        assert set(placement.positions) == set(mapped.instances)

    def test_pads_for_all_ios(self, mapped, small_floorplan):
        placement = place_netlist(mapped, CORELIB018, small_floorplan)
        for name in mapped.inputs + mapped.outputs:
            assert name in placement.pads

    def test_net_points_cover_nets(self, mapped, small_floorplan):
        placement = place_netlist(mapped, CORELIB018, small_floorplan)
        points = placement.net_points(mapped)
        for net in mapped.nets():
            assert net in points
            assert len(points[net]) >= 1

    def test_hpwl_positive(self, mapped, small_floorplan):
        placement = place_netlist(mapped, CORELIB018, small_floorplan)
        assert placement.hpwl(mapped) > 0

    def test_pin_point_lookup(self, mapped, small_floorplan):
        placement = place_netlist(mapped, CORELIB018, small_floorplan)
        inst = next(iter(mapped.instances))
        assert placement.pin_point(inst) == placement.positions[inst]
        with pytest.raises(PlacementError):
            placement.pin_point("does_not_exist")

    def test_too_small_die_rejected(self, mapped):
        with pytest.raises(PlacementError):
            place_netlist(mapped, CORELIB018, Floorplan.from_rows(2))

    def test_quadratic_method_also_works(self, mapped, small_floorplan):
        placement = place_netlist(mapped, CORELIB018, small_floorplan,
                                  method="quadratic")
        assert set(placement.positions) == set(mapped.instances)

    def test_unknown_method_rejected(self, mapped, small_floorplan):
        with pytest.raises(PlacementError):
            place_netlist(mapped, CORELIB018, small_floorplan,
                          method="banana")


class TestSpreading:
    def test_spread_inside_region(self, tiny_floorplan):
        rng = np.random.default_rng(0)
        points = rng.normal(loc=20.0, scale=0.5, size=(50, 2))
        out = spread(points, tiny_floorplan)
        assert (out[:, 0] >= 0).all()
        assert (out[:, 0] <= tiny_floorplan.width).all()
        assert (out[:, 1] >= 0).all()
        assert (out[:, 1] <= tiny_floorplan.height).all()

    def test_spread_distributes(self, tiny_floorplan):
        rng = np.random.default_rng(0)
        points = rng.normal(loc=20.0, scale=0.1, size=(64, 2))
        out = spread(points, tiny_floorplan)
        # After spreading, points occupy a substantial part of the die.
        assert np.ptp(out[:, 0]) > tiny_floorplan.width * 0.5

    def test_empty(self, tiny_floorplan):
        assert spread(np.zeros((0, 2)), tiny_floorplan).shape == (0, 2)


class TestAnnealing:
    def test_anneal_improves_or_keeps_hpwl(self, tiny_floorplan):
        rng = np.random.default_rng(2)
        n = 24
        positions = rng.uniform(0, 40, size=(n, 2))
        nets = [[i, (i + 1) % n] for i in range(n)]
        fixed = [[] for _ in nets]
        before = sa_hpwl(positions, nets, fixed)
        after_pos = anneal(positions, nets, fixed, tiny_floorplan,
                           moves=4000, seed=1)
        after = sa_hpwl(after_pos, nets, fixed)
        assert after <= before * 1.02

    def test_zero_moves_identity(self, tiny_floorplan):
        positions = np.ones((4, 2))
        out = anneal(positions, [[0, 1]], [[]], tiny_floorplan, moves=0)
        assert np.allclose(out, positions)
