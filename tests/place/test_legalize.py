"""Tests for row legalization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlacementError
from repro.place import Floorplan, check_legal, legalize_rows


@pytest.fixture
def fp():
    return Floorplan(width=50.0, row_height=5.0, num_rows=6)


class TestLegalizeRows:
    def test_result_is_legal(self, fp):
        rng = np.random.default_rng(1)
        n = 40
        positions = rng.uniform(0, 30, size=(n, 2))
        widths = rng.uniform(1.0, 3.0, size=n)
        legal = legalize_rows(positions, widths, fp)
        check_legal(legal, widths, fp)

    def test_cells_on_row_centers(self, fp):
        positions = np.array([[10.0, 7.0], [20.0, 12.0]])
        widths = [2.0, 2.0]
        legal = legalize_rows(positions, widths, fp)
        for y in legal[:, 1]:
            assert any(abs(y - fp.row_y(r)) < 1e-9
                       for r in range(fp.num_rows))

    def test_overfull_die_rejected(self, fp):
        n = 20
        positions = np.zeros((n, 2))
        widths = [20.0] * n  # 400 > 300 capacity
        with pytest.raises(PlacementError, match="die too small"):
            legalize_rows(positions, widths, fp)

    def test_single_cell_near_target(self, fp):
        positions = np.array([[25.0, 13.0]])
        legal = legalize_rows(positions, [4.0], fp)
        assert abs(legal[0, 1] - 13.0) <= fp.row_height
        check_legal(legal, [4.0], fp)

    def test_widths_length_mismatch(self, fp):
        with pytest.raises(PlacementError):
            legalize_rows(np.zeros((2, 2)), [1.0], fp)

    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_property_always_legal(self, n, seed):
        fp = Floorplan(width=60.0, row_height=5.0, num_rows=8)
        rng = np.random.default_rng(seed)
        positions = rng.uniform(-5, 70, size=(n, 2))
        widths = rng.uniform(0.5, 4.0, size=n)
        if widths.sum() > fp.width * fp.num_rows:
            return
        legal = legalize_rows(positions, widths, fp)
        check_legal(legal, widths, fp)


class TestCheckLegal:
    def test_detects_overlap(self, fp):
        positions = np.array([[5.0, 2.5], [6.0, 2.5]])
        with pytest.raises(PlacementError, match="overlap"):
            check_legal(positions, [4.0, 4.0], fp)

    def test_detects_off_row(self, fp):
        positions = np.array([[5.0, 3.3]])
        with pytest.raises(PlacementError, match="not on a row"):
            check_legal(positions, [2.0], fp)

    def test_detects_outside_die(self, fp):
        positions = np.array([[49.5, 2.5]])
        with pytest.raises(PlacementError, match="outside"):
            check_legal(positions, [4.0], fp)
