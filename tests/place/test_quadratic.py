"""Tests for the analytical (quadratic) placement solver."""

import numpy as np
import pytest

from repro.place import QpNet, solve_quadratic


class TestTwoPin:
    def test_single_cell_between_two_pads(self):
        nets = [QpNet(movables=[0], fixed=[(0.0, 0.0)]),
                QpNet(movables=[0], fixed=[(10.0, 10.0)])]
        pos = solve_quadratic(1, nets)
        assert pos[0, 0] == pytest.approx(5.0, abs=1e-3)
        assert pos[0, 1] == pytest.approx(5.0, abs=1e-3)

    def test_chain_spreads_evenly(self):
        # pad(0) - c0 - c1 - c2 - pad(4): optimum is the even spacing.
        nets = [QpNet(movables=[0], fixed=[(0.0, 0.0)]),
                QpNet(movables=[0, 1]),
                QpNet(movables=[1, 2]),
                QpNet(movables=[2], fixed=[(4.0, 0.0)])]
        pos = solve_quadratic(3, nets)
        assert pos[:, 0] == pytest.approx([1.0, 2.0, 3.0], abs=1e-3)

    def test_untouched_node_at_default(self):
        nets = [QpNet(movables=[0], fixed=[(2.0, 2.0)]),
                QpNet(movables=[0], fixed=[(2.0, 2.0)])]
        pos = solve_quadratic(2, nets, default=(9.0, 9.0))
        assert pos[1] == pytest.approx([9.0, 9.0])


class TestStarNets:
    def test_large_net_uses_star(self):
        # A 10-pin net around a fixed centroid: all cells pulled there.
        pads = [(float(k % 2) * 10.0, float(k // 2)) for k in range(4)]
        nets = [QpNet(movables=list(range(10)), fixed=pads)]
        pos = solve_quadratic(10, nets)
        centroid = np.mean(pads, axis=0)
        for row in pos:
            assert row[0] == pytest.approx(centroid[0], abs=1.0)

    def test_star_and_clique_agree_on_centroid(self):
        fixed = [(0.0, 0.0), (10.0, 0.0)]
        small = [QpNet(movables=[0], fixed=fixed)]
        pos = solve_quadratic(1, small)
        assert pos[0, 0] == pytest.approx(5.0, abs=1e-3)


class TestEdgeCases:
    def test_zero_cells(self):
        assert solve_quadratic(0, []).shape == (0, 2)

    def test_degenerate_single_pin_net_ignored(self):
        nets = [QpNet(movables=[0])]
        pos = solve_quadratic(1, nets, default=(3.0, 4.0))
        assert pos[0] == pytest.approx([3.0, 4.0])

    def test_deterministic(self):
        nets = [QpNet(movables=[0, 1], fixed=[(0.0, 0.0)]),
                QpNet(movables=[1], fixed=[(8.0, 2.0)])]
        a = solve_quadratic(2, nets)
        b = solve_quadratic(2, nets)
        assert np.allclose(a, b)
