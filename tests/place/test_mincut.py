"""Tests for the FM recursive-bisection placer."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.place import Floorplan, QpNet
from repro.place.mincut import mincut_place


@pytest.fixture
def fp():
    return Floorplan(width=40.0, row_height=4.0, num_rows=10)


def cluster_nets(groups, size):
    """Nets forming `groups` dense clusters of `size` cells each."""
    nets = []
    for g in range(groups):
        base = g * size
        for i in range(size):
            for j in range(i + 1, size):
                nets.append(QpNet(movables=[base + i, base + j]))
    return nets


class TestBasics:
    def test_empty(self, fp):
        assert mincut_place(0, [], [], fp).shape == (0, 2)

    def test_all_inside_die(self, fp):
        n = 30
        nets = cluster_nets(3, 10)
        pos = mincut_place(n, nets, np.ones(n), fp)
        assert (pos[:, 0] >= 0).all() and (pos[:, 0] <= fp.width).all()
        assert (pos[:, 1] >= 0).all() and (pos[:, 1] <= fp.height).all()

    def test_width_mismatch_rejected(self, fp):
        with pytest.raises(PlacementError):
            mincut_place(3, [], np.ones(2), fp)

    def test_deterministic(self, fp):
        n = 20
        nets = cluster_nets(2, 10)
        a = mincut_place(n, nets, np.ones(n), fp)
        b = mincut_place(n, nets, np.ones(n), fp)
        assert np.allclose(a, b)

    def test_seed_changes_result(self, fp):
        n = 20
        nets = cluster_nets(2, 10)
        a = mincut_place(n, nets, np.ones(n), fp, seed=0)
        b = mincut_place(n, nets, np.ones(n), fp, seed=1)
        assert not np.allclose(a, b)


class TestQuality:
    def test_clusters_stay_together(self, fp):
        """Cells of a dense cluster should end up near each other."""
        n = 30
        nets = cluster_nets(3, 10)
        pos = mincut_place(n, nets, np.ones(n), fp)
        for g in range(3):
            group = pos[g * 10:(g + 1) * 10]
            spread = group.std(axis=0).sum()
            assert spread < (fp.width + fp.height) / 3.5, \
                f"cluster {g} scattered: std {spread}"

    def test_pad_attraction(self, fp):
        """A cell tied to a corner pad lands on that side of the die."""
        n = 16
        nets = [QpNet(movables=[0], fixed=[(0.0, 0.0)]),
                QpNet(movables=[n - 1], fixed=[(fp.width, fp.height)])]
        # Weak mesh so the problem is connected.
        for i in range(n - 1):
            nets.append(QpNet(movables=[i, i + 1]))
        pos = mincut_place(n, nets, np.ones(n), fp)
        assert pos[0, 0] < pos[n - 1, 0]

    def test_beats_random_on_hpwl(self, fp):
        rng = np.random.default_rng(0)
        n = 40
        nets = cluster_nets(4, 10)
        pos = mincut_place(n, nets, np.ones(n), fp)
        random_pos = rng.uniform(0, [fp.width, fp.height], size=(n, 2))

        def hpwl(p):
            total = 0.0
            for net in nets:
                pts = p[net.movables]
                total += np.ptp(pts[:, 0]) + np.ptp(pts[:, 1])
            return total

        assert hpwl(pos) < hpwl(random_pos)
