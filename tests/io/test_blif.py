"""Tests for BLIF I/O."""

import pytest

from repro.circuits import random_logic_network
from repro.errors import ParseError
from repro.io import dump_blif, parse_blif
from repro.network import check_boolnet_vs_boolnet, parse_sop


SAMPLE = """
.model test
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-0 1
.names c g
0 1
.end
"""


class TestParse:
    def test_sample(self):
        net = parse_blif(SAMPLE)
        assert net.name == "test"
        assert net.inputs == ["a", "b", "c"]
        assert net.outputs == ["f", "g"]
        assert net.nodes["t1"].sop == parse_sop("a b")
        assert net.nodes["g"].sop == parse_sop("c'")

    def test_comments_and_continuations(self):
        text = (".model t # a comment\n.inputs a \\\nb\n.outputs f\n"
                ".names a b f\n11 1\n.end\n")
        net = parse_blif(text)
        assert net.inputs == ["a", "b"]

    def test_constant_nodes(self):
        text = ".model t\n.inputs a\n.outputs f g\n.names f\n1\n.names g\n.end\n"
        net = parse_blif(text)
        assert net.nodes["f"].sop.is_one()
        assert net.nodes["g"].sop.is_zero()

    def test_offset_cover_rejected(self):
        text = ".model t\n.inputs a\n.outputs f\n.names a f\n1 0\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_latch_rejected(self):
        text = ".model t\n.inputs a\n.outputs q\n.latch a q\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_stray_cover_row_rejected(self):
        with pytest.raises(ParseError):
            parse_blif(".model t\n.inputs a\n.outputs f\n11 1\n.end\n")


class TestRoundtrip:
    def test_sample_roundtrip(self):
        net = parse_blif(SAMPLE)
        back = parse_blif(dump_blif(net))
        check_boolnet_vs_boolnet(net, back)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_network_roundtrip(self, seed):
        net = random_logic_network("r", num_inputs=6, num_nodes=15,
                                   num_outputs=4, seed=seed)
        back = parse_blif(dump_blif(net))
        assert back.inputs == net.inputs
        assert back.outputs == net.outputs
        check_boolnet_vs_boolnet(net, back)

    def test_small_network_roundtrip(self, small_network):
        back = parse_blif(dump_blif(small_network))
        check_boolnet_vs_boolnet(small_network, back)
