"""Tests for placement save/load."""

import pytest

from repro.errors import ParseError
from repro.io import dump_placement, parse_placement
from repro.place import Floorplan, Placement


@pytest.fixture
def placement():
    fp = Floorplan(width=50.0, row_height=5.0, num_rows=10)
    return Placement(
        positions={"u1": (10.0, 2.5), "u2": (20.5, 7.5)},
        pads={"a": (0.0, 12.0), "y": (50.0, 30.0)},
        floorplan=fp)


class TestRoundtrip:
    def test_full_roundtrip(self, placement):
        back = parse_placement(dump_placement(placement))
        assert back.positions == placement.positions
        assert back.pads == placement.pads
        assert back.floorplan.width == pytest.approx(placement.floorplan.width)
        assert back.floorplan.num_rows == placement.floorplan.num_rows

    def test_comments_ignored(self, placement):
        text = "# comment\n" + dump_placement(placement)
        back = parse_placement(text)
        assert back.positions == placement.positions


class TestErrors:
    def test_missing_die(self):
        with pytest.raises(ParseError, match="DIE"):
            parse_placement("CELL u1 1.0 2.0\n")

    def test_unknown_record(self):
        with pytest.raises(ParseError):
            parse_placement("DIE 10 5 2\nBLOB x 1 2\n")

    def test_malformed_cell(self):
        with pytest.raises(ParseError):
            parse_placement("DIE 10 5 2\nCELL u1 1.0\n")
