"""Tests for the structural Verilog writer."""

import re

import pytest

from repro.core import map_network, min_area
from repro.io import dump_verilog
from repro.library import CORELIB018
from repro.network import MappedNetlist


@pytest.fixture
def tiny_netlist():
    nl = MappedNetlist("tiny")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_instance("NAND2_X1", {"A": "a", "B": "b"}, "n1", name="u1")
    nl.add_instance("INV_X1", {"A": "n1"}, "y", name="u2")
    nl.add_output("y")
    return nl


class TestVerilog:
    def test_module_header(self, tiny_netlist):
        text = dump_verilog(tiny_netlist)
        assert text.startswith("module tiny (")
        assert text.rstrip().endswith("endmodule")

    def test_ports_declared(self, tiny_netlist):
        text = dump_verilog(tiny_netlist)
        assert "input a;" in text
        assert "input b;" in text
        assert "output y;" in text

    def test_instances_emitted(self, tiny_netlist):
        text = dump_verilog(tiny_netlist)
        assert "NAND2_X1 u1 (.Y(n1), .A(a), .B(b));" in text
        assert "INV_X1 u2 (.Y(y), .A(n1));" in text

    def test_internal_wires_declared(self, tiny_netlist):
        assert "wire n1;" in dump_verilog(tiny_netlist)

    def test_output_alias_assigned(self, tiny_netlist):
        tiny_netlist.add_output("y2", net="y")
        text = dump_verilog(tiny_netlist)
        assert "assign y2 = y;" in text

    def test_escaped_identifiers(self):
        nl = MappedNetlist("esc")
        nl.add_input("a[0]")
        nl.add_instance("INV_X1", {"A": "a[0]"}, "y", name="u1")
        nl.add_output("y")
        text = dump_verilog(nl)
        assert "\\a[0] " in text

    def test_mapped_netlist_dumps(self, medium_base):
        result = map_network(medium_base, CORELIB018, min_area())
        text = dump_verilog(result.netlist)
        # One instance line (with a .Y output connection) per cell.
        assert text.count("(.Y(") == result.netlist.num_cells()
