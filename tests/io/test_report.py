"""Tests for table rendering."""

from repro.io import format_table, k_sweep_table
from repro.core.flow import EvalPoint


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["long_name", 123456]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # all same width

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.0001], [12.5], [123456.7]])
        assert "0.0001" in text
        assert "12.50" in text
        assert "123457" in text


class TestKSweepTable:
    def _point(self, k, violations):
        return EvalPoint(k=k, cell_area=1000.0, num_cells=50,
                         utilization=61.0, violations=violations,
                         overflowed_nets=0, routed_wirelength=0.0,
                         hpwl=0.0, routable=violations == 0)

    def test_layout(self):
        text = k_sweep_table([self._point(0.0, 100), self._point(0.001, 0)],
                             title="Table 2")
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "Cell Area" in lines[1]
        assert "Routing violations" in lines[1]
        assert len(lines) == 5  # title, header, separator, 2 rows
