"""Tests for the structural Verilog reader."""

import pytest

from repro.core import map_network, min_area
from repro.errors import ParseError
from repro.io import dump_verilog, parse_verilog
from repro.library import CORELIB018
from repro.network import decompose
from repro.network.equiv import _compare, _reorder, _stimulus
from repro.network.simulate import simulate_mapped


SAMPLE = """
// a hand-written module
module tiny (a, b, y);
  input a;
  input b;
  output y;
  wire n1;
  NAND2_X1 u1 (.Y(n1), .A(a), .B(b));
  INV_X1 u2 (.Y(y), .A(n1));
endmodule
"""


class TestParse:
    def test_sample(self):
        nl = parse_verilog(SAMPLE, CORELIB018)
        assert nl.name == "tiny"
        assert nl.inputs == ["a", "b"]
        assert nl.outputs == ["y"]
        assert nl.instances["u1"].cell_name == "NAND2_X1"
        assert nl.instances["u2"].pins == {"A": "n1"}

    def test_comments_stripped(self):
        text = SAMPLE.replace("wire n1;", "wire n1; /* block\ncomment */")
        nl = parse_verilog(text, CORELIB018)
        assert nl.num_cells() == 2

    def test_assign_alias(self):
        text = SAMPLE.replace("output y;", "output y;\n  output y2;")
        text = text.replace("endmodule", "  assign y2 = y;\nendmodule")
        text = text.replace("(a, b, y)", "(a, b, y, y2)")
        nl = parse_verilog(text, CORELIB018)
        assert nl.output_net["y2"] == "y"

    def test_no_module_rejected(self):
        with pytest.raises(ParseError):
            parse_verilog("wire x;")

    def test_multiple_modules_rejected(self):
        with pytest.raises(ParseError):
            parse_verilog(SAMPLE + "\nmodule other (x); input x; endmodule")

    def test_bus_rejected(self):
        with pytest.raises(ParseError):
            parse_verilog("module m (a); input [3:0] a; endmodule")

    def test_missing_output_pin_rejected(self):
        text = SAMPLE.replace(".Y(n1), ", "")
        with pytest.raises(ParseError, match="no .Y output"):
            parse_verilog(text, CORELIB018)

    def test_pin_mismatch_rejected(self):
        text = SAMPLE.replace(".A(a), .B(b)", ".A(a)")
        with pytest.raises(ParseError, match="do not match"):
            parse_verilog(text, CORELIB018)

    def test_unknown_cell_with_library_rejected(self):
        text = SAMPLE.replace("NAND2_X1", "XOR9_X1")
        with pytest.raises(Exception):
            parse_verilog(text, CORELIB018)

    def test_without_library_no_validation(self):
        text = SAMPLE.replace("NAND2_X1", "CUSTOM_CELL")
        nl = parse_verilog(text)
        assert nl.instances["u1"].cell_name == "CUSTOM_CELL"


class TestRoundtrip:
    def test_mapped_netlist_roundtrip(self, medium_base):
        result = map_network(medium_base, CORELIB018, min_area())
        nl = result.netlist
        back = parse_verilog(dump_verilog(nl), CORELIB018)
        assert back.num_cells() == nl.num_cells()
        assert back.outputs == nl.outputs
        stim, valid = _stimulus(nl.inputs, 2048, seed=9)
        ref = simulate_mapped(nl, CORELIB018, stim)
        got = simulate_mapped(back, CORELIB018,
                              _reorder(stim, nl.inputs, back.inputs))
        assert _compare(ref, got, valid) is None

    def test_escaped_names_roundtrip(self):
        from repro.network import MappedNetlist
        nl = MappedNetlist("esc")
        nl.add_input("a[0]")
        nl.add_instance("INV_X1", {"A": "a[0]"}, "y", name="u1")
        nl.add_output("y")
        back = parse_verilog(dump_verilog(nl), CORELIB018)
        assert back.inputs == ["a[0]"]
