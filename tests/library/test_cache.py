"""Tests for the content-keyed library build memo."""

import pytest

from repro.library import (
    CORELIB018,
    build_corelib018,
    cached_library,
    clear_library_cache,
    content_key,
    library_build_stats,
)
from repro.library.liberty import dump_library, load_library


class TestContentKey:
    def test_stable_and_content_sensitive(self):
        assert content_key("abc") == content_key("abc")
        assert content_key("abc") != content_key("abd")
        assert content_key("x").startswith("sha256:")


class TestCachedLibrary:
    def test_memo_identity(self):
        builds = []

        def builder():
            builds.append(1)
            return CORELIB018

        first = cached_library("test:memo-identity", builder)
        second = cached_library("test:memo-identity", builder)
        assert first is second
        assert len(builds) == 1

    def test_distinct_keys_build_separately(self):
        builds = []

        def builder():
            builds.append(1)
            return CORELIB018

        cached_library("test:distinct-a", builder)
        cached_library("test:distinct-b", builder)
        assert len(builds) == 2

    def test_failed_build_not_poisoned(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise ValueError("transient")
            return CORELIB018

        with pytest.raises(ValueError):
            cached_library("test:flaky", flaky)
        assert cached_library("test:flaky", flaky) is CORELIB018
        assert len(calls) == 2

    def test_counters_advance(self):
        before = library_build_stats()
        cached_library("test:counters", lambda: CORELIB018)
        cached_library("test:counters", lambda: CORELIB018)
        after = library_build_stats()
        assert after["library.build_misses"] >= \
            before["library.build_misses"] + 1
        assert after["library.build_hits"] >= \
            before["library.build_hits"] + 1
        assert after["library.cached"] >= 1


class TestBuilderMemoization:
    def test_corelib_builder_memoized(self):
        assert build_corelib018() is build_corelib018()

    def test_liberty_load_content_keyed(self):
        text = dump_library(CORELIB018)
        first = load_library(text)
        second = load_library(text)
        assert first is second
        # Different content (a comment changes the hash) -> new build.
        third = load_library(text + "\n")
        assert third is not first
        assert third.cell_names() == first.cell_names()

    def test_clear_resets(self):
        load_library(dump_library(CORELIB018))
        clear_library_cache()
        stats = library_build_stats()
        assert stats["library.build_hits"] == 0
        assert stats["library.build_misses"] == 0
        assert stats["library.cached"] == 0
