"""Tests for the cell / library data model."""

import pytest

from repro.errors import LibraryError
from repro.library import CellLibrary, LibCell, leaf, pinv, pnand
from repro.network.sop import parse_sop


def make_inv(name="INV", area=1.0):
    return LibCell(name=name, patterns=(pinv(leaf("A")),), area=area,
                   intrinsic_delay=0.02, drive_resistance=5.0,
                   pin_caps={"A": 0.002})


def make_nand(name="ND2", area=2.0):
    return LibCell(name=name, patterns=(pnand(leaf("A"), leaf("B")),),
                   area=area, intrinsic_delay=0.03, drive_resistance=6.0,
                   pin_caps={"A": 0.002, "B": 0.002})


class TestLibCell:
    def test_function_from_pattern(self):
        assert make_nand().function == parse_sop("A' + B'")

    def test_input_pins_sorted(self):
        assert make_nand().input_pins == ["A", "B"]

    def test_delay_linear(self):
        cell = make_inv()
        assert cell.delay(0.0) == pytest.approx(0.02)
        assert cell.delay(0.01) == pytest.approx(0.02 + 0.05)

    def test_missing_pin_cap_rejected(self):
        with pytest.raises(LibraryError, match="capacitance"):
            LibCell(name="bad", patterns=(pinv(leaf("A")),), area=1.0,
                    intrinsic_delay=0.02, drive_resistance=5.0, pin_caps={})

    def test_non_positive_area_rejected(self):
        with pytest.raises(LibraryError, match="area"):
            make_inv(area=0.0)

    def test_no_pattern_rejected(self):
        with pytest.raises(LibraryError):
            LibCell(name="bad", patterns=(), area=1.0, intrinsic_delay=0.0,
                    drive_resistance=1.0, pin_caps={})

    def test_inconsistent_patterns_rejected(self):
        with pytest.raises(LibraryError):
            LibCell(name="bad",
                    patterns=(pnand(leaf("A"), leaf("B")),
                              pinv(pnand(leaf("A"), leaf("B")))),
                    area=1.0, intrinsic_delay=0.0, drive_resistance=1.0,
                    pin_caps={"A": 0.001, "B": 0.001})


class TestCellLibrary:
    def test_lookup(self):
        lib = CellLibrary("t", [make_inv(), make_nand()])
        assert lib.cell("INV").name == "INV"
        assert "ND2" in lib
        assert len(lib) == 2

    def test_unknown_cell(self):
        lib = CellLibrary("t", [make_inv(), make_nand()])
        with pytest.raises(LibraryError):
            lib.cell("XOR9")

    def test_duplicate_cell_rejected(self):
        with pytest.raises(LibraryError):
            CellLibrary("t", [make_inv(), make_inv()])

    def test_inverter_is_smallest(self):
        small = make_inv("INV_S", area=0.5)
        big = make_inv("INV_B", area=2.0)
        lib = CellLibrary("t", [small, big, make_nand()])
        assert lib.inverter.name == "INV_S"

    def test_library_without_inverter_rejected(self):
        with pytest.raises(LibraryError, match="inverter"):
            CellLibrary("t", [make_nand()])

    def test_library_without_nand_rejected(self):
        with pytest.raises(LibraryError, match="NAND"):
            CellLibrary("t", [make_inv()])

    def test_cell_width(self):
        lib = CellLibrary("t", [make_inv(), make_nand()], row_height=2.0)
        assert lib.cell_width("ND2") == pytest.approx(1.0)

    def test_max_pattern_depth(self):
        lib = CellLibrary("t", [make_inv(), make_nand()])
        assert lib.max_pattern_depth() == 1
