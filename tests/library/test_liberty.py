"""Tests for the mini-liberty format."""

import pytest

from repro.errors import ParseError
from repro.library import CORELIB018, dump_library, load_library, parse_pattern


class TestPatternParsing:
    @pytest.mark.parametrize("text", [
        "A", "INV(A)", "NAND(A, B)", "NAND(INV(A), INV(B))",
        "INV(NAND(NAND(A, B), INV(C)))",
    ])
    def test_roundtrip(self, text):
        assert parse_pattern(text).to_string() == text

    def test_whitespace_tolerated(self):
        assert parse_pattern(" NAND( A ,  B ) ").to_string() == "NAND(A, B)"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_pattern("INV(A) junk")

    def test_missing_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_pattern("INV(A")

    def test_missing_comma_rejected(self):
        with pytest.raises(ParseError):
            parse_pattern("NAND(A B)")


class TestLibraryRoundtrip:
    def test_full_roundtrip(self):
        text = dump_library(CORELIB018)
        lib = load_library(text)
        assert lib.name == CORELIB018.name
        assert lib.cell_names() == CORELIB018.cell_names()
        for name in lib.cell_names():
            a, b = lib.cell(name), CORELIB018.cell(name)
            assert a.area == pytest.approx(b.area)
            assert a.intrinsic_delay == pytest.approx(b.intrinsic_delay)
            assert a.drive_resistance == pytest.approx(b.drive_resistance)
            assert a.function == b.function
            assert a.pin_caps == b.pin_caps

    def test_row_height_roundtrip(self):
        lib = load_library(dump_library(CORELIB018))
        assert lib.row_height == pytest.approx(CORELIB018.row_height)

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError):
            load_library("cell (\"X\") { }")

    def test_empty_library_rejected(self):
        with pytest.raises(ParseError):
            load_library('library ("empty") { }')

    def test_cell_missing_area_rejected(self):
        text = ('library ("t") { cell ("X") { intrinsic : 1; '
                'resistance : 1; pattern : INV(A); '
                'pin ("A") { cap : 0.001; } } }')
        with pytest.raises(ParseError, match="area"):
            load_library(text)
