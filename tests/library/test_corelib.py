"""Tests for the synthetic corelib018 library."""

import pytest

from repro.library import CORELIB018, build_corelib018, pattern_to_sop
from repro.network.sop import parse_sop


class TestCalibration:
    def test_figure1_min_area_mapping(self):
        """NAND3 + AOI21 + 2 INV must equal the paper's 53.248 µm²."""
        total = (CORELIB018.cell("NAND3_X1").area
                 + CORELIB018.cell("AOI21_X1").area
                 + 2 * CORELIB018.cell("INV_X1").area)
        assert total == pytest.approx(53.248)

    def test_figure1_congestion_mapping(self):
        """2 OR2 + 2 NAND2 + INV must equal the paper's 65.536 µm²."""
        total = (2 * CORELIB018.cell("OR2_X1").area
                 + 2 * CORELIB018.cell("NAND2_X1").area
                 + CORELIB018.cell("INV_X1").area)
        assert total == pytest.approx(65.536)


class TestContents:
    def test_has_basic_cells(self):
        for name in ("INV_X1", "NAND2_X1", "NAND3_X1", "NOR2_X1",
                     "AND2_X1", "OR2_X1", "AOI21_X1", "OAI21_X1", "BUF_X1"):
            assert name in CORELIB018

    def test_functions(self):
        assert CORELIB018.cell("NAND2_X1").function == parse_sop("A' + B'")
        assert CORELIB018.cell("NOR2_X1").function == parse_sop("A' B'")
        assert CORELIB018.cell("AND2_X1").function == parse_sop("A B")
        assert CORELIB018.cell("OR2_X1").function == parse_sop("A + B")
        assert CORELIB018.cell("AOI21_X1").function == \
            parse_sop("A' C' + B' C'")

    def test_inverter_selection(self):
        assert CORELIB018.inverter.name == "INV_X1"

    def test_base_nand_selection(self):
        assert CORELIB018.base_nand.name == "NAND2_X1"

    def test_drive_strengths_ordered(self):
        x1 = CORELIB018.cell("INV_X1")
        x2 = CORELIB018.cell("INV_X2")
        x4 = CORELIB018.cell("INV_X4")
        assert x1.area < x2.area < x4.area
        assert x1.drive_resistance > x2.drive_resistance > x4.drive_resistance

    def test_all_patterns_consistent(self):
        for cell in CORELIB018.cells():
            reference = cell.function
            for pattern in cell.patterns:
                assert pattern_to_sop(pattern) == reference

    def test_multi_pattern_cells(self):
        assert len(CORELIB018.cell("NAND3_X1").patterns) == 2
        assert len(CORELIB018.cell("NAND4_X1").patterns) == 2

    def test_builder_returns_fresh_equivalent(self):
        lib = build_corelib018()
        assert lib.cell_names() == CORELIB018.cell_names()

    def test_row_height(self):
        assert CORELIB018.row_height == pytest.approx(5.2)

    def test_areas_positive_and_monotone_in_inputs(self):
        nand2 = CORELIB018.cell("NAND2_X1").area
        nand3 = CORELIB018.cell("NAND3_X1").area
        nand4 = CORELIB018.cell("NAND4_X1").area
        assert 0 < nand2 < nand3 < nand4
