"""Tests for pattern trees."""

import pytest

from repro.errors import LibraryError
from repro.library import leaf, pattern_to_sop, pinv, pnand
from repro.network.sop import parse_sop


class TestStructure:
    def test_leaves_order(self):
        p = pnand(pinv(leaf("A")), leaf("B"))
        assert p.leaves() == ["A", "B"]

    def test_num_gates(self):
        p = pnand(pinv(leaf("A")), leaf("B"))
        assert p.num_gates() == 2

    def test_depth(self):
        p = pinv(pnand(leaf("A"), pinv(leaf("B"))))
        assert p.depth() == 3

    def test_read_once_enforced(self):
        p = pnand(leaf("A"), leaf("A"))
        with pytest.raises(LibraryError, match="read-once"):
            p.check()

    def test_leaf_without_pin_rejected(self):
        from repro.library.patterns import PatternNode, LEAF
        with pytest.raises(LibraryError):
            PatternNode(LEAF).check()

    def test_bad_arity_rejected(self):
        from repro.library.patterns import P_INV, P_NAND, PatternNode
        with pytest.raises(LibraryError):
            PatternNode(P_INV, children=[leaf("A"), leaf("B")]).check()
        with pytest.raises(LibraryError):
            PatternNode(P_NAND, children=[leaf("A")]).check()

    def test_to_string(self):
        p = pnand(pinv(leaf("A")), leaf("B"))
        assert p.to_string() == "NAND(INV(A), B)"


class TestFunctionDerivation:
    @pytest.mark.parametrize("pattern,expected", [
        (pinv(leaf("A")), "A'"),
        (pnand(leaf("A"), leaf("B")), "A' + B'"),
        (pinv(pnand(leaf("A"), leaf("B"))), "A B"),
        (pnand(pinv(leaf("A")), pinv(leaf("B"))), "A + B"),
        (pinv(pnand(pinv(leaf("A")), pinv(leaf("B")))), "A' B'"),
        (pinv(pnand(pnand(leaf("A"), leaf("B")), pinv(leaf("C")))),
         "A' C' + B' C'"),                            # AOI21
        (pnand(pnand(pinv(leaf("A")), pinv(leaf("B"))), leaf("C")),
         "A' B' + C'"),                               # OAI21
    ])
    def test_known_functions(self, pattern, expected):
        assert pattern_to_sop(pattern) == parse_sop(expected)

    def test_buffer(self):
        assert pattern_to_sop(pinv(pinv(leaf("A")))) == parse_sop("A")
