"""Unit tests for the Boolean network container."""

import pytest

from repro.errors import NetworkError
from repro.network import BooleanNetwork, parse_sop


def build_chain(depth=5):
    net = BooleanNetwork("chain")
    net.add_input("a")
    net.add_input("b")
    prev = "a"
    for i in range(depth):
        name = f"n{i}"
        net.add_node(name, parse_sop(f"{prev} b"))
        prev = name
    net.add_output(prev)
    return net


class TestConstruction:
    def test_duplicate_input_rejected(self):
        net = BooleanNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_input("a")

    def test_node_shadowing_input_rejected(self):
        net = BooleanNetwork()
        net.add_input("a")
        with pytest.raises(NetworkError):
            net.add_node("a", parse_sop("1"))

    def test_new_name_unique(self):
        net = BooleanNetwork()
        net.add_input("n1")
        fresh = net.new_name("n")
        assert fresh != "n1"
        assert not net.signal_exists(fresh)


class TestTopology:
    def test_topological_order_respects_fanin(self, small_network):
        order = small_network.topological_order()
        assert order.index("g1") < order.index("g2")
        assert order.index("g1") < order.index("g4")
        assert order.index("g3") < order.index("g4")

    def test_cycle_detected(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("x", parse_sop("a y"))
        net.add_node("y", parse_sop("x"))
        net.add_output("y")
        with pytest.raises(NetworkError, match="cycle"):
            net.topological_order()

    def test_dangling_fanin_detected(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("x", parse_sop("a missing"))
        net.add_output("x")
        with pytest.raises(NetworkError, match="undefined|dangling"):
            net.check()

    def test_deep_chain_no_recursion_error(self):
        net = build_chain(depth=5000)
        order = net.topological_order()
        assert len(order) == 5000


class TestFanout:
    def test_fanout_counts(self, small_network):
        counts = small_network.fanout_counts()
        assert counts["g1"] == 2          # g2 and g4
        assert counts["g3"] == 2          # g4 and the PO
        assert counts["g2"] == 1          # PO only

    def test_fanouts_map(self, small_network):
        fans = small_network.fanouts()
        assert set(fans["g1"]) == {"g2", "g4"}


class TestTransitiveFanin:
    def test_includes_inputs(self, small_network):
        cone = small_network.transitive_fanin(["g2"])
        assert "a" in cone and "g1" in cone and "g2" in cone
        assert "g3" not in cone


class TestCleanup:
    def test_remove_dangling(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("used", parse_sop("a"))
        net.add_node("dead", parse_sop("a'"))
        net.add_output("used")
        removed = net.remove_dangling()
        assert removed == 1
        assert "dead" not in net.nodes

    def test_copy_is_independent(self, small_network):
        clone = small_network.copy()
        clone.set_function("g1", parse_sop("a"))
        assert small_network.nodes["g1"].sop != clone.nodes["g1"].sop

    def test_stats(self, small_network):
        stats = small_network.stats()
        assert stats["inputs"] == 8
        assert stats["outputs"] == 3
        assert stats["nodes"] == 4
        assert stats["literals"] == small_network.num_literals()


class TestOutputs:
    def test_undefined_output_fails_check(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_output("nope")
        with pytest.raises(NetworkError):
            net.check()

    def test_output_on_input_allowed(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_output("a")
        net.check()
