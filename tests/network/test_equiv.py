"""Tests for the equivalence-check helpers themselves."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.network import BooleanNetwork, decompose, parse_sop
from repro.network.equiv import (
    EXHAUSTIVE_LIMIT,
    _compare,
    _mask_tail,
    _reorder,
    _stimulus,
    check_base_vs_mapped,
    check_boolnet_vs_base,
)


class TestStimulusSelection:
    def test_small_support_uses_exhaustive(self):
        stim, valid = _stimulus(["a", "b", "c"], 4096, seed=1)
        assert valid == 8

    def test_large_support_uses_random(self):
        names = [f"i{k}" for k in range(EXHAUSTIVE_LIMIT + 1)]
        stim, valid = _stimulus(names, 512, seed=1)
        assert valid == stim.shape[1] * 64
        assert stim.shape[0] == len(names)


class TestMaskTail:
    def test_padding_bits_zeroed(self):
        words = {"f": np.array([0xFFFF_FFFF_FFFF_FFFF], dtype=np.uint64)}
        masked = _mask_tail(words, valid=4)
        assert int(masked["f"][0]) == 0b1111

    def test_full_width_untouched(self):
        words = {"f": np.array([123], dtype=np.uint64)}
        assert int(_mask_tail(words, valid=64)["f"][0]) == 123


class TestReorder:
    def test_permutes_rows(self):
        stim = np.array([[1], [2], [3]], dtype=np.uint64)
        out = _reorder(stim, ["a", "b", "c"], ["c", "a", "b"])
        assert out.tolist() == [[3], [1], [2]]

    def test_unknown_name_raises(self):
        stim = np.zeros((1, 1), dtype=np.uint64)
        with pytest.raises(NetworkError):
            _reorder(stim, ["a"], ["zzz"])


class TestCompare:
    def test_output_set_mismatch(self):
        a = {"f": np.zeros(1, dtype=np.uint64)}
        b = {"g": np.zeros(1, dtype=np.uint64)}
        with pytest.raises(NetworkError, match="output sets differ"):
            _compare(a, b, 64)

    def test_difference_beyond_valid_ignored(self):
        a = {"f": np.array([0b0101], dtype=np.uint64)}
        b = {"f": np.array([0b1101], dtype=np.uint64)}
        assert _compare(a, b, valid=3) is None
        assert _compare(a, b, valid=4) == "f"


class TestCheckers:
    def test_base_check_catches_mutation(self, small_network):
        base = decompose(small_network)
        # Corrupt one output binding.
        other = sorted(v for v in base.gates())[0]
        base.outputs["g2"] = other
        with pytest.raises(NetworkError):
            check_boolnet_vs_base(small_network, base)

    def test_mapped_check_catches_wrong_cell(self, small_base):
        from repro.core import map_network, min_area
        from repro.library import CORELIB018
        result = map_network(small_base, CORELIB018, min_area())
        inst = next(iter(result.netlist.instances.values()))
        # Swap a NAND for a NOR (same pins, different function).
        if inst.cell_name.startswith("NAND2"):
            inst.cell_name = "NOR2_X1"
        else:
            for cand in result.netlist.instances.values():
                if cand.cell_name.startswith("NAND2"):
                    cand.cell_name = "NOR2_X1"
                    break
            else:
                pytest.skip("no NAND2 instance to corrupt")
        with pytest.raises(NetworkError):
            check_base_vs_mapped(small_base, result.netlist, CORELIB018)
