"""Unit tests for cube algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.network.cubes import (
    ONE_CUBE,
    cube_cofactor,
    cube_contains,
    cube_distance,
    cube_divide,
    cube_mul,
    cube_str,
    cube_vars,
    lit,
    lit_negate,
    lit_str,
    make_cube,
    supercube,
)

VARS = "abcdef"


def cubes_strategy(max_size=4):
    literal = st.tuples(st.sampled_from(VARS), st.booleans())
    return st.frozensets(literal, max_size=max_size).map(
        lambda s: make_cube(s))


class TestLiterals:
    def test_negate_is_involution(self):
        literal = lit("x", True)
        assert lit_negate(lit_negate(literal)) == literal

    def test_negate_flips_phase(self):
        assert lit_negate(lit("x", True)) == ("x", False)

    def test_str_positive(self):
        assert lit_str(lit("x")) == "x"

    def test_str_negative(self):
        assert lit_str(lit("x", False)) == "x'"


class TestMakeCube:
    def test_empty_is_one(self):
        assert make_cube([]) == ONE_CUBE

    def test_conflicting_phases_is_null(self):
        assert make_cube([lit("a", True), lit("a", False)]) is None

    def test_duplicate_literal_collapses(self):
        cube = make_cube([lit("a"), lit("a")])
        assert cube == frozenset([lit("a")])

    def test_vars(self):
        cube = make_cube([lit("a"), lit("b", False)])
        assert cube_vars(cube) == frozenset("ab")


class TestCubeAlgebra:
    def test_mul_disjoint(self):
        ab = cube_mul(make_cube([lit("a")]), make_cube([lit("b")]))
        assert ab == make_cube([lit("a"), lit("b")])

    def test_mul_null(self):
        assert cube_mul(make_cube([lit("a")]),
                        make_cube([lit("a", False)])) is None

    def test_mul_identity(self):
        cube = make_cube([lit("a"), lit("b", False)])
        assert cube_mul(cube, ONE_CUBE) == cube

    def test_divide_subset(self):
        abc = make_cube([lit("a"), lit("b"), lit("c")])
        ab = make_cube([lit("a"), lit("b")])
        assert cube_divide(abc, ab) == make_cube([lit("c")])

    def test_divide_not_subset(self):
        ab = make_cube([lit("a"), lit("b")])
        cd = make_cube([lit("c"), lit("d")])
        assert cube_divide(ab, cd) is None

    def test_divide_wrong_phase(self):
        a = make_cube([lit("a")])
        na = make_cube([lit("a", False)])
        assert cube_divide(a, na) is None

    def test_contains(self):
        abc = make_cube([lit("a"), lit("b"), lit("c")])
        ab = make_cube([lit("a"), lit("b")])
        assert cube_contains(abc, ab)
        assert not cube_contains(ab, abc)

    def test_cofactor_removes_literal(self):
        ab = make_cube([lit("a"), lit("b")])
        assert cube_cofactor(ab, lit("a")) == make_cube([lit("b")])

    def test_cofactor_conflict_is_none(self):
        ab = make_cube([lit("a"), lit("b")])
        assert cube_cofactor(ab, lit("a", False)) is None

    def test_cofactor_absent_literal_keeps_cube(self):
        ab = make_cube([lit("a"), lit("b")])
        assert cube_cofactor(ab, lit("c")) == ab


class TestSupercube:
    def test_common_literal_survives(self):
        c1 = make_cube([lit("a"), lit("b")])
        c2 = make_cube([lit("a"), lit("c")])
        assert supercube([c1, c2]) == make_cube([lit("a")])

    def test_no_common(self):
        c1 = make_cube([lit("a")])
        c2 = make_cube([lit("b")])
        assert supercube([c1, c2]) == ONE_CUBE

    def test_empty_input(self):
        assert supercube([]) == ONE_CUBE


class TestDistance:
    def test_zero_distance(self):
        c1 = make_cube([lit("a"), lit("b")])
        c2 = make_cube([lit("a"), lit("c")])
        assert cube_distance(c1, c2) == 0

    def test_one_distance(self):
        c1 = make_cube([lit("a"), lit("b")])
        c2 = make_cube([lit("a", False), lit("b")])
        assert cube_distance(c1, c2) == 1


class TestStr:
    def test_one_cube(self):
        assert cube_str(ONE_CUBE) == "1"

    def test_ordering_deterministic(self):
        cube = make_cube([lit("b"), lit("a", False)])
        assert cube_str(cube) == "a' b"


class TestProperties:
    @given(cubes_strategy(), cubes_strategy())
    def test_mul_commutative(self, a, b):
        if a is None or b is None:
            return
        assert cube_mul(a, b) == cube_mul(b, a)

    @given(cubes_strategy(), cubes_strategy())
    def test_divide_then_mul_restores(self, a, b):
        if a is None or b is None:
            return
        quotient = cube_divide(a, b)
        if quotient is not None:
            assert cube_mul(quotient, b) == a

    @given(cubes_strategy())
    def test_supercube_of_self(self, a):
        if a is None:
            return
        assert supercube([a, a]) == a
