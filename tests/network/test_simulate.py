"""Tests for bit-parallel simulation and equivalence checking."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.network import (
    BooleanNetwork,
    check_boolnet_vs_boolnet,
    decompose,
    exhaustive_stimulus,
    parse_sop,
    random_stimulus,
    simulate_base,
    simulate_boolnet,
)


class TestStimulus:
    def test_exhaustive_shape(self):
        stim = exhaustive_stimulus(3)
        assert stim.shape == (3, 1)

    def test_exhaustive_patterns(self):
        stim = exhaustive_stimulus(2)
        # 4 vectors: input 0 toggles fastest.
        assert int(stim[0, 0]) & 0b1111 == 0b1010
        assert int(stim[1, 0]) & 0b1111 == 0b1100

    def test_exhaustive_limit(self):
        with pytest.raises(NetworkError):
            exhaustive_stimulus(21)

    def test_random_deterministic(self):
        a = random_stimulus(4, 256, seed=7)
        b = random_stimulus(4, 256, seed=7)
        assert np.array_equal(a, b)

    def test_random_seeds_differ(self):
        a = random_stimulus(4, 256, seed=1)
        b = random_stimulus(4, 256, seed=2)
        assert not np.array_equal(a, b)


class TestSimulateBoolnet:
    def test_and_gate(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", parse_sop("a b"))
        net.add_output("f")
        out = simulate_boolnet(net, exhaustive_stimulus(2))
        assert int(out["f"][0]) & 0b1111 == 0b1000

    def test_complement(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_node("f", parse_sop("a'"))
        net.add_output("f")
        out = simulate_boolnet(net, exhaustive_stimulus(1))
        assert int(out["f"][0]) & 0b11 == 0b01

    def test_wrong_stimulus_rows(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_output("a")
        with pytest.raises(NetworkError):
            simulate_boolnet(net, exhaustive_stimulus(2))


class TestSimulateBase:
    def test_nand_inv(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", parse_sop("a b"))
        net.add_output("f")
        base = decompose(net)
        ref = simulate_boolnet(net, exhaustive_stimulus(2))
        got = simulate_base(base, exhaustive_stimulus(2))
        mask = np.uint64(0b1111)
        assert (ref["f"][0] & mask) == (got["f"][0] & mask)


class TestEquivChecker:
    def test_detects_difference(self):
        net1 = BooleanNetwork("a")
        net1.add_input("x")
        net1.add_node("f", parse_sop("x"))
        net1.add_output("f")
        net2 = BooleanNetwork("b")
        net2.add_input("x")
        net2.add_node("f", parse_sop("x'"))
        net2.add_output("f")
        with pytest.raises(NetworkError, match="changed function"):
            check_boolnet_vs_boolnet(net1, net2)

    def test_accepts_identical(self, small_network):
        check_boolnet_vs_boolnet(small_network, small_network.copy())

    def test_input_order_insensitive(self):
        net1 = BooleanNetwork("a")
        net1.add_input("x")
        net1.add_input("y")
        net1.add_node("f", parse_sop("x y'"))
        net1.add_output("f")
        net2 = BooleanNetwork("b")
        net2.add_input("y")   # reversed declaration order
        net2.add_input("x")
        net2.add_node("f", parse_sop("x y'"))
        net2.add_output("f")
        check_boolnet_vs_boolnet(net1, net2)
