"""Unit and property tests for SOP expressions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.cubes import lit, make_cube
from repro.network.sop import Sop, parse_sop

VARS = "abcd"


def sop_strategy(max_cubes=4, max_width=3):
    literal = st.tuples(st.sampled_from(VARS), st.booleans())
    cube = st.frozensets(literal, max_size=max_width)
    return st.lists(cube, max_size=max_cubes).map(Sop.from_cubes)


def assignments():
    return st.fixed_dictionaries({v: st.booleans() for v in VARS})


class TestConstants:
    def test_zero(self):
        assert Sop.zero().is_zero()
        assert not Sop.zero().is_one()

    def test_one(self):
        assert Sop.one().is_one()
        assert not Sop.one().is_zero()

    def test_zero_evaluates_false(self):
        assert not Sop.zero().evaluate({})

    def test_one_evaluates_true(self):
        assert Sop.one().evaluate({})


class TestParseRoundtrip:
    @pytest.mark.parametrize("text", ["0", "1", "a", "a'", "a b + c'",
                                      "a b c + a' b' c' + d"])
    def test_roundtrip(self, text):
        assert parse_sop(parse_sop(text).to_string()) == parse_sop(text)

    def test_null_cube_dropped(self):
        assert parse_sop("a a'") == Sop.zero()

    def test_parse_whitespace(self):
        assert parse_sop("  a   b  +  c ") == parse_sop("a b + c")


class TestStructure:
    def test_support(self):
        assert parse_sop("a b' + c").support() == frozenset("abc")

    def test_num_literals(self):
        assert parse_sop("a b + c").num_literals() == 3

    def test_literal_counts(self):
        counts = parse_sop("a b + a c").literal_counts()
        assert counts[lit("a")] == 2
        assert counts[lit("b")] == 1

    def test_cube_free_true(self):
        assert parse_sop("a b + c").is_cube_free()

    def test_cube_free_false_common_literal(self):
        assert not parse_sop("a b + a c").is_cube_free()

    def test_single_cube_not_cube_free(self):
        assert not parse_sop("a b").is_cube_free()


class TestAlgebra:
    def test_add(self):
        assert parse_sop("a").add(parse_sop("b")) == parse_sop("a + b")

    def test_mul(self):
        got = parse_sop("a + b").mul(parse_sop("c + d"))
        assert got == parse_sop("a c + a d + b c + b d")

    def test_mul_annihilates_conflicts(self):
        got = parse_sop("a").mul(parse_sop("a'"))
        assert got.is_zero()

    def test_mul_cube(self):
        got = parse_sop("a + b").mul_cube(make_cube([lit("c")]))
        assert got == parse_sop("a c + b c")

    def test_cofactor_positive(self):
        got = parse_sop("a b + a' c").cofactor(lit("a", True))
        assert got == parse_sop("b")

    def test_cofactor_negative(self):
        got = parse_sop("a b + a' c").cofactor(lit("a", False))
        assert got == parse_sop("c")

    def test_restrict(self):
        got = parse_sop("a b + c").restrict({"a": True, "b": True})
        assert got.is_one()

    def test_remove_scc(self):
        got = parse_sop("a + a b").remove_scc()
        assert got == parse_sop("a")

    def test_remove_scc_keeps_distinct(self):
        f = parse_sop("a b + c d")
        assert f.remove_scc() == f


class TestEvaluate:
    def test_simple(self):
        f = parse_sop("a b + c'")
        assert f.evaluate({"a": True, "b": True, "c": True})
        assert not f.evaluate({"a": True, "b": False, "c": True})
        assert f.evaluate({"a": False, "b": False, "c": False})


class TestBuilders:
    def test_and_of(self):
        assert Sop.and_of(["a", "b"]) == parse_sop("a b")

    def test_or_of(self):
        assert Sop.or_of(["a", "b"]) == parse_sop("a + b")


class TestProperties:
    @given(sop_strategy(), sop_strategy(), assignments())
    @settings(max_examples=60)
    def test_add_is_or(self, f, g, env):
        assert f.add(g).evaluate(env) == (f.evaluate(env) or g.evaluate(env))

    @given(sop_strategy(), sop_strategy(), assignments())
    @settings(max_examples=60)
    def test_mul_is_and(self, f, g, env):
        assert f.mul(g).evaluate(env) == (f.evaluate(env) and g.evaluate(env))

    @given(sop_strategy(), assignments())
    @settings(max_examples=60)
    def test_remove_scc_preserves_function(self, f, env):
        assert f.remove_scc().evaluate(env) == f.evaluate(env)

    @given(sop_strategy())
    @settings(max_examples=60)
    def test_scc_never_grows(self, f):
        assert len(f.remove_scc()) <= len(f)
