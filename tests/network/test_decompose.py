"""Tests for technology decomposition (SOP -> NAND2/INV)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.network import (
    BooleanNetwork,
    check_boolnet_vs_base,
    decompose,
    parse_sop,
)
from repro.network.sop import Sop

VARS = "abcd"


def sop_strategy():
    literal = st.tuples(st.sampled_from(VARS), st.booleans())
    cube = st.frozensets(literal, min_size=1, max_size=3)
    return st.lists(cube, min_size=1, max_size=4).map(Sop.from_cubes)


class TestBasicDecomposition:
    @pytest.mark.parametrize("text", [
        "a", "a'", "a b", "a + b", "a b + c", "a b c d",
        "a' b' + c' d'", "a b + a' b'",
    ])
    def test_preserves_function(self, text):
        net = BooleanNetwork("t")
        for v in VARS:
            net.add_input(v)
        net.add_node("f", parse_sop(text))
        net.add_output("f")
        base = decompose(net)
        check_boolnet_vs_base(net, base)

    def test_multi_node_network(self, small_network):
        base = decompose(small_network)
        check_boolnet_vs_base(small_network, base)

    def test_outputs_preserved(self, small_network):
        base = decompose(small_network)
        assert set(base.outputs) == set(small_network.outputs)

    def test_inputs_preserved(self, small_network):
        base = decompose(small_network)
        assert set(base.input_vertex) == set(small_network.inputs)

    def test_only_base_gates(self, small_base):
        small_base.check()
        stats = small_base.stats()
        assert stats["gates"] == stats["nand2"] + stats["inv"]


class TestConstants:
    def test_constant_one_output(self):
        net = BooleanNetwork("one")
        net.add_input("a")
        net.add_node("f", Sop.one())
        net.add_output("f")
        base = decompose(net)
        check_boolnet_vs_base(net, base)

    def test_constant_zero_output(self):
        net = BooleanNetwork("zero")
        net.add_input("a")
        net.add_node("f", Sop.zero())
        net.add_output("f")
        base = decompose(net)
        check_boolnet_vs_base(net, base)

    def test_no_inputs_with_nodes_rejected(self):
        net = BooleanNetwork("empty")
        net.add_node("f", Sop.one())
        net.add_output("f")
        with pytest.raises(NetworkError):
            decompose(net)


class TestSharing:
    def test_shared_inverters(self):
        # Both nodes use a'; structural hashing must share the inverter.
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_input("b")
        net.add_node("f", parse_sop("a' b"))
        net.add_node("g", parse_sop("a' b'"))
        net.add_output("f")
        net.add_output("g")
        base = decompose(net)
        inv_of_a = [v for v in base.gates()
                    if base.kind[v] == "inv"
                    and base.fanins[v][0] == base.input_vertex["a"]]
        assert len(inv_of_a) == 1

    def test_identical_cubes_shared(self):
        net = BooleanNetwork("t")
        for v in "ab":
            net.add_input(v)
        net.add_node("f", parse_sop("a b"))
        net.add_node("g", parse_sop("a b"))
        net.add_output("f")
        net.add_output("g")
        base = decompose(net)
        # Both outputs should map onto the same vertex via hashing.
        assert base.outputs["f"] == base.outputs["g"]


class TestProperty:
    @given(sop_strategy())
    @settings(max_examples=40, deadline=None)
    def test_random_sops_preserved(self, sop):
        net = BooleanNetwork("p")
        for v in VARS:
            net.add_input(v)
        net.add_node("f", sop)
        net.add_output("f")
        base = decompose(net)
        check_boolnet_vs_base(net, base)
