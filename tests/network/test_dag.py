"""Unit tests for the base-gate DAG."""

import pytest

from repro.errors import NetworkError
from repro.network.dag import BaseNetwork, INV, NAND2, PI


@pytest.fixture
def tiny():
    net = BaseNetwork("tiny")
    a = net.add_input("a")
    b = net.add_input("b")
    n1 = net.add_nand2(a, b)
    i1 = net.add_inv(n1)
    net.set_output("y", i1)
    return net


class TestConstruction:
    def test_kinds(self, tiny):
        assert tiny.kind[0] == PI
        assert tiny.kind[2] == NAND2
        assert tiny.kind[3] == INV

    def test_duplicate_input_rejected(self, tiny):
        with pytest.raises(NetworkError):
            tiny.add_input("a")

    def test_bad_arity(self, tiny):
        with pytest.raises(NetworkError):
            tiny.add_gate(NAND2, (0,))
        with pytest.raises(NetworkError):
            tiny.add_gate(INV, (0, 1))

    def test_unknown_kind(self, tiny):
        with pytest.raises(NetworkError):
            tiny.add_gate("xor", (0, 1))

    def test_missing_fanin(self, tiny):
        with pytest.raises(NetworkError):
            tiny.add_inv(99)

    def test_output_on_missing_vertex(self, tiny):
        with pytest.raises(NetworkError):
            tiny.set_output("z", 99)


class TestStructuralHashing:
    def test_nand_reuse(self, tiny):
        v1 = tiny.add_nand2(0, 1)
        v2 = tiny.add_nand2(1, 0)  # symmetric
        assert v1 == v2 == 2

    def test_inv_reuse(self, tiny):
        assert tiny.add_inv(2) == 3

    def test_distinct_gates_not_merged(self, tiny):
        v = tiny.add_nand2(0, 3)
        assert v != 2


class TestQueries:
    def test_counts(self, tiny):
        stats = tiny.stats()
        assert stats == {"inputs": 2, "outputs": 1, "gates": 2,
                         "nand2": 1, "inv": 1}

    def test_fanout_counts_include_po(self, tiny):
        counts = tiny.fanout_counts()
        assert counts[3] == 1  # the PO
        assert counts[2] == 1  # feeds the inverter

    def test_roots_are_po_drivers(self, tiny):
        assert tiny.roots() == [3]

    def test_roots_deduplicated(self, tiny):
        tiny.set_output("y2", 3)
        assert tiny.roots() == [3]

    def test_transitive_fanin(self, tiny):
        assert tiny.transitive_fanin([3]) == {0, 1, 2, 3}

    def test_topological_is_creation_order(self, tiny):
        assert tiny.topological_order() == [0, 1, 2, 3]

    def test_check_passes(self, tiny):
        tiny.check()

    def test_gates_iterator(self, tiny):
        assert list(tiny.gates()) == [2, 3]
