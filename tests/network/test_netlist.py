"""Unit tests for the mapped-netlist container."""

import pytest

from repro.errors import NetworkError
from repro.library import CORELIB018
from repro.network import MappedNetlist


@pytest.fixture
def tiny():
    nl = MappedNetlist("tiny")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_instance("NAND2_X1", {"A": "a", "B": "b"}, "n1", name="u1")
    nl.add_instance("INV_X1", {"A": "n1"}, "y", name="u2")
    nl.add_output("y")
    return nl


class TestConstruction:
    def test_duplicate_input(self, tiny):
        with pytest.raises(NetworkError):
            tiny.add_input("a")

    def test_duplicate_output(self, tiny):
        with pytest.raises(NetworkError):
            tiny.add_output("y")

    def test_duplicate_instance_name(self, tiny):
        with pytest.raises(NetworkError):
            tiny.add_instance("INV_X1", {"A": "a"}, "z", name="u1")

    def test_output_aliasing(self, tiny):
        tiny.add_output("y_copy", net="y")
        assert tiny.output_net["y_copy"] == "y"
        tiny.check()

    def test_output_on_input_passthrough(self, tiny):
        tiny.add_output("a_out", net="a")
        tiny.check()


class TestMaps:
    def test_driver_map(self, tiny):
        assert tiny.driver_map() == {"n1": "u1", "y": "u2"}

    def test_multiple_drivers_rejected(self, tiny):
        tiny.add_instance("INV_X1", {"A": "a"}, "y", name="u3")
        with pytest.raises(NetworkError, match="multiple drivers"):
            tiny.driver_map()

    def test_sink_map(self, tiny):
        sinks = tiny.sink_map()
        assert sinks["n1"] == [("u2", "A")]
        assert ("u1", "A") in sinks["a"]

    def test_nets(self, tiny):
        assert set(tiny.nets()) == {"a", "b", "n1", "y"}


class TestTopology:
    def test_topological_instances(self, tiny):
        order = tiny.topological_instances()
        assert order.index("u1") < order.index("u2")

    def test_cycle_detected(self):
        nl = MappedNetlist()
        nl.add_instance("INV_X1", {"A": "x"}, "y", name="u1")
        nl.add_instance("INV_X1", {"A": "y"}, "x", name="u2")
        nl.add_output("y")
        with pytest.raises(NetworkError, match="cycle"):
            nl.topological_instances()

    def test_undriven_net_detected(self):
        nl = MappedNetlist()
        nl.add_instance("INV_X1", {"A": "ghost"}, "y", name="u1")
        nl.add_output("y")
        with pytest.raises(NetworkError):
            nl.check()


class TestCleanupAndStats:
    def test_remove_unused(self, tiny):
        tiny.add_instance("INV_X1", {"A": "a"}, "dead", name="u9")
        removed = tiny.remove_unused()
        assert removed == 1
        assert "u9" not in tiny.instances

    def test_remove_unused_keeps_live(self, tiny):
        assert tiny.remove_unused() == 0
        assert len(tiny.instances) == 2

    def test_total_area(self, tiny):
        expected = (CORELIB018.cell("NAND2_X1").area
                    + CORELIB018.cell("INV_X1").area)
        assert tiny.total_area(CORELIB018) == pytest.approx(expected)

    def test_cell_histogram(self, tiny):
        assert tiny.cell_histogram() == {"NAND2_X1": 1, "INV_X1": 1}

    def test_fresh_names(self, tiny):
        assert tiny.new_instance_name() not in tiny.instances
        fresh_net = tiny.new_net_name()
        assert fresh_net not in tiny.nets()


class TestRenameNet:
    def test_renames_driver_and_sinks(self, tiny):
        tiny.rename_net("n1", "mid")
        assert tiny.instances["u1"].output == "mid"
        assert tiny.instances["u2"].pins["A"] == "mid"
        tiny.check()

    def test_renames_po_binding(self, tiny):
        tiny.rename_net("y", "out")
        assert tiny.output_net["y"] == "out"
        assert tiny.instances["u2"].output == "out"
        tiny.check()

    def test_renames_primary_input(self, tiny):
        tiny.rename_net("a", "a2")
        assert "a2" in tiny.inputs and "a" not in tiny.inputs
        assert tiny.instances["u1"].pins["A"] == "a2"

    def test_rejects_existing_net(self, tiny):
        with pytest.raises(NetworkError):
            tiny.rename_net("n1", "y")   # y is driven
        with pytest.raises(NetworkError):
            tiny.rename_net("n1", "a")   # a is a primary input

    def test_rename_to_self_is_noop(self, tiny):
        tiny.rename_net("n1", "n1")
        assert tiny.instances["u1"].output == "n1"
