"""Tests for algebraic (weak) division."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.cubes import lit, make_cube
from repro.network.sop import Sop, parse_sop
from repro.synth import divide, divide_by_cube, is_algebraic_divisor

VARS = "abcd"


def sop_strategy(max_cubes=4, max_width=3):
    literal = st.tuples(st.sampled_from(VARS), st.booleans())
    cube = st.frozensets(literal, min_size=1, max_size=max_width)
    return st.lists(cube, min_size=1, max_size=max_cubes).map(Sop.from_cubes)


class TestDivideByCube:
    def test_basic(self):
        q, r = divide_by_cube(parse_sop("a b c + a b d + e"),
                              make_cube([lit("a"), lit("b")]))
        assert q == parse_sop("c + d")
        assert r == parse_sop("e")

    def test_no_division(self):
        q, r = divide_by_cube(parse_sop("a + b"), make_cube([lit("c")]))
        assert q.is_zero()
        assert r == parse_sop("a + b")

    def test_divide_by_one_cube(self):
        f = parse_sop("a + b")
        q, r = divide_by_cube(f, frozenset())
        assert q == f and r.is_zero()


class TestDivide:
    def test_textbook_example(self):
        # (a + b)(c + d) + e  divided by (c + d)
        f = parse_sop("a c + a d + b c + b d + e")
        q, r = divide(f, parse_sop("c + d"))
        assert q == parse_sop("a + b")
        assert r == parse_sop("e")

    def test_division_by_one(self):
        f = parse_sop("a b + c")
        q, r = divide(f, Sop.one())
        assert q == f and r.is_zero()

    def test_division_by_zero(self):
        f = parse_sop("a b + c")
        q, r = divide(f, Sop.zero())
        assert q.is_zero() and r == f

    def test_no_common_quotient(self):
        q, r = divide(parse_sop("a c + b d"), parse_sop("c + d"))
        assert q.is_zero()

    def test_self_division(self):
        f = parse_sop("a b + c")
        q, r = divide(f, f)
        assert q.is_one()
        assert r.is_zero()

    def test_is_algebraic_divisor(self):
        f = parse_sop("a c + a d + e")
        assert is_algebraic_divisor(f, parse_sop("c + d"))
        assert not is_algebraic_divisor(f, parse_sop("b + d"))


class TestDivisionIdentity:
    """The defining property: f == q*d + r (as cube sets)."""

    @given(sop_strategy(), sop_strategy(max_cubes=2, max_width=2))
    @settings(max_examples=80, deadline=None)
    def test_identity(self, f, d):
        q, r = divide(f, d)
        rebuilt = q.mul(d).add(r)
        # Algebraic division reconstructs the exact cube set.
        assert rebuilt.cubes >= f.cubes or rebuilt == f
        # And never invents minterms: check functional equality.
        env_vars = sorted(f.support() | d.support())
        for bits in range(1 << min(len(env_vars), 6)):
            env = {v: bool(bits >> i & 1) for i, v in enumerate(env_vars)}
            for v in VARS:
                env.setdefault(v, False)
            assert rebuilt.evaluate(env) == f.evaluate(env)

    @given(sop_strategy(), sop_strategy(max_cubes=2, max_width=2))
    @settings(max_examples=80, deadline=None)
    def test_quotient_support_disjoint_from_divisor(self, f, d):
        q, _ = divide(f, d)
        if not q.is_zero() and not d.is_zero():
            assert not (q.support() & d.support()) or d.is_one()
