"""Tests for node elimination (SIS eliminate)."""

import pytest

from repro.circuits import random_pla
from repro.network import BooleanNetwork, check_boolnet_vs_boolnet, parse_sop
from repro.synth import eliminate, eliminate_node, extract, node_value


def shared_network():
    net = BooleanNetwork("t")
    for v in "abcd":
        net.add_input(v)
    net.add_node("x", parse_sop("a b"))
    net.add_node("f", parse_sop("x c"))
    net.add_node("g", parse_sop("x d"))
    net.add_output("f")
    net.add_output("g")
    return net


class TestNodeValue:
    def test_low_value_shared_cube(self):
        net = shared_network()
        # x kept: 2 (its lits) + 2 (uses); inlined: 2*2 = 4 -> value 0.
        assert node_value(net, "x") == 0

    def test_output_node_not_eliminable(self):
        net = shared_network()
        assert node_value(net, "f") is None

    def test_complemented_use_not_eliminable(self):
        net = BooleanNetwork("t")
        for v in "ab":
            net.add_input(v)
        net.add_node("x", parse_sop("a b"))
        net.add_node("f", parse_sop("x'"))
        net.add_output("f")
        assert node_value(net, "x") is None

    def test_high_value_kernel_kept(self):
        net = BooleanNetwork("t")
        for v in "abcdef":
            net.add_input(v)
        net.add_node("x", parse_sop("a + b + c"))
        net.add_node("f1", parse_sop("x d"))
        net.add_node("g1", parse_sop("x e"))
        net.add_node("h1", parse_sop("x f"))
        for o in ("f1", "g1", "h1"):
            net.add_output(o)
        # Inlining replicates the rest-literal of each use across the
        # node's 3 cubes: keeping saves 9 literals.
        assert node_value(net, "x") > 0


class TestEliminateNode:
    def test_collapse_preserves_function(self):
        net = shared_network()
        ref = net.copy()
        assert eliminate_node(net, "x")
        check_boolnet_vs_boolnet(ref, net)
        assert "x" not in net.nodes
        assert net.nodes["f"].sop == parse_sop("a b c")

    def test_refuses_output(self):
        net = shared_network()
        assert not eliminate_node(net, "f")

    def test_refuses_complemented_use(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_node("x", parse_sop("a"))
        net.add_node("f", parse_sop("x'"))
        net.add_output("f")
        assert not eliminate_node(net, "x")


class TestEliminatePass:
    def test_collapses_breakeven_nodes(self):
        net = shared_network()
        ref = net.copy()
        collapsed = eliminate(net, threshold=0)
        assert collapsed == 1
        check_boolnet_vs_boolnet(ref, net)

    def test_threshold_negative_keeps_breakeven(self):
        net = shared_network()
        assert eliminate(net, threshold=-1) == 0
        assert "x" in net.nodes

    def test_undoes_overeager_extraction(self):
        pla = random_pla("e", 8, 4, 16, literals=(2, 4),
                         outputs_per_product=(1, 2), seed=3)
        net = pla.to_network()
        ref = net.copy()
        extract(net, min_value=0)      # maximum sharing
        nodes_shared = len(net.nodes)
        eliminate(net, threshold=0)
        assert len(net.nodes) <= nodes_shared
        check_boolnet_vs_boolnet(ref, net)

    def test_literal_count_does_not_increase(self):
        net = shared_network()
        before = net.num_literals()
        eliminate(net, threshold=0)
        assert net.num_literals() <= before + 1  # x c + x d -> abc + abd
