"""Tests for the two-level minimiser (espresso-lite)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.sop import Sop, parse_sop
from repro.synth import irredundant, merge_cubes, minimize_sop
from repro.synth.espresso import _is_tautology

VARS = "abcd"


def sop_strategy():
    literal = st.tuples(st.sampled_from(VARS), st.booleans())
    cube = st.frozensets(literal, max_size=3)
    return st.lists(cube, max_size=5).map(Sop.from_cubes)


def equivalent(f, g):
    names = sorted(f.support() | g.support())
    for bits in range(1 << len(names)):
        env = {v: bool(bits >> i & 1) for i, v in enumerate(names)}
        if f.evaluate(env) != g.evaluate(env):
            return False
    return True


class TestMergeCubes:
    def test_distance_one_merge(self):
        got = merge_cubes(parse_sop("a b + a b'"))
        assert got == parse_sop("a")

    def test_cascading_merge(self):
        got = merge_cubes(parse_sop("a b + a b' + a' b + a' b'"))
        assert got.is_one() or got == parse_sop("a + a'") \
            or equivalent(got, Sop.one())

    def test_no_merge_when_distance_two(self):
        f = parse_sop("a b + a' b'")
        assert merge_cubes(f) == f

    def test_different_sizes_not_merged(self):
        f = parse_sop("a b + a")
        assert merge_cubes(f) == parse_sop("a")  # via containment


class TestTautology:
    def test_one_is_tautology(self):
        assert _is_tautology(Sop.one())

    def test_zero_is_not(self):
        assert not _is_tautology(Sop.zero())

    def test_x_or_notx(self):
        assert _is_tautology(parse_sop("a + a'"))

    def test_incomplete_cover(self):
        assert not _is_tautology(parse_sop("a + a' b"))


class TestIrredundant:
    def test_consensus_cube_removed(self):
        # a b + a' c + b c: the b c cube is redundant (consensus).
        got = irredundant(parse_sop("a b + a' c + b c"))
        assert equivalent(got, parse_sop("a b + a' c"))
        assert len(got) == 2

    def test_keeps_needed_cubes(self):
        f = parse_sop("a b + a' c")
        assert irredundant(f) == f


class TestMinimizeSop:
    def test_combined(self):
        f = parse_sop("a b + a b' + b c + a c")
        got = minimize_sop(f)
        assert equivalent(got, f)
        assert got.num_literals() <= f.num_literals()

    @given(sop_strategy())
    @settings(max_examples=60, deadline=None)
    def test_preserves_function(self, f):
        got = minimize_sop(f)
        assert equivalent(got, f)

    @given(sop_strategy())
    @settings(max_examples=60, deadline=None)
    def test_never_grows(self, f):
        assert minimize_sop(f).num_literals() <= f.num_literals()
