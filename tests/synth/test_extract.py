"""Tests for network-level kernel and cube extraction."""

import pytest

from repro.network import BooleanNetwork, check_boolnet_vs_boolnet, parse_sop
from repro.synth import extract, extract_one_cube, extract_one_kernel


def two_user_network():
    net = BooleanNetwork("t")
    for v in "abcdef":
        net.add_input(v)
    net.add_node("g1", parse_sop("a c + a d + b c + b d"))
    net.add_node("g2", parse_sop("c e + d e + f"))
    net.add_output("g1")
    net.add_output("g2")
    return net


class TestKernelExtraction:
    def test_shared_kernel_extracted(self):
        net = two_user_network()
        ref = net.copy()
        name = extract_one_kernel(net)
        assert name is not None
        assert net.nodes[name].sop == parse_sop("c + d")
        check_boolnet_vs_boolnet(ref, net)

    def test_literal_count_drops(self):
        net = two_user_network()
        before = net.num_literals()
        extract_one_kernel(net)
        assert net.num_literals() < before

    def test_no_kernel_returns_none(self):
        net = BooleanNetwork("t")
        for v in "ab":
            net.add_input(v)
        net.add_node("g", parse_sop("a b"))
        net.add_output("g")
        assert extract_one_kernel(net) is None

    def test_min_value_zero_extracts_breakeven(self):
        # A kernel used once with quotients of 2 cubes: value == 0.
        net = BooleanNetwork("t")
        for v in "abcd":
            net.add_input(v)
        net.add_node("g", parse_sop("a c + a d + b c + b d"))
        net.add_output("g")
        assert extract_one_kernel(net, min_value=1) is not None or \
            extract_one_kernel(net, min_value=0) is not None


class TestCubeExtraction:
    def test_shared_cube_extracted(self):
        net = BooleanNetwork("t")
        for v in "abcde":
            net.add_input(v)
        net.add_node("g1", parse_sop("a b c + e"))
        net.add_node("g2", parse_sop("a b d"))
        net.add_node("g3", parse_sop("a b e"))
        for o in ("g1", "g2", "g3"):
            net.add_output(o)
        ref = net.copy()
        name = extract_one_cube(net)
        assert name is not None
        assert net.nodes[name].sop == parse_sop("a b")
        check_boolnet_vs_boolnet(ref, net)

    def test_no_cube_returns_none(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_node("g", parse_sop("a"))
        net.add_output("g")
        assert extract_one_cube(net) is None


class TestExtractLoop:
    def test_runs_to_fixed_point(self, medium_network):
        net = medium_network
        ref = net.copy()
        before = net.num_literals()
        created = extract(net, max_rounds=50)
        assert net.num_literals() <= before
        check_boolnet_vs_boolnet(ref, net)
        # Re-running finds nothing new (fixed point) when not bounded.
        if created < 50:
            assert extract(net, max_rounds=5) == 0

    def test_more_sharing_with_min_value_zero(self, medium_network):
        strict = medium_network.copy()
        loose = medium_network.copy()
        extract(strict, min_value=1)
        extract(loose, min_value=0)
        assert len(loose.nodes) >= len(strict.nodes)
