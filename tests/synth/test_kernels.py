"""Tests for kernel/co-kernel enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.cubes import ONE_CUBE, cube_mul
from repro.network.sop import Sop, parse_sop
from repro.synth import divide, kernel_value, kernels, level0_kernels, make_cube_free
from repro.synth.kernels import is_level0

VARS = "abcde"


def sop_strategy():
    literal = st.tuples(st.sampled_from(VARS), st.booleans())
    cube = st.frozensets(literal, min_size=1, max_size=3)
    return st.lists(cube, min_size=1, max_size=5).map(Sop.from_cubes)


class TestMakeCubeFree:
    def test_strips_common_cube(self):
        stripped, common = make_cube_free(parse_sop("a b c + a b d"))
        assert stripped == parse_sop("c + d")
        assert common == frozenset({("a", True), ("b", True)})

    def test_already_cube_free(self):
        f = parse_sop("a + b")
        stripped, common = make_cube_free(f)
        assert stripped == f
        assert common == ONE_CUBE


class TestKernels:
    def test_textbook(self):
        # f = a c + a d + b c + b d + e has kernels {c+d, a+b, f itself}
        f = parse_sop("a c + a d + b c + b d + e")
        found = {k.to_string() for k, _ in kernels(f)}
        assert "c + d" in found
        assert "a + b" in found
        assert f.to_string() in found

    def test_single_cube_has_no_kernels(self):
        assert kernels(parse_sop("a b c")) == []

    def test_cokernel_times_kernel_divides(self):
        f = parse_sop("a c + a d + b c + b d + e")
        for kernel, cokernel in kernels(f):
            q, _ = divide(f, kernel)
            assert not q.is_zero()
            # The co-kernel must be one of the quotient's cubes.
            assert cokernel in q.cubes or cokernel == ONE_CUBE

    def test_max_kernels_bound(self):
        f = parse_sop("a c + a d + b c + b d + e")
        assert len(kernels(f, max_kernels=1)) == 1

    def test_kernels_are_cube_free(self):
        f = parse_sop("a b c + a b d + a e")
        for kernel, _ in kernels(f):
            assert kernel.is_cube_free() or len(kernel) >= 2


class TestLevel0:
    def test_is_level0(self):
        assert is_level0(parse_sop("a + b"))
        assert not is_level0(parse_sop("a c + a d"))

    def test_level0_subset_of_kernels(self):
        f = parse_sop("a c + a d + b c + b d + e")
        all_k = {k.to_string() for k, _ in kernels(f)}
        lvl0 = {k.to_string() for k, _ in level0_kernels(f)}
        assert lvl0 <= all_k
        assert "c + d" in lvl0


class TestKernelValue:
    def test_positive_for_shared_kernel(self):
        kernel = parse_sop("a + b")  # 2 literals
        assert kernel_value(kernel, uses=3) == 3 * 1 - 2

    def test_zero_uses_is_negative(self):
        assert kernel_value(parse_sop("a + b"), uses=0) < 0


class TestProperties:
    @given(sop_strategy())
    @settings(max_examples=50, deadline=None)
    def test_every_kernel_divides(self, f):
        for kernel, _ in kernels(f, max_kernels=10):
            if kernel == f:
                continue
            q, _ = divide(f, kernel)
            assert not q.is_zero()

    @given(sop_strategy())
    @settings(max_examples=50, deadline=None)
    def test_kernels_multicube(self, f):
        for kernel, _ in kernels(f, max_kernels=10):
            assert len(kernel) >= 2
