"""Tests for the optimization scripts."""

import pytest

from repro.circuits import random_pla
from repro.network import check_boolnet_vs_boolnet
from repro.synth import optimize


@pytest.fixture
def pla_network():
    return random_pla("opt_test", num_inputs=10, num_outputs=6,
                      num_products=40, literals=(3, 6),
                      outputs_per_product=(1, 3), seed=5).to_network()


class TestEfforts:
    @pytest.mark.parametrize("effort", ["fast", "standard", "high"])
    def test_preserves_function(self, pla_network, effort):
        ref = pla_network.copy()
        optimize(pla_network, effort=effort)
        check_boolnet_vs_boolnet(ref, pla_network)

    def test_unknown_effort_rejected(self, pla_network):
        with pytest.raises(ValueError):
            optimize(pla_network, effort="extreme")

    def test_standard_reduces_literals(self, pla_network):
        report = optimize(pla_network, effort="standard")
        assert report.literals_after < report.literals_before

    def test_high_not_worse_than_fast(self, pla_network):
        fast_net = pla_network.copy()
        high_net = pla_network.copy()
        fast = optimize(fast_net, effort="fast")
        high = optimize(high_net, effort="high")
        assert high.literals_after <= fast.literals_after

    def test_high_creates_more_sharing(self, pla_network):
        std_net = pla_network.copy()
        high_net = pla_network.copy()
        optimize(std_net, effort="standard")
        optimize(high_net, effort="high")
        assert len(high_net.nodes) >= len(std_net.nodes)


class TestReport:
    def test_report_fields(self, pla_network):
        report = optimize(pla_network, effort="standard")
        assert report.literals_before >= report.literals_after
        assert report.saved() == report.literals_before - report.literals_after
        assert "extract" in report.passes
        assert report.nodes_after == len(pla_network.nodes)

    def test_idempotent_second_run_cheap(self, pla_network):
        optimize(pla_network, effort="standard")
        second = optimize(pla_network, effort="standard")
        assert second.saved() <= 2  # essentially nothing left
