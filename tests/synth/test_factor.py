"""Tests for algebraic factoring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.sop import Sop, parse_sop
from repro.synth import Expr, factor, factored_literal_count

VARS = "abcd"


def sop_strategy():
    literal = st.tuples(st.sampled_from(VARS), st.booleans())
    cube = st.frozensets(literal, min_size=1, max_size=3)
    return st.lists(cube, min_size=1, max_size=5).map(Sop.from_cubes)


class TestExprTree:
    def test_literal_count(self):
        e = Expr.or_([Expr.and_([Expr.lit(("a", True)), Expr.lit(("b", True))]),
                      Expr.lit(("c", False))])
        assert e.num_literals() == 3

    def test_flattening(self):
        inner = Expr.and_([Expr.lit(("a", True)), Expr.lit(("b", True))])
        outer = Expr.and_([inner, Expr.lit(("c", True))])
        assert len(outer.children) == 3

    def test_singleton_elided(self):
        e = Expr.or_([Expr.lit(("a", True))])
        assert e.kind == Expr.KIND_LIT

    def test_to_string_parenthesises_or_in_and(self):
        e = Expr.and_([Expr.lit(("a", True)),
                       Expr.or_([Expr.lit(("b", True)),
                                 Expr.lit(("c", True))])])
        assert e.to_string() == "a (b + c)"


class TestFactor:
    def test_textbook(self):
        f = parse_sop("a c + a d + b c + b d + e")
        e = factor(f)
        assert e.to_sop().remove_scc() == f.remove_scc()
        assert e.num_literals() <= f.num_literals()
        assert e.num_literals() == 5  # (a+b)(c+d) + e

    def test_single_cube(self):
        e = factor(parse_sop("a b' c"))
        assert e.num_literals() == 3
        assert e.to_sop() == parse_sop("a b' c")

    def test_single_literal(self):
        e = factor(parse_sop("a'"))
        assert e.kind == Expr.KIND_LIT

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            factor(Sop.one())
        with pytest.raises(ValueError):
            factor(Sop.zero())

    def test_no_savings_case(self):
        f = parse_sop("a + b + c")
        e = factor(f)
        assert e.to_sop() == f
        assert e.num_literals() == 3


class TestFactoredLiteralCount:
    def test_constant_is_zero(self):
        assert factored_literal_count(Sop.one()) == 0

    def test_never_exceeds_sop_count(self):
        f = parse_sop("a b + a c + a d")
        assert factored_literal_count(f) <= f.num_literals()


class TestProperties:
    @given(sop_strategy())
    @settings(max_examples=60, deadline=None)
    def test_factoring_preserves_function(self, f):
        if f.is_zero() or f.is_one():
            return
        e = factor(f)
        flattened = e.to_sop()
        env_vars = sorted(f.support())
        for bits in range(1 << min(len(env_vars), 6)):
            env = {v: bool(bits >> i & 1) for i, v in enumerate(env_vars)}
            assert flattened.evaluate(env) == f.evaluate(env)

    @given(sop_strategy())
    @settings(max_examples=60, deadline=None)
    def test_factoring_never_increases_literals(self, f):
        if f.is_zero() or f.is_one():
            return
        assert factor(f).num_literals() <= max(f.num_literals(), 1)
