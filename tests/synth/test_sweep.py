"""Tests for the cleanup sweeps."""

import pytest

from repro.network import BooleanNetwork, check_boolnet_vs_boolnet, parse_sop
from repro.network.sop import Sop
from repro.synth import simplify_nodes, sweep


class TestConstantPropagation:
    def test_constant_one_propagates(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_node("one", Sop.one())
        net.add_node("f", parse_sop("one a"))
        net.add_output("f")
        ref = net.copy()
        sweep(net)
        check_boolnet_vs_boolnet(ref, net)
        assert "one" not in net.nodes
        assert net.nodes["f"].sop == parse_sop("a")

    def test_constant_zero_propagates(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_input("b")
        net.add_node("zero", Sop.zero())
        net.add_node("f", parse_sop("zero a + b"))
        net.add_output("f")
        ref = net.copy()
        sweep(net)
        check_boolnet_vs_boolnet(ref, net)
        assert net.nodes["f"].sop == parse_sop("b")

    def test_constant_output_kept(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_node("one", Sop.one())
        net.add_output("one")
        sweep(net)
        assert "one" in net.nodes


class TestBufferCollapse:
    def test_buffer_collapsed(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_input("b")
        net.add_node("buf", parse_sop("a"))
        net.add_node("f", parse_sop("buf b"))
        net.add_output("f")
        ref = net.copy()
        sweep(net)
        check_boolnet_vs_boolnet(ref, net)
        assert "buf" not in net.nodes
        assert net.nodes["f"].sop == parse_sop("a b")

    def test_inverter_node_collapsed_with_phase(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_input("b")
        net.add_node("na", parse_sop("a'"))
        net.add_node("f", parse_sop("na b + na' b'"))
        net.add_output("f")
        ref = net.copy()
        sweep(net)
        check_boolnet_vs_boolnet(ref, net)
        assert "na" not in net.nodes
        assert net.nodes["f"].sop == parse_sop("a' b + a b'")

    def test_buffer_output_kept_named(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_node("g", parse_sop("a"))
        net.add_output("g")
        sweep(net)
        assert "g" in net.nodes  # output name must survive

    def test_chained_buffers(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_node("b1", parse_sop("a"))
        net.add_node("b2", parse_sop("b1'"))
        net.add_node("f", parse_sop("b2'"))
        net.add_output("f")
        ref = net.copy()
        sweep(net)
        check_boolnet_vs_boolnet(ref, net)
        assert net.nodes["f"].sop == parse_sop("a")


class TestDeadRemoval:
    def test_dead_logic_removed(self):
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_node("live", parse_sop("a"))
        net.add_node("dead", parse_sop("a'"))
        net.add_output("live")
        eliminated = sweep(net)
        assert eliminated >= 1
        assert "dead" not in net.nodes


class TestSimplifyNodes:
    def test_containment_removed(self):
        net = BooleanNetwork("t")
        for v in "ab":
            net.add_input(v)
        net.add_node("f", parse_sop("a + a b"))
        net.add_output("f")
        saved = simplify_nodes(net)
        assert saved == 2
        assert net.nodes["f"].sop == parse_sop("a")
