"""Tests for cross-cutting metrics."""

import pytest

from repro.core import map_network, min_area
from repro.library import CORELIB018
from repro.metrics import (
    average_fanin,
    fanout_histogram,
    hpwl,
    logic_depth,
    mapped_pin_count,
    max_fanout,
    total_hpwl,
)
from repro.network import MappedNetlist


class TestHpwl:
    def test_bbox(self):
        assert hpwl([(0, 0), (3, 4)]) == 7.0

    def test_degenerate(self):
        assert hpwl([(1, 1)]) == 0.0
        assert hpwl([]) == 0.0

    def test_total(self):
        nets = {"a": [(0, 0), (1, 1)], "b": [(0, 0), (2, 0)]}
        assert total_hpwl(nets) == pytest.approx(4.0)


class TestBaseNetworkMetrics:
    def test_fanout_histogram(self, small_base):
        hist = fanout_histogram(small_base)
        assert sum(hist.values()) == small_base.num_gates()

    def test_max_fanout_positive(self, small_base):
        assert max_fanout(small_base) >= 1


class TestMappedMetrics:
    @pytest.fixture
    def netlist(self, small_base):
        return map_network(small_base, CORELIB018, min_area()).netlist

    def test_pin_count(self, netlist):
        expected = sum(len(i.pins) + 1 for i in netlist.instances.values())
        assert mapped_pin_count(netlist) == expected

    def test_average_fanin(self, netlist):
        assert 1.0 <= average_fanin(netlist) <= 4.0

    def test_average_fanin_empty(self):
        assert average_fanin(MappedNetlist()) == 0.0

    def test_logic_depth(self, netlist):
        depth = logic_depth(netlist)
        assert depth >= 1

    def test_logic_depth_chain(self):
        nl = MappedNetlist()
        nl.add_input("a")
        prev = "a"
        for i in range(5):
            nl.add_instance("INV_X1", {"A": prev}, f"n{i}", name=f"u{i}")
            prev = f"n{i}"
        nl.add_output(prev, net=prev)
        assert logic_depth(nl) == 5
