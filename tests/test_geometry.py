"""Tests for the shared geometry module (and its core re-export)."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import EUCLIDEAN, MANHATTAN, PositionMap, distance


coords = st.tuples(st.floats(-100, 100, allow_nan=False),
                   st.floats(-100, 100, allow_nan=False))


class TestReExport:
    def test_core_wirecost_is_geometry(self):
        from repro.core import wirecost
        assert wirecost.PositionMap is PositionMap
        assert wirecost.distance is distance


class TestDistanceProperties:
    @given(coords, coords)
    def test_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(coords)
    def test_identity(self, a):
        assert distance(a, a) == 0.0

    @given(coords, coords, coords)
    def test_triangle_inequality_manhattan(self, a, b, c):
        assert distance(a, c, MANHATTAN) <= \
            distance(a, b, MANHATTAN) + distance(b, c, MANHATTAN) + 1e-9

    @given(coords, coords)
    def test_euclidean_below_manhattan(self, a, b):
        assert distance(a, b, EUCLIDEAN) <= distance(a, b, MANHATTAN) + 1e-9


class TestPositionMapProperties:
    @given(st.lists(coords, min_size=1, max_size=10))
    def test_centroid_inside_bounding_box(self, points):
        pm = PositionMap(points)
        cx, cy = pm.centroid(range(len(points)))
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert min(xs) - 1e-9 <= cx <= max(xs) + 1e-9
        assert min(ys) - 1e-9 <= cy <= max(ys) + 1e-9

    @given(st.lists(coords, min_size=2, max_size=10))
    def test_commit_makes_distances_zero(self, points):
        pm = PositionMap(points)
        com = pm.centroid(range(len(points)))
        pm.commit(range(len(points)), com)
        for i in range(len(points) - 1):
            assert pm.dist_vertices(i, i + 1) == pytest.approx(0.0)
