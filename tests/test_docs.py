"""Executable documentation checks.

Two guarantees keep the docs site honest:

1. Every fenced ``jsonl`` / ``jsonl-invalid`` / ``jsonl-result`` block
   in ``docs/`` runs through the real serve parser — valid examples
   must validate, invalid examples must be rejected, result examples
   must carry exactly the documented fields — and every fenced
   ``json-status`` block must be a valid heartbeat of the current
   schema version.
2. Every relative markdown link (and intra-repo anchor) in ``docs/``,
   ``README.md`` and ``DESIGN.md`` resolves to a real file / heading.
"""

import json
import os
import re

import pytest

from repro.serve import (
    STATUS_SCHEMA_VERSION,
    JobError,
    is_end_marker,
    parse_jobs,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")

#: Files whose links must resolve.
LINKED_PAGES = [os.path.join(REPO_ROOT, "README.md"),
                os.path.join(REPO_ROOT, "DESIGN.md")] + sorted(
    os.path.join(DOCS_DIR, name)
    for name in (os.listdir(DOCS_DIR) if os.path.isdir(DOCS_DIR) else [])
    if name.endswith(".md"))

_FENCE = re.compile(r"^```(\S+)\n(.*?)^```", re.MULTILINE | re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*$", re.MULTILINE)

#: Exactly the JobResult.to_dict() keys (error only on failure).
RESULT_REQUIRED = {"id", "cmd", "source", "ok", "verdict", "chosen_k",
                   "rows"}
RESULT_OPTIONAL = {"error"}

#: The documented heartbeat fields (ServeEngine.heartbeat()).
STATUS_REQUIRED = {"schema_version", "event", "state", "pid", "t_unix",
                   "jobs_total", "jobs_done", "ok", "failed",
                   "in_flight_chains", "slow_jobs", "serve_workers",
                   "cache", "cache_hit_rates", "instruments", "last_job"}


def _blocks(path, language):
    with open(path) as handle:
        text = handle.read()
    return [body for lang, body in _FENCE.findall(text)
            if lang == language]


def _doc_paths():
    if not os.path.isdir(DOCS_DIR):
        return []
    return sorted(os.path.join(DOCS_DIR, name)
                  for name in os.listdir(DOCS_DIR)
                  if name.endswith(".md"))


def _github_slug(heading):
    """GitHub's anchor slug: lowercase, spaces to dashes, drop the rest."""
    slug = heading.strip().lower().replace(" ", "-")
    return re.sub(r"[^a-z0-9_-]", "", slug)


class TestJobExamples:
    def test_docs_exist(self):
        assert _doc_paths(), "docs/ has no markdown pages"

    @pytest.mark.parametrize("path", _doc_paths(),
                             ids=[os.path.basename(p)
                                  for p in _doc_paths()])
    def test_valid_examples_parse(self, path):
        for block in _blocks(path, "jsonl"):
            jobs = parse_jobs(block.splitlines())
            assert jobs, f"empty jsonl example in {path}"

    def test_schema_page_has_examples(self):
        page = os.path.join(DOCS_DIR, "jobs-schema.md")
        assert _blocks(page, "jsonl")
        assert _blocks(page, "jsonl-invalid")
        assert _blocks(page, "jsonl-result")

    @pytest.mark.parametrize("path", _doc_paths(),
                             ids=[os.path.basename(p)
                                  for p in _doc_paths()])
    def test_invalid_examples_are_rejected(self, path):
        for block in _blocks(path, "jsonl-invalid"):
            with pytest.raises(JobError):
                parse_jobs(block.splitlines())

    @pytest.mark.parametrize("path", _doc_paths(),
                             ids=[os.path.basename(p)
                                  for p in _doc_paths()])
    def test_result_examples_match_schema(self, path):
        for block in _blocks(path, "jsonl-result"):
            for line in block.strip().splitlines():
                data = json.loads(line)
                assert RESULT_REQUIRED <= set(data), \
                    f"missing {RESULT_REQUIRED - set(data)}: {line}"
                assert not set(data) - RESULT_REQUIRED - RESULT_OPTIONAL
                assert isinstance(data["ok"], bool)
                assert data["chosen_k"] is None or \
                    isinstance(data["chosen_k"], (int, float))
                for row in data["rows"]:
                    assert len(row) == 5
                # The byte-stability contract: sorted keys.
                assert line == json.dumps(data, sort_keys=True)

    @pytest.mark.parametrize("path", _doc_paths(),
                             ids=[os.path.basename(p)
                                  for p in _doc_paths()])
    def test_status_examples_match_heartbeat_schema(self, path):
        for block in _blocks(path, "json-status"):
            for line in block.strip().splitlines():
                data = json.loads(line)
                assert STATUS_REQUIRED <= set(data), \
                    f"missing {STATUS_REQUIRED - set(data)}: {line}"
                assert data["schema_version"] == STATUS_SCHEMA_VERSION
                assert data["event"] == "status"
                assert data["state"] in ("running", "done")
                assert data["failed"] == data["jobs_done"] - data["ok"]
                # the follow end-marker rule matches the documentation
                assert is_end_marker(line) == (data["state"] == "done")

    def test_observability_page_has_examples(self):
        page = os.path.join(DOCS_DIR, "observability.md")
        assert _blocks(page, "json-status")
        assert _blocks(page, "jsonl")


class TestLinks:
    @pytest.mark.parametrize("path", LINKED_PAGES,
                             ids=[os.path.relpath(p, REPO_ROOT)
                                  for p in LINKED_PAGES])
    def test_relative_links_resolve(self, path):
        with open(path) as handle:
            text = handle.read()
        # Links inside fenced code are not navigation.
        text = _FENCE.sub("", text)
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            dest, _, anchor = target.partition("#")
            dest_path = os.path.normpath(os.path.join(
                os.path.dirname(path), dest)) if dest else path
            if not os.path.exists(dest_path):
                broken.append(target)
                continue
            if anchor and dest_path.endswith(".md"):
                with open(dest_path) as handle:
                    headings = _HEADING.findall(handle.read())
                if anchor not in {_github_slug(h) for h in headings}:
                    broken.append(target)
        assert not broken, f"broken links in {path}: {broken}"
