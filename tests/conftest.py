"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.circuits import random_logic_network
from repro.library import CORELIB018
from repro.network import BooleanNetwork, decompose, parse_sop
from repro.place import Floorplan


@pytest.fixture
def library():
    """The default synthetic 0.18 µm library."""
    return CORELIB018


@pytest.fixture
def small_network():
    """An 8-input, 4-node network exercising shared and negated logic."""
    net = BooleanNetwork("small")
    for name in "abcdefgh":
        net.add_input(name)
    net.add_node("g1", parse_sop("a b + c'"))
    net.add_node("g2", parse_sop("g1 d + a' c"))
    net.add_node("g3", parse_sop("e f g + h"))
    net.add_node("g4", parse_sop("g1' + g3 d"))
    for out in ("g2", "g3", "g4"):
        net.add_output(out)
    return net


@pytest.fixture
def small_base(small_network):
    """The small network decomposed to base gates."""
    return decompose(small_network)


@pytest.fixture
def medium_network():
    """A ~120-node random network (seeded, deterministic)."""
    return random_logic_network("medium", num_inputs=16, num_nodes=120,
                                num_outputs=12, seed=11)


@pytest.fixture
def medium_base(medium_network):
    """The medium network decomposed to base gates."""
    return decompose(medium_network)


@pytest.fixture
def tiny_floorplan():
    """A 10-row square floorplan for fast placement tests."""
    return Floorplan.from_rows(10, aspect=1.0)


@pytest.fixture
def small_floorplan():
    """A 16-row square floorplan for routing tests."""
    return Floorplan.from_rows(16, aspect=1.0)
