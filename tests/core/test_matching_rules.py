"""Systematic coverage of the phase-matching rule system.

Each rule of the matcher (pattern INV supplying a free negation,
subject INV consumption with polarity flip, NAND2 symmetry) is pinned
by a dedicated structural case, plus global sanity invariants every
match must satisfy.
"""

import pytest

from repro.core import Matcher, NEG, POS
from repro.library import CORELIB018
from repro.network.dag import BaseNetwork


def all_consumable(_v):
    return True


def matches_of(net, vertex, cell_name, phase):
    matcher = Matcher(net, CORELIB018)
    return [m for m in matcher.matches_at(vertex, all_consumable)[phase]
            if m.cell.name == cell_name]


class TestBufferPattern:
    def test_buf_over_single_inverter_neg_leaf(self):
        """BUF = INV(INV(A)): over one subject INV it binds A negatively."""
        net = BaseNetwork("b")
        a = net.add_input("a")
        i = net.add_inv(a)
        net.set_output("y", i)
        bufs = matches_of(net, i, "BUF_X1", POS)
        assert bufs
        ((_, (vertex, phase)),) = bufs[0].leaves
        assert vertex == a and phase == NEG

    def test_buf_over_inverter_pair(self):
        net = BaseNetwork("b")
        a = net.add_input("a")
        i1 = net.add_inv(a)
        # Force a second distinct inverter (hashing would merge i1).
        n = net.add_nand2(i1, i1)
        i2 = net.add_inv(n)
        net.set_output("y", i2)
        bufs = matches_of(net, i2, "BUF_X1", POS)
        # BUF must bind (n, NEG): INV(INV(n)) == n... through one INV.
        assert any(m.leaves[0][1] == (n, NEG) for m in bufs)


class TestNandChainShapes:
    def chain_nand4(self):
        """NOT(abcd) as the left-deep chain decompose would emit."""
        net = BaseNetwork("c")
        a, b, c, d = (net.add_input(x) for x in "abcd")
        ab = net.add_inv(net.add_nand2(a, b))     # ab
        abc = net.add_inv(net.add_nand2(ab, c))   # abc
        out = net.add_nand2(abc, d)               # NOT(abcd)
        net.set_output("y", out)
        return net, out

    def balanced_nand4(self):
        net = BaseNetwork("b")
        a, b, c, d = (net.add_input(x) for x in "abcd")
        ab = net.add_inv(net.add_nand2(a, b))
        cd = net.add_inv(net.add_nand2(c, d))
        out = net.add_nand2(ab, cd)
        net.set_output("y", out)
        return net, out

    def test_chain_pattern_matches_chain_subject(self):
        net, out = self.chain_nand4()
        assert matches_of(net, out, "NAND4_X1", POS)

    def test_balanced_pattern_matches_balanced_subject(self):
        net, out = self.balanced_nand4()
        assert matches_of(net, out, "NAND4_X1", POS)

    def test_nand4_binds_all_four_inputs(self):
        net, out = self.balanced_nand4()
        match = matches_of(net, out, "NAND4_X1", POS)[0]
        bound = {v for _, (v, _) in match.leaves}
        assert bound == {net.input_vertex[x] for x in "abcd"}


class TestComplexGates:
    def test_aoi22(self):
        """AOI22 = NOT(ab + cd) over INV(NAND(NAND(a,b), NAND(c,d)))."""
        net = BaseNetwork("a")
        a, b, c, d = (net.add_input(x) for x in "abcd")
        nab = net.add_nand2(a, b)
        ncd = net.add_nand2(c, d)
        out = net.add_inv(net.add_nand2(nab, ncd))
        net.set_output("y", out)
        assert matches_of(net, out, "AOI22_X1", POS)
        # The same structure minus the INV is AOI22 in NEG phase at the
        # NAND vertex.
        nand_v = net.add_nand2(nab, ncd)
        assert matches_of(net, nand_v, "AOI22_X1", NEG)

    def test_nor3(self):
        """NOR3 = a'b'c' via the canonical AND-of-inverters shape."""
        net = BaseNetwork("n")
        a, b, c = (net.add_input(x) for x in "abc")
        ia, ib, ic = net.add_inv(a), net.add_inv(b), net.add_inv(c)
        ab = net.add_inv(net.add_nand2(ia, ib))
        out = net.add_inv(net.add_nand2(ab, ic))
        net.set_output("y", out)
        assert matches_of(net, out, "NOR3_X1", POS)

    def test_oai21_requires_or_shape(self):
        """OAI21 = NOT((a+b)c): matches NAND(OR-shape, c) only."""
        net = BaseNetwork("o")
        a, b, c = (net.add_input(x) for x in "abc")
        or_ab = net.add_nand2(net.add_inv(a), net.add_inv(b))
        out = net.add_nand2(or_ab, c)
        net.set_output("y", out)
        assert matches_of(net, out, "OAI21_X1", POS)
        # A plain NAND of two inputs has no OR branch for the pattern.
        plain = net.add_nand2(a, c)
        matches = matches_of(net, plain, "OAI21_X1", POS)
        # Any match here must bind its OR branch negatively (free
        # pattern INVs), never positively through a non-existent OR.
        for m in matches:
            assert m.consumed == {plain}


class TestMatchInvariants:
    @pytest.fixture
    def subject(self, medium_base):
        return medium_base

    def test_all_matches_well_formed(self, subject):
        matcher = Matcher(subject, CORELIB018)
        for v in list(subject.gates())[:120]:
            out = matcher.matches_at(v, all_consumable)
            for phase in (POS, NEG):
                for m in out[phase]:
                    assert v in m.consumed, "root must be covered"
                    leaf_vertices = {u for _, (u, _) in m.leaves}
                    assert not (leaf_vertices & m.consumed), \
                        "leaves must not be covered by the match"
                    assert len(m.leaves) == m.cell.num_inputs
                    assert {p for p, _ in m.leaves} == \
                        set(m.cell.input_pins)

    def test_matching_deterministic(self, subject):
        matcher = Matcher(subject, CORELIB018)
        v = next(iter(subject.gates()))
        a = matcher.matches_at(v, all_consumable)
        b = matcher.matches_at(v, all_consumable)
        assert [repr(m) for m in a[POS]] == [repr(m) for m in b[POS]]
