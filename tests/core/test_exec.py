"""Tests for the parallel execution layer (repro.exec)."""

import pytest

from repro.circuits import random_pla
from repro.core import FlowConfig, k_sweep
from repro.exec import default_workers, derive_seed, fan_out, pool_available
from repro.library import CORELIB018
from repro.network import decompose
from repro.obs import StatsRegistry, Tracer
from repro.place import Floorplan, place_base_network


def _square(payload, task):
    return payload * task * task


def _boom(payload, task):
    raise ValueError(f"task {task} failed")


class TestFanOut:
    def test_serial_ordered(self):
        assert fan_out(_square, 2, [0, 1, 2, 3], workers=1) == [0, 2, 8, 18]

    def test_parallel_ordered_and_identical_to_serial(self):
        tasks = list(range(20))
        serial = fan_out(_square, 3, tasks, workers=1)
        stats = StatsRegistry()
        parallel = fan_out(_square, 3, tasks, workers=4, stats=stats)
        assert parallel == serial
        assert stats["exec.workers"] >= 1

    def test_single_task_stays_serial(self):
        stats = StatsRegistry()
        assert fan_out(_square, 1, [5], workers=8, stats=stats) == [25]
        assert stats["exec.parallel"] == 0

    def test_unpicklable_payload_falls_back_to_serial(self):
        # A lambda payload cannot cross a process boundary; the pool
        # attempt must degrade to the serial loop, not crash.
        stats = StatsRegistry()
        out = fan_out(lambda payload, task: task + 1,
                      None, [1, 2], workers=4, stats=stats)
        assert out == [2, 3]
        assert stats["exec.parallel"] in (0, 1)

    def test_task_error_propagates(self):
        with pytest.raises(ValueError):
            fan_out(_boom, None, [1, 2], workers=1)

    def test_derive_seed_deterministic(self):
        assert derive_seed(7, 0) == 7
        assert [derive_seed(3, i) for i in range(4)] == \
            [derive_seed(3, i) for i in range(4)]
        assert len({derive_seed(0, i) for i in range(100)}) == 100

    def test_default_workers_positive(self):
        assert default_workers() >= 1
        assert pool_available() in (True, False)


class TestFallbackObservability:
    """A pool failure must degrade to serial *and* leave a trail —
    never a silent `except: pass` (the ISSUE 7 satellite bugfix)."""

    def test_pool_failure_records_stats_and_event(self, monkeypatch):
        import repro.exec.pool as pool_mod

        if not pool_available():
            pytest.skip("no process pool on this platform")

        def induced_failure(fn, payload, tasks, nproc, deliver):
            raise RuntimeError("induced pool failure")

        monkeypatch.setattr(pool_mod, "_fan_out_pool", induced_failure)
        stats = StatsRegistry()
        tracer = Tracer("run", command="test")
        out = fan_out(_square, 2, [0, 1, 2], workers=4, stats=stats,
                      tracer=tracer)
        # The serial fallback still produces the right answers...
        assert out == [0, 2, 8]
        # ...but the degradation is visible in the environment facts...
        assert stats["exec.fallback"] == 1
        assert stats["exec.workers"] == 1
        assert stats["exec.parallel"] == 0
        # ...and the exception class lands in the trace.
        root = tracer.close()
        events = [c for c in root.children if c.name == "exec_fallback"]
        assert len(events) == 1
        assert events[0].attrs["error"] == "RuntimeError"
        assert "induced pool failure" in events[0].attrs["detail"]

    def test_healthy_pool_records_no_fallback(self):
        if not pool_available():
            pytest.skip("no process pool on this platform")
        stats = StatsRegistry()
        out = fan_out(_square, 2, list(range(8)), workers=2, stats=stats)
        assert out == [2 * t * t for t in range(8)]
        assert "exec.fallback" not in stats


@pytest.fixture(scope="module")
def sweep_setup():
    pla = random_pla("par", num_inputs=9, num_outputs=5, num_products=24,
                     literals=(3, 5), outputs_per_product=(1, 2), seed=21)
    base = decompose(pla.to_network())
    config = FlowConfig(library=CORELIB018, max_route_iterations=6)
    floorplan = Floorplan.from_rows(13, aspect=1.0)
    positions = place_base_network(base, floorplan)
    return base, config, floorplan, positions


class TestParallelKSweepDeterminism:
    """ISSUE 2 acceptance: workers=N is bit-identical to workers=1."""

    K_VALUES = [0.0, 0.0005, 0.005, 0.05, 0.5]

    def test_rows_identical_point_for_point(self, sweep_setup):
        base, config, floorplan, positions = sweep_setup
        serial = k_sweep(base, floorplan, config, k_values=self.K_VALUES,
                         positions=positions, workers=1)
        parallel = k_sweep(base, floorplan, config, k_values=self.K_VALUES,
                           positions=positions, workers=4)
        assert len(serial) == len(parallel) == len(self.K_VALUES)
        for s, p in zip(serial, parallel):
            assert s.row() == p.row()
            # Beyond the row tuple: the full evaluation agrees.
            assert s.routed_wirelength == p.routed_wirelength
            assert s.hpwl == p.hpwl
            assert s.mapping.netlist.cell_histogram() == \
                p.mapping.netlist.cell_histogram()

    def test_config_workers_used_as_default(self, sweep_setup):
        base, config, floorplan, positions = sweep_setup
        cfg = FlowConfig(library=config.library,
                         max_route_iterations=config.max_route_iterations,
                         workers=2)
        serial = k_sweep(base, floorplan, config, k_values=[0.0, 0.01],
                         positions=positions)
        viaconfig = k_sweep(base, floorplan, cfg, k_values=[0.0, 0.01],
                            positions=positions)
        assert [p.row() for p in serial] == [p.row() for p in viaconfig]

    def test_parallel_rounds_reuse_routes(self, sweep_setup):
        """ISSUE 7 satellite: workers>1 + route_reuse must actually
        warm-start (the pre-fix parallel path silently dropped the
        cache).  With 2 workers the sweep runs rounds [K0, K1], [K2];
        the second round warm-starts from the first's clean pick."""
        base, config, floorplan, positions = sweep_setup
        points = k_sweep(base, floorplan, config,
                         k_values=[0.0, 0.001, 0.01],
                         positions=positions, workers=2)
        assert points[0].stats["routes_reused"] == 0
        assert points[1].stats["routes_reused"] == 0
        if not any(p.violations == 0 for p in points[:2]):
            pytest.skip("no clean first-round point to seed the cache")
        assert points[2].stats["routes_reused"] > 0
        # And the warm rows still match a cold parallel sweep's.
        from dataclasses import replace
        cold = k_sweep(base, floorplan,
                       replace(config, route_reuse=False),
                       k_values=[0.0, 0.001, 0.01],
                       positions=positions, workers=2)
        assert [p.row() for p in points] == [p.row() for p in cold]

    def test_instrumentation_present(self, sweep_setup):
        base, config, floorplan, positions = sweep_setup
        points = k_sweep(base, floorplan, config, k_values=[0.0, 0.001],
                         positions=positions)
        for point in points:
            for key in ("map.t_total", "eval.t_total", "eval.t_place",
                        "eval.t_route", "map.t_partition", "map.t_cover",
                        "map.t_build", "map.match_cache_hits",
                        "map.match_cache_misses"):
                assert key in point.stats, key
        # The matcher memo is shared across the sweep: the second K
        # re-uses the first K's enumerations.
        assert points[0].stats["match_cache_misses"] > 0
        assert points[1].stats["match_cache_misses"] == 0
        assert points[1].stats["match_cache_hits"] > 0
