"""Tests for covering objectives."""

import pytest

from repro.core import CoverObjective, area_congestion, min_area, min_delay


class TestConstruction:
    def test_min_area(self):
        obj = min_area()
        assert obj.mode == "area"
        assert obj.k == 0.0
        assert not obj.uses_positions

    def test_area_congestion(self):
        obj = area_congestion(0.005)
        assert obj.k == 0.005
        assert obj.uses_positions

    def test_transitive_variant(self):
        assert area_congestion(0.1, transitive_wire=True).transitive_wire

    def test_min_delay(self):
        obj = min_delay(load_estimate=0.02)
        assert obj.mode == "delay"
        assert obj.load_estimate == 0.02

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            area_congestion(-1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CoverObjective(mode="power")


class TestCost:
    def test_area_mode_eq5(self):
        obj = area_congestion(0.5)
        assert obj.cost(area=10.0, wire=4.0, arrival=99.0) == \
            pytest.approx(10.0 + 0.5 * 4.0)

    def test_k_zero_ignores_wire(self):
        obj = min_area()
        assert obj.cost(10.0, 1e9, 0.0) == pytest.approx(10.0)

    def test_delay_mode(self):
        obj = min_delay()
        assert obj.cost(area=1e9, wire=0.0, arrival=2.5) == pytest.approx(2.5)

    def test_delay_mode_with_wire(self):
        obj = min_delay(k=0.1)
        assert obj.cost(0.0, 10.0, 2.5) == pytest.approx(3.5)

    def test_cost_monotone_in_each_axis(self):
        obj = area_congestion(0.01)
        base = obj.cost(10.0, 100.0, 0.0)
        assert obj.cost(11.0, 100.0, 0.0) > base
        assert obj.cost(10.0, 110.0, 0.0) > base
