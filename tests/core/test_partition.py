"""Tests for DAG partitioning (Figure 2 and baselines)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    PositionMap,
    cone_partition,
    dagon_partition,
    partition,
    placement_partition,
)
from repro.errors import MappingError
from repro.network import decompose
from repro.circuits import random_logic_network


def random_positions(base, seed=0):
    rng = random.Random(seed)
    return PositionMap([(rng.uniform(0, 100), rng.uniform(0, 100))
                        for _ in range(base.num_vertices())])


class TestDagonPartition:
    def test_every_gate_in_exactly_one_tree(self, small_base):
        part = dagon_partition(small_base)
        seen = {}
        for root in part.roots:
            for v in part.trees[root].members:
                assert v not in seen, "dagon trees must not overlap"
                seen[v] = root
        live = small_base.transitive_fanin(small_base.roots())
        for v in small_base.gates():
            if v in live:
                assert v in seen

    def test_multifanout_vertices_are_roots(self, small_base):
        part = dagon_partition(small_base)
        counts = small_base.fanout_counts()
        for v in small_base.gates():
            if counts[v] >= 2:
                assert v in part.materialized
                assert v in part.trees

    def test_no_duplication(self, small_base):
        assert dagon_partition(small_base).duplication() == 0

    def test_roots_topological(self, small_base):
        part = dagon_partition(small_base)
        assert part.roots == sorted(part.roots)


class TestConePartition:
    def test_all_roots_present(self, small_base):
        part = cone_partition(small_base)
        for v in small_base.roots():
            assert v in part.trees

    def test_absorption_allowed(self, medium_base):
        part = cone_partition(medium_base)
        assert part.duplication() >= 0

    def test_order_dependence(self, medium_base):
        a = cone_partition(medium_base,
                           output_order=sorted(medium_base.outputs))
        b = cone_partition(medium_base,
                           output_order=sorted(medium_base.outputs,
                                               reverse=True))
        # Cones depend on output order (the drawback the paper cites);
        # at least the father maps usually differ on shared logic.
        assert a.roots == b.roots  # roots are order-independent

    def test_unknown_output_rejected(self, small_base):
        with pytest.raises(MappingError):
            cone_partition(small_base, output_order=["nope"])


class TestPlacementPartition:
    def test_father_is_nearest_reader(self, medium_base):
        positions = random_positions(medium_base)
        part = placement_partition(medium_base, positions)
        fanout = medium_base.fanout_map()
        for v, father in part.fathers.items():
            readers = fanout[v]
            assert father in readers
            best = min(positions.dist_vertices(u, v) for u in readers)
            assert positions.dist_vertices(father, v) == pytest.approx(best)

    def test_order_independent_by_construction(self, medium_base):
        positions = random_positions(medium_base)
        a = placement_partition(medium_base, positions)
        b = placement_partition(medium_base, positions)
        assert a.fathers == b.fathers

    def test_placement_changes_partition(self, medium_base):
        a = placement_partition(medium_base, random_positions(medium_base, 1))
        b = placement_partition(medium_base, random_positions(medium_base, 2))
        assert a.fathers != b.fathers

    def test_requires_positions(self, small_base):
        with pytest.raises(MappingError):
            partition(small_base, "placement")

    def test_short_position_map_rejected(self, small_base):
        with pytest.raises(MappingError):
            placement_partition(small_base, PositionMap([(0.0, 0.0)]))

    def test_trees_cover_all_live_gates(self, medium_base):
        positions = random_positions(medium_base)
        part = placement_partition(medium_base, positions)
        covered = set()
        for tree in part.trees.values():
            covered |= tree.members
        live = medium_base.transitive_fanin(medium_base.roots())
        for v in medium_base.gates():
            if v in live:
                assert v in covered

    def test_max_tree_size_cap_limits_duplication(self, medium_base):
        positions = random_positions(medium_base)
        capped = placement_partition(medium_base, positions, max_tree_size=5)
        free = placement_partition(medium_base, positions)
        # The cap stops absorbing materialized vertices, so logic
        # duplication cannot exceed the uncapped partition's.
        assert capped.duplication() <= free.duplication()


class TestTreeStructure:
    def test_members_form_tree_via_fathers(self, medium_base):
        positions = random_positions(medium_base)
        part = placement_partition(medium_base, positions)
        for root, tree in part.trees.items():
            for v in tree.members:
                if v == root:
                    continue
                # Father chain from v stays in the tree and reaches root.
                cursor = v
                for _ in range(len(tree.members) + 1):
                    cursor = part.fathers[cursor]
                    assert cursor in tree.members
                    if cursor == root:
                        break
                else:
                    pytest.fail("father chain did not reach the root")

    def test_dispatch(self, small_base):
        assert partition(small_base, "dagon").style == "dagon"
        assert partition(small_base, "cone").style == "cone"
        with pytest.raises(MappingError):
            partition(small_base, "banana")
