"""Tests for the delay objective of the covering DP."""

import pytest

from repro.circuits import ripple_carry_adder
from repro.core import PositionMap, map_network, min_area, min_delay
from repro.library import CORELIB018
from repro.metrics import logic_depth
from repro.network import check_base_vs_mapped, decompose


@pytest.fixture(scope="module")
def adder_base():
    return decompose(ripple_carry_adder(8))


class TestMinDelayObjective:
    def test_preserves_function(self, adder_base):
        result = map_network(adder_base, CORELIB018, min_delay())
        check_base_vs_mapped(adder_base, result.netlist, CORELIB018)

    def test_no_deeper_than_min_area(self, adder_base):
        area_map = map_network(adder_base, CORELIB018, min_area())
        delay_map = map_network(adder_base, CORELIB018, min_delay())
        assert logic_depth(delay_map.netlist) <= \
            logic_depth(area_map.netlist)

    def test_pays_area_for_speed(self, adder_base):
        area_map = map_network(adder_base, CORELIB018, min_area())
        delay_map = map_network(adder_base, CORELIB018, min_delay())
        # Min-delay never undercuts min-area on area (min-area is optimal).
        assert delay_map.stats["cell_area"] >= \
            area_map.stats["cell_area"] - 1e-9

    def test_constant_load_limitation_is_bounded(self, adder_base):
        """Known limitation: constant-load covering reduces depth but
        its duplication can load shared nets; post-route arrival must
        still stay within a bounded factor of the min-area netlist."""
        from repro.timing import StaticTimingAnalyzer
        sta = StaticTimingAnalyzer(CORELIB018)
        area_map = map_network(adder_base, CORELIB018, min_area())
        delay_map = map_network(adder_base, CORELIB018, min_delay())
        a_arr = sta.analyze(area_map.netlist).critical_arrival
        d_arr = sta.analyze(delay_map.netlist).critical_arrival
        assert d_arr <= a_arr * 1.6

    def test_load_estimate_changes_choices(self, adder_base):
        light = map_network(adder_base, CORELIB018,
                            min_delay(load_estimate=0.001))
        heavy = map_network(adder_base, CORELIB018,
                            min_delay(load_estimate=0.05))
        # Under heavy estimated load, low-resistance (bigger) cells win.
        def mean_resistance(netlist):
            cells = [CORELIB018.cell(i.cell_name)
                     for i in netlist.instances.values()]
            return sum(c.drive_resistance for c in cells) / len(cells)
        assert mean_resistance(heavy.netlist) <= \
            mean_resistance(light.netlist) + 1e-9
