"""Tests for the phase-aware structural matcher."""

import pytest

from repro.core import Matcher, NEG, POS
from repro.library import CORELIB018
from repro.network import BooleanNetwork, decompose, parse_sop
from repro.network.dag import BaseNetwork


def all_consumable(_v):
    return True


@pytest.fixture
def and_base():
    """INV(NAND2(a, b)) — an AND2 shape."""
    net = BaseNetwork("and2")
    a = net.add_input("a")
    b = net.add_input("b")
    n = net.add_nand2(a, b)
    i = net.add_inv(n)
    net.set_output("y", i)
    return net, n, i


class TestBasicMatches:
    def test_nand_cell_matches_nand_vertex(self, and_base):
        base, nand_v, _ = and_base
        matcher = Matcher(base, CORELIB018)
        matches = matcher.matches_at(nand_v, all_consumable)
        names = {m.cell.name for m in matches[POS]}
        assert "NAND2_X1" in names
        assert "NAND2_X2" in names

    def test_and_cell_matches_inv_of_nand(self, and_base):
        base, _, inv_v = and_base
        matcher = Matcher(base, CORELIB018)
        matches = matcher.matches_at(inv_v, all_consumable)
        names = {m.cell.name for m in matches[POS]}
        assert "AND2_X1" in names
        assert "INV_X1" in names  # inverter covering just the INV

    def test_and_match_consumes_both_gates(self, and_base):
        base, nand_v, inv_v = and_base
        matcher = Matcher(base, CORELIB018)
        and_matches = [m for m in matcher.matches_at(inv_v, all_consumable)[POS]
                       if m.cell.name == "AND2_X1"]
        assert and_matches
        assert and_matches[0].consumed == {nand_v, inv_v}

    def test_neg_phase_and_at_nand(self, and_base):
        """AND2 rooted at the NAND vertex with NEG phase: out == NOT nand."""
        base, nand_v, _ = and_base
        matcher = Matcher(base, CORELIB018)
        matches = matcher.matches_at(nand_v, all_consumable)
        names = {m.cell.name for m in matches[NEG]}
        assert "AND2_X1" in names

    def test_leaf_bindings_point_at_inputs(self, and_base):
        base, nand_v, _ = and_base
        matcher = Matcher(base, CORELIB018)
        nand_match = [m for m in matcher.matches_at(nand_v, all_consumable)[POS]
                      if m.cell.name == "NAND2_X1"][0]
        bound = {v for _, (v, _) in nand_match.leaves}
        assert bound == {base.input_vertex["a"], base.input_vertex["b"]}


class TestPolarityPropagation:
    def test_or_matches_nand_of_inverters(self):
        net = BaseNetwork("or2")
        a = net.add_input("a")
        b = net.add_input("b")
        na = net.add_inv(a)
        nb = net.add_inv(b)
        out = net.add_nand2(na, nb)
        net.set_output("y", out)
        matcher = Matcher(net, CORELIB018)
        matches = matcher.matches_at(out, all_consumable)
        or_matches = [m for m in matches[POS] if m.cell.name == "OR2_X1"]
        assert or_matches
        # One variant consumes both subject inverters (leaves = a, b)...
        assert any(m.consumed == {na, nb, out} for m in or_matches)
        # ...and another lets the pattern INVs supply the negation,
        # binding the inverter outputs with negative polarity.
        assert any(m.consumed == {out}
                   and all(not phase for _, (_, phase) in m.leaves)
                   for m in or_matches)

    def test_boundary_stops_consumption(self):
        net = BaseNetwork("bound")
        a = net.add_input("a")
        b = net.add_input("b")
        n1 = net.add_nand2(a, b)
        i1 = net.add_inv(n1)
        net.set_output("y", i1)
        matcher = Matcher(net, CORELIB018)
        # n1 is not consumable: AND2 cannot match at i1.
        matches = matcher.matches_at(i1, lambda v: v == i1)
        names = {m.cell.name for m in matches[POS]}
        assert "AND2_X1" not in names
        assert "INV_X1" in names

    def test_root_not_consumable_no_matches(self, and_base):
        base, _, inv_v = and_base
        matcher = Matcher(base, CORELIB018)
        matches = matcher.matches_at(inv_v, lambda v: False)
        assert matches[POS] == [] and matches[NEG] == []


class TestMatchMemoization:
    """ISSUE 2 satellite: per-(vertex, tree) match memoization."""

    def _deep_base(self):
        net = BaseNetwork("memo")
        a = net.add_input("a")
        b = net.add_input("b")
        n1 = net.add_nand2(a, b)
        i1 = net.add_inv(n1)
        c = net.add_input("c")
        n2 = net.add_nand2(i1, c)
        net.set_output("y", n2)
        return net, (n1, i1, n2)

    @staticmethod
    def _keys(matches):
        return {(m.cell.name, m.phase, tuple(sorted(m.leaves)), m.consumed)
                for phase in (POS, NEG) for m in matches[phase]}

    def test_memoized_equals_fresh_for_two_memberships(self):
        # The same vertex under two different tree memberships must
        # return exactly the matches a fresh enumeration yields.
        net, (n1, i1, n2) = self._deep_base()
        matcher = Matcher(net, CORELIB018)
        small = frozenset({n2})
        large = frozenset({n1, i1, n2})
        for members in (small, large):
            fresh = Matcher(net, CORELIB018).matches_at(
                n2, members.__contains__)
            memo = matcher.matches_in_tree(n2, members)
            assert self._keys(memo) == self._keys(fresh)
        # The two memberships genuinely differ: the large one lets
        # bigger patterns consume down through i1/n1.
        consumed_large = {m.consumed
                          for m in matcher.matches_in_tree(n2, large)[POS]}
        assert any(len(cset) > 1 for cset in consumed_large)
        consumed_small = {m.consumed
                          for m in matcher.matches_in_tree(n2, small)[POS]}
        assert all(cset == frozenset({n2}) for cset in consumed_small)

    def test_cache_counters(self):
        net, (n1, i1, n2) = self._deep_base()
        matcher = Matcher(net, CORELIB018)
        members = frozenset({n1, i1, n2})
        first = matcher.matches_in_tree(n2, members)
        assert matcher.stats == {"match_cache_hits": 0,
                                 "match_cache_misses": 1}
        again = matcher.matches_in_tree(n2, members)
        assert again is first  # the cached dict itself
        assert matcher.stats == {"match_cache_hits": 1,
                                 "match_cache_misses": 1}
        # A different membership is a different cache key.
        matcher.matches_in_tree(n2, frozenset({n2}))
        assert matcher.stats["match_cache_misses"] == 2


class TestComplexCells:
    def test_aoi21_matches(self):
        net = BooleanNetwork("aoi")
        for v in "abc":
            net.add_input(v)
        net.add_node("f", parse_sop("a' c' + b' c'"))  # NOT(ab + c)
        net.add_output("f")
        base = decompose(net)
        matcher = Matcher(base, CORELIB018)
        root = base.outputs["f"]
        matches = matcher.matches_at(root, all_consumable)
        assert any(m.cell.name == "AOI21_X1" for m in matches[POS]) or \
            any(m.cell.name == "AOI21_X1" for m in matches[NEG])

    def test_symmetry_gives_both_orders(self, and_base):
        base, nand_v, _ = and_base
        matcher = Matcher(base, CORELIB018)
        # OAI21: NAND(OR(A,B), C): at the nand vertex, leaf C can bind to
        # either input; deduplication keeps distinct bindings only.
        matches = matcher.matches_at(nand_v, all_consumable)[POS]
        keys = {(m.cell.name, tuple(sorted(m.leaves))) for m in matches}
        assert len(keys) == len(matches)  # all deduped
