"""Tests for the dynamic-programming tree covering."""

import itertools
import random

import pytest

from repro.core import (
    BoundaryInfo,
    Matcher,
    PositionMap,
    POS,
    NEG,
    area_congestion,
    cover_tree,
    dagon_partition,
    min_area,
    placement_partition,
)
from repro.library import CORELIB018
from repro.network import BooleanNetwork, decompose, parse_sop
from repro.network.dag import BaseNetwork


def cover_all(base, objective=None, positions=None):
    """Cover every tree of a dagon partition; return total root cost."""
    objective = objective or min_area()
    positions = positions or PositionMap.zeros(base.num_vertices())
    part = dagon_partition(base)
    matcher = Matcher(base, CORELIB018)
    boundary = BoundaryInfo(positions)
    total = 0.0
    for root in part.roots:
        cover = cover_tree(base, part.trees[root], matcher, CORELIB018,
                           objective, boundary, part.materialized)
        total += cover.root_solution().area
    return total


class TestMinAreaOptimality:
    def test_and2_cheaper_than_nand_inv(self):
        net = BaseNetwork("and2")
        a = net.add_input("a")
        b = net.add_input("b")
        i = net.add_inv(net.add_nand2(a, b))
        net.set_output("y", i)
        total = cover_all(net)
        assert total == pytest.approx(CORELIB018.cell("AND2_X1").area)

    def test_nand3_cheaper_than_pieces(self):
        net = BooleanNetwork("n3")
        for v in "abc":
            net.add_input(v)
        net.add_node("f", parse_sop("a' + b' + c'"))
        net.add_output("f")
        base = decompose(net)
        total = cover_all(base)
        assert total == pytest.approx(CORELIB018.cell("NAND3_X1").area)

    def test_matches_brute_force_on_small_trees(self):
        """DP cost equals exhaustive minimum over random small trees."""
        rng = random.Random(3)
        for trial in range(8):
            net = BaseNetwork(f"t{trial}")
            inputs = [net.add_input(f"i{k}") for k in range(4)]
            frontier = list(inputs)
            for _ in range(5):
                if rng.random() < 0.4:
                    v = net.add_inv(rng.choice(frontier))
                else:
                    v = net.add_nand2(rng.choice(frontier),
                                      rng.choice(frontier))
                frontier.append(v)
            net.set_output("y", frontier[-1])
            dp_cost = cover_all(net)
            brute = _brute_force_min_area(net)
            assert dp_cost == pytest.approx(brute), \
                f"DP {dp_cost} != brute {brute}"


def _brute_force_min_area(base):
    """Exhaustive min-area cover cost of a (single-root) base network.

    Enumerates all covers by recursive choice of matches; exponential,
    fine for <= ~8 gates.  Mirrors the DP's shared-vertex cost model:
    materialized (multi-fanout) vertices are costed once.
    """
    part = dagon_partition(base)
    matcher = Matcher(base, CORELIB018)
    inv = CORELIB018.inverter

    memo = {}

    def best(root, members, phase):
        key = (root, phase)
        if key in memo:
            return memo[key]
        matches = matcher.matches_at(root, lambda v: v in members)
        best_cost = float("inf")
        for match in matches[phase]:
            cost = match.cell.area
            for _, (u, leaf_phase) in match.leaves:
                if u not in members or (u in part.materialized
                                        and u != root):
                    cost += 0.0 if leaf_phase == POS else inv.area
                else:
                    cost += best(u, members, leaf_phase)
            best_cost = min(best_cost, cost)
        # Phase conversion via inverter.
        for match in matches[not phase]:
            cost = match.cell.area + inv.area
            for _, (u, leaf_phase) in match.leaves:
                if u not in members or (u in part.materialized
                                        and u != root):
                    cost += 0.0 if leaf_phase == POS else inv.area
                else:
                    cost += best(u, members, leaf_phase)
            best_cost = min(best_cost, cost)
        memo[key] = best_cost
        return best_cost

    total = 0.0
    for root in part.roots:
        memo.clear()
        total += best(root, part.trees[root].members, POS)
    return total


class TestWireCost:
    def test_wire_zero_when_colocated(self, small_base):
        positions = PositionMap.zeros(small_base.num_vertices())
        part = placement_partition(small_base, positions)
        matcher = Matcher(small_base, CORELIB018)
        boundary = BoundaryInfo(positions)
        for root in part.roots:
            cover = cover_tree(small_base, part.trees[root], matcher,
                               CORELIB018, area_congestion(1.0), boundary,
                               part.materialized)
            assert cover.root_solution().wire1 == pytest.approx(0.0)

    def test_high_k_reduces_wire(self, medium_base):
        rng = random.Random(9)
        positions = PositionMap(
            [(rng.uniform(0, 200), rng.uniform(0, 200))
             for _ in range(medium_base.num_vertices())])
        part = placement_partition(medium_base, positions)
        matcher = Matcher(medium_base, CORELIB018)

        def total_wire(objective):
            boundary = BoundaryInfo(positions.copy())
            wire = 0.0
            for root in part.roots:
                cover = cover_tree(medium_base, part.trees[root], matcher,
                                   CORELIB018, objective, boundary,
                                   part.materialized)
                wire += cover.root_solution().wire_transitive
            return wire

        assert total_wire(area_congestion(50.0)) <= \
            total_wire(area_congestion(0.0)) + 1e-9

    def test_area_grows_with_k(self, medium_base):
        rng = random.Random(9)
        positions = PositionMap(
            [(rng.uniform(0, 200), rng.uniform(0, 200))
             for _ in range(medium_base.num_vertices())])
        low = cover_all(medium_base, area_congestion(0.0), positions)
        high = cover_all(medium_base, area_congestion(50.0), positions)
        assert high >= low


class TestSolutionBookkeeping:
    def test_root_positive_solution_exists(self, small_base):
        part = dagon_partition(small_base)
        matcher = Matcher(small_base, CORELIB018)
        boundary = BoundaryInfo(PositionMap.zeros(small_base.num_vertices()))
        for root in part.roots:
            cover = cover_tree(small_base, part.trees[root], matcher,
                               CORELIB018, min_area(), boundary,
                               part.materialized)
            sol = cover.root_solution()
            assert sol.area > 0
            assert sol.match is not None or sol.inv_source is not None

    def test_arrival_monotone_with_depth(self):
        net = BaseNetwork("chain")
        a = net.add_input("a")
        v = a
        arrivals = []
        part_matcher = None
        for depth in range(1, 5):
            v = net.add_inv(v)
        net.set_output("y", v)
        part = dagon_partition(net)
        matcher = Matcher(net, CORELIB018)
        boundary = BoundaryInfo(PositionMap.zeros(net.num_vertices()))
        cover = cover_tree(net, part.trees[part.roots[0]], matcher,
                           CORELIB018, min_area(), boundary,
                           part.materialized)
        assert cover.root_solution().arrival > 0
