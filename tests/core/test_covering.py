"""Tests for the dynamic-programming tree covering."""

import itertools
import random

import pytest

from repro.core import (
    BoundaryInfo,
    Matcher,
    PositionMap,
    POS,
    NEG,
    area_congestion,
    cover_tree,
    dagon_partition,
    min_area,
    placement_partition,
)
from repro.library import CORELIB018
from repro.network import BooleanNetwork, decompose, parse_sop
from repro.network.dag import BaseNetwork


def cover_all(base, objective=None, positions=None):
    """Cover every tree of a dagon partition; return total root cost."""
    objective = objective or min_area()
    positions = positions or PositionMap.zeros(base.num_vertices())
    part = dagon_partition(base)
    matcher = Matcher(base, CORELIB018)
    boundary = BoundaryInfo(positions)
    total = 0.0
    for root in part.roots:
        cover = cover_tree(base, part.trees[root], matcher, CORELIB018,
                           objective, boundary, part.materialized)
        total += cover.root_solution().area
    return total


class TestMinAreaOptimality:
    def test_and2_cheaper_than_nand_inv(self):
        net = BaseNetwork("and2")
        a = net.add_input("a")
        b = net.add_input("b")
        i = net.add_inv(net.add_nand2(a, b))
        net.set_output("y", i)
        total = cover_all(net)
        assert total == pytest.approx(CORELIB018.cell("AND2_X1").area)

    def test_nand3_cheaper_than_pieces(self):
        net = BooleanNetwork("n3")
        for v in "abc":
            net.add_input(v)
        net.add_node("f", parse_sop("a' + b' + c'"))
        net.add_output("f")
        base = decompose(net)
        total = cover_all(base)
        assert total == pytest.approx(CORELIB018.cell("NAND3_X1").area)

    def test_matches_brute_force_on_small_trees(self):
        """DP cost equals exhaustive minimum over random small trees."""
        rng = random.Random(3)
        for trial in range(8):
            net = BaseNetwork(f"t{trial}")
            inputs = [net.add_input(f"i{k}") for k in range(4)]
            frontier = list(inputs)
            for _ in range(5):
                if rng.random() < 0.4:
                    v = net.add_inv(rng.choice(frontier))
                else:
                    v = net.add_nand2(rng.choice(frontier),
                                      rng.choice(frontier))
                frontier.append(v)
            net.set_output("y", frontier[-1])
            dp_cost = cover_all(net)
            brute = _brute_force_min_area(net)
            assert dp_cost == pytest.approx(brute), \
                f"DP {dp_cost} != brute {brute}"


def _brute_force_min_area(base):
    """Exhaustive min-area cover cost of a (single-root) base network.

    Enumerates all covers by recursive choice of matches; exponential,
    fine for <= ~8 gates.  Mirrors the DP's shared-vertex cost model:
    materialized (multi-fanout) vertices are costed once.
    """
    part = dagon_partition(base)
    matcher = Matcher(base, CORELIB018)
    inv = CORELIB018.inverter

    memo = {}

    def best(root, members, phase):
        key = (root, phase)
        if key in memo:
            return memo[key]
        matches = matcher.matches_at(root, lambda v: v in members)
        best_cost = float("inf")
        for match in matches[phase]:
            cost = match.cell.area
            for _, (u, leaf_phase) in match.leaves:
                if u not in members or (u in part.materialized
                                        and u != root):
                    cost += 0.0 if leaf_phase == POS else inv.area
                else:
                    cost += best(u, members, leaf_phase)
            best_cost = min(best_cost, cost)
        # Phase conversion via inverter.
        for match in matches[not phase]:
            cost = match.cell.area + inv.area
            for _, (u, leaf_phase) in match.leaves:
                if u not in members or (u in part.materialized
                                        and u != root):
                    cost += 0.0 if leaf_phase == POS else inv.area
                else:
                    cost += best(u, members, leaf_phase)
            best_cost = min(best_cost, cost)
        memo[key] = best_cost
        return best_cost

    total = 0.0
    for root in part.roots:
        memo.clear()
        total += best(root, part.trees[root].members, POS)
    return total


class TestWireCost:
    def test_wire_zero_when_colocated(self, small_base):
        positions = PositionMap.zeros(small_base.num_vertices())
        part = placement_partition(small_base, positions)
        matcher = Matcher(small_base, CORELIB018)
        boundary = BoundaryInfo(positions)
        for root in part.roots:
            cover = cover_tree(small_base, part.trees[root], matcher,
                               CORELIB018, area_congestion(1.0), boundary,
                               part.materialized)
            assert cover.root_solution().wire1 == pytest.approx(0.0)

    def test_high_k_reduces_wire(self, medium_base):
        rng = random.Random(9)
        positions = PositionMap(
            [(rng.uniform(0, 200), rng.uniform(0, 200))
             for _ in range(medium_base.num_vertices())])
        part = placement_partition(medium_base, positions)
        matcher = Matcher(medium_base, CORELIB018)

        def total_wire(objective):
            boundary = BoundaryInfo(positions.copy())
            wire = 0.0
            for root in part.roots:
                cover = cover_tree(medium_base, part.trees[root], matcher,
                                   CORELIB018, objective, boundary,
                                   part.materialized)
                wire += cover.root_solution().wire_transitive
            return wire

        assert total_wire(area_congestion(50.0)) <= \
            total_wire(area_congestion(0.0)) + 1e-9

    def test_area_grows_with_k(self, medium_base):
        rng = random.Random(9)
        positions = PositionMap(
            [(rng.uniform(0, 200), rng.uniform(0, 200))
             for _ in range(medium_base.num_vertices())])
        low = cover_all(medium_base, area_congestion(0.0), positions)
        high = cover_all(medium_base, area_congestion(50.0), positions)
        assert high >= low


class TestWire2Recursion:
    """Regression for Eq. 3: WIRE2 must use the fanins' *stored* wire.

    The pre-fix code summed the fanins' one-level WIRE1 instead, so a
    three-level tree "forgot" the wire of its grandchildren.  The chain
    below is hand-computed: identity NAND2 covers are the only sensible
    option, so every wire figure is exact.
    """

    def _chain(self):
        net = BaseNetwork("chain3")
        a = net.add_input("a")          # vertex 0
        b = net.add_input("b")          # vertex 1
        v1 = net.add_nand2(a, b)        # vertex 2
        c = net.add_input("c")          # vertex 3
        v2 = net.add_nand2(v1, c)       # vertex 4
        d = net.add_input("d")          # vertex 5
        v3 = net.add_nand2(v2, d)       # vertex 6
        net.set_output("y", v3)
        positions = PositionMap([
            (0.0, 0.0),   # a
            (2.0, 0.0),   # b
            (1.0, 0.0),   # v1 -> match com (1, 0)
            (4.0, 0.0),   # c
            (3.0, 0.0),   # v2 -> match com (3, 0)
            (8.0, 0.0),   # d
            (6.0, 0.0),   # v3 -> match com (6, 0)
        ])
        return net, positions

    def _cover(self, k):
        net, positions = self._chain()
        part = dagon_partition(net)
        assert part.roots == [6]
        matcher = Matcher(net, CORELIB018)
        boundary = BoundaryInfo(positions)
        return cover_tree(net, part.trees[6], matcher, CORELIB018,
                          area_congestion(k), boundary, part.materialized)

    def test_hand_computed_wire_accumulates_three_levels(self):
        # wire1(v1) = |v1-a| + |v1-b|  = 1 + 1 = 2     (Eq. 2)
        # wire(v1)  = 2                                (leaves are PIs)
        # wire1(v2) = |v2-v1| + |v2-c| = 2 + 1 = 3
        # wire(v2)  = 3 + wire(v1)     = 5             (Eq. 3 + Eq. 4)
        # wire1(v3) = |v3-v2| + |v3-d| = 3 + 2 = 5
        # wire(v3)  = 5 + wire(v2)     = 10
        # The pre-fix code scored wire(v3) = wire1(v3) + wire1(v2) = 8.
        sol = self._cover(0.01).root_solution()
        nand = CORELIB018.cell("NAND2_X1")
        assert sol.wire1 == pytest.approx(5.0)
        assert sol.wire == pytest.approx(10.0)
        assert sol.area == pytest.approx(3 * nand.area)
        assert sol.cost == pytest.approx(3 * nand.area + 0.01 * 10.0)

    def test_paper_wire_equals_transitive_within_one_tree(self):
        # With no tree boundaries above PIs the two accumulations agree.
        sol = self._cover(0.01).root_solution()
        assert sol.wire == pytest.approx(sol.wire_transitive)


def _oai_library():
    """INV + NAND2 + OAI21 only, with hand-friendly areas."""
    from repro.library.cell import CellLibrary, LibCell
    from repro.library.patterns import leaf, pinv, pnand

    def cell(name, patterns, area):
        pins = {p: 0.002 for p in patterns[0].leaves()}
        return LibCell(name=name, patterns=tuple(patterns), area=area,
                       intrinsic_delay=0.03, drive_resistance=6.0,
                       pin_caps=pins)

    oai21 = pnand(pnand(pinv(leaf("A")), pinv(leaf("B"))), leaf("C"))
    return CellLibrary("oai_mini", [
        cell("INV", [pinv(leaf("A"))], 2.0),
        cell("NAND2", [pnand(leaf("A"), leaf("B"))], 4.0),
        cell("OAI21", [oai21], 9.0),
    ])


class TestSharedComplementCost:
    """Regression: a NEG reference to a materialized net costs one
    inverter *total*, not one per referencing tree.

    The netlist builder shares a single complement inverter per net;
    the pre-fix DP charged ``inv.area`` for every NEG leaf, so its
    claimed area drifted from the realised netlist area by one inverter
    per extra sharer.

    Construction: p and q are materialized NAND2 nets.  Two trees
    ``r = NAND2(s, e)`` with ``s = NAND2(p, q)`` are each covered by
    OAI21 (= (p' + q')' NAND e), whose two ``pinv``-over-leaf pattern
    nodes NEG-reference the shared nets p and q.  With r far from the
    rest, OAI21's center of mass halves the long wires, beating the
    two-NAND2 cover (area 8, wire 200) at K = 0.2:

        tree 1: area 9 + 2 + 2 (both complements new), wire 150
        tree 2: area 9 + 0 + 0 (complements exist),    wire 150
    """

    def _base(self):
        from repro.network.dag import NAND2 as KIND_NAND2
        net = BaseNetwork("sharedneg")
        p = net.add_nand2(net.add_input("x1"), net.add_input("y1"))
        q = net.add_nand2(net.add_input("x2"), net.add_input("y2"))
        e1 = net.add_input("e1")
        s1 = net.add_nand2(p, q)
        r1 = net.add_nand2(s1, e1)
        e2 = net.add_input("e2")
        # A second, *distinct* NAND2(p, q) — bypassing the structural
        # hash, which would merge it with s1 into one multi-fanout
        # vertex and break the two-sharing-trees shape.
        s2 = net._new_vertex(KIND_NAND2, (p, q))
        r2 = net.add_nand2(s2, e2)
        net.set_output("o1", r1)
        net.set_output("o2", r2)
        positions = PositionMap(
            [(0.0, 0.0) if v in (r1, r2) else (100.0, 0.0)
             for v in range(net.num_vertices())])
        return net, positions

    def test_dp_claimed_area_matches_realized_area(self):
        from repro.core import map_network
        net, positions = self._base()
        lib = _oai_library()
        result = map_network(net, lib, area_congestion(0.2),
                             partition_style="dagon", positions=positions)
        # p, q, two OAI21 covers, and ONE shared inverter per complement.
        hist = result.netlist.cell_histogram()
        assert hist == {"NAND2": 2, "INV": 2, "OAI21": 2}
        assert result.stats["cell_area"] == pytest.approx(30.0)
        assert result.stats["dp_claimed_area"] == \
            pytest.approx(result.stats["cell_area"])

    def test_prefix_behaviour_overcharges_per_sharing_tree(self, monkeypatch):
        # Simulate the pre-fix DP (every NEG leaf pays the inverter) and
        # check the claimed area drifts by exactly the two re-charged
        # complements — i.e. this regression genuinely fails on the old
        # cost model while the realised netlist is unchanged.
        from repro.core import map_network
        monkeypatch.setattr(BoundaryInfo, "has_complement",
                            lambda self, vertex: False)
        net, positions = self._base()
        lib = _oai_library()
        result = map_network(net, lib, area_congestion(0.2),
                             partition_style="dagon", positions=positions)
        assert result.netlist.cell_histogram() == \
            {"NAND2": 2, "INV": 2, "OAI21": 2}
        assert result.stats["dp_claimed_area"] == \
            pytest.approx(result.stats["cell_area"] + 2 * lib.inverter.area)


class TestSolutionBookkeeping:
    def test_root_positive_solution_exists(self, small_base):
        part = dagon_partition(small_base)
        matcher = Matcher(small_base, CORELIB018)
        boundary = BoundaryInfo(PositionMap.zeros(small_base.num_vertices()))
        for root in part.roots:
            cover = cover_tree(small_base, part.trees[root], matcher,
                               CORELIB018, min_area(), boundary,
                               part.materialized)
            sol = cover.root_solution()
            assert sol.area > 0
            assert sol.match is not None or sol.inv_source is not None

    def test_arrival_monotone_with_depth(self):
        net = BaseNetwork("chain")
        a = net.add_input("a")
        v = a
        arrivals = []
        part_matcher = None
        for depth in range(1, 5):
            v = net.add_inv(v)
        net.set_output("y", v)
        part = dagon_partition(net)
        matcher = Matcher(net, CORELIB018)
        boundary = BoundaryInfo(PositionMap.zeros(net.num_vertices()))
        cover = cover_tree(net, part.trees[part.roots[0]], matcher,
                           CORELIB018, min_area(), boundary,
                           part.materialized)
        assert cover.root_solution().arrival > 0
