"""Structural tests of the netlist the mapper builds."""

import pytest

from repro.core import PositionMap, area_congestion, map_network, min_area
from repro.library import CORELIB018
from repro.network import BooleanNetwork, decompose, parse_sop


class TestNetNaming:
    def test_po_drives_net_of_same_name(self, small_base):
        result = map_network(small_base, CORELIB018, min_area())
        drivers = result.netlist.driver_map()
        for po in small_base.outputs:
            net = result.netlist.output_net[po]
            assert net in drivers or net in result.netlist.inputs

    def test_pi_nets_named_after_inputs(self, small_base):
        result = map_network(small_base, CORELIB018, min_area())
        assert set(result.netlist.inputs) == set(small_base.input_vertex)

    def test_net_of_vertex_covers_materialized(self, small_base):
        result = map_network(small_base, CORELIB018, min_area())
        for root in result.partition.roots:
            assert root in result.net_of_vertex


class TestInverterSharing:
    def test_single_shared_inverter_per_net(self):
        """Many NEG uses of one shared signal yield exactly one INV."""
        net = BooleanNetwork("s")
        for v in "abcde":
            net.add_input(v)
        net.add_node("s", parse_sop("a b"))
        for k, reader in enumerate("cde"):
            net.add_node(f"f{k}", parse_sop(f"s' {reader}"))
            net.add_output(f"f{k}")
        net.add_output("s")
        base = decompose(net)
        result = map_network(base, CORELIB018, min_area())
        # Count inverters reading the net that carries s.
        s_net = result.netlist.output_net["s"]
        invs = [i for i in result.netlist.instances.values()
                if i.cell_name.startswith("INV")
                and i.pins.get("A") == s_net]
        assert len(invs) <= 1


class TestWirelengthAccounting:
    def test_zero_positions_zero_wire(self, small_base):
        positions = PositionMap.zeros(small_base.num_vertices())
        result = map_network(small_base, CORELIB018, area_congestion(0.01),
                             partition_style="placement",
                             positions=positions)
        assert result.estimated_wirelength == pytest.approx(0.0)

    def test_wire_scales_with_geometry(self, small_base):
        import random
        rng = random.Random(5)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10))
               for _ in range(small_base.num_vertices())]
        small = map_network(small_base, CORELIB018, area_congestion(0.001),
                            partition_style="placement",
                            positions=PositionMap(pts))
        scaled = map_network(
            small_base, CORELIB018, area_congestion(0.001),
            partition_style="placement",
            positions=PositionMap([(10 * x, 10 * y) for x, y in pts]))
        # Same relative geometry, 10x size: wire estimate ~10x (the
        # cover may differ slightly since K is not rescaled).
        assert scaled.estimated_wirelength > 4 * small.estimated_wirelength


class TestCommittedPositions:
    def test_committed_positions_inside_original_hull(self, small_base):
        import random
        rng = random.Random(6)
        pts = [(rng.uniform(0, 50), rng.uniform(0, 50))
               for _ in range(small_base.num_vertices())]
        result = map_network(small_base, CORELIB018, area_congestion(0.01),
                             partition_style="placement",
                             positions=PositionMap(pts))
        for name, (x, y) in result.instance_positions.items():
            assert -1e-6 <= x <= 50 + 1e-6
            assert -1e-6 <= y <= 50 + 1e-6
