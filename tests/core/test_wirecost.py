"""Tests for position bookkeeping and distance metrics."""

import pytest

from repro.core import EUCLIDEAN, MANHATTAN, PositionMap, distance
from repro.errors import MappingError


class TestDistance:
    def test_manhattan(self):
        assert distance((0, 0), (3, 4), MANHATTAN) == pytest.approx(7.0)

    def test_euclidean(self):
        assert distance((0, 0), (3, 4), EUCLIDEAN) == pytest.approx(5.0)

    def test_unknown_metric(self):
        with pytest.raises(MappingError):
            distance((0, 0), (1, 1), "chebyshev")

    def test_symmetry(self):
        assert distance((1, 2), (5, 9)) == distance((5, 9), (1, 2))


class TestPositionMap:
    def test_get_set(self):
        pm = PositionMap([(0, 0), (1, 1)])
        pm.set(0, (5.0, 6.0))
        assert pm.get(0) == (5.0, 6.0)
        assert len(pm) == 2

    def test_zeros(self):
        pm = PositionMap.zeros(3)
        assert pm.get(2) == (0.0, 0.0)

    def test_centroid(self):
        pm = PositionMap([(0, 0), (2, 0), (1, 3)])
        assert pm.centroid([0, 1, 2]) == pytest.approx((1.0, 1.0))

    def test_centroid_empty_rejected(self):
        pm = PositionMap([(0, 0)])
        with pytest.raises(MappingError):
            pm.centroid([])

    def test_commit_collapses(self):
        pm = PositionMap([(0, 0), (2, 0), (9, 9)])
        pm.commit([0, 1], (1.0, 0.0))
        assert pm.get(0) == (1.0, 0.0)
        assert pm.get(1) == (1.0, 0.0)
        assert pm.get(2) == (9.0, 9.0)

    def test_copy_is_independent(self):
        pm = PositionMap([(0, 0)])
        clone = pm.copy()
        clone.set(0, (7, 7))
        assert pm.get(0) == (0.0, 0.0)

    def test_dist_vertices_uses_metric(self):
        pm = PositionMap([(0, 0), (3, 4)], metric=EUCLIDEAN)
        assert pm.dist_vertices(0, 1) == pytest.approx(5.0)

    def test_as_points_roundtrip(self):
        points = [(0.5, 1.5), (2.0, 3.0)]
        assert PositionMap(points).as_points() == points
