"""Tests for the adaptive minimum-K search (repro.core.ksearch)."""

import pytest

from repro.circuits import random_pla
from repro.core import FlowConfig, k_search, k_sweep
from repro.core.ksearch import (
    BISECT,
    FOUND,
    GRID,
    PORTFOLIO,
    UNROUTABLE,
    _pick_spread,
    _spread,
)
from repro.library import CORELIB018
from repro.network import decompose
from repro.obs import Tracer
from repro.place import Floorplan, place_base_network

#: A small grid whose routable window the strategies must all locate.
K_GRID = [0.0, 0.001, 0.01, 0.1, 1.0]


@pytest.fixture(scope="module")
def search_setup():
    pla = random_pla("ks", num_inputs=10, num_outputs=6, num_products=30,
                     literals=(3, 6), outputs_per_product=(1, 2),
                     groups=3, input_window=6, seed=77)
    base = decompose(pla.to_network())
    config = FlowConfig(library=CORELIB018, max_route_iterations=8)
    floorplan = Floorplan.from_rows(14, aspect=1.0)
    positions = place_base_network(base, floorplan)
    return base, config, floorplan, positions


@pytest.fixture(scope="module")
def sweep_oracle(search_setup):
    """The exhaustive sweep over K_GRID, plus a tolerance that makes at
    least one grid point routable and the row that tolerance selects."""
    base, config, floorplan, positions = search_setup
    points = k_sweep(base, floorplan, config, k_values=K_GRID,
                     positions=positions)
    tol = min(p.violations for p in points)
    minimum = next(p for p in points if p.violations <= tol)
    return points, tol, minimum


def _rows_by_k(points):
    return {p.k: (p.row(), p.routed_wirelength) for p in points}


class TestStrategiesAgree:
    """All strategies find the grid minimum; evaluated rows are
    bit-identical to the exhaustive sweep's (warm start ≡ cold start)."""

    @pytest.mark.parametrize("strategy", [GRID, BISECT, PORTFOLIO])
    def test_chosen_k_matches_oracle(self, search_setup, sweep_oracle,
                                     strategy):
        base, config, floorplan, positions = search_setup
        sweep, tol, minimum = sweep_oracle
        result = k_search(base, floorplan, config, k_values=K_GRID,
                          positions=positions, strategy=strategy,
                          tolerance=tol, workers=3)
        assert result.verdict == FOUND
        assert result.chosen_k == minimum.k
        assert result.chosen.violations <= tol
        assert result.evaluations <= len(K_GRID)
        oracle = _rows_by_k(sweep)
        for point in result.evaluated:
            row, wire = oracle[point.k]
            assert point.row() == row
            assert point.routed_wirelength == wire

    def test_portfolio_worker_invariant(self, search_setup, sweep_oracle):
        base, config, floorplan, positions = search_setup
        _, tol, minimum = sweep_oracle
        serial = k_search(base, floorplan, config, k_values=K_GRID,
                          positions=positions, strategy=PORTFOLIO,
                          tolerance=tol, workers=1)
        wide = k_search(base, floorplan, config, k_values=K_GRID,
                        positions=positions, strategy=PORTFOLIO,
                        tolerance=tol, workers=3)
        # The probe *set* scales with the round width; the chosen K and
        # the rows of commonly probed points never depend on it.
        assert serial.chosen_k == wide.chosen_k == minimum.k
        serial_rows = _rows_by_k(serial.evaluated)
        wide_rows = _rows_by_k(wide.evaluated)
        common = set(serial_rows) & set(wide_rows)
        assert common
        for k in common:
            assert serial_rows[k] == wide_rows[k]

    def test_grid_strategy_stops_at_first_routable(self, search_setup,
                                                   sweep_oracle):
        base, config, floorplan, positions = search_setup
        sweep, tol, minimum = sweep_oracle
        result = k_search(base, floorplan, config, k_values=K_GRID,
                          positions=positions, strategy=GRID, tolerance=tol)
        stop = next(i for i, p in enumerate(sweep) if p.violations <= tol)
        assert [p.k for p in result.evaluated] == \
            [p.k for p in sweep[:stop + 1]]


class TestUnroutableGrid:
    def test_exhausts_grid_and_reports(self, search_setup, monkeypatch):
        import repro.core.flow as flow_mod

        base, config, floorplan, positions = search_setup
        real_router = flow_mod.GlobalRouter

        class HopelessRouter(real_router):
            def route(self, points, cache=None):
                routing = super().route(points, cache=cache)
                routing.violations = 99
                return routing

        monkeypatch.setattr(flow_mod, "GlobalRouter", HopelessRouter)
        grid = [0.0, 0.01, 1.0]
        for strategy in (GRID, BISECT, PORTFOLIO):
            result = k_search(base, floorplan, config, k_values=grid,
                              positions=positions, strategy=strategy,
                              workers=2)
            assert result.verdict == UNROUTABLE
            assert result.chosen is None and result.chosen_k is None
            # Declaring the grid unroutable requires probing all of it.
            assert result.evaluations == len(grid)


class TestResultBookkeeping:
    def test_stats_and_trace(self, search_setup, sweep_oracle):
        base, config, floorplan, positions = search_setup
        _, tol, _ = sweep_oracle
        tracer = Tracer("run", command="ksearch")
        result = k_search(base, floorplan, config, k_values=K_GRID,
                          positions=positions, strategy=BISECT,
                          tolerance=tol, tracer=tracer)
        stats = result.stats
        assert stats["ksearch.grid_points"] == len(K_GRID)
        assert stats["ksearch.found"] == 1
        assert stats["ksearch.evaluations"] == result.evaluations
        assert stats["ksearch.certified_skips"] == \
            len(K_GRID) - result.evaluations
        root = tracer.close()
        span = root.children[0]
        assert span.name == "ksearch"
        assert span.attrs["strategy"] == BISECT
        k_points = [c for c in span.children if c.name == "k_point"]
        assert len(k_points) == result.evaluations

    def test_grid_normalized_sorted_deduped(self, search_setup, sweep_oracle):
        base, config, floorplan, positions = search_setup
        _, tol, _ = sweep_oracle
        result = k_search(base, floorplan, config,
                          k_values=[0.01, 0.0, 0.01, 1.0],
                          positions=positions, strategy=GRID, tolerance=tol)
        assert result.k_grid == (0.0, 0.01, 1.0)
        table_ks = [p.k for p in result.table_points()]
        assert table_ks == sorted(p.k for p in result.evaluated)

    def test_rejects_bad_inputs(self, search_setup):
        base, config, floorplan, positions = search_setup
        with pytest.raises(ValueError):
            k_search(base, floorplan, config, k_values=[],
                     positions=positions)
        with pytest.raises(ValueError):
            k_search(base, floorplan, config, k_values=[0.0],
                     positions=positions, strategy="annealing")


class TestProbeSpreads:
    """The index-picking helpers behind the portfolio rounds."""

    def test_spread_includes_anchor_and_end(self):
        assert _spread(14, 4) == [0, 4, 9, 13]
        assert _spread(14, 2) == [0, 13]
        assert _spread(3, 8) == [0, 1, 2]
        for n in (2, 5, 14, 29):
            for count in (2, 3, 7):
                picked = _spread(n, count)
                assert picked[0] == 0
                assert picked == sorted(set(picked))
                assert all(0 <= i < n for i in picked)

    def test_pick_spread_subsets_candidates(self):
        cand = [3, 4, 7, 9, 10, 12]
        assert _pick_spread(cand, 10) == cand
        picked = _pick_spread(cand, 3)
        assert len(picked) == 3
        assert set(picked) <= set(cand)
        assert picked[0] == cand[0] and picked[-1] == cand[-1]
