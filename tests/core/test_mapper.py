"""Tests for the end-to-end technology mapper."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import random_logic_network, random_pla
from repro.core import (
    PositionMap,
    TechnologyMapper,
    area_congestion,
    map_network,
    min_area,
    min_delay,
)
from repro.errors import MappingError
from repro.library import CORELIB018
from repro.network import check_base_vs_mapped, decompose


def random_positions(base, seed=0, size=150.0):
    rng = random.Random(seed)
    return PositionMap([(rng.uniform(0, size), rng.uniform(0, size))
                        for _ in range(base.num_vertices())])


class TestFunctionPreservation:
    @pytest.mark.parametrize("style", ["dagon", "cone"])
    def test_min_area_styles(self, small_base, style):
        result = map_network(small_base, CORELIB018, min_area(),
                             partition_style=style)
        check_base_vs_mapped(small_base, result.netlist, CORELIB018)

    @pytest.mark.parametrize("k", [0.0, 0.01, 1.0, 50.0])
    def test_congestion_objectives(self, small_base, k):
        positions = random_positions(small_base)
        result = map_network(small_base, CORELIB018, area_congestion(k),
                             partition_style="placement",
                             positions=positions)
        check_base_vs_mapped(small_base, result.netlist, CORELIB018)

    def test_min_delay(self, small_base):
        positions = random_positions(small_base)
        result = map_network(small_base, CORELIB018, min_delay(),
                             partition_style="placement",
                             positions=positions)
        check_base_vs_mapped(small_base, result.netlist, CORELIB018)

    def test_medium_network(self, medium_base):
        result = map_network(medium_base, CORELIB018, min_area())
        check_base_vs_mapped(medium_base, result.netlist, CORELIB018)

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=12, deadline=None)
    def test_random_networks_preserved(self, seed):
        net = random_logic_network("r", num_inputs=8, num_nodes=14,
                                   num_outputs=4, seed=seed)
        if not net.nodes:
            return
        base = decompose(net)
        positions = random_positions(base, seed=seed)
        result = map_network(base, CORELIB018, area_congestion(0.05),
                             partition_style="placement",
                             positions=positions)
        check_base_vs_mapped(base, result.netlist, CORELIB018)


class TestResultContents:
    def test_stats_consistent(self, small_base):
        result = map_network(small_base, CORELIB018, min_area())
        assert result.stats["cells"] == result.netlist.num_cells()
        assert result.stats["cell_area"] == pytest.approx(
            result.netlist.total_area(CORELIB018))

    def test_instance_positions_cover_instances(self, small_base):
        positions = random_positions(small_base)
        result = map_network(small_base, CORELIB018, area_congestion(0.01),
                             partition_style="placement",
                             positions=positions)
        assert set(result.instance_positions) == \
            set(result.netlist.instances)

    def test_po_nets_named_after_pos(self, small_base):
        result = map_network(small_base, CORELIB018, min_area())
        for po in small_base.outputs:
            assert po in result.netlist.output_net

    def test_shared_po_driver(self):
        from repro.network import BooleanNetwork, parse_sop
        net = BooleanNetwork("t")
        net.add_input("a")
        net.add_input("b")
        net.add_node("g", parse_sop("a b"))
        net.add_output("g")
        base = decompose(net)
        base.set_output("g2", base.outputs["g"])  # second PO, same driver
        result = map_network(base, CORELIB018, min_area())
        assert result.netlist.output_net["g"] == \
            result.netlist.output_net["g2"]
        check_base_vs_mapped(base, result.netlist, CORELIB018)

    def test_netlist_is_checked(self, medium_base):
        result = map_network(medium_base, CORELIB018, min_area())
        result.netlist.check()  # no exception


class TestObjectiveBehaviour:
    def test_min_area_beats_others_on_area(self, medium_base):
        positions = random_positions(medium_base)
        area0 = map_network(medium_base, CORELIB018, min_area(),
                            partition_style="placement",
                            positions=positions).stats["cell_area"]
        area_hi = map_network(medium_base, CORELIB018, area_congestion(50.0),
                              partition_style="placement",
                              positions=positions).stats["cell_area"]
        assert area0 <= area_hi

    def test_high_k_reduces_estimated_wire(self, medium_base):
        positions = random_positions(medium_base)
        wire0 = map_network(medium_base, CORELIB018, area_congestion(0.0),
                            partition_style="placement",
                            positions=positions).estimated_wirelength
        wire_hi = map_network(medium_base, CORELIB018, area_congestion(50.0),
                              partition_style="placement",
                              positions=positions).estimated_wirelength
        assert wire_hi <= wire0 + 1e-6

    def test_positions_required_for_wire_objective(self, small_base):
        with pytest.raises(MappingError):
            TechnologyMapper(small_base, CORELIB018,
                             objective=area_congestion(0.1))

    def test_positions_required_for_placement_partition(self, small_base):
        with pytest.raises(MappingError):
            TechnologyMapper(small_base, CORELIB018,
                             partition_style="placement")

    def test_inverter_sharing_at_boundaries(self):
        # Two trees both need the complement of a shared signal: the
        # mapper must create one shared inverter, not two.
        from repro.network import BooleanNetwork, parse_sop
        net = BooleanNetwork("t")
        for v in "abc":
            net.add_input(v)
        net.add_node("s", parse_sop("a b"))      # shared, multi-fanout
        net.add_node("f", parse_sop("s' c"))
        net.add_node("g", parse_sop("s' c'"))
        net.add_output("f")
        net.add_output("g")
        net.add_output("s")
        base = decompose(net)
        result = map_network(base, CORELIB018, min_area())
        check_base_vs_mapped(base, result.netlist, CORELIB018)


class TestPlaVariety:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_pla_circuits(self, seed):
        pla = random_pla("m", num_inputs=8, num_outputs=4, num_products=12,
                         literals=(2, 5), outputs_per_product=(1, 2),
                         seed=seed)
        base = decompose(pla.to_network())
        positions = random_positions(base, seed=seed)
        result = map_network(base, CORELIB018, area_congestion(0.005),
                             partition_style="placement",
                             positions=positions)
        check_base_vs_mapped(base, result.netlist, CORELIB018)


class TestCoverMemo:
    """Cross-K covering reuse: bracketed probes skip the DP without
    changing any result (the ISSUE 7 parametric memo)."""

    def _map_at(self, base, positions, k, matcher=None, cover_memo=True):
        return map_network(base, CORELIB018, area_congestion(k),
                           partition_style="placement", positions=positions,
                           matcher=matcher, cover_memo=cover_memo)

    def test_bracketed_probe_hits_and_matches(self, small_base):
        from repro.core import Matcher

        positions = random_positions(small_base)
        matcher = Matcher(small_base, CORELIB018)
        lo, hi, mid = 0.0, 0.0002, 0.0001
        for k in (lo, hi):
            bracket = self._map_at(small_base, positions, k, matcher=matcher)
            assert bracket.stats["cover.memo_hits"] == 0
        probe = self._map_at(small_base, positions, mid, matcher=matcher)
        assert probe.stats["cover.memo_hits"] > 0
        # A memo hit must be invisible in the result: identical netlist
        # to a cold mapping at the same K.
        cold = self._map_at(small_base, positions, mid, cover_memo=False)
        assert probe.netlist.cell_histogram() == \
            cold.netlist.cell_histogram()
        assert probe.stats["cell_area"] == cold.stats["cell_area"]
        assert cold.stats["cover.memo_hits"] == 0
        # The deterministic match-query count is execution-plan
        # independent: hits are credited for the queries a skipped DP
        # would have issued.
        assert probe.stats["map.match_queries"] == \
            cold.stats["map.match_queries"]

    def test_exact_k_repeat_hits(self, small_base):
        from repro.core import Matcher

        positions = random_positions(small_base)
        matcher = Matcher(small_base, CORELIB018)
        first = self._map_at(small_base, positions, 0.001, matcher=matcher)
        again = self._map_at(small_base, positions, 0.001, matcher=matcher)
        assert first.stats["cover.memo_hits"] == 0
        assert again.stats["cover.memo_hits"] > 0
        assert again.netlist.cell_histogram() == \
            first.netlist.cell_histogram()

    def test_ascending_walk_never_hits(self, small_base):
        """Sweeps walk K upward, so probes never have a right bracket —
        the memo must stay silent (and the sweep rows untouched)."""
        from repro.core import Matcher

        positions = random_positions(small_base)
        matcher = Matcher(small_base, CORELIB018)
        for k in (0.0, 0.001, 0.01, 0.1):
            result = self._map_at(small_base, positions, k, matcher=matcher)
            assert result.stats["cover.memo_hits"] == 0
