"""Tests for the flow drivers (Figure 3, K sweep, die escalation)."""

import pytest

from repro.circuits import random_pla
from repro.core import (
    FLOW_CONVERGED,
    FLOW_EARLY_STOP,
    FLOW_SCHEDULE_EXHAUSTED,
    FlowConfig,
    congestion_aware_flow,
    dagon_flow,
    evaluate_netlist,
    find_routable_die,
    k_sweep,
    run_k_point,
    sis_flow,
    timing_of_point,
)
from repro.errors import ReproError
from repro.library import CORELIB018
from repro.network import check_base_vs_mapped, decompose
from repro.obs import StatsCollisionError, Tracer
from repro.place import Floorplan, place_base_network


@pytest.fixture(scope="module")
def flow_setup():
    """A small PLA circuit with floorplan and placed base network."""
    pla = random_pla("flow", num_inputs=10, num_outputs=6, num_products=30,
                     literals=(3, 6), outputs_per_product=(1, 2),
                     groups=3, input_window=6, seed=77)
    base = decompose(pla.to_network())
    config = FlowConfig(library=CORELIB018, max_route_iterations=8)
    floorplan = Floorplan.from_rows(14, aspect=1.0)
    positions = place_base_network(base, floorplan)
    return base, config, floorplan, positions


class TestRunKPoint:
    def test_point_fields(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        assert point.cell_area > 0
        assert point.num_cells > 0
        assert 0 < point.utilization < 100
        assert point.violations >= 0
        assert point.hpwl > 0
        assert point.mapping is not None
        assert point.routable == (point.violations == 0)

    def test_row_format(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.001)
        k, area, cells, util, violations = point.row()
        assert k == 0.001
        assert area == point.cell_area


class TestKSweep:
    def test_sweep_shapes(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        messages = []
        points = k_sweep(base, floorplan, config,
                         k_values=[0.0, 0.01, 5.0],
                         positions=positions,
                         progress=messages.append)
        assert len(points) == 3
        assert len(messages) == 3
        # Area is non-decreasing in K (the paper's monotone column).
        assert points[0].cell_area <= points[-1].cell_area + 1e-6
        # Utilization follows area.
        assert points[0].utilization <= points[-1].utilization + 1e-6

    def test_all_points_functionally_correct(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        for point in k_sweep(base, floorplan, config,
                             k_values=[0.0, 1.0], positions=positions):
            check_base_vs_mapped(base, point.mapping.netlist, CORELIB018)


class TestCongestionAwareFlow:
    def test_converges_on_generous_die(self, flow_setup):
        base, config, _, _ = flow_setup
        generous = Floorplan.from_rows(24, aspect=1.0)
        result = congestion_aware_flow(base, generous, config,
                                       k_schedule=[0.0, 0.005],
                                       tolerance=5)
        assert result.converged
        assert result.chosen is not None
        assert result.chosen_k in (0.0, 0.005)

    def test_fails_on_hopeless_die(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        # A die at ~97% utilization legalizes (barely) but cannot route.
        point = run_k_point(base, positions, floorplan, config, 0.0)
        tight = Floorplan.for_area(point.cell_area / 0.97, aspect=1.0)
        try:
            result = congestion_aware_flow(base, tight, config,
                                           k_schedule=[0.0, 0.001, 0.002])
        except Exception:
            return  # placement infeasible also counts as non-convergence
        assert not result.converged
        assert result.chosen is None


def _script_violations(monkeypatch, sequence):
    """Make every routing report the next scripted violation count.

    The real router still runs (so all other figures stay genuine);
    only the verdict is forced, which lets the tests drive the flow
    heuristics through exact violation profiles.
    """
    import repro.core.flow as flow_mod

    # Re-scripting within one test must wrap the pristine router, not
    # stack a second script on top of an exhausted one.
    real_router = getattr(flow_mod.GlobalRouter, "_script_real",
                          flow_mod.GlobalRouter)
    remaining = iter(sequence)

    class ScriptedRouter(real_router):
        _script_real = real_router

        def route(self, points, cache=None):
            routing = super().route(points, cache=cache)
            routing.violations = next(remaining)
            return routing

    monkeypatch.setattr(flow_mod, "GlobalRouter", ScriptedRouter)


class TestFlowVerdicts:
    """The Figure 3 loop records *why* it stopped, not just whether."""

    SCHEDULE = [0.0, 0.001, 0.002, 0.005]

    def test_strictly_rising_violations_early_stop(self, flow_setup,
                                                   monkeypatch):
        base, config, floorplan, positions = flow_setup
        _script_violations(monkeypatch, [5, 6, 7])
        tracer = Tracer("run", command="flow")
        result = congestion_aware_flow(base, floorplan, config,
                                       k_schedule=self.SCHEDULE,
                                       positions=positions, tracer=tracer)
        assert result.verdict == FLOW_EARLY_STOP
        assert not result.converged
        assert result.chosen is None
        # The heuristic fires at the third point, not after the fourth.
        assert len(result.history) == 3
        flow_span = tracer.close().children[0]
        assert flow_span.attrs["verdict"] == FLOW_EARLY_STOP
        assert flow_span.counters["flow.early_stop"] == 1.0

    def test_plateau_does_not_trigger_heuristic(self, flow_setup,
                                                monkeypatch):
        base, config, floorplan, positions = flow_setup
        _script_violations(monkeypatch, [5, 5, 5, 5])
        tracer = Tracer("run", command="flow")
        result = congestion_aware_flow(base, floorplan, config,
                                       k_schedule=self.SCHEDULE,
                                       positions=positions, tracer=tracer)
        assert result.verdict == FLOW_SCHEDULE_EXHAUSTED
        assert not result.converged
        assert len(result.history) == len(self.SCHEDULE)
        flow_span = tracer.close().children[0]
        assert flow_span.counters["flow.early_stop"] == 0.0

    def test_tolerance_preempts_early_stop(self, flow_setup, monkeypatch):
        """One violation profile, two verdicts: [8, 6, 7, 8] early-stops
        at tolerance 0 (6 < 7 < 8), but at tolerance 6 the second point
        already converges — acceptance is checked before the heuristic
        ever sees a rising tail."""
        base, config, floorplan, positions = flow_setup
        profile = [8, 6, 7, 8]
        _script_violations(monkeypatch, profile)
        strict = congestion_aware_flow(base, floorplan, config,
                                       k_schedule=self.SCHEDULE,
                                       positions=positions)
        assert strict.verdict == FLOW_EARLY_STOP
        assert len(strict.history) == len(profile)
        _script_violations(monkeypatch, profile)
        tolerant = congestion_aware_flow(base, floorplan, config,
                                         k_schedule=self.SCHEDULE,
                                         positions=positions, tolerance=6)
        assert tolerant.verdict == FLOW_CONVERGED
        assert tolerant.converged
        assert tolerant.chosen_k == self.SCHEDULE[1]
        assert tolerant.chosen.violations == 6

    def test_converged_verdict_on_clean_map(self, flow_setup):
        base, config, _, _ = flow_setup
        generous = Floorplan.from_rows(24, aspect=1.0)
        result = congestion_aware_flow(base, generous, config,
                                       k_schedule=[0.0, 0.005], tolerance=5)
        assert result.converged
        assert result.verdict == FLOW_CONVERGED


class TestDieEscalationEdges:
    """find_routable_die's escalation under exact violation profiles."""

    def test_escalates_until_clean(self, flow_setup, monkeypatch):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        _script_violations(monkeypatch, [9, 3, 0])
        fp, result = find_routable_die(point.mapping.netlist,
                                       floorplan.num_rows, config,
                                       max_extra_rows=5)
        assert fp.num_rows == floorplan.num_rows + 2
        assert result.violations == 0

    def test_tolerance_accepts_earlier_die(self, flow_setup, monkeypatch):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        _script_violations(monkeypatch, [9, 3, 0])
        fp, result = find_routable_die(point.mapping.netlist,
                                       floorplan.num_rows, config,
                                       max_extra_rows=5, tolerance=3)
        assert fp.num_rows == floorplan.num_rows + 1
        assert result.violations == 3

    def test_near_miss_at_last_row_raises(self, flow_setup, monkeypatch):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        # One above tolerance at every attempted die: must raise, never
        # round a near miss down to success.
        _script_violations(monkeypatch, [3, 2, 1])
        with pytest.raises(ReproError):
            find_routable_die(point.mapping.netlist, floorplan.num_rows,
                              config, max_extra_rows=2)


class TestFindRoutableDie:
    def test_finds_die(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        fp, result = find_routable_die(point.mapping.netlist, 12, config,
                                       max_extra_rows=16, tolerance=2)
        assert result.violations <= 2
        assert fp.num_rows >= 12

    def test_exhausts_and_raises(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        netlist = point.mapping.netlist
        # Probe downward for a die this netlist cannot route (falling
        # back to placement-infeasible if routing never fails first).
        tight_rows = None
        for rows in range(floorplan.num_rows, 2, -1):
            fp = Floorplan.from_rows(rows, aspect=1.0)
            try:
                probe = evaluate_netlist(netlist, fp, config)
            except Exception:
                tight_rows = rows
                break
            if probe.violations > 0:
                tight_rows = rows
                break
        if tight_rows is None:
            pytest.skip("netlist routes at every legalizable die")
        with pytest.raises(ReproError):
            find_routable_die(netlist, tight_rows, config, max_extra_rows=0)


class TestBaselineFlows:
    def test_sis_flow_preserves_function(self):
        pla = random_pla("sisf", num_inputs=8, num_outputs=4,
                         num_products=16, literals=(2, 4),
                         outputs_per_product=(1, 2), seed=3)
        net = pla.to_network()
        result = sis_flow(net, CORELIB018)
        # sis_flow optimizes a copy; verify against the original.
        base = decompose(net)
        from repro.network import check_boolnet_vs_base
        check_boolnet_vs_base(net, base)
        from repro.network.simulate import simulate_boolnet, simulate_mapped
        from repro.network.equiv import _stimulus, _reorder, _compare
        stim, valid = _stimulus(net.inputs, 1024, seed=5)
        ref = simulate_boolnet(net, stim)
        got = simulate_mapped(result.netlist, CORELIB018,
                              _reorder(stim, net.inputs,
                                       result.netlist.inputs))
        assert _compare(ref, got, valid) is None

    def test_dagon_flow_area_not_smaller_than_sis(self):
        pla = random_pla("cmp", num_inputs=10, num_outputs=6,
                         num_products=40, literals=(3, 7),
                         outputs_per_product=(1, 3), seed=9)
        sis = sis_flow(pla.to_network(), CORELIB018)
        dag = dagon_flow(pla.to_network(), CORELIB018)
        assert sis.stats["cell_area"] <= dag.stats["cell_area"] * 1.05


class TestTiming:
    def test_timing_of_point(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        report = timing_of_point(point, config)
        assert report.critical_arrival > 0
        assert report.critical_output in point.mapping.netlist.outputs

    def test_timing_needs_mapping_or_netlist(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        netlist = point.mapping.netlist
        point.mapping = None
        with pytest.raises(ReproError):
            timing_of_point(point, config)
        report = timing_of_point(point, config, netlist=netlist)
        assert report.critical_arrival > 0


class TestPlaceAttemptSeeds:
    """Regression: routing retries must advance the router seed too.

    The pre-fix retry loop re-seeded only the placer, so every attempt
    re-rolled placement against a frozen router RNG stream.
    """

    def test_router_seed_advances_with_attempt(self, flow_setup, monkeypatch):
        import repro.core.flow as flow_mod

        base, config, floorplan, positions = flow_setup
        mapping = flow_mod.map_network(
            base, config.library, partition_style="dagon")

        seeds = []
        real_router = flow_mod.GlobalRouter

        class SpyRouter(real_router):
            def __init__(self, *args, **kwargs):
                seeds.append(kwargs.get("seed"))
                super().__init__(*args, **kwargs)

            def route(self, points):
                routing = super().route(points)
                routing.violations = 1   # force every attempt to "fail"
                return routing

        monkeypatch.setattr(flow_mod, "GlobalRouter", SpyRouter)
        cfg = FlowConfig(library=config.library, seed=11, place_attempts=3,
                         max_route_iterations=2)
        flow_mod.evaluate_netlist(mapping.netlist, floorplan, cfg)
        assert seeds == [11, 12, 13]


class TestCrossKRouteReuse:
    """Cross-K warm-starting must be a pure speedup: bit-identical
    sweep rows and wirelength versus routing every point cold."""

    K_VALUES = [0.0, 0.001, 0.01]

    def test_three_point_sweep_matches_cold(self, flow_setup):
        from dataclasses import replace

        base, config, floorplan, positions = flow_setup
        warm_cfg = replace(config, route_reuse=True)
        cold_cfg = replace(config, route_reuse=False)
        warm = k_sweep(base, floorplan, warm_cfg, k_values=self.K_VALUES,
                       positions=positions)
        cold = k_sweep(base, floorplan, cold_cfg, k_values=self.K_VALUES,
                       positions=positions)
        assert [p.row() for p in warm] == [p.row() for p in cold]
        assert [p.routed_wirelength for p in warm] == \
            [p.routed_wirelength for p in cold]
        # The first K point seeds the cache; later points draw from it.
        reused = [p.stats["routes_reused"] for p in warm]
        assert reused[0] == 0
        assert sum(reused[1:]) > 0
        assert all(p.stats["routes_reused"] == 0 for p in cold)

    def test_router_phase_stats_reach_eval_point(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        for key in ("route.t_init", "route.t_negotiate",
                    "route.nets_rerouted", "route.segments_rerouted",
                    "route.routes_reused"):
            assert key in point.stats
        assert point.stats["route.t_init"] >= 0.0
        assert point.stats["route.t_negotiate"] >= 0.0


class TestRouteCacheGating:
    """Only *clean* routings may refresh the cross-K cache.

    Regression for the figure3 non-convergence: warm-starting the next
    K point's negotiation from a congested snapshot poisons it with
    overflow history the router cannot unwind.
    """

    def test_congested_result_does_not_refresh_cache(self, flow_setup,
                                                     monkeypatch):
        import repro.core.flow as flow_mod
        from repro.route import RouteCache

        base, config, floorplan, positions = flow_setup
        mapping = flow_mod.map_network(
            base, config.library, partition_style="dagon")
        real_router = flow_mod.GlobalRouter

        class CongestedRouter(real_router):
            def route(self, points, cache=None):
                routing = super().route(points, cache=cache)
                routing.violations = 7
                return routing

        monkeypatch.setattr(flow_mod, "GlobalRouter", CongestedRouter)
        cache = RouteCache()
        flow_mod.evaluate_netlist(mapping.netlist, floorplan, config,
                                  route_cache=cache)
        assert cache.routes == {}, \
            "a congested routing must not be stored for warm-starting"

    def test_clean_result_refreshes_cache(self, flow_setup):
        import repro.core.flow as flow_mod
        from repro.route import RouteCache

        base, config, floorplan, positions = flow_setup
        mapping = flow_mod.map_network(
            base, config.library, partition_style="dagon")
        cache = RouteCache()
        point = flow_mod.evaluate_netlist(mapping.netlist, floorplan,
                                          config, route_cache=cache)
        if point.violations == 0:
            assert len(cache.routes) > 0
        else:
            assert cache.routes == {}


class TestFlowTracing:
    """The flow drivers thread the run tracer through every stage."""

    def test_flow_span_tree(self, flow_setup):
        base, config, _, _ = flow_setup
        floorplan = Floorplan.from_rows(18, aspect=1.0)
        tracer = Tracer("run", command="flow")
        result = congestion_aware_flow(base, floorplan, config,
                                       k_schedule=[0.0, 0.01],
                                       tolerance=1000, tracer=tracer)
        root = tracer.close()
        flow_span = root.children[0]
        assert flow_span.name == "flow"
        assert len(flow_span.children) == len(result.history)
        assert all(c.name == "k_point" for c in flow_span.children)
        for point, child in zip(result.history, flow_span.children):
            assert point.trace is child

    def test_stats_duplicate_write_raises(self, flow_setup):
        """Satellite: re-recording an existing key is an error, not a
        silent overwrite (the old evaluate_netlist merge bug)."""
        base, config, floorplan, positions = flow_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        with pytest.raises(StatsCollisionError):
            point.stats.time("eval.t_total", 0.0)
        with pytest.raises(StatsCollisionError):
            point.stats.absorb(point.routing.stats)


class TestInjectedCaches:
    """Injected partition/matcher/route-cache are pure speedups.

    The serve engine hands the flow entry points session-scoped caches;
    every row must be bit-identical to the uninjected defaults.
    """

    K_VALUES = [0.0, 0.001, 0.01]

    def _injected(self, base, config, positions):
        from repro.core import Matcher
        from repro.core.partition import partition as make_partition
        from repro.route import RouteCache

        part = make_partition(base, config.partition_style,
                              positions=positions)
        matcher = Matcher(base, config.library)
        return part, matcher, RouteCache()

    def test_k_sweep_injection_identical(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        part, matcher, cache = self._injected(base, config, positions)
        default = k_sweep(base, floorplan, config, k_values=self.K_VALUES,
                          positions=positions)
        injected = k_sweep(base, floorplan, config, k_values=self.K_VALUES,
                           positions=positions, partition=part,
                           matcher=matcher, route_cache=cache)
        assert [p.row() for p in injected] == [p.row() for p in default]
        assert [p.routed_wirelength for p in injected] == \
            [p.routed_wirelength for p in default]
        # Running again with the now-warm caches is still identical.
        warm = k_sweep(base, floorplan, config, k_values=self.K_VALUES,
                       positions=positions, partition=part,
                       matcher=matcher, route_cache=cache)
        assert [p.row() for p in warm] == [p.row() for p in default]
        assert warm[0].stats["routes_reused"] > 0

    def test_flow_injection_identical(self, flow_setup):
        base, config, floorplan, positions = flow_setup
        part, matcher, cache = self._injected(base, config, positions)
        default = congestion_aware_flow(base, floorplan, config,
                                        k_schedule=[0.0, 0.01],
                                        tolerance=1000,
                                        positions=positions)
        injected = congestion_aware_flow(base, floorplan, config,
                                         k_schedule=[0.0, 0.01],
                                         tolerance=1000,
                                         positions=positions,
                                         partition=part, matcher=matcher,
                                         route_cache=cache)
        assert [p.row() for p in injected.history] == \
            [p.row() for p in default.history]
        assert injected.verdict == default.verdict
        assert injected.chosen_k == default.chosen_k

    def test_k_search_injection_identical(self, flow_setup):
        from repro.core import k_search

        base, config, floorplan, positions = flow_setup
        part, matcher, cache = self._injected(base, config, positions)
        default = k_search(base, floorplan, config,
                           k_values=self.K_VALUES, positions=positions,
                           tolerance=1000)
        injected = k_search(base, floorplan, config,
                            k_values=self.K_VALUES, positions=positions,
                            tolerance=1000, partition=part,
                            matcher=matcher, route_cache=cache)
        assert injected.chosen_k == default.chosen_k
        assert [p.row() for p in injected.table_points()] == \
            [p.row() for p in default.table_points()]

    def test_route_reuse_off_ignores_injected_cache(self, flow_setup):
        from dataclasses import replace

        base, config, floorplan, positions = flow_setup
        part, matcher, cache = self._injected(base, config, positions)
        off = replace(config, route_reuse=False)
        points = k_sweep(base, floorplan, off, k_values=self.K_VALUES,
                         positions=positions, partition=part,
                         matcher=matcher, route_cache=cache)
        assert all(p.stats["routes_reused"] == 0 for p in points)
        assert cache.routes == {}, \
            "route_reuse=False must not touch the injected cache"
