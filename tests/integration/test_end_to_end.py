"""End-to-end integration: PLA -> synth -> map -> place -> route -> STA."""

import pytest

from repro.circuits import random_pla, ripple_carry_adder
from repro.core import (
    FlowConfig,
    area_congestion,
    evaluate_netlist,
    map_network,
    min_area,
    timing_of_point,
)
from repro.io import dump_blif, dump_verilog, parse_blif
from repro.library import CORELIB018
from repro.network import check_base_vs_mapped, decompose
from repro.place import Floorplan, place_base_network
from repro.synth import optimize
from repro.timing import StaticTimingAnalyzer


@pytest.fixture(scope="module")
def config():
    return FlowConfig(library=CORELIB018, max_route_iterations=8)


class TestPlaPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, ):
        pla = random_pla("e2e", num_inputs=10, num_outputs=6,
                         num_products=28, literals=(3, 6),
                         outputs_per_product=(1, 2), groups=3,
                         input_window=6, seed=42)
        net = pla.to_network()
        reference = net.copy()
        optimize(net, effort="standard")
        base = decompose(net)
        floorplan = Floorplan.from_rows(16, aspect=1.0)
        positions = place_base_network(base, floorplan)
        mapping = map_network(base, CORELIB018, area_congestion(0.002),
                              partition_style="placement",
                              positions=positions)
        return reference, base, floorplan, mapping

    def test_function_preserved_through_pipeline(self, pipeline):
        reference, base, _, mapping = pipeline
        # base was decomposed from the optimized network, which must
        # still match the original PLA.
        from repro.network.equiv import _compare, _reorder, _stimulus
        from repro.network.simulate import simulate_boolnet, simulate_mapped
        stim, valid = _stimulus(reference.inputs, 2048, seed=11)
        ref_out = simulate_boolnet(reference, stim)
        got = simulate_mapped(mapping.netlist, CORELIB018,
                              _reorder(stim, reference.inputs,
                                       mapping.netlist.inputs))
        assert _compare(ref_out, got, valid) is None

    def test_physical_flow(self, pipeline, config):
        _, _, floorplan, mapping = pipeline
        point = evaluate_netlist(mapping.netlist, floorplan, config)
        assert point.cell_area > 0
        assert point.hpwl > 0
        assert point.routed_wirelength >= 0
        # STA over the routed result.
        point.mapping = mapping
        report = timing_of_point(point, config)
        assert report.critical_arrival > 0
        assert len(report.critical_path) >= 3

    def test_netlist_serialisation(self, pipeline):
        _, _, _, mapping = pipeline
        text = dump_verilog(mapping.netlist)
        assert text.count("(.Y(") == mapping.netlist.num_cells()


class TestAdderPipeline:
    def test_adder_through_full_flow(self, config):
        net = ripple_carry_adder(6)
        base = decompose(net)
        mapping = map_network(base, CORELIB018, min_area())
        check_base_vs_mapped(base, mapping.netlist, CORELIB018)
        floorplan = Floorplan.for_area(
            mapping.stats["cell_area"] / 0.35, aspect=1.0)
        point = evaluate_netlist(mapping.netlist, floorplan, config)
        assert point.violations == 0, "a small adder must route easily"
        sta = StaticTimingAnalyzer(CORELIB018)
        lengths = {n: point.routing.net_wirelength(n)
                   for n in point.routing.routes}
        report = sta.analyze(mapping.netlist, lengths)
        # Critical path of a ripple adder ends at the MSB sum or carry.
        assert report.critical_output in ("s5", "c5")


class TestBlifInterop:
    def test_synthesis_via_blif_roundtrip(self, config):
        net = ripple_carry_adder(4)
        text = dump_blif(net)
        back = parse_blif(text)
        optimize(back, effort="standard")
        base = decompose(back)
        mapping = map_network(base, CORELIB018, min_area())
        from repro.network.equiv import _compare, _reorder, _stimulus
        from repro.network.simulate import simulate_boolnet, simulate_mapped
        stim, valid = _stimulus(net.inputs, 2048, seed=4)
        ref = simulate_boolnet(net, stim)
        got = simulate_mapped(mapping.netlist, CORELIB018,
                              _reorder(stim, net.inputs,
                                       mapping.netlist.inputs))
        assert _compare(ref, got, valid) is None
