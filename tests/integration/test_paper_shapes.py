"""Integration tests for the paper's qualitative claims (small scale).

These are fast, scaled-down versions of the benchmark harness: they
assert the *shape* of the paper's results on small circuits so the
properties are exercised in every test run (the full-size shapes live
in benchmarks/).
"""

import pytest

from repro.circuits import random_pla
from repro.core import (
    FlowConfig,
    area_congestion,
    k_sweep,
    map_network,
    min_area,
)
from repro.library import CORELIB018
from repro.network import decompose
from repro.place import Floorplan, place_base_network
from repro.synth import optimize


@pytest.fixture(scope="module")
def setup():
    pla = random_pla("shape", num_inputs=12, num_outputs=8,
                     num_products=60, literals=(4, 8),
                     outputs_per_product=(1, 3), groups=4,
                     input_window=8, seed=2002)
    base = decompose(pla.to_network())
    config = FlowConfig(library=CORELIB018, max_route_iterations=8)
    probe = map_network(base, CORELIB018, min_area())
    floorplan = Floorplan.for_area(probe.stats["cell_area"] / 0.45,
                                   aspect=1.0)
    positions = place_base_network(base, floorplan)
    return base, config, floorplan, positions


class TestKSweepShape:
    @pytest.fixture(scope="class")
    def points(self, setup):
        base, config, floorplan, positions = setup
        return k_sweep(base, floorplan, config,
                       k_values=[0.0, 0.001, 0.01, 0.5, 5.0],
                       positions=positions)

    def test_area_trends_up_with_k(self, points):
        areas = [p.cell_area for p in points]
        assert areas[0] <= areas[-1]
        assert areas[0] == min(areas)

    def test_utilization_follows_area(self, points):
        assert points[-1].utilization >= points[0].utilization

    def test_large_k_grows_cells(self, points):
        assert points[-1].num_cells > points[0].num_cells

    def test_area_penalty_small_in_window(self, points):
        """Moderate K costs only a few percent of area (paper §5)."""
        base_area = points[0].cell_area
        window_area = points[1].cell_area
        assert window_area <= base_area * 1.05

    def test_mapper_wire_estimate_never_worse(self, points):
        est = [p.mapping.estimated_wirelength for p in points]
        assert min(est[1:]) <= est[0] + 1e-6


class TestFigure1Tradeoff:
    def test_k_trades_area_for_wire(self, setup):
        """The Figure 1 trade-off: higher K => more area, less wire."""
        base, config, floorplan, positions = setup
        lo = map_network(base, CORELIB018, area_congestion(0.0),
                         partition_style="placement", positions=positions)
        hi = map_network(base, CORELIB018, area_congestion(5.0),
                         partition_style="placement", positions=positions)
        assert hi.stats["cell_area"] >= lo.stats["cell_area"]
        assert hi.estimated_wirelength <= lo.estimated_wirelength


class TestSisVsDagonShape:
    def test_sis_smaller_but_more_shared(self):
        """Aggressive optimization: less area, at least as much fanout."""
        from repro.metrics import max_fanout
        pla = random_pla("sd", num_inputs=12, num_outputs=8,
                         num_products=60, literals=(4, 8),
                         outputs_per_product=(1, 3), groups=4,
                         input_window=8, seed=7)
        sis_net = pla.to_network()
        optimize(sis_net, effort="high")
        dag_net = pla.to_network()
        optimize(dag_net, effort="standard")
        sis_base = decompose(sis_net)
        dag_base = decompose(dag_net)
        sis = map_network(sis_base, CORELIB018, min_area())
        dag = map_network(dag_base, CORELIB018, min_area())
        assert sis.stats["cell_area"] <= dag.stats["cell_area"] * 1.02
