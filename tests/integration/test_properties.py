"""Cross-module property-based tests (hypothesis).

Random circuits through the whole pipeline: every stage must uphold its
contract regardless of circuit shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import random_pla
from repro.core import (
    FlowConfig,
    PositionMap,
    area_congestion,
    map_network,
    placement_partition,
)
from repro.library import CORELIB018
from repro.metrics import logic_depth
from repro.network import check_base_vs_mapped, decompose
from repro.place import Floorplan, check_legal, place_base_network, place_netlist
from repro.route import GlobalRouter
from repro.timing import StaticTimingAnalyzer


def pla_strategy():
    return st.builds(
        random_pla,
        name=st.just("prop"),
        num_inputs=st.integers(4, 8),
        num_outputs=st.integers(2, 4),
        num_products=st.integers(4, 14),
        literals=st.just((2, 4)),
        outputs_per_product=st.just((1, 2)),
        seed=st.integers(0, 2 ** 20),
    )


@settings(max_examples=10, deadline=None)
@given(pla_strategy())
def test_full_pipeline_invariants(pla):
    """Map -> place -> route -> STA upholds every stage contract."""
    base = decompose(pla.to_network())
    floorplan = Floorplan.from_rows(14, aspect=1.0)
    positions = place_base_network(base, floorplan)

    # Partition invariants.
    part = placement_partition(base, positions)
    live = base.transitive_fanin(base.roots())
    covered = set()
    for tree in part.trees.values():
        covered |= tree.members
    for v in base.gates():
        if v in live:
            assert v in covered

    # Mapping preserves the function.
    mapping = map_network(base, CORELIB018, area_congestion(0.002),
                          partition_style="placement", positions=positions)
    check_base_vs_mapped(base, mapping.netlist, CORELIB018)

    # Placement is legal.
    placement = place_netlist(mapping.netlist, CORELIB018, floorplan)
    names = sorted(placement.positions)
    pos = np.array([placement.positions[n] for n in names])
    widths = [CORELIB018.cell_width(mapping.netlist.instances[n].cell_name)
              for n in names]
    check_legal(pos, widths, floorplan)

    # Routed wirelength is at least a connected-tree lower bound and the
    # demand bookkeeping is consistent.
    router = GlobalRouter(floorplan, max_iterations=4)
    result = router.route(placement.net_points(mapping.netlist))
    total_edges = sum(len(r.edges) for r in result.routes.values())
    demand_sum = int(result.grid.demand[0].sum()
                     + result.grid.demand[1].sum())
    assert total_edges == demand_sum
    assert result.violations >= 0

    # STA: arrival at every output is positive and bounded below by a
    # depth-based floor (each level adds at least the smallest
    # intrinsic delay).
    sta = StaticTimingAnalyzer(CORELIB018)
    report = sta.analyze(mapping.netlist)
    min_intrinsic = min(c.intrinsic_delay for c in CORELIB018.cells())
    depth = logic_depth(mapping.netlist)
    assert report.critical_arrival >= depth * min_intrinsic * 0.99


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2 ** 20))
def test_area_wire_tradeoff_is_universal(seed):
    """For any circuit: K=big never wins on area, (almost) never loses
    on wire.

    The wire side carries a small tolerance: covering is a greedy
    per-tree DP with incremental center-of-mass commits, so its total
    WIRE is not *strictly* monotone in K — earlier trees' commitments
    can shift later trees' geometry by a fraction of a percent (the
    paper's own Section 6 notes the unpredictability of multi-objective
    synthesis costs).
    """
    pla = random_pla("t", num_inputs=6, num_outputs=3, num_products=10,
                     literals=(2, 4), outputs_per_product=(1, 2), seed=seed)
    base = decompose(pla.to_network())
    floorplan = Floorplan.from_rows(12, aspect=1.0)
    positions = place_base_network(base, floorplan)
    lo = map_network(base, CORELIB018, area_congestion(0.0),
                     partition_style="placement", positions=positions)
    hi = map_network(base, CORELIB018, area_congestion(100.0),
                     partition_style="placement", positions=positions)
    assert hi.stats["cell_area"] >= lo.stats["cell_area"] - 1e-9
    assert hi.estimated_wirelength <= lo.estimated_wirelength * 1.02
