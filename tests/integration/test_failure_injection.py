"""Failure injection: corrupted inputs must fail loudly, not silently.

A production EDA tool's worst failure mode is accepting a broken
netlist and producing a plausible-looking wrong answer; these tests
corrupt structures at each pipeline stage and assert the library
raises its typed errors instead of proceeding.
"""

import numpy as np
import pytest

from repro.core import FlowConfig, PositionMap, map_network, min_area
from repro.errors import (
    MappingError,
    NetworkError,
    ParseError,
    PlacementError,
    ReproError,
)
from repro.circuits import parse_pla
from repro.io import parse_blif
from repro.library import CORELIB018
from repro.network import BooleanNetwork, MappedNetlist, decompose, parse_sop
from repro.place import Floorplan, check_legal


class TestNetworkCorruption:
    def test_cycle_caught_before_decompose(self):
        net = BooleanNetwork("c")
        net.add_input("a")
        net.add_node("x", parse_sop("a y"))
        net.add_node("y", parse_sop("x"))
        net.add_output("y")
        with pytest.raises(NetworkError):
            decompose(net)

    def test_dangling_output_caught(self):
        net = BooleanNetwork("d")
        net.add_input("a")
        net.add_output("ghost")
        with pytest.raises(NetworkError):
            decompose(net)


class TestMappingCorruption:
    def test_short_position_map(self, small_base):
        with pytest.raises(MappingError):
            map_network(small_base, CORELIB018, min_area(),
                        partition_style="placement",
                        positions=PositionMap([(0.0, 0.0)]))

    def test_bad_partition_style(self, small_base):
        with pytest.raises(MappingError):
            map_network(small_base, CORELIB018, min_area(),
                        partition_style="zigzag")


class TestNetlistCorruption:
    def test_double_driver_detected(self):
        nl = MappedNetlist("dd")
        nl.add_input("a")
        nl.add_instance("INV_X1", {"A": "a"}, "y", name="u1")
        nl.add_instance("INV_X2", {"A": "a"}, "y", name="u2")
        nl.add_output("y")
        with pytest.raises(NetworkError, match="multiple drivers"):
            nl.check()

    def test_simulation_refuses_undriven(self):
        from repro.network import simulate_mapped, random_stimulus
        nl = MappedNetlist("ud")
        nl.add_input("a")
        nl.add_instance("NAND2_X1", {"A": "a", "B": "ghost"}, "y", name="u1")
        nl.add_output("y")
        with pytest.raises(NetworkError):
            simulate_mapped(nl, CORELIB018, random_stimulus(1, 64))


class TestPlacementCorruption:
    def test_overlapping_cells_rejected(self):
        fp = Floorplan(width=20.0, row_height=5.0, num_rows=2)
        positions = np.array([[5.0, 2.5], [5.5, 2.5]])
        with pytest.raises(PlacementError):
            check_legal(positions, [4.0, 4.0], fp)

    def test_infeasible_floorplan_rejected_before_routing(self, medium_base):
        result = map_network(medium_base, CORELIB018, min_area())
        config = FlowConfig(library=CORELIB018)
        from repro.core import evaluate_netlist
        with pytest.raises(PlacementError):
            evaluate_netlist(result.netlist, Floorplan.from_rows(2), config)


class TestParserCorruption:
    @pytest.mark.parametrize("text", [
        ".inputs a\n.outputs f\n.names a f\n1 1\n.end",   # no .model is OK,
    ])
    def test_blif_headerless_tolerated(self, text):
        parse_blif(text)  # .model is optional in our subset

    @pytest.mark.parametrize("text", [
        ".model m\n.inputs a\n.outputs f\n.names a f\nxx 1\n.end",
        ".model m\n.inputs a\n.outputs f\n.names a f\n1 1 1\n.end",
    ])
    def test_blif_bad_rows_rejected(self, text):
        with pytest.raises(ParseError):
            parse_blif(text)

    @pytest.mark.parametrize("text", [
        "10 1",                      # missing header
        ".i 2\n.o 1\n1x 1\n.e",      # bad character
    ])
    def test_pla_rejected(self, text):
        with pytest.raises(ParseError):
            parse_pla(text)

    def test_everything_is_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            parse_pla("garbage")
