"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    LibraryError,
    MappingError,
    NetworkError,
    ParseError,
    PlacementError,
    ReproError,
    RoutingError,
    SynthesisError,
    TimingError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        NetworkError, SynthesisError, LibraryError, MappingError,
        PlacementError, RoutingError, TimingError, ParseError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catchable_individually(self):
        with pytest.raises(MappingError):
            raise MappingError("specific")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_library_errors_are_repro_errors_in_practice(self):
        from repro.library import CORELIB018
        with pytest.raises(ReproError):
            CORELIB018.cell("NOPE")
