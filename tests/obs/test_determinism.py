"""ISSUE 5 acceptance: telemetry is deterministic across workers.

``workers=4`` must report the same *deterministic* merged counters as
``workers=1`` (bit-identical), and the span trees must be identical
modulo wall-times (the :meth:`Span.skeleton` view).  Plan-dependent
``metric``/``work``/``time``/``env`` entries are exactly the ones
allowed to differ — serial sweeps share a matcher memo and a route
cache, parallel chunks do not.
"""

import pytest

from repro.circuits import random_pla
from repro.core import FlowConfig, k_sweep, run_k_point
from repro.library import CORELIB018
from repro.network import decompose
from repro.obs import METRIC, StatsCollisionError, StatsRegistry, Tracer
from repro.place import Floorplan, place_base_network

K_VALUES = [0.0, 0.001, 0.01]


@pytest.fixture(scope="module")
def sweep_setup():
    pla = random_pla("det", num_inputs=9, num_outputs=5, num_products=24,
                     literals=(3, 5), outputs_per_product=(1, 2), seed=11)
    base = decompose(pla.to_network())
    config = FlowConfig(library=CORELIB018, max_route_iterations=6)
    floorplan = Floorplan.from_rows(13, aspect=1.0)
    positions = place_base_network(base, floorplan)
    return base, config, floorplan, positions


def _traced_sweep(sweep_setup, workers):
    base, config, floorplan, positions = sweep_setup
    tracer = Tracer("run", command="test")
    points = k_sweep(base, floorplan, config, k_values=K_VALUES,
                     positions=positions, workers=workers, tracer=tracer)
    return points, tracer.close()


class TestCounterDeterminism:
    def test_merged_deterministic_counters_bit_identical(self, sweep_setup):
        serial, _ = _traced_sweep(sweep_setup, workers=1)
        parallel, _ = _traced_sweep(sweep_setup, workers=4)
        merged_serial = StatsRegistry.merged(p.stats for p in serial)
        merged_parallel = StatsRegistry.merged(p.stats for p in parallel)
        det_serial = merged_serial.deterministic()
        det_parallel = merged_parallel.deterministic()
        assert det_serial == det_parallel
        # The view is not vacuous: results of every phase are in it.
        for key in ("map.cells", "map.cell_area", "map.match_queries",
                    "route.violations", "map.estimated_wirelength"):
            assert key in det_serial
        # Routed wirelength is a metric, not a gauge: a warm-started
        # net keeps its cached legal route, so serial sweeps (which
        # thread the route cache) may total differently than cold
        # parallel chunks.
        assert merged_serial.kind("route.wirelength") == METRIC
        assert "route.wirelength" not in det_serial

    def test_per_point_deterministic_counters_match(self, sweep_setup):
        serial, _ = _traced_sweep(sweep_setup, workers=1)
        parallel, _ = _traced_sweep(sweep_setup, workers=4)
        for s, p in zip(serial, parallel):
            assert s.stats.deterministic() == p.stats.deterministic()

    def test_match_queries_independent_of_cache_state(self, sweep_setup):
        """hits + misses is a call count, not a cache property: it is
        the deterministic face of the plan-dependent hit/miss split."""
        serial, _ = _traced_sweep(sweep_setup, workers=1)
        parallel, _ = _traced_sweep(sweep_setup, workers=4)
        for s, p in zip(serial, parallel):
            assert s.stats["map.match_queries"] == \
                p.stats["map.match_queries"]
            assert s.stats["map.match_queries"] == \
                s.stats["map.match_cache_hits"] + \
                s.stats["map.match_cache_misses"]


class TestSpanTreeDeterminism:
    def test_skeletons_identical_modulo_walltimes(self, sweep_setup):
        _, root_serial = _traced_sweep(sweep_setup, workers=1)
        _, root_parallel = _traced_sweep(sweep_setup, workers=4)
        assert root_serial.skeleton() == root_parallel.skeleton()

    def test_tree_shape(self, sweep_setup):
        points, root = _traced_sweep(sweep_setup, workers=1)
        sweep = root.children[0]
        assert sweep.name == "sweep"
        assert [c.name for c in sweep.children] == ["k_point"] * len(K_VALUES)
        assert [c.attrs["k"] for c in sweep.children] == K_VALUES
        k_point = sweep.children[0]
        assert [c.name for c in k_point.children] == ["map", "evaluate"]
        attempt = k_point.children[1].children[0]
        assert attempt.name == "attempt"
        assert [c.name for c in attempt.children] == ["place", "route"]

    def test_points_carry_their_subtree(self, sweep_setup):
        points, root = _traced_sweep(sweep_setup, workers=1)
        for point, child in zip(points, root.children[0].children):
            assert point.trace is child
            assert point.trace.attrs["k"] == point.k


class TestFlowStatsAreCollisionSafe:
    def test_absorbing_a_phase_twice_raises(self, sweep_setup):
        """Satellite: the old dict-update silently overwrote shared
        keys; the registry turns that bug class into an error."""
        base, config, floorplan, positions = sweep_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        with pytest.raises(StatsCollisionError):
            point.stats.absorb(point.routing.stats)
        with pytest.raises(StatsCollisionError):
            point.stats.absorb(point.mapping.stats)

    def test_point_stats_cover_all_namespaces(self, sweep_setup):
        base, config, floorplan, positions = sweep_setup
        point = run_k_point(base, positions, floorplan, config, 0.0)
        namespaces = {key.split(".", 1)[0] for key in point.stats}
        assert {"map", "route", "eval"} <= namespaces
