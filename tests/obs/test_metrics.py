"""Tests for the streaming metrics kinds and the Prometheus export.

The load-bearing invariant: splitting one observation stream across
per-chain registries and merging them back **in chain order** is
bit-identical to observing the stream sequentially — the same
workers=1 vs workers=N discipline the counter registry obeys.
"""

import json
import math

import pytest

from repro.obs import (
    BYTE_BUCKETS,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    RollingGauge,
    StatsCollisionError,
    StatsRegistry,
    parse_prometheus,
    render_metrics_json,
    render_prometheus,
)

#: A stream with exact-bound hits, overflow, zero and sub-bucket values.
STREAM = [0.001, 0.0009, 5.0, 301.0, 0.25, 0.0, 0.013, 2.5, 64.2, 0.1]


class TestHistogram:
    def test_le_inclusive_bucketing(self):
        hist = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 1]  # le=1.0, le=2.0, +Inf
        assert hist.count == 5
        assert hist.min == 0.5 and hist.max == 3.0
        assert hist.sum == pytest.approx(8.0)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_merge_requires_matching_bounds(self):
        hist = Histogram(LATENCY_BUCKETS)
        with pytest.raises(StatsCollisionError):
            hist.merge(Histogram(BYTE_BUCKETS))

    def test_split_merge_is_bit_identical_to_sequential(self):
        # One worker observes the whole stream...
        sequential = Histogram()
        for value in STREAM:
            sequential.observe(value)
        # ...N chains observe contiguous shards, merged in chain order.
        for n in (2, 3, 5):
            shards = [Histogram() for _ in range(n)]
            for i, value in enumerate(STREAM):
                shards[i * n // len(STREAM)].observe(value)
            merged = Histogram()
            for shard in shards:
                merged.merge(shard)
            assert merged.snapshot() == sequential.snapshot()

    def test_snapshot_round_trip(self):
        hist = Histogram(bounds=(0.5, 2.0))
        hist.observe(0.1)
        hist.observe(9.0)
        clone = Histogram.from_snapshot(
            json.loads(json.dumps(hist.snapshot())))
        assert clone.snapshot() == hist.snapshot()
        clone.observe(1.0)  # still a live instrument
        assert clone.count == hist.count + 1


class TestRollingGauge:
    def test_window_keeps_newest(self):
        gauge = RollingGauge(window=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            gauge.record(value)
        assert gauge.samples == [2.0, 3.0, 4.0]
        assert gauge.last == 4.0
        assert gauge.count == 4
        assert gauge.min == 1.0 and gauge.max == 4.0

    def test_merge_concatenates_and_trims(self):
        ours = RollingGauge(window=4)
        theirs = RollingGauge(window=4)
        for value in (1.0, 2.0, 3.0):
            ours.record(value)
        for value in (10.0, 11.0):
            theirs.record(value)
        ours.merge(theirs)
        assert ours.samples == [2.0, 3.0, 10.0, 11.0]
        assert ours.count == 5
        with pytest.raises(StatsCollisionError):
            ours.merge(RollingGauge(window=2))

    def test_snapshot_round_trip(self):
        gauge = RollingGauge(window=2)
        gauge.record(7.5)
        clone = RollingGauge.from_snapshot(
            json.loads(json.dumps(gauge.snapshot())))
        assert clone.snapshot() == gauge.snapshot()


class TestMetricsRegistry:
    def test_keys_must_be_namespaced(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.observe("nodots", 1.0)

    def test_kind_and_parameter_collisions(self):
        registry = MetricsRegistry()
        registry.observe("serve.t", 1.0)
        with pytest.raises(StatsCollisionError):
            registry.rolling("serve.t")
        with pytest.raises(StatsCollisionError):
            registry.histogram("serve.t", bounds=(1.0, 2.0))
        registry.record("serve.bytes", 10.0)
        with pytest.raises(StatsCollisionError):
            registry.histogram("serve.bytes")
        with pytest.raises(StatsCollisionError):
            registry.rolling("serve.bytes", window=9)

    def test_registry_split_merge_matches_sequential(self):
        sequential = MetricsRegistry()
        for value in STREAM:
            sequential.observe("serve.job_seconds", value)
            sequential.record("serve.bytes", value * 100, window=4)
        shards = [MetricsRegistry() for _ in range(3)]
        for i, value in enumerate(STREAM):
            shard = shards[i * 3 // len(STREAM)]
            shard.observe("serve.job_seconds", value)
            shard.record("serve.bytes", value * 100, window=4)
        merged = MetricsRegistry()
        for shard in shards:
            # transport form, as chain outcomes ship it back
            merged.merge(MetricsRegistry.from_snapshot(
                json.loads(json.dumps(shard.snapshot()))))
        assert merged.snapshot() == sequential.snapshot()

    def test_merge_kind_mismatch_raises(self):
        ours = MetricsRegistry()
        ours.observe("serve.x", 1.0)
        theirs = MetricsRegistry()
        theirs.record("serve.x", 1.0)
        with pytest.raises(StatsCollisionError):
            ours.merge(theirs)
        with pytest.raises(StatsCollisionError):
            theirs.merge(ours)


class TestPrometheusExport:
    def _populated(self):
        stats = StatsRegistry()
        stats.count("serve.jobs", 3)
        stats.gauge("serve.cache_bytes", 1536.5)
        metrics = MetricsRegistry()
        for value in STREAM:
            metrics.observe("serve.job_seconds", value)
        metrics.record("serve.cache_bytes_recent", 2048.0)
        return stats, metrics

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        _, metrics = self._populated()
        text = render_prometheus(None, metrics)
        parsed = parse_prometheus(text)
        family = parsed["repro_serve_job_seconds"]
        assert family["type"] == "histogram"
        samples = family["samples"]
        inf = samples[("repro_serve_job_seconds_bucket", "+Inf")]
        assert inf == len(STREAM)
        assert samples["repro_serve_job_seconds_count"] == len(STREAM)
        assert samples["repro_serve_job_seconds_sum"] == \
            pytest.approx(sum(STREAM))
        # cumulative: counts never decrease along the bounds
        cumulative = [samples[("repro_serve_job_seconds_bucket", le)]
                      for le in ("0.001", "0.1", "300", "+Inf")]
        assert cumulative == sorted(cumulative)
        # le is inclusive: the exact 0.001 observation is inside le=0.001
        assert cumulative[0] == 3  # 0.001, 0.0009 and 0.0

    def test_counter_and_gauge_types(self):
        stats, metrics = self._populated()
        parsed = parse_prometheus(render_prometheus(stats, metrics))
        assert parsed["repro_serve_jobs"]["type"] == "counter"
        assert parsed["repro_serve_cache_bytes"]["type"] == "gauge"
        assert parsed["repro_serve_cache_bytes_recent"]["type"] == "gauge"
        samples = parsed["repro_serve_cache_bytes_recent"]["samples"]
        assert samples["repro_serve_cache_bytes_recent"] == 2048.0
        assert samples["repro_serve_cache_bytes_recent_min"] == 2048.0

    def test_round_trip_preserves_every_value(self):
        stats, metrics = self._populated()
        text = render_prometheus(stats, metrics)
        parsed = parse_prometheus(text)
        total = sum(len(family["samples"]) for family in parsed.values())
        # every non-comment line survived the parse
        payload_lines = [line for line in text.splitlines()
                         if line and not line.startswith("#")]
        assert total == len(payload_lines)
        for family in parsed.values():
            for value in family["samples"].values():
                assert math.isfinite(value)

    def test_json_document_shape(self):
        stats, metrics = self._populated()
        doc = json.loads(render_metrics_json(stats, metrics,
                                             {"command": "serve"}))
        assert doc["schema_version"] == 1
        assert doc["command"] == "serve"
        assert doc["counters"]["serve.jobs"] == 3
        assert doc["counter_kinds"]["serve.jobs"] == "count"
        instrument = doc["instruments"]["serve.job_seconds"]
        assert instrument["kind"] == "hist"
        assert instrument["count"] == len(STREAM)
