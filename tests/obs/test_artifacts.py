"""Tests for congestion-map artifacts (CSV + ASCII heatmaps)."""

import numpy as np

from repro.obs import (
    congestion_map_csv,
    congestion_map_text,
    write_congestion_artifacts,
)
from repro.place import Floorplan
from repro.route import GlobalRouter, RoutingResources


AMPLE = RoutingResources()
STARVED = RoutingResources(metal_layers=2, derate=0.25, m1_usable=0.0)


def _routed(resources=AMPLE, count=30, seed=0):
    floorplan = Floorplan(width=104.0, row_height=5.2, num_rows=20)
    router = GlobalRouter(floorplan, resources, max_iterations=4)
    rng = np.random.default_rng(seed)
    nets = {f"n{i}": [(float(rng.uniform(0, 104.0)),
                       float(rng.uniform(0, 104.0))) for _ in range(2)]
            for i in range(count)}
    return router.route(nets)


class TestCsv:
    def test_covers_every_gcell(self):
        result = _routed()
        grid = result.grid
        lines = congestion_map_csv(grid).strip().split("\n")
        assert lines[0] == "x,y,utilization,overflow"
        assert len(lines) == 1 + grid.nx * grid.ny
        x, y, util, over = lines[1].split(",")
        assert (int(x), int(y)) == (0, 0)
        assert float(util) >= 0.0
        assert int(over) >= 0

    def test_overflow_column_reflects_congestion(self):
        congested = _routed(resources=STARVED, count=120)
        assert congested.violations > 0
        rows = congestion_map_csv(congested.grid).strip().split("\n")[1:]
        assert any(int(row.split(",")[3]) > 0 for row in rows)


class TestAsciiRendering:
    def test_header_and_shape(self):
        result = _routed()
        text = congestion_map_text(result.grid, title="K=0")
        lines = text.split("\n")
        assert lines[0] == "K=0"
        assert "overflow=" in lines[1]
        heat = lines[2:]
        assert len(heat) == result.grid.ny
        assert all(len(row) == result.grid.nx for row in heat)


class TestWriteArtifacts:
    def test_one_pair_per_routed_point(self, tmp_path):
        class Point:
            def __init__(self, k, routing):
                self.k = k
                self.routing = routing

        points = [Point(0.0, _routed(seed=1)),
                  Point(0.0025, _routed(seed=2)),
                  Point(0.01, None)]  # unrouted points are skipped
        written = write_congestion_artifacts(points, str(tmp_path / "art"))
        assert len(written) == 4
        names = sorted(p.rsplit("/", 1)[1] for p in written)
        assert names == ["congestion_00_k0.csv", "congestion_00_k0.txt",
                         "congestion_01_k0p0025.csv",
                         "congestion_01_k0p0025.txt"]
        for path in written:
            assert open(path).read().strip()
