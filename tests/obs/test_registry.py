"""Tests for the typed, collision-safe stats registry."""

import numpy as np
import pytest

from repro.obs import (
    COUNT,
    ENV,
    GAUGE,
    METRIC,
    StatsCollisionError,
    StatsRegistry,
    TIME,
    WORK,
)


def _sample():
    stats = StatsRegistry()
    stats.time("route.t_init", 0.25)
    stats.count("route.violations", 3)
    stats.gauge("map.cell_area", 53.2)
    stats.metric("route.wirelength", 120.5)
    stats.work("route.iterations", 7)
    stats.env("exec.workers", 4)
    return stats


class TestWriting:
    def test_kinds_recorded(self):
        stats = _sample()
        assert stats.kind("route.t_init") == TIME
        assert stats.kind("route.violations") == COUNT
        assert stats.kind("map.cell_area") == GAUGE
        assert stats.kind("route.wirelength") == METRIC
        assert stats.kind("route.iterations") == WORK
        assert stats.kind("exec.workers") == ENV

    def test_integer_kinds_stay_int(self):
        stats = _sample()
        assert stats["route.violations"] == 3
        assert isinstance(stats["route.violations"], int)
        assert isinstance(stats["route.iterations"], int)
        assert isinstance(stats["exec.workers"], int)

    def test_numpy_integers_accepted(self):
        stats = StatsRegistry()
        stats.count("a.n", np.int64(5))
        assert stats["a.n"] == 5
        assert isinstance(stats["a.n"], int)

    def test_floats_rejected_for_integer_kinds(self):
        stats = StatsRegistry()
        with pytest.raises(TypeError):
            stats.count("a.n", 1.5)
        with pytest.raises(TypeError):
            stats.work("a.n", 2.0)

    def test_bools_rejected(self):
        stats = StatsRegistry()
        with pytest.raises(TypeError):
            stats.count("a.flag", True)

    def test_unnamespaced_keys_rejected(self):
        stats = StatsRegistry()
        with pytest.raises(ValueError):
            stats.count("violations", 1)
        with pytest.raises(ValueError):
            stats.time("Route.t_init", 0.1)

    def test_duplicate_write_is_an_error(self):
        """Satellite: duplicate-key writes must raise, never overwrite."""
        stats = _sample()
        with pytest.raises(StatsCollisionError):
            stats.count("route.violations", 9)
        with pytest.raises(StatsCollisionError):
            stats.time("route.violations", 0.1)  # even across kinds
        assert stats["route.violations"] == 3


class TestLookup:
    def test_canonical_and_suffix(self):
        stats = _sample()
        assert stats["route.wirelength"] == 120.5
        assert stats["wirelength"] == 120.5
        assert "wirelength" in stats
        assert stats.get("t_init") == 0.25

    def test_ambiguous_suffix_raises(self):
        stats = StatsRegistry()
        stats.time("map.t_total", 1.0)
        stats.time("eval.t_total", 2.0)
        with pytest.raises(KeyError):
            stats["t_total"]

    def test_missing_key(self):
        stats = _sample()
        with pytest.raises(KeyError):
            stats["route.nonexistent"]
        assert stats.get("route.nonexistent", 0) == 0
        assert "nonexistent" not in stats

    def test_mapping_protocol(self):
        stats = _sample()
        assert len(stats) == 6
        assert list(stats)[0] == "route.t_init"
        assert stats.as_dict()["exec.workers"] == 4


class TestAbsorb:
    def test_disjoint_registries_compose(self):
        a = _sample()
        b = StatsRegistry()
        b.time("map.t_cover", 0.5)
        a.absorb(b)
        assert a["map.t_cover"] == 0.5
        assert a["route.t_init"] == 0.25

    def test_shared_key_is_an_error(self):
        a = _sample()
        b = StatsRegistry()
        b.count("route.violations", 1)
        with pytest.raises(StatsCollisionError):
            a.absorb(b)


class TestMerge:
    def test_sums_and_maxes_by_kind(self):
        a = _sample()
        b = _sample()
        a.merge(b)
        assert a["route.t_init"] == 0.5          # time: sum
        assert a["route.violations"] == 6        # count: sum
        assert a["map.cell_area"] == 106.4       # gauge: sum
        assert a["route.wirelength"] == 241.0    # metric: sum
        assert a["route.iterations"] == 14       # work: sum
        assert a["exec.workers"] == 4            # env: max

    def test_merge_into_empty(self):
        out = StatsRegistry.merged([_sample(), _sample(), _sample()])
        assert out["route.violations"] == 9
        assert out["exec.workers"] == 4

    def test_kind_mismatch_is_an_error(self):
        a = StatsRegistry()
        a.count("x.n", 1)
        b = StatsRegistry()
        b.work("x.n", 1)
        with pytest.raises(StatsCollisionError):
            a.merge(b)

    def test_merge_order_independent_for_totals(self):
        parts = []
        for i in range(4):
            part = StatsRegistry()
            part.count("a.n", i)
            part.gauge("a.g", i * 0.5)
            parts.append(part)
        forward = StatsRegistry.merged(parts)
        backward = StatsRegistry.merged(reversed(parts))
        assert forward.as_dict() == backward.as_dict()


class TestDeterministicView:
    def test_only_count_and_gauge(self):
        stats = _sample()
        view = stats.deterministic()
        assert set(view) == {"route.violations", "map.cell_area"}
        assert view["route.violations"] == 3
