"""Tests for the hierarchical span tracer and its JSONL emission."""

import io
import json

import pytest

from repro.obs import Span, TraceError, Tracer, profile_report


def _small_tree():
    tracer = Tracer("run", command="test")
    with tracer.span("sweep", points=2):
        with tracer.span("k_point", k=0.0) as sp:
            sp.counters.count("map.cells", 10)
        with tracer.span("k_point", k=0.01) as sp:
            sp.counters.count("map.cells", 12)
    return tracer


class TestSpans:
    def test_nesting_follows_the_stack(self):
        tracer = _small_tree()
        root = tracer.close()
        assert root.name == "run"
        assert [c.name for c in root.children] == ["sweep"]
        sweep = root.children[0]
        assert [c.name for c in sweep.children] == ["k_point", "k_point"]
        assert sweep.children[0].attrs == {"k": 0.0}

    def test_times_are_monotone(self):
        root = _small_tree().close()
        for span in root.iter_spans():
            assert span.closed
            assert span.t_end >= span.t_start
        sweep = root.children[0]
        assert root.t_start <= sweep.t_start
        assert sweep.t_end <= root.t_end
        assert sweep.children[0].t_end <= sweep.children[1].t_start

    def test_duration_zero_while_open(self):
        span = Span(name="x", t_start=5.0)
        assert not span.closed
        assert span.duration == 0.0

    def test_close_is_idempotent(self):
        tracer = _small_tree()
        root = tracer.close()
        assert tracer.close() is root

    def test_use_after_close_raises(self):
        tracer = _small_tree()
        tracer.close()
        with pytest.raises(TraceError):
            with tracer.span("late"):
                pass
        with pytest.raises(TraceError):
            tracer.adopt(Span(name="orphan"))

    def test_adopt_attaches_detached_subtrees(self):
        detached = Tracer("k_point", k=0.5)
        with detached.span("map"):
            pass
        subtree = detached.close()

        tracer = Tracer("run")
        with tracer.span("sweep"):
            tracer.adopt(subtree)
            tracer.adopt(None)  # ignored
        root = tracer.close()
        sweep = root.children[0]
        assert [c.name for c in sweep.children] == ["k_point"]
        assert sweep.children[0].children[0].name == "map"


class TestSkeleton:
    def test_ignores_times_and_plan_dependent_counters(self):
        a = Tracer("run")
        with a.span("phase", k=1) as sp:
            sp.counters.count("x.results", 5)
            sp.counters.time("x.t", 0.123)
            sp.counters.work("x.effort", 99)
        b = Tracer("run")
        with b.span("phase", k=1) as sp:
            sp.counters.count("x.results", 5)
            sp.counters.time("x.t", 0.456)   # different wall-time
            sp.counters.work("x.effort", 1)  # different work
        assert a.close().skeleton() == b.close().skeleton()

    def test_sees_deterministic_differences(self):
        a = Tracer("run")
        with a.span("phase") as sp:
            sp.counters.count("x.results", 5)
        b = Tracer("run")
        with b.span("phase") as sp:
            sp.counters.count("x.results", 6)
        assert a.close().skeleton() != b.close().skeleton()

    def test_sees_structure_differences(self):
        a = Tracer("run")
        with a.span("phase"):
            pass
        b = Tracer("run")
        with b.span("phase"):
            pass
        with b.span("phase"):
            pass
        assert a.close().skeleton() != b.close().skeleton()


class TestJsonl:
    def test_events_parse_and_cover_every_span(self):
        tracer = _small_tree()
        buffer = io.StringIO()
        lines = tracer.write_jsonl(buffer)
        rows = [json.loads(line) for line in
                buffer.getvalue().strip().split("\n")]
        assert len(rows) == lines == 5  # meta + 4 spans
        assert rows[0]["event"] == "meta"
        assert rows[0]["version"] == 1
        spans = [r for r in rows if r["event"] == "span"]
        assert [s["name"] for s in spans] == \
            ["run", "sweep", "k_point", "k_point"]
        assert spans[2]["path"] == "run[0]/sweep[0]/k_point"
        assert spans[2]["counters"] == {"map.cells": 10}
        assert spans[2]["counter_kinds"] == {"map.cells": "count"}
        for s in spans:
            assert s["dur"] >= 0.0

    def test_write_to_path(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        lines = _small_tree().write_jsonl(str(target))
        content = target.read_text().strip().split("\n")
        assert len(content) == lines
        for line in content:
            json.loads(line)


class TestProfileReport:
    def test_breakdown_aggregates_repeated_phases(self):
        tracer = _small_tree()
        report = profile_report(tracer.close())
        assert "Per-phase breakdown" in report
        assert "Merged counters" in report
        assert "run/sweep/k_point" in report
        # The two k_point spans aggregate into one row of 2 calls and
        # their counters sum in the merged table.
        lines = [ln for ln in report.splitlines() if "k_point" in ln]
        assert any("| 2" in ln.replace("|  2", "| 2") or " 2 " in ln
                   for ln in lines)
        assert "map.cells" in report
        assert "22" in report
