"""Technology decomposition: Boolean network -> NAND2/INV base network.

This is the SIS ``tech_decomp -a 2 -o 2`` equivalent: every node's SOP is
expanded into balanced trees of two-input ANDs and ORs, which are then
expressed with the two base functions (two-input NAND and inverter) the
paper's subject graphs consist of.  Structural hashing in
:class:`repro.network.dag.BaseNetwork` shares inverters and identical
gates, so common literals cost nothing extra.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import NetworkError
from .boolnet import BooleanNetwork
from .dag import BaseNetwork
from .sop import Sop


class _Builder:
    """Stateful helper building base gates with polarity bookkeeping."""

    def __init__(self, base: BaseNetwork):  # noqa: D107
        self.base = base

    def inv(self, v: int) -> int:
        """Inverter (hashed/shared), cancelling double inversions.

        ``INV(INV(x)) == x`` — without this, OR trees built over negated
        literals accumulate inverter pairs that bloat the subject graph
        and hide larger cell matches from the mapper.
        """
        from .dag import INV
        if self.base.kind[v] == INV:
            return self.base.fanins[v][0]
        return self.base.add_inv(v)

    def and2(self, a: int, b: int) -> int:
        """Two-input AND as INV(NAND2(a, b))."""
        return self.inv(self.base.add_nand2(a, b))

    def or2(self, a: int, b: int) -> int:
        """Two-input OR as NAND2(INV(a), INV(b))."""
        return self.base.add_nand2(self.inv(a), self.inv(b))

    def balanced(self, vertices: List[int], combine) -> int:
        """Reduce a list with a balanced binary tree of ``combine``."""
        if not vertices:
            raise NetworkError("cannot reduce an empty vertex list")
        level = list(vertices)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(combine(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def constant(self, value: bool, any_vertex: int) -> int:
        """A constant signal built from an arbitrary existing vertex.

        ``NAND2(x, INV x)`` is identically 1; its inverse is 0.  Constant
        nodes should normally be swept before decomposition; this keeps
        decomposition total.
        """
        one = self.base.add_nand2(any_vertex, self.inv(any_vertex))
        return one if value else self.inv(one)


def decompose_sop(sop: Sop, literal_vertex, builder: _Builder,
                  any_vertex: int) -> int:
    """Decompose one SOP into base gates; returns the output vertex.

    ``literal_vertex(name, phase)`` must return the vertex realising the
    requested literal.
    """
    if sop.is_zero():
        return builder.constant(False, any_vertex)
    if sop.is_one():
        return builder.constant(True, any_vertex)
    cube_outputs: List[int] = []
    for cube in sorted(sop.cubes, key=lambda c: sorted(c)):
        lits = [literal_vertex(name, phase) for name, phase in sorted(cube)]
        cube_outputs.append(builder.balanced(lits, builder.and2))
    return builder.balanced(cube_outputs, builder.or2)


def decompose(network: BooleanNetwork,
              name: Optional[str] = None) -> BaseNetwork:
    """Decompose a Boolean network into a NAND2/INV base network.

    The resulting base network has the same primary input and output
    names; its function is identical (verified by the test suite via
    :func:`repro.network.equiv.check_boolnet_vs_base`).
    """
    network.check()
    base = BaseNetwork(name or network.name + "_base")
    builder = _Builder(base)
    signal_vertex: Dict[str, int] = {}
    for input_name in network.inputs:
        signal_vertex[input_name] = base.add_input(input_name)
    if not network.inputs and network.nodes:
        raise NetworkError("cannot decompose a network with no primary inputs")
    any_vertex = next(iter(signal_vertex.values())) if signal_vertex else None

    def literal_vertex(sig: str, phase: bool) -> int:
        v = signal_vertex[sig]
        return v if phase else builder.inv(v)

    for node_name in network.topological_order():
        sop = network.nodes[node_name].sop
        if any_vertex is None:
            raise NetworkError("network has nodes but no inputs")
        signal_vertex[node_name] = decompose_sop(
            sop, literal_vertex, builder, any_vertex)

    for output in network.outputs:
        if output not in signal_vertex:
            raise NetworkError(f"primary output {output!r} undefined")
        base.set_output(output, signal_vertex[output])
    base.check()
    return base
