"""Bit-parallel functional simulation of every netlist form.

Simulation is the workhorse of this reproduction's verification story:
technology decomposition and technology mapping must preserve the logic
function, and the test suite checks this by simulating the three
representations (Boolean network, base-gate DAG, mapped netlist) on the
same stimulus and comparing output words.

Vectors are packed 64 per numpy ``uint64`` word; a stimulus of ``n``
vectors for ``k`` inputs is a ``(k, ceil(n/64))`` uint64 array.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import NetworkError
from .boolnet import BooleanNetwork
from .dag import BaseNetwork, INV, NAND2, PI

Words = np.ndarray  # shape (nwords,), dtype uint64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def random_stimulus(num_inputs: int, num_vectors: int, seed: int = 0) -> np.ndarray:
    """Random packed stimulus: shape ``(num_inputs, nwords)`` uint64."""
    nwords = max(1, (num_vectors + 63) // 64)
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2 ** 63, size=(num_inputs, nwords), dtype=np.uint64) * np.uint64(2) \
        + rng.integers(0, 2, size=(num_inputs, nwords), dtype=np.uint64)


def exhaustive_stimulus(num_inputs: int) -> np.ndarray:
    """All ``2**num_inputs`` vectors packed bit-parallel (inputs <= 20)."""
    if num_inputs > 20:
        raise NetworkError("exhaustive stimulus limited to 20 inputs")
    n = 1 << num_inputs
    nwords = max(1, (n + 63) // 64)
    out = np.zeros((num_inputs, nwords), dtype=np.uint64)
    index = np.arange(n, dtype=np.uint64)
    for i in range(num_inputs):
        bits = (index >> np.uint64(i)) & np.uint64(1)
        padded = np.zeros(nwords * 64, dtype=np.uint64)
        padded[:n] = bits
        lanes = padded.reshape(nwords, 64)
        weights = np.uint64(1) << np.arange(64, dtype=np.uint64)
        out[i] = (lanes * weights).sum(axis=1, dtype=np.uint64)
    return out


def simulate_boolnet(network: BooleanNetwork,
                     stimulus: np.ndarray) -> Dict[str, Words]:
    """Simulate a Boolean network; returns output-name -> packed words."""
    if stimulus.shape[0] != len(network.inputs):
        raise NetworkError(
            f"stimulus has {stimulus.shape[0]} rows, network has "
            f"{len(network.inputs)} inputs")
    values: Dict[str, Words] = {
        name: stimulus[i] for i, name in enumerate(network.inputs)}
    nwords = stimulus.shape[1]
    zeros = np.zeros(nwords, dtype=np.uint64)
    for name in network.topological_order():
        sop = network.nodes[name].sop
        acc = zeros.copy()
        for cube in sop.cubes:
            term = np.full(nwords, _ALL_ONES, dtype=np.uint64)
            for var, phase in cube:
                word = values[var]
                term = term & (word if phase else ~word)
            acc |= term
        values[name] = acc
    return {name: values[name] for name in network.outputs}


def simulate_base(network: BaseNetwork,
                  stimulus: np.ndarray) -> Dict[str, Words]:
    """Simulate a base-gate DAG; returns output-name -> packed words."""
    names = sorted(network.input_vertex)
    if stimulus.shape[0] != len(names):
        raise NetworkError(
            f"stimulus has {stimulus.shape[0]} rows, network has "
            f"{len(names)} inputs")
    nwords = stimulus.shape[1]
    values: List[Words] = [None] * network.num_vertices()  # type: ignore[list-item]
    for i, name in enumerate(names):
        values[network.input_vertex[name]] = stimulus[i]
    for v in network.vertices():
        kind = network.kind[v]
        if kind == PI:
            if values[v] is None:
                raise NetworkError(f"primary input vertex {v} has no stimulus")
            continue
        if kind == INV:
            values[v] = ~values[network.fanins[v][0]]
        elif kind == NAND2:
            a, b = network.fanins[v]
            values[v] = ~(values[a] & values[b])
        else:  # pragma: no cover - check() prevents this
            raise NetworkError(f"unknown vertex kind {kind!r}")
    return {name: values[v] for name, v in network.outputs.items()}


def simulate_mapped(netlist, library, stimulus: np.ndarray) -> Dict[str, Words]:
    """Simulate a mapped netlist using the library's cell functions."""
    if stimulus.shape[0] != len(netlist.inputs):
        raise NetworkError(
            f"stimulus has {stimulus.shape[0]} rows, netlist has "
            f"{len(netlist.inputs)} inputs")
    values: Dict[str, Words] = {
        name: stimulus[i] for i, name in enumerate(netlist.inputs)}
    nwords = stimulus.shape[1]
    zeros = np.zeros(nwords, dtype=np.uint64)
    for inst_name in netlist.topological_instances():
        inst = netlist.instances[inst_name]
        cell = library.cell(inst.cell_name)
        acc = zeros.copy()
        for cube in cell.function.cubes:
            term = np.full(nwords, _ALL_ONES, dtype=np.uint64)
            for pin, phase in cube:
                word = values[inst.pins[pin]]
                term = term & (word if phase else ~word)
            acc |= term
        values[inst.output] = acc
    return {name: values[netlist.output_net[name]] for name in netlist.outputs}


def input_order_base(network: BaseNetwork) -> List[str]:
    """The stimulus row order :func:`simulate_base` expects."""
    return sorted(network.input_vertex)
