"""Multi-level Boolean networks (the SIS-style logic representation).

A :class:`BooleanNetwork` is a DAG of named internal nodes, each holding
a sum-of-products expression over the names of its fanins (which may be
primary inputs or other internal nodes).  Primary outputs point at
signals by name.  This is the form the technology-independent optimizer
(:mod:`repro.synth`) rewrites, and the input to technology decomposition
(:mod:`repro.network.decompose`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..errors import NetworkError
from .sop import Sop


class Node:
    """One internal node: a named signal defined by an SOP over fanins."""

    __slots__ = ("name", "sop")

    def __init__(self, name: str, sop: Sop):  # noqa: D107
        self.name = name
        self.sop = sop

    @property
    def fanin_names(self) -> frozenset:
        """Names of the signals this node reads."""
        return self.sop.support()

    def num_literals(self) -> int:
        """SOP literal count of this node."""
        return self.sop.num_literals()

    def __repr__(self) -> str:
        return f"Node({self.name} = {self.sop.to_string()})"


class BooleanNetwork:
    """A combinational multi-level logic network.

    Invariants maintained by the mutators:

    * every fanin name of every node is a primary input or another node,
    * the node graph is acyclic (checked by :meth:`topological_order`),
    * primary outputs refer to existing signals.
    """

    def __init__(self, name: str = "network"):  # noqa: D107
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.nodes: Dict[str, Node] = {}
        self._uid = 0

    # -- construction ---------------------------------------------------

    def add_input(self, name: str) -> str:
        """Declare a primary input."""
        if name in self.nodes or name in self.inputs:
            raise NetworkError(f"signal {name!r} already exists")
        self.inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        """Declare a primary output on an existing (or future) signal."""
        self.outputs.append(name)
        return name

    def add_node(self, name: str, sop: Sop) -> Node:
        """Create an internal node computing ``sop``."""
        if name in self.nodes or name in self.inputs:
            raise NetworkError(f"signal {name!r} already exists")
        node = Node(name, sop)
        self.nodes[name] = node
        return node

    def new_name(self, prefix: str = "n") -> str:
        """A fresh signal name not colliding with anything in the network."""
        while True:
            self._uid += 1
            candidate = f"{prefix}{self._uid}"
            if candidate not in self.nodes and candidate not in self.inputs:
                return candidate

    def set_function(self, name: str, sop: Sop) -> None:
        """Replace the SOP of an existing node."""
        self.nodes[name].sop = sop

    def remove_node(self, name: str) -> None:
        """Delete an internal node (caller guarantees it is unused)."""
        del self.nodes[name]

    # -- queries ----------------------------------------------------------

    def is_input(self, name: str) -> bool:
        """True when ``name`` is a primary input."""
        return name in self._input_set()

    def _input_set(self) -> Set[str]:
        return set(self.inputs)

    def signal_exists(self, name: str) -> bool:
        """True when ``name`` is an input or an internal node."""
        return name in self.nodes or name in self._input_set()

    def fanouts(self) -> Dict[str, List[str]]:
        """Map from each signal to the node names that read it."""
        out: Dict[str, List[str]] = {name: [] for name in self.inputs}
        for name in self.nodes:
            out.setdefault(name, [])
        for node in self.nodes.values():
            for fanin in sorted(node.fanin_names):
                out[fanin].append(node.name)
        return out

    def fanout_counts(self) -> Dict[str, int]:
        """Fanout count per signal, counting PO use as one fanout each."""
        counts = {name: len(users) for name, users in self.fanouts().items()}
        for output in self.outputs:
            counts[output] = counts.get(output, 0) + 1
        return counts

    def num_literals(self) -> int:
        """Total SOP literal count over all nodes (the area proxy)."""
        return sum(node.num_literals() for node in self.nodes.values())

    def topological_order(self) -> List[str]:
        """Node names in fanin-before-fanout order.

        Raises :class:`NetworkError` on combinational cycles or dangling
        fanins.
        """
        inputs = self._input_set()
        state: Dict[str, int] = {}
        order: List[str] = []
        # Iterative DFS to avoid recursion limits on deep networks.
        for root in sorted(self.nodes):
            self._visit_iterative(root, inputs, state, order)
        return order

    def _visit_iterative(self, root: str, inputs: Set[str],
                         state: Dict[str, int], order: List[str]) -> None:
        if root in inputs or state.get(root, 0) == 2:
            return
        stack: List[tuple] = [(root, iter(sorted(self.nodes[root].fanin_names)))]
        state[root] = 1
        while stack:
            name, fanin_iter = stack[-1]
            advanced = False
            for fanin in fanin_iter:
                if fanin in inputs:
                    continue
                node = self.nodes.get(fanin)
                if node is None:
                    raise NetworkError(f"dangling signal {fanin!r} (used by {name!r})")
                mark = state.get(fanin, 0)
                if mark == 1:
                    raise NetworkError(f"combinational cycle through {fanin!r}")
                if mark == 0:
                    state[fanin] = 1
                    stack.append((fanin, iter(sorted(node.fanin_names))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                state[name] = 2
                order.append(name)

    def transitive_fanin(self, roots: Iterable[str]) -> Set[str]:
        """All signals (inputs included) feeding the given roots."""
        inputs = self._input_set()
        seen: Set[str] = set()
        work = list(roots)
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in inputs:
                continue
            node = self.nodes.get(name)
            if node is None:
                raise NetworkError(f"dangling signal {name!r}")
            work.extend(node.fanin_names)
        return seen

    def check(self) -> None:
        """Validate all structural invariants; raise on violation."""
        inputs = self._input_set()
        if len(inputs) != len(self.inputs):
            raise NetworkError("duplicate primary input names")
        for node in self.nodes.values():
            for fanin in node.fanin_names:
                if fanin not in inputs and fanin not in self.nodes:
                    raise NetworkError(
                        f"node {node.name!r} reads undefined signal {fanin!r}")
        for output in self.outputs:
            if output not in inputs and output not in self.nodes:
                raise NetworkError(f"primary output {output!r} is undefined")
        self.topological_order()

    # -- cleanup ----------------------------------------------------------

    def remove_dangling(self) -> int:
        """Delete nodes not in the transitive fanin of any output.

        Returns the number of nodes removed.
        """
        live = self.transitive_fanin(self.outputs)
        dead = [name for name in self.nodes if name not in live]
        for name in dead:
            del self.nodes[name]
        return len(dead)

    def copy(self, name: Optional[str] = None) -> "BooleanNetwork":
        """Deep-enough copy (SOPs are immutable and shared)."""
        other = BooleanNetwork(name or self.name)
        other.inputs = list(self.inputs)
        other.outputs = list(self.outputs)
        other.nodes = {n: Node(n, node.sop) for n, node in self.nodes.items()}
        other._uid = self._uid
        return other

    def stats(self) -> Dict[str, int]:
        """Summary statistics used in reports and tests."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "nodes": len(self.nodes),
            "literals": self.num_literals(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"BooleanNetwork({self.name!r}, {s['inputs']} in, "
                f"{s['outputs']} out, {s['nodes']} nodes, {s['literals']} lits)")
