"""Sum-of-products expressions and their algebraic operations.

An :class:`Sop` is a set of cubes (see :mod:`repro.network.cubes`)
interpreted as their OR.  The algebraic (weak-division) model used by
the SIS-style optimizer lives on top of these primitives:

* literal counting (the cost function of technology-independent
  synthesis — the paper relies on the classic result that factored-form
  literal count correlates with cell area),
* algebraic multiplication and division,
* cofactors and single-cube containment minimisation.

Instances are immutable; every operation returns a new :class:`Sop`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence

from .cubes import (
    Cube,
    Literal,
    ONE_CUBE,
    cube_cofactor,
    cube_contains,
    cube_mul,
    cube_str,
    cube_vars,
    lit,
    make_cube,
)


class Sop:
    """An immutable sum-of-products expression.

    The zero function is the empty set of cubes; the one function is the
    set containing only the empty cube.
    """

    __slots__ = ("_cubes",)

    def __init__(self, cubes: Iterable[Cube] = ()):  # noqa: D107
        self._cubes: FrozenSet[Cube] = frozenset(cubes)

    # -- constructors -------------------------------------------------

    @classmethod
    def zero(cls) -> "Sop":
        """The constant-0 function."""
        return cls()

    @classmethod
    def one(cls) -> "Sop":
        """The constant-1 function."""
        return cls([ONE_CUBE])

    @classmethod
    def literal(cls, name: str, phase: bool = True) -> "Sop":
        """A single-literal function."""
        return cls([frozenset([lit(name, phase)])])

    @classmethod
    def from_cubes(cls, cube_literals: Iterable[Iterable[Literal]]) -> "Sop":
        """Build from an iterable of literal collections, dropping null cubes."""
        cubes = []
        for lits in cube_literals:
            cube = make_cube(lits)
            if cube is not None:
                cubes.append(cube)
        return cls(cubes)

    # -- basic protocol ------------------------------------------------

    @property
    def cubes(self) -> FrozenSet[Cube]:
        """The cube set."""
        return self._cubes

    def __iter__(self) -> Iterator[Cube]:
        return iter(self._cubes)

    def __len__(self) -> int:
        return len(self._cubes)

    def __bool__(self) -> bool:
        return bool(self._cubes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sop):
            return NotImplemented
        return self._cubes == other._cubes

    def __hash__(self) -> int:
        return hash(self._cubes)

    def __repr__(self) -> str:
        return f"Sop({self.to_string()!r})"

    def to_string(self) -> str:
        """Render as ``a b' + c`` (deterministic cube order)."""
        if not self._cubes:
            return "0"
        parts = sorted(cube_str(c) for c in self._cubes)
        return " + ".join(parts)

    # -- structure -----------------------------------------------------

    def is_zero(self) -> bool:
        """True for the constant-0 function."""
        return not self._cubes

    def is_one(self) -> bool:
        """True when the expression contains the constant-1 cube."""
        return ONE_CUBE in self._cubes

    def support(self) -> FrozenSet[str]:
        """Variable names appearing anywhere in the expression."""
        names: set = set()
        for cube in self._cubes:
            names.update(cube_vars(cube))
        return frozenset(names)

    def literals(self) -> FrozenSet[Literal]:
        """Distinct literals appearing anywhere in the expression."""
        out: set = set()
        for cube in self._cubes:
            out.update(cube)
        return frozenset(out)

    def num_literals(self) -> int:
        """Total literal count (SOP form), the classic area proxy."""
        return sum(len(cube) for cube in self._cubes)

    def literal_counts(self) -> Dict[Literal, int]:
        """How many cubes each literal appears in."""
        counts: Dict[Literal, int] = {}
        for cube in self._cubes:
            for literal in cube:
                counts[literal] = counts.get(literal, 0) + 1
        return counts

    def is_cube_free(self) -> bool:
        """True when no single literal divides every cube.

        Kernels are by definition cube-free; the constant expressions are
        conventionally not cube-free.
        """
        if len(self._cubes) <= 1:
            return False
        common = set(next(iter(self._cubes)))
        for cube in self._cubes:
            common &= cube
            if not common:
                return True
        return not common

    # -- algebra -------------------------------------------------------

    def add(self, other: "Sop") -> "Sop":
        """OR of two expressions (cube-set union)."""
        return Sop(self._cubes | other._cubes)

    def mul_cube(self, cube: Cube) -> "Sop":
        """Algebraic product with a single cube."""
        out = []
        for own in self._cubes:
            product = cube_mul(own, cube)
            if product is not None:
                out.append(product)
        return Sop(out)

    def mul(self, other: "Sop") -> "Sop":
        """Algebraic product of two expressions."""
        out = []
        for a in self._cubes:
            for b in other._cubes:
                product = cube_mul(a, b)
                if product is not None:
                    out.append(product)
        return Sop(out)

    def cofactor(self, literal: Literal) -> "Sop":
        """Shannon cofactor with respect to ``literal``."""
        out = []
        for cube in self._cubes:
            reduced = cube_cofactor(cube, literal)
            if reduced is not None:
                out.append(reduced)
        return Sop(out)

    def restrict(self, assignment: Dict[str, bool]) -> "Sop":
        """Cofactor against a partial variable assignment."""
        result = self
        for name, value in assignment.items():
            result = result.cofactor(lit(name, value))
        return result

    def remove_scc(self) -> "Sop":
        """Single-cube-containment minimisation.

        Drops every cube covered by (i.e. a superset of the literals of)
        another cube.  This is the cheap containment cleanup SIS applies
        after algebraic rewrites; it preserves the function exactly.
        """
        cubes: List[Cube] = sorted(self._cubes, key=len)
        kept: List[Cube] = []
        for cube in cubes:
            if not any(cube_contains(cube, small) for small in kept):
                kept.append(cube)
        return Sop(kept)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a complete assignment of the support."""
        for cube in self._cubes:
            if all(assignment[name] == phase for name, phase in cube):
                return True
        return False

    # -- convenience builders used throughout the code base -------------

    @classmethod
    def and_of(cls, names: Sequence[str]) -> "Sop":
        """AND of positive literals."""
        cube = make_cube([lit(n) for n in names])
        if cube is None:
            return cls.zero()
        return cls([cube])

    @classmethod
    def or_of(cls, names: Sequence[str]) -> "Sop":
        """OR of positive literals."""
        return cls([frozenset([lit(n)]) for n in names])


def parse_sop(text: str) -> Sop:
    """Parse ``a b' + c`` style expressions (inverse of :meth:`Sop.to_string`).

    ``0`` and ``1`` denote the constants.  Whitespace separates literals
    within a cube; ``+`` separates cubes; a trailing apostrophe
    complements a literal.
    """
    text = text.strip()
    if text == "0":
        return Sop.zero()
    if text == "1":
        return Sop.one()
    cube_literals = []
    for cube_text in text.split("+"):
        lits = []
        for token in cube_text.split():
            if token.endswith("'"):
                lits.append(lit(token[:-1], False))
            else:
                lits.append(lit(token, True))
        cube_literals.append(lits)
    return Sop.from_cubes(cube_literals)
