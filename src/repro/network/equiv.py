"""Simulation-based equivalence checking between netlist forms.

Used pervasively by the test suite: decomposition and mapping must be
function-preserving.  Checks are exhaustive for small input counts and
random-vector otherwise (a standard, high-confidence proxy given the
circuit generators used here are themselves randomized).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import NetworkError
from .boolnet import BooleanNetwork
from .dag import BaseNetwork
from .simulate import (
    exhaustive_stimulus,
    random_stimulus,
    simulate_base,
    simulate_boolnet,
    simulate_mapped,
)

#: Switch to exhaustive checking at or below this many inputs.
EXHAUSTIVE_LIMIT = 12


def _stimulus(names: Sequence[str], num_vectors: int, seed: int) -> Tuple[np.ndarray, int]:
    """Stimulus for the given input names plus the count of valid vectors."""
    if len(names) <= EXHAUSTIVE_LIMIT:
        stim = exhaustive_stimulus(len(names))
        return stim, 1 << len(names)
    stim = random_stimulus(len(names), num_vectors, seed=seed)
    return stim, stim.shape[1] * 64


def _mask_tail(words: Dict[str, np.ndarray], valid: int) -> Dict[str, np.ndarray]:
    """Zero out bits beyond ``valid`` vectors so comparisons ignore padding."""
    total = next(iter(words.values())).shape[0] * 64 if words else 0
    if not words or valid >= total:
        return words
    out: Dict[str, np.ndarray] = {}
    full_words, rem = divmod(valid, 64)
    for name, arr in words.items():
        arr = arr.copy()
        if rem:
            keep = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
            arr[full_words] &= keep
            arr[full_words + 1:] = 0
        else:
            arr[full_words:] = 0
        out[name] = arr
    return out


def _reorder(stimulus: np.ndarray, from_names: Sequence[str],
             to_names: Sequence[str]) -> np.ndarray:
    """Permute stimulus rows from one input ordering to another."""
    index = {name: i for i, name in enumerate(from_names)}
    try:
        rows = [index[name] for name in to_names]
    except KeyError as exc:
        raise NetworkError(f"input name mismatch: {exc}") from exc
    return stimulus[rows]


def _compare(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray],
             valid: int) -> Optional[str]:
    """Return the first mismatching output name, or ``None``."""
    if set(a) != set(b):
        raise NetworkError(
            f"output sets differ: {sorted(set(a) ^ set(b))}")
    a = _mask_tail(a, valid)
    b = _mask_tail(b, valid)
    for name in sorted(a):
        if not np.array_equal(a[name], b[name]):
            return name
    return None


def check_boolnet_vs_base(boolnet: BooleanNetwork, base: BaseNetwork,
                          num_vectors: int = 2048, seed: int = 1) -> None:
    """Raise :class:`NetworkError` if the two differ on any output."""
    stim, valid = _stimulus(boolnet.inputs, num_vectors, seed)
    ref = simulate_boolnet(boolnet, stim)
    base_names = sorted(base.input_vertex)
    got = simulate_base(base, _reorder(stim, boolnet.inputs, base_names))
    bad = _compare(ref, got, valid)
    if bad is not None:
        raise NetworkError(f"decomposition changed function of output {bad!r}")


def check_base_vs_mapped(base: BaseNetwork, netlist, library,
                         num_vectors: int = 2048, seed: int = 2) -> None:
    """Raise :class:`NetworkError` if mapping changed any output function."""
    base_names = sorted(base.input_vertex)
    stim, valid = _stimulus(base_names, num_vectors, seed)
    ref = simulate_base(base, stim)
    got = simulate_mapped(netlist, library,
                          _reorder(stim, base_names, netlist.inputs))
    bad = _compare(ref, got, valid)
    if bad is not None:
        raise NetworkError(f"mapping changed function of output {bad!r}")


def check_boolnet_vs_boolnet(a: BooleanNetwork, b: BooleanNetwork,
                             num_vectors: int = 2048, seed: int = 3) -> None:
    """Raise :class:`NetworkError` if two Boolean networks differ."""
    stim, valid = _stimulus(a.inputs, num_vectors, seed)
    ref = simulate_boolnet(a, stim)
    got = simulate_boolnet(b, _reorder(stim, a.inputs, b.inputs))
    bad = _compare(ref, got, valid)
    if bad is not None:
        raise NetworkError(f"optimization changed function of output {bad!r}")
