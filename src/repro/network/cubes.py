"""Cube algebra for two-level (sum-of-products) logic.

A *literal* is a variable in either positive or complemented phase,
represented as a ``(name, phase)`` tuple where ``phase`` is ``True`` for
the positive literal ``x`` and ``False`` for the complement ``x'``.

A *cube* is a product (AND) of literals, represented as a frozenset of
literals.  The empty cube is the constant-1 product.  A cube in which a
variable appears in both phases is identically 0 and is normalised away
by the constructors in this module.

These are the primitives the SIS-style algebraic engine
(:mod:`repro.synth`) is built on: the *algebraic* (as opposed to Boolean)
model treats an expression as a polynomial whose variables are the
literals, so multiplication and division below are polynomial operations
that never exploit ``x * x' = 0`` beyond cube normalisation.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

Literal = Tuple[str, bool]
Cube = FrozenSet[Literal]

#: The constant-1 cube (empty product).
ONE_CUBE: Cube = frozenset()


def lit(name: str, phase: bool = True) -> Literal:
    """Build a literal for variable ``name`` with the given ``phase``."""
    return (name, phase)


def lit_name(literal: Literal) -> str:
    """Variable name of a literal."""
    return literal[0]


def lit_phase(literal: Literal) -> bool:
    """Phase of a literal (``True`` = positive)."""
    return literal[1]


def lit_negate(literal: Literal) -> Literal:
    """The complement literal of ``literal``."""
    return (literal[0], not literal[1])


def lit_str(literal: Literal) -> str:
    """Render a literal as ``x`` or ``x'``."""
    name, phase = literal
    return name if phase else name + "'"


def make_cube(literals: Iterable[Literal]) -> Optional[Cube]:
    """Build a cube from literals, or return ``None`` if it is null.

    A cube containing both phases of some variable is the constant-0
    product; this function returns ``None`` for it so callers can drop
    null cubes uniformly.
    """
    cube = frozenset(literals)
    names = [name for name, _ in cube]
    if len(names) != len(set(names)):
        return None
    return cube


def cube_vars(cube: Cube) -> FrozenSet[str]:
    """The set of variable names appearing in ``cube``."""
    return frozenset(name for name, _ in cube)


def cube_mul(a: Cube, b: Cube) -> Optional[Cube]:
    """Algebraic product of two cubes; ``None`` if the result is null."""
    return make_cube(a | b)


def cube_divide(cube: Cube, divisor: Cube) -> Optional[Cube]:
    """Divide ``cube`` by ``divisor``: the quotient cube, or ``None``.

    ``cube / divisor = q`` iff ``divisor * q == cube`` with disjoint
    supports, i.e. the divisor's literals are a subset of the cube's.
    """
    if divisor <= cube:
        return cube - divisor
    return None


def cube_contains(big: Cube, small: Cube) -> bool:
    """True if the product ``big`` has every literal of ``small``.

    Note that as a *set of minterms* the containment runs the other way:
    a cube with more literals covers fewer minterms.
    """
    return small <= big


def cube_cofactor(cube: Cube, literal: Literal) -> Optional[Cube]:
    """Shannon cofactor of a single cube with respect to ``literal``.

    Returns the reduced cube, or ``None`` when the cofactor is empty
    (the cube contains the complement literal).
    """
    if lit_negate(literal) in cube:
        return None
    return cube - {literal}


def supercube(cubes: Iterable[Cube]) -> Cube:
    """Smallest single cube containing every given cube.

    This is the intersection of the literal sets: a literal survives only
    if it appears in every cube.
    """
    cubes = list(cubes)
    if not cubes:
        return ONE_CUBE
    common = set(cubes[0])
    for cube in cubes[1:]:
        common &= cube
    return frozenset(common)


def cube_str(cube: Cube) -> str:
    """Render a cube as a product like ``a b' c``; ``1`` for the empty cube."""
    if not cube:
        return "1"
    return " ".join(lit_str(l) for l in sorted(cube))


def cube_distance(a: Cube, b: Cube) -> int:
    """Number of variables appearing in opposite phases in ``a`` and ``b``.

    Distance 0 means the cubes intersect; distance 1 means they can be
    merged/consensused.
    """
    return sum(1 for literal in a if lit_negate(literal) in b)
