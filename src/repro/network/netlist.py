"""Mapped (technology-dependent) gate-level netlists.

The output of technology mapping: instances of library cells connected
by nets.  This is the structure that gets placed, routed and timed.
Cells are referenced by name through a :class:`repro.library.cell.CellLibrary`
so the netlist stays serialisable without holding library objects.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..errors import NetworkError


class Instance:
    """One placed-and-routed unit: a library cell instance.

    ``pins`` maps formal pin names of the cell to net names; ``output``
    is the net driven by the instance's output pin.
    """

    __slots__ = ("name", "cell_name", "pins", "output")

    def __init__(self, name: str, cell_name: str,
                 pins: Dict[str, str], output: str):  # noqa: D107
        self.name = name
        self.cell_name = cell_name
        self.pins = dict(pins)
        self.output = output

    def input_nets(self) -> List[str]:
        """Net names on the instance's input pins, in pin-name order."""
        return [self.pins[p] for p in sorted(self.pins)]

    def __repr__(self) -> str:
        return f"Instance({self.name}:{self.cell_name} -> {self.output})"


class MappedNetlist:
    """A flat standard-cell netlist.

    Nets are identified by string names.  Primary inputs and outputs are
    nets; every other net must be driven by exactly one instance.
    """

    def __init__(self, name: str = "mapped"):  # noqa: D107
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.output_net: Dict[str, str] = {}
        self.instances: Dict[str, Instance] = {}
        self._uid = 0

    # -- construction ---------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary-input net."""
        if net in self.inputs:
            raise NetworkError(f"duplicate primary input {net!r}")
        self.inputs.append(net)
        return net

    def add_output(self, name: str, net: Optional[str] = None) -> str:
        """Declare a primary output ``name`` observing net ``net``.

        When ``net`` is omitted the output observes the net of the same
        name (the common case).  Several outputs may observe one net
        (shared drivers), and an output may observe a primary input
        directly (a passthrough).
        """
        if name in self.output_net:
            raise NetworkError(f"duplicate primary output {name!r}")
        self.outputs.append(name)
        self.output_net[name] = net if net is not None else name
        return name

    def add_instance(self, cell_name: str, pins: Dict[str, str],
                     output: str, name: Optional[str] = None) -> Instance:
        """Instantiate a cell driving net ``output``."""
        if name is None:
            name = self.new_instance_name(cell_name)
        if name in self.instances:
            raise NetworkError(f"duplicate instance name {name!r}")
        inst = Instance(name, cell_name, pins, output)
        self.instances[name] = inst
        return inst

    def new_instance_name(self, prefix: str = "u") -> str:
        """Fresh instance name."""
        while True:
            self._uid += 1
            candidate = f"{prefix}_{self._uid}"
            if candidate not in self.instances:
                return candidate

    def rename_net(self, old: str, new: str) -> None:
        """Rename a net everywhere: driver, sink pins, PIs and PO bindings.

        ``new`` must not already name a net (a driven net or a primary
        input).  Primary *output* names are observation points, not
        nets, and are left untouched unless they observe ``old``.
        """
        if old == new:
            return
        if new in self.driver_map() or new in self.inputs:
            raise NetworkError(f"cannot rename {old!r}: net {new!r} exists")
        if old in self.inputs:
            self.inputs[self.inputs.index(old)] = new
        for inst in self.instances.values():
            if inst.output == old:
                inst.output = new
            for pin, net in inst.pins.items():
                if net == old:
                    inst.pins[pin] = new
        for name, net in self.output_net.items():
            if net == old:
                self.output_net[name] = new

    def new_net_name(self, prefix: str = "w") -> str:
        """Fresh net name (checks drivers and PIs)."""
        drivers = self.driver_map()
        inputs = set(self.inputs)
        while True:
            self._uid += 1
            candidate = f"{prefix}_{self._uid}"
            if candidate not in drivers and candidate not in inputs:
                return candidate

    # -- queries ----------------------------------------------------------

    def num_cells(self) -> int:
        """Number of cell instances."""
        return len(self.instances)

    def cell_histogram(self) -> Dict[str, int]:
        """Instance count per library cell name."""
        hist: Dict[str, int] = {}
        for inst in self.instances.values():
            hist[inst.cell_name] = hist.get(inst.cell_name, 0) + 1
        return hist

    def driver_map(self) -> Dict[str, str]:
        """Net name -> driving instance name."""
        out: Dict[str, str] = {}
        for inst in self.instances.values():
            if inst.output in out:
                raise NetworkError(f"net {inst.output!r} has multiple drivers")
            out[inst.output] = inst.name
        return out

    def sink_map(self) -> Dict[str, List[Tuple[str, str]]]:
        """Net name -> list of (instance name, pin name) sinks."""
        out: Dict[str, List[Tuple[str, str]]] = {}
        for inst_name in sorted(self.instances):
            inst = self.instances[inst_name]
            for pin in sorted(inst.pins):
                out.setdefault(inst.pins[pin], []).append((inst_name, pin))
        return out

    def nets(self) -> List[str]:
        """All net names: primary inputs plus every driven net."""
        seen: Set[str] = set()
        out: List[str] = []
        for net in self.inputs:
            seen.add(net)
            out.append(net)
        for inst_name in sorted(self.instances):
            net = self.instances[inst_name].output
            if net not in seen:
                seen.add(net)
                out.append(net)
        return out

    def topological_instances(self) -> List[str]:
        """Instance names in fanin-before-fanout order."""
        drivers = self.driver_map()
        inputs = set(self.inputs)
        state: Dict[str, int] = {}
        order: List[str] = []
        for root in sorted(self.instances):
            if state.get(root, 0) == 2:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [
                (root, iter(self.instances[root].input_nets()))]
            state[root] = 1
            while stack:
                name, net_iter = stack[-1]
                advanced = False
                for net in net_iter:
                    if net in inputs:
                        continue
                    driver = drivers.get(net)
                    if driver is None:
                        raise NetworkError(f"net {net!r} has no driver")
                    mark = state.get(driver, 0)
                    if mark == 1:
                        raise NetworkError(f"combinational cycle through {driver!r}")
                    if mark == 0:
                        state[driver] = 1
                        stack.append(
                            (driver, iter(self.instances[driver].input_nets())))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[name] = 2
                    order.append(name)
        return order

    def check(self) -> None:
        """Validate: single drivers, no dangling nets, acyclic."""
        drivers = self.driver_map()
        inputs = set(self.inputs)
        for inst in self.instances.values():
            for pin, net in inst.pins.items():
                if net not in drivers and net not in inputs:
                    raise NetworkError(
                        f"instance {inst.name!r} pin {pin!r} reads undriven net {net!r}")
        for name in self.outputs:
            net = self.output_net[name]
            if net not in drivers and net not in inputs:
                raise NetworkError(f"primary output {name!r} is undriven")
        self.topological_instances()

    def total_area(self, library) -> float:
        """Sum of cell areas (µm²) against a :class:`CellLibrary`."""
        return sum(library.cell(inst.cell_name).area
                   for inst in self.instances.values())

    def remove_unused(self) -> int:
        """Drop instances whose outputs reach no primary output.

        Returns the number of instances removed.
        """
        drivers = self.driver_map()
        live_nets: Set[str] = set()
        work = [self.output_net[name] for name in self.outputs]
        while work:
            net = work.pop()
            if net in live_nets:
                continue
            live_nets.add(net)
            driver = drivers.get(net)
            if driver is not None:
                work.extend(self.instances[driver].input_nets())
        dead = [name for name, inst in self.instances.items()
                if inst.output not in live_nets]
        for name in dead:
            del self.instances[name]
        return len(dead)

    def stats(self) -> Dict[str, int]:
        """Summary statistics."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "cells": len(self.instances),
            "nets": len(self.nets()),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"MappedNetlist({self.name!r}, {s['inputs']} in, "
                f"{s['outputs']} out, {s['cells']} cells)")
