"""The technology-independent subject graph of base gates.

After technology decomposition a circuit is a DAG whose internal
vertices are **two-input NANDs and inverters** (the "base functions" of
the paper), plus primary-input vertices.  This is the structure that is

* placed to obtain the layout image used by the congestion-aware mapper,
* partitioned into trees (Section 3.1), and
* covered with library-cell pattern matches (Section 3.2).

Vertices are identified by integer ids; the graph is append-only, which
keeps ids stable across partitioning and covering.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import NetworkError

# Vertex kinds.
PI = "pi"
NAND2 = "nand2"
INV = "inv"

_ARITY = {PI: 0, NAND2: 2, INV: 1}


class BaseNetwork:
    """A DAG of NAND2/INV base gates with named primary inputs/outputs.

    ``fanins[v]`` lists the fanin vertex ids of ``v`` (length 0, 1 or 2
    depending on kind).  ``outputs`` maps primary-output names to the
    vertex driving them.  Structure-hashing in :meth:`add_gate` keeps the
    graph free of duplicate gates, mirroring what SIS's two-input
    decomposition produces.
    """

    def __init__(self, name: str = "base"):  # noqa: D107
        self.name = name
        self.kind: List[str] = []
        self.fanins: List[Tuple[int, ...]] = []
        self.labels: List[Optional[str]] = []
        self.input_vertex: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        self._hash: Dict[Tuple, int] = {}

    # -- construction ---------------------------------------------------

    def add_input(self, name: str) -> int:
        """Create a primary-input vertex."""
        if name in self.input_vertex:
            raise NetworkError(f"duplicate primary input {name!r}")
        v = self._new_vertex(PI, (), label=name)
        self.input_vertex[name] = v
        return v

    def add_gate(self, kind: str, fanins: Sequence[int]) -> int:
        """Create (or reuse, via structural hashing) a base gate.

        NAND2 fanins are stored sorted so the hash is input-order
        insensitive (NAND2 is symmetric).
        """
        if kind not in (NAND2, INV):
            raise NetworkError(f"unknown base gate kind {kind!r}")
        if len(fanins) != _ARITY[kind]:
            raise NetworkError(f"{kind} expects {_ARITY[kind]} fanins, got {len(fanins)}")
        for f in fanins:
            if not 0 <= f < len(self.kind):
                raise NetworkError(f"fanin vertex {f} does not exist")
        key: Tuple = (kind, tuple(sorted(fanins)))
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        v = self._new_vertex(kind, tuple(fanins))
        self._hash[key] = v
        return v

    def add_inv(self, fanin: int) -> int:
        """Shorthand for an inverter gate."""
        return self.add_gate(INV, (fanin,))

    def add_nand2(self, a: int, b: int) -> int:
        """Shorthand for a two-input NAND gate."""
        return self.add_gate(NAND2, (a, b))

    def set_output(self, name: str, vertex: int) -> None:
        """Mark ``vertex`` as driving primary output ``name``."""
        if not 0 <= vertex < len(self.kind):
            raise NetworkError(f"output vertex {vertex} does not exist")
        self.outputs[name] = vertex

    def _new_vertex(self, kind: str, fanins: Tuple[int, ...],
                    label: Optional[str] = None) -> int:
        self.kind.append(kind)
        self.fanins.append(fanins)
        self.labels.append(label)
        return len(self.kind) - 1

    # -- queries ----------------------------------------------------------

    def num_vertices(self) -> int:
        """Total vertex count including primary inputs."""
        return len(self.kind)

    def num_gates(self) -> int:
        """Count of base gates (NAND2 + INV), i.e. excluding inputs."""
        return sum(1 for k in self.kind if k != PI)

    def vertices(self) -> Iterator[int]:
        """All vertex ids in creation (hence topological) order."""
        return iter(range(len(self.kind)))

    def gates(self) -> Iterator[int]:
        """Ids of gate vertices only."""
        return (v for v in self.vertices() if self.kind[v] != PI)

    def is_pi(self, v: int) -> bool:
        """True for primary-input vertices."""
        return self.kind[v] == PI

    def fanout_map(self) -> List[List[int]]:
        """For each vertex, the list of vertices reading it."""
        out: List[List[int]] = [[] for _ in range(len(self.kind))]
        for v in self.vertices():
            for f in self.fanins[v]:
                out[f].append(v)
        return out

    def fanout_counts(self) -> List[int]:
        """Fanout count per vertex, counting each PO use once."""
        counts = [0] * len(self.kind)
        for v in self.vertices():
            for f in self.fanins[v]:
                counts[f] += 1
        for v in self.outputs.values():
            counts[v] += 1
        return counts

    def roots(self) -> List[int]:
        """Distinct primary-output driver vertices, in name order."""
        seen: Set[int] = set()
        out: List[int] = []
        for name in sorted(self.outputs):
            v = self.outputs[name]
            if v not in seen:
                seen.add(v)
                out.append(v)
        return out

    def topological_order(self) -> List[int]:
        """Vertex ids in fanin-before-fanout order.

        Creation order already satisfies this because fanins must exist
        before a gate is added; exposed as a method for symmetry with
        :class:`BooleanNetwork`.
        """
        return list(self.vertices())

    def transitive_fanin(self, roots: Iterable[int]) -> Set[int]:
        """All vertices feeding (and including) the given roots."""
        seen: Set[int] = set()
        work = list(roots)
        while work:
            v = work.pop()
            if v in seen:
                continue
            seen.add(v)
            work.extend(self.fanins[v])
        return seen

    def check(self) -> None:
        """Validate invariants: arities, topological creation order."""
        for v in self.vertices():
            kind = self.kind[v]
            if kind not in _ARITY:
                raise NetworkError(f"vertex {v} has unknown kind {kind!r}")
            if len(self.fanins[v]) != _ARITY[kind]:
                raise NetworkError(f"vertex {v} ({kind}) has bad arity")
            for f in self.fanins[v]:
                if f >= v:
                    raise NetworkError(f"vertex {v} reads later vertex {f}")
        for name, v in self.outputs.items():
            if not 0 <= v < len(self.kind):
                raise NetworkError(f"output {name!r} points at missing vertex")

    def stats(self) -> Dict[str, int]:
        """Summary statistics: input/gate/NAND/INV/output counts."""
        nands = sum(1 for k in self.kind if k == NAND2)
        invs = sum(1 for k in self.kind if k == INV)
        return {
            "inputs": len(self.input_vertex),
            "outputs": len(self.outputs),
            "gates": nands + invs,
            "nand2": nands,
            "inv": invs,
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"BaseNetwork({self.name!r}, {s['inputs']} in, {s['outputs']} out, "
                f"{s['nand2']} nand2 + {s['inv']} inv)")
