"""Logic-network substrate: SOP algebra, Boolean networks, base DAGs.

Public surface:

* :class:`~repro.network.sop.Sop` and the cube helpers in
  :mod:`repro.network.cubes` — two-level algebra,
* :class:`~repro.network.boolnet.BooleanNetwork` — multi-level SIS-style
  networks,
* :class:`~repro.network.dag.BaseNetwork` — NAND2/INV subject graphs,
* :class:`~repro.network.netlist.MappedNetlist` — mapped gate netlists,
* :func:`~repro.network.decompose.decompose` — technology decomposition,
* simulation and equivalence helpers.
"""

from .boolnet import BooleanNetwork, Node
from .cubes import Cube, Literal, ONE_CUBE, lit, lit_negate, make_cube
from .dag import BaseNetwork, INV, NAND2, PI
from .decompose import decompose
from .equiv import (
    check_base_vs_mapped,
    check_boolnet_vs_base,
    check_boolnet_vs_boolnet,
)
from .netlist import Instance, MappedNetlist
from .simulate import (
    exhaustive_stimulus,
    random_stimulus,
    simulate_base,
    simulate_boolnet,
    simulate_mapped,
)
from .sop import Sop, parse_sop

__all__ = [
    "BaseNetwork",
    "BooleanNetwork",
    "Cube",
    "INV",
    "Instance",
    "Literal",
    "MappedNetlist",
    "NAND2",
    "Node",
    "ONE_CUBE",
    "PI",
    "Sop",
    "check_base_vs_mapped",
    "check_boolnet_vs_base",
    "check_boolnet_vs_boolnet",
    "decompose",
    "exhaustive_stimulus",
    "lit",
    "lit_negate",
    "make_cube",
    "parse_sop",
    "random_stimulus",
    "simulate_base",
    "simulate_boolnet",
    "simulate_mapped",
]
