"""Node elimination (SIS ``eliminate``): collapse low-value nodes.

The inverse of extraction: a node whose *value* — the literal cost of
keeping it as a shared function versus substituting its SOP into every
reader — falls below a threshold is collapsed into its fanouts.  SIS
runs ``eliminate`` between extraction passes to undo sharing that
stopped paying for itself; the paper's congestion argument is exactly
that some sharing never paid for itself once wiring is counted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..network.boolnet import BooleanNetwork
from ..network.cubes import lit
from ..network.sop import Sop

#: Refuse to substitute into covers that would explode past this many cubes.
MAX_RESULT_CUBES = 256


def node_value(network: BooleanNetwork, name: str) -> Optional[int]:
    """The literal savings of keeping ``name`` as a separate node.

    value = (literal cost with the node inlined everywhere)
          - (literal cost with the node kept shared).
    Positive ⇒ the node pays for itself; ``eliminate`` collapses nodes
    whose value is at or below its threshold.  Returns ``None`` when
    the node cannot be eliminated (drives a primary output, or is used
    in complemented form — the algebraic substitution below handles
    positive uses only).
    """
    if name in network.outputs:
        return None
    sop = network.nodes[name].sop
    node_lits = sop.num_literals()
    num_cubes = max(len(sop), 1)
    uses = 0
    value = -node_lits  # inlining saves the node's own definition
    for other in network.nodes.values():
        for cube in other.sop.cubes:
            if lit(name, False) in cube:
                return None  # complemented use: leave to sweep()
            if lit(name, True) in cube:
                uses += 1
                # Keeping: this use costs one literal.  Inlining:
                # node_lits, plus the cube's remaining literals get
                # replicated once per extra SOP cube.
                rest = len(cube) - 1
                value += (node_lits + num_cubes * rest) - (1 + rest)
    if uses == 0:
        return None  # dead; remove_dangling handles it
    return value


def eliminate_node(network: BooleanNetwork, name: str) -> bool:
    """Collapse one node into its fanouts; returns True on success.

    The substitution is algebraic: for each reader, cubes containing the
    node's literal are expanded by distributing the node's SOP.
    """
    if name in network.outputs or name not in network.nodes:
        return False
    sop = network.nodes[name].sop
    readers = [n for n, node in network.nodes.items()
               if name in node.sop.support()]
    if not readers:
        return False
    for reader in readers:
        reader_sop = network.nodes[reader].sop
        for cube in reader_sop.cubes:
            if lit(name, False) in cube:
                return False  # complemented use
    new_functions: Dict[str, Sop] = {}
    for reader in readers:
        expanded: List = []
        for cube in network.nodes[reader].sop.cubes:
            if lit(name, True) in cube:
                rest = cube - {lit(name, True)}
                product = sop.mul_cube(rest)
                expanded.extend(product.cubes)
            else:
                expanded.append(cube)
        result = Sop(expanded).remove_scc()
        if len(result) > MAX_RESULT_CUBES:
            return False
        new_functions[reader] = result
    for reader, function in new_functions.items():
        network.set_function(reader, function)
    network.remove_node(name)
    return True


def eliminate(network: BooleanNetwork, threshold: int = 0,
              max_passes: int = 10) -> int:
    """Collapse every node whose value is ≤ ``threshold``.

    Mirrors SIS ``eliminate <threshold>``; returns the number of nodes
    collapsed.  Functions are preserved (verified by the test suite).
    """
    collapsed = 0
    for _ in range(max_passes):
        progress = False
        for name in sorted(network.nodes):
            if name not in network.nodes:
                continue
            value = node_value(network, name)
            if value is None or value > threshold:
                continue
            if eliminate_node(network, name):
                collapsed += 1
                progress = True
        if not progress:
            break
    network.remove_dangling()
    return collapsed
