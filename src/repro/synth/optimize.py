"""Technology-independent optimization scripts (the "SIS" flow).

:func:`optimize` chains the passes of this package into the equivalent
of a SIS script: sweep, two-level cleanup, then greedy kernel/cube
extraction to a literal-count fixed point.  This is the flow the paper
calls "synthesized by the logic synthesis tool SIS" — the baseline whose
aggressive sharing produces structurally congested netlists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..network.boolnet import BooleanNetwork
from .eliminate import eliminate
from .espresso import minimize_network
from .extract import extract
from .sweep import simplify_nodes, sweep


@dataclass
class OptimizeReport:
    """What each pass accomplished, for logging and tests."""

    literals_before: int = 0
    literals_after: int = 0
    nodes_before: int = 0
    nodes_after: int = 0
    swept: int = 0
    extracted: int = 0
    passes: List[str] = field(default_factory=list)

    def saved(self) -> int:
        """Total literal savings."""
        return self.literals_before - self.literals_after


def optimize(network: BooleanNetwork, effort: str = "standard",
             max_rounds: int = 10_000) -> OptimizeReport:
    """Optimize ``network`` in place for minimum literals.

    ``effort``:

    * ``"fast"`` — sweep + containment cleanup only,
    * ``"standard"`` — adds greedy kernel/cube extraction (the default),
    * ``"high"`` — adds two-level minimisation before and after
      extraction,
    * ``"rugged"`` — ``"high"`` plus a final low-value node elimination
      pass (closest to SIS ``script.rugged``).

    Function preservation is checked by the test suite via random and
    exhaustive simulation.
    """
    if effort not in ("fast", "standard", "high", "rugged"):
        raise ValueError(f"unknown effort {effort!r}")
    deep = effort in ("high", "rugged")
    report = OptimizeReport(
        literals_before=network.num_literals(),
        nodes_before=len(network.nodes),
    )
    report.swept += sweep(network)
    report.passes.append("sweep")
    simplify_nodes(network)
    report.passes.append("scc")
    if deep:
        minimize_network(network)
        report.passes.append("espresso_lite")
    if effort != "fast":
        min_value = 0 if deep else 1
        report.extracted = extract(network, max_rounds=max_rounds,
                                   min_value=min_value)
        report.passes.append("extract")
        report.swept += sweep(network)
        report.passes.append("sweep")
    if deep:
        minimize_network(network)
        report.passes.append("espresso_lite")
        report.swept += sweep(network)
        report.passes.append("sweep")
    if effort == "rugged":
        report.swept += eliminate(network, threshold=0)
        report.passes.append("eliminate")
        simplify_nodes(network)
        report.passes.append("scc")
    report.literals_after = network.num_literals()
    report.nodes_after = len(network.nodes)
    return report
