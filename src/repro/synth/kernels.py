"""Kernel and co-kernel enumeration (Brayton–McMullen).

A *kernel* of an expression ``f`` is a cube-free quotient of ``f`` by a
cube (the *co-kernel*).  Kernels are the classic source of multi-cube
common divisors in technology-independent synthesis; the paper's SIS
baseline relies on exactly this machinery ("unrestrained factorization
based on kernel extraction yields gates with a high fanout count").
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..network.cubes import Cube, ONE_CUBE, cube_mul
from ..network.sop import Sop
from .division import divide_by_cube


def make_cube_free(f: Sop) -> Tuple[Sop, Cube]:
    """Strip the largest common cube; returns ``(cube_free_part, common)``."""
    if len(f) == 0:
        return f, ONE_CUBE
    common: Optional[set] = None
    for cube in f.cubes:
        if common is None:
            common = set(cube)
        else:
            common &= cube
        if not common:
            break
    common_cube: Cube = frozenset(common or ())
    if not common_cube:
        return f, ONE_CUBE
    stripped = Sop([cube - common_cube for cube in f.cubes])
    return stripped, common_cube


def kernels(f: Sop, max_kernels: int = 0,
            min_cubes: int = 2) -> List[Tuple[Sop, Cube]]:
    """All (kernel, co-kernel) pairs of ``f``.

    ``max_kernels`` bounds enumeration for very wide expressions
    (0 = unbounded); ``min_cubes`` filters out single-cube kernels,
    which cannot save literals as multi-cube divisors.

    The cube-free part of ``f`` itself is included (co-kernel 1) when it
    has at least ``min_cubes`` cubes, per the standard definition of the
    level-n kernel set.
    """
    out: List[Tuple[Sop, Cube]] = []
    seen: Set[Sop] = set()
    literals = sorted({l for cube in f.cubes for l in cube})
    index = {l: i for i, l in enumerate(literals)}
    counts = f.literal_counts()

    def record(kernel: Sop, cokernel: Cube) -> None:
        if len(kernel) >= min_cubes and kernel not in seen:
            seen.add(kernel)
            out.append((kernel, cokernel))

    def recurse(g: Sop, cokernel: Cube, start: int) -> None:
        if max_kernels and len(out) >= max_kernels:
            return
        for i in range(start, len(literals)):
            literal = literals[i]
            if counts.get(literal, 0) < 2:
                continue
            quotient, _ = divide_by_cube(g, frozenset([literal]))
            if len(quotient) < 2:
                continue
            stripped, common = make_cube_free(quotient)
            full_cokernel = cube_mul(cokernel,
                                     cube_mul(frozenset([literal]), common) or common)
            if full_cokernel is None:
                continue
            # Skip duplicates: if the common cube contains a literal with a
            # smaller index, this kernel was (or will be) found earlier.
            if any(index.get(l, len(literals)) < i for l in common):
                continue
            record(stripped, full_cokernel)
            recurse(stripped, full_cokernel, i + 1)
            if max_kernels and len(out) >= max_kernels:
                return

    stripped, common = make_cube_free(f)
    record(stripped, common)
    recurse(stripped, common, 0)
    return out


def level0_kernels(f: Sop, max_kernels: int = 0) -> List[Tuple[Sop, Cube]]:
    """Only the level-0 kernels (kernels with no kernels but themselves).

    These are the cheapest-to-find multi-cube divisors; SIS's fast
    extraction scripts restrict themselves to this set, and so does our
    default optimization pipeline for large networks.
    """
    all_pairs = kernels(f, max_kernels=max_kernels)
    out: List[Tuple[Sop, Cube]] = []
    for kernel, cokernel in all_pairs:
        if is_level0(kernel):
            out.append((kernel, cokernel))
    return out


def is_level0(kernel: Sop) -> bool:
    """True when no literal appears in two or more cubes of ``kernel``."""
    counts = kernel.literal_counts()
    return all(c < 2 for c in counts.values())


def kernel_value(kernel: Sop, uses: int) -> int:
    """Literal savings from extracting ``kernel`` used ``uses`` times.

    Each use replaces the kernel's literals with one new literal; the
    kernel itself must be implemented once.  Standard greedy figure of
    merit (ignores co-kernel sharing refinements).
    """
    k_lits = kernel.num_literals()
    return uses * (k_lits - 1) - k_lits
