"""Network-level common-divisor extraction (SIS ``gkx``/``gcx`` style).

Greedy extraction of multi-cube kernels and multi-literal cubes shared
between nodes: the transformations that minimise factored literal count
and — as the paper stresses — create the *small, widely shared, high
fanout* nodes whose wiring congestion motivates congestion-aware
mapping.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from ..network.boolnet import BooleanNetwork
from ..network.cubes import Cube, lit
from ..network.sop import Sop
from .division import divide, divide_by_cube
from .kernels import kernel_value, level0_kernels

#: Bound on kernels enumerated per node per round (keeps big PLAs tractable).
DEFAULT_MAX_KERNELS_PER_NODE = 40
#: Bound on candidate divisors scored exactly per round.
DEFAULT_MAX_CANDIDATES = 250


def _node_literal_index(network: BooleanNetwork) -> Dict[str, Set[str]]:
    """Map variable name -> set of node names whose SOP mentions it."""
    index: Dict[str, Set[str]] = {}
    for name, node in network.nodes.items():
        for var in node.sop.support():
            index.setdefault(var, set()).add(name)
    return index


def _candidate_nodes(divisor_support: FrozenSet[str],
                     index: Dict[str, Set[str]]) -> Set[str]:
    """Nodes that mention every variable of the divisor (necessary cond.)."""
    result: Optional[Set[str]] = None
    for var in divisor_support:
        nodes = index.get(var, set())
        result = set(nodes) if result is None else (result & nodes)
        if not result:
            return set()
    return result or set()


def extract_one_kernel(network: BooleanNetwork,
                       max_kernels_per_node: int = DEFAULT_MAX_KERNELS_PER_NODE,
                       max_candidates: int = DEFAULT_MAX_CANDIDATES,
                       min_value: int = 1) -> Optional[str]:
    """Extract the single best multi-cube kernel; returns the new node name.

    Returns ``None`` when no kernel reaches ``min_value`` literal
    savings.  ``min_value = 0`` extracts break-even kernels too —
    maximum sharing, the "unrestrained factorization" regime the paper
    attributes SIS's congested netlists to.
    """
    candidates: Dict[Sop, int] = {}
    for name in sorted(network.nodes):
        sop = network.nodes[name].sop
        if len(sop) < 2:
            continue
        for kernel, _ in level0_kernels(sop, max_kernels=max_kernels_per_node):
            if len(kernel) < 2:
                continue
            candidates[kernel] = candidates.get(kernel, 0) + 1
        if len(candidates) >= max_candidates * 4:
            break
    if not candidates:
        return None
    # Score the most promising candidates exactly.
    ranked = sorted(candidates,
                    key=lambda k: (-candidates[k] * k.num_literals(),
                                   k.to_string()))[:max_candidates]
    index = _node_literal_index(network)
    best_kernel: Optional[Sop] = None
    best_value = min_value - 1
    best_users: List[str] = []
    for kernel in ranked:
        users = []
        uses = 0
        for node_name in sorted(_candidate_nodes(kernel.support(), index)):
            q, _ = divide(network.nodes[node_name].sop, kernel)
            if not q.is_zero():
                users.append(node_name)
                uses += len(q)
        value = kernel_value(kernel, uses)
        if value > best_value:
            best_value = value
            best_kernel = kernel
            best_users = users
    if best_kernel is None:
        return None
    return _substitute_divisor(network, best_kernel, best_users)


def extract_one_cube(network: BooleanNetwork,
                     max_candidates: int = DEFAULT_MAX_CANDIDATES,
                     min_value: int = 1) -> Optional[str]:
    """Extract the single best multi-literal common cube."""
    counts: Dict[Cube, int] = {}
    for name in sorted(network.nodes):
        for cube in network.nodes[name].sop.cubes:
            if len(cube) < 2:
                continue
            for sub in _subcubes(cube):
                counts[sub] = counts.get(sub, 0) + 1
    candidates = [c for c, n in counts.items() if n >= 2]
    if not candidates:
        return None
    candidates.sort(key=lambda c: (-counts[c] * (len(c) - 1), sorted(c)))
    index = _node_literal_index(network)
    best_cube: Optional[Cube] = None
    best_value = min_value - 1
    best_users: List[str] = []
    for cube in candidates[:max_candidates]:
        support = frozenset(n for n, _ in cube)
        users = []
        uses = 0
        for node_name in sorted(_candidate_nodes(support, index)):
            q, _ = divide_by_cube(network.nodes[node_name].sop, cube)
            if not q.is_zero():
                users.append(node_name)
                uses += len(q)
        value = uses * (len(cube) - 1) - len(cube)
        if value > best_value:
            best_value = value
            best_cube = cube
            best_users = users
    if best_cube is None:
        return None
    return _substitute_divisor(network, Sop([best_cube]), best_users)


def _subcubes(cube: Cube, max_size: int = 3):
    """Pairs (and the full cube) as candidate common cubes.

    Enumerating all subsets is exponential; pairs plus the cube itself
    capture the bulk of the savings in practice.
    """
    lits = sorted(cube)
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            yield frozenset((lits[i], lits[j]))
    if 2 < len(cube) <= max_size:
        yield cube


def _substitute_divisor(network: BooleanNetwork, divisor: Sop,
                        users: List[str]) -> str:
    """Create a node for ``divisor`` and re-express the users through it."""
    new_name = network.new_name("x")
    network.add_node(new_name, divisor)
    new_literal = lit(new_name, True)
    for node_name in users:
        sop = network.nodes[node_name].sop
        q, r = divide(sop, divisor)
        if q.is_zero():
            continue
        rebuilt = q.mul_cube(frozenset([new_literal])).add(r).remove_scc()
        network.set_function(node_name, rebuilt)
    return new_name


def extract(network: BooleanNetwork, max_rounds: int = 10_000,
            kernels_first: bool = True, min_value: int = 1) -> int:
    """Run greedy kernel + cube extraction to a fixed point.

    Returns the number of new nodes created.  The network is modified in
    place; functions are preserved (tested via simulation).
    ``min_value`` is forwarded to the per-step extractors; 0 enables
    break-even sharing.
    """
    created = 0
    for _ in range(max_rounds):
        name = (extract_one_kernel(network, min_value=min_value)
                if kernels_first else None)
        if name is None:
            name = extract_one_cube(network, min_value=min_value)
        if name is None and not kernels_first:
            name = extract_one_kernel(network, min_value=min_value)
        if name is None:
            break
        created += 1
    return created
