"""Algebraic factoring of SOP expressions into factored-form trees.

Implements the classic ``good_factor`` recursion: pick a divisor (the
best kernel, falling back to the most frequent literal), divide, and
factor quotient / remainder recursively.  The resulting
:class:`Expr` tree is what factored-form literal counting — the cost
function of technology-independent synthesis — operates on, and what
the technology decomposer can lower into base gates.
"""

from __future__ import annotations

from typing import List, Optional

from ..network.cubes import Cube, Literal, lit_str
from ..network.sop import Sop
from .division import divide
from .kernels import kernels, make_cube_free


class Expr:
    """A node of a factored-form expression tree."""

    KIND_LIT = "lit"
    KIND_AND = "and"
    KIND_OR = "or"

    __slots__ = ("kind", "literal", "children")

    def __init__(self, kind: str, literal: Optional[Literal] = None,
                 children: Optional[List["Expr"]] = None):  # noqa: D107
        self.kind = kind
        self.literal = literal
        self.children = children or []

    @classmethod
    def lit(cls, literal: Literal) -> "Expr":
        """A literal leaf."""
        return cls(cls.KIND_LIT, literal=literal)

    @classmethod
    def and_(cls, children: List["Expr"]) -> "Expr":
        """An AND node, flattening nested ANDs and eliding singletons."""
        flat: List[Expr] = []
        for child in children:
            if child.kind == cls.KIND_AND:
                flat.extend(child.children)
            else:
                flat.append(child)
        if len(flat) == 1:
            return flat[0]
        return cls(cls.KIND_AND, children=flat)

    @classmethod
    def or_(cls, children: List["Expr"]) -> "Expr":
        """An OR node, flattening nested ORs and eliding singletons."""
        flat: List[Expr] = []
        for child in children:
            if child.kind == cls.KIND_OR:
                flat.extend(child.children)
            else:
                flat.append(child)
        if len(flat) == 1:
            return flat[0]
        return cls(cls.KIND_OR, children=flat)

    def num_literals(self) -> int:
        """Literal count of the factored form."""
        if self.kind == self.KIND_LIT:
            return 1
        return sum(child.num_literals() for child in self.children)

    def to_sop(self) -> Sop:
        """Flatten back to sum-of-products (for verification)."""
        if self.kind == self.KIND_LIT:
            assert self.literal is not None
            return Sop.literal(*self.literal)
        if self.kind == self.KIND_AND:
            result = Sop.one()
            for child in self.children:
                result = result.mul(child.to_sop())
            return result
        result = Sop.zero()
        for child in self.children:
            result = result.add(child.to_sop())
        return result

    def to_string(self) -> str:
        """Render with explicit parentheses, e.g. ``a (b + c')``."""
        if self.kind == self.KIND_LIT:
            assert self.literal is not None
            return lit_str(self.literal)
        if self.kind == self.KIND_AND:
            parts = []
            for child in self.children:
                text = child.to_string()
                if child.kind == self.KIND_OR:
                    text = f"({text})"
                parts.append(text)
            return " ".join(parts)
        return " + ".join(child.to_string() for child in self.children)

    def __repr__(self) -> str:
        return f"Expr({self.to_string()!r})"


def _cube_expr(cube: Cube) -> Expr:
    """Factored form of a single cube."""
    lits = [Expr.lit(l) for l in sorted(cube)]
    if not lits:
        raise ValueError("cannot build an expression for the constant cube")
    return Expr.and_(lits)


def _best_literal(f: Sop) -> Optional[Literal]:
    """The literal appearing in the most cubes (ties broken lexically)."""
    counts = f.literal_counts()
    best: Optional[Literal] = None
    best_count = 1
    for literal in sorted(counts):
        if counts[literal] > best_count:
            best_count = counts[literal]
            best = literal
    return best


def _choose_divisor(f: Sop, max_kernels: int) -> Optional[Sop]:
    """Pick a divisor for good_factor: best-value kernel, else best literal."""
    pairs = kernels(f, max_kernels=max_kernels)
    best: Optional[Sop] = None
    best_lits = 0
    for kernel, _ in pairs:
        if kernel == f:
            continue
        lits = kernel.num_literals()
        if lits > best_lits:
            best_lits = lits
            best = kernel
    if best is not None:
        return best
    literal = _best_literal(f)
    if literal is not None:
        return Sop.literal(*literal)
    return None


def factor(f: Sop, max_kernels: int = 50) -> Expr:
    """Factor ``f`` into an :class:`Expr` tree (good_factor heuristic).

    Raises :class:`ValueError` for the constants, which have no factored
    form over literals.
    """
    if f.is_zero() or f.is_one():
        raise ValueError("cannot factor a constant function")
    f = f.remove_scc()
    if len(f) == 1:
        return _cube_expr(next(iter(f.cubes)))
    divisor = _choose_divisor(f, max_kernels)
    if divisor is None or divisor == f:
        return Expr.or_([_cube_expr(c) for c in sorted(f.cubes, key=sorted)])
    quotient, remainder = divide(f, divisor)
    if quotient.is_zero():
        return Expr.or_([_cube_expr(c) for c in sorted(f.cubes, key=sorted)])
    # f = quotient * divisor + remainder, recursively factored.
    q_stripped, q_common = make_cube_free(quotient)
    parts: List[Expr] = []
    if q_common:
        parts.append(_cube_expr(q_common))
    if not q_stripped.is_one():
        parts.append(factor(q_stripped, max_kernels))
    parts.append(factor(divisor, max_kernels))
    product = Expr.and_(parts) if parts else _cube_expr(q_common)
    if remainder.is_zero():
        return product
    return Expr.or_([product, factor(remainder, max_kernels)])


def factored_literal_count(f: Sop, max_kernels: int = 50) -> int:
    """Literal count of the factored form (constants count as zero)."""
    if f.is_zero() or f.is_one():
        return 0
    return factor(f, max_kernels).num_literals()
