"""Lightweight two-level minimisation (an ESPRESSO-lite).

Full ESPRESSO is out of scope; this module implements the classic cheap
subset that covers the bulk of the benefit on random-logic SOPs:

* iterated distance-1 cube merging  (``a b + a b' -> a``),
* single-cube containment removal,
* redundant-cube elimination by simulation-checked removal for small
  supports (a correct, bounded irredundant step).

All transformations preserve the function exactly.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Set

from ..network.boolnet import BooleanNetwork
from ..network.cubes import Cube
from ..network.sop import Sop

#: Support-size bound for the exact redundancy check.
IRREDUNDANT_SUPPORT_LIMIT = 14


def _merge_pair(a: Cube, b: Cube) -> Optional[Cube]:
    """Merge two cubes differing in exactly one variable's phase.

    ``a x + a x' == a`` — only applies when the cubes agree on every
    other literal.
    """
    if len(a) != len(b):
        return None
    diff = a ^ b
    if len(diff) != 2:
        return None
    l1, l2 = sorted(diff)
    if l1[0] != l2[0] or l1[1] == l2[1]:
        return None
    return a - {l1, l2}


def merge_cubes(sop: Sop) -> Sop:
    """Iterated distance-1 merging until a fixed point."""
    cubes: Set[Cube] = set(sop.cubes)
    changed = True
    while changed:
        changed = False
        cube_list = sorted(cubes, key=lambda c: (len(c), sorted(c)))
        for a, b in combinations(cube_list, 2):
            if a not in cubes or b not in cubes:
                continue
            merged = _merge_pair(a, b)
            if merged is not None:
                cubes.discard(a)
                cubes.discard(b)
                cubes.add(merged)
                changed = True
    return Sop(cubes).remove_scc()


def _covers(sop: Sop, cube: Cube) -> bool:
    """True when ``sop`` covers every minterm of ``cube`` (exact, bounded).

    Decides tautology of the cofactor ``sop / cube`` by recursive Shannon
    splitting; correct for any support size, used here only for supports
    up to :data:`IRREDUNDANT_SUPPORT_LIMIT`.
    """
    cofactored = sop
    for literal in cube:
        cofactored = cofactored.cofactor(literal)
    return _is_tautology(cofactored)


def _is_tautology(sop: Sop) -> bool:
    """Exact tautology check by recursive splitting."""
    if sop.is_one():
        return True
    if sop.is_zero():
        return False
    counts = sop.literal_counts()
    if not counts:
        return False
    # Split on the most frequent variable.
    var = max(counts, key=lambda l: (counts[l], l))[0]
    pos = sop.cofactor((var, True))
    neg = sop.cofactor((var, False))
    return _is_tautology(pos) and _is_tautology(neg)


def irredundant(sop: Sop) -> Sop:
    """Remove cubes covered by the rest of the cover (exact, bounded).

    Falls back to the identity for supports beyond
    :data:`IRREDUNDANT_SUPPORT_LIMIT` to keep worst-case cost bounded.
    """
    if len(sop.support()) > IRREDUNDANT_SUPPORT_LIMIT:
        return sop
    cubes = sorted(sop.cubes, key=lambda c: (-len(c), sorted(c)))
    kept: List[Cube] = list(cubes)
    for cube in cubes:
        rest = Sop([c for c in kept if c != cube])
        if rest and _covers(rest, cube):
            kept = [c for c in kept if c != cube]
    return Sop(kept)


def minimize_sop(sop: Sop) -> Sop:
    """The full lite pipeline: merge, contain, irredundant."""
    out = merge_cubes(sop)
    out = irredundant(out)
    return out.remove_scc()


def minimize_node(network: BooleanNetwork, name: str) -> int:
    """Minimise one node in place; returns literals saved."""
    before = network.nodes[name].sop
    after = minimize_sop(before)
    network.set_function(name, after)
    return before.num_literals() - after.num_literals()


def minimize_network(network: BooleanNetwork) -> int:
    """Minimise every node; returns total literals saved."""
    return sum(minimize_node(network, name) for name in sorted(network.nodes))
