"""Technology-independent synthesis: the SIS-equivalent substrate.

Algebraic division, kernel enumeration, factoring, network-level
common-divisor extraction, cleanup sweeps and optimization scripts.
"""

from .eliminate import eliminate, eliminate_node, node_value
from .division import divide, divide_by_cube, is_algebraic_divisor
from .espresso import irredundant, merge_cubes, minimize_network, minimize_sop
from .extract import extract, extract_one_cube, extract_one_kernel
from .factor import Expr, factor, factored_literal_count
from .kernels import kernel_value, kernels, level0_kernels, make_cube_free
from .optimize import OptimizeReport, optimize
from .sweep import simplify_nodes, sweep

__all__ = [
    "Expr",
    "OptimizeReport",
    "divide",
    "eliminate",
    "eliminate_node",
    "divide_by_cube",
    "extract",
    "extract_one_cube",
    "extract_one_kernel",
    "factor",
    "factored_literal_count",
    "irredundant",
    "is_algebraic_divisor",
    "kernel_value",
    "kernels",
    "level0_kernels",
    "make_cube_free",
    "merge_cubes",
    "minimize_network",
    "minimize_sop",
    "node_value",
    "optimize",
    "simplify_nodes",
    "sweep",
]
