"""Algebraic (weak) division of sum-of-products expressions.

``divide(f, d) -> (q, r)`` with ``f == q*d + r`` under the algebraic
model (no Boolean simplification), the primitive on which factoring and
common-divisor extraction are built.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..network.cubes import Cube, cube_divide, cube_mul
from ..network.sop import Sop


def divide_by_cube(f: Sop, d: Cube) -> Tuple[Sop, Sop]:
    """Divide ``f`` by the single cube ``d``; returns ``(quotient, remainder)``."""
    quotient: List[Cube] = []
    remainder: List[Cube] = []
    for cube in f.cubes:
        reduced = cube_divide(cube, d)
        if reduced is None:
            remainder.append(cube)
        else:
            quotient.append(reduced)
    return Sop(quotient), Sop(remainder)


def divide(f: Sop, d: Sop) -> Tuple[Sop, Sop]:
    """Weak division ``f / d``; returns ``(quotient, remainder)``.

    The classic algorithm: for each divisor cube ``d_i`` collect the set
    of quotient cubes of the dividend cubes divisible by ``d_i``; the
    quotient is the intersection of those sets; the remainder is
    ``f - q*d``.  Division by zero or by the constant-1 is handled
    specially (``f/1 == f`` with empty remainder).
    """
    if d.is_zero():
        return Sop.zero(), f
    if d.is_one():
        return f, Sop.zero()
    quotient_set: Optional[Set[Cube]] = None
    for d_cube in d.cubes:
        candidates: Set[Cube] = set()
        for f_cube in f.cubes:
            reduced = cube_divide(f_cube, d_cube)
            if reduced is not None:
                candidates.add(reduced)
        if quotient_set is None:
            quotient_set = candidates
        else:
            quotient_set &= candidates
        if not quotient_set:
            return Sop.zero(), f
    assert quotient_set is not None
    q = Sop(quotient_set)
    product_cubes: Set[Cube] = set()
    for q_cube in q.cubes:
        for d_cube in d.cubes:
            merged = cube_mul(q_cube, d_cube)
            if merged is not None:
                product_cubes.add(merged)
    remainder = Sop(f.cubes - product_cubes)
    return q, remainder


def is_algebraic_divisor(f: Sop, d: Sop) -> bool:
    """True when ``d`` divides ``f`` with a nonzero quotient."""
    q, _ = divide(f, d)
    return not q.is_zero()
