"""Network cleanup passes: constant propagation and buffer collapsing.

The SIS ``sweep`` equivalent.  These passes keep the network canonical
between the heavier algebraic rewrites: constants are propagated into
fanouts, single-literal nodes (buffers / inverters at the network level)
are collapsed, and dead logic is removed.
"""

from __future__ import annotations

from typing import List, Optional

from ..network.boolnet import BooleanNetwork
from ..network.cubes import Literal, lit, lit_negate
from ..network.sop import Sop


def _substitute_constant(sop: Sop, name: str, value: bool) -> Sop:
    """Cofactor ``sop`` against ``name == value``."""
    return sop.cofactor(lit(name, value)).remove_scc()


def _substitute_literal(sop: Sop, name: str, target: Literal) -> Sop:
    """Rewrite every occurrence of signal ``name`` with ``target``.

    A positive occurrence becomes ``target``; a complemented occurrence
    becomes the complement of ``target``.
    """
    new_cubes = []
    for cube in sop.cubes:
        lits = []
        for literal in cube:
            if literal[0] == name:
                lits.append(target if literal[1] else lit_negate(target))
            else:
                lits.append(literal)
        new_cubes.append(lits)
    return Sop.from_cubes(new_cubes).remove_scc()


def sweep(network: BooleanNetwork) -> int:
    """Propagate constants, collapse single-literal nodes, drop dead logic.

    Returns the number of nodes eliminated.  Primary outputs driven by a
    collapsed node are redirected through a surviving buffer node so the
    output name set never changes.
    """
    eliminated = 0
    changed = True
    while changed:
        changed = False
        for name in list(network.nodes):
            node = network.nodes.get(name)
            if node is None:
                continue
            sop = node.sop
            is_constant = sop.is_zero() or sop.is_one()
            single = _single_literal(sop)
            if not is_constant and single is None:
                continue
            if name in network.outputs:
                # Keep the node: outputs must stay named.  A constant
                # output stays as an explicit constant node; a buffer
                # output is retained only if collapsing would alias two
                # output names.
                if is_constant or single[0] in network.outputs:
                    continue
            users = _users_of(network, name)
            for user in users:
                user_node = network.nodes[user]
                if is_constant:
                    network.set_function(
                        user, _substitute_constant(user_node.sop, name, sop.is_one()))
                else:
                    network.set_function(
                        user, _substitute_literal(user_node.sop, name, single))
            if name in network.outputs:
                continue
            network.remove_node(name)
            eliminated += 1
            changed = True
    eliminated += network.remove_dangling()
    return eliminated


def _single_literal(sop: Sop) -> Optional[Literal]:
    """The literal of a one-cube/one-literal SOP, else ``None``."""
    if len(sop) != 1:
        return None
    cube = next(iter(sop.cubes))
    if len(cube) != 1:
        return None
    return next(iter(cube))


def _users_of(network: BooleanNetwork, name: str) -> List[str]:
    """Nodes whose SOP mentions signal ``name``."""
    return sorted(n for n, node in network.nodes.items()
                  if name in node.sop.support())


def simplify_nodes(network: BooleanNetwork) -> int:
    """Apply single-cube-containment minimisation to every node.

    Returns the number of literals removed.  This is the cheap slice of
    SIS ``simplify``; full ESPRESSO-style two-level minimisation lives in
    :func:`repro.synth.espresso.minimize_node` and is applied by the
    higher-effort scripts.
    """
    saved = 0
    for name in network.nodes:
        before = network.nodes[name].sop
        after = before.remove_scc()
        saved += before.num_literals() - after.num_literals()
        network.set_function(name, after)
    return saved
