"""A miniature Liberty-like text format for cell libraries.

Real Liberty is a large grammar; this module implements the small,
self-consistent subset this project needs so libraries can be dumped,
versioned and re-loaded.  Patterns are stored in the compact
``NAND(INV(A), B)`` form produced by
:meth:`repro.library.patterns.PatternNode.to_string`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..errors import ParseError
from .cache import cached_library, content_key
from .cell import CellLibrary, LibCell
from .patterns import PatternNode, leaf, pinv, pnand


def dump_library(library: CellLibrary) -> str:
    """Serialise a library to the mini-liberty text form."""
    lines: List[str] = [f'library ("{library.name}") {{',
                        f"  row_height : {library.row_height};"]
    for cell in library.cells():
        lines.append(f'  cell ("{cell.name}") {{')
        lines.append(f"    area : {cell.area};")
        lines.append(f"    intrinsic : {cell.intrinsic_delay};")
        lines.append(f"    resistance : {cell.drive_resistance};")
        for pattern in cell.patterns:
            lines.append(f"    pattern : {pattern.to_string()};")
        for pin in cell.input_pins:
            lines.append(f'    pin ("{pin}") {{ cap : {cell.pin_caps[pin]}; }}')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def parse_pattern(text: str) -> PatternNode:
    """Parse the compact pattern form back into a tree."""
    text = text.strip()
    node, rest = _parse_pattern(text)
    if rest.strip():
        raise ParseError(f"trailing text after pattern: {rest!r}")
    return node


def _parse_pattern(text: str) -> Tuple[PatternNode, str]:
    text = text.lstrip()
    if text.startswith("INV("):
        child, rest = _parse_pattern(text[len("INV("):])
        rest = rest.lstrip()
        if not rest.startswith(")"):
            raise ParseError(f"expected ')' in pattern near {rest!r}")
        return pinv(child), rest[1:]
    if text.startswith("NAND("):
        left, rest = _parse_pattern(text[len("NAND("):])
        rest = rest.lstrip()
        if not rest.startswith(","):
            raise ParseError(f"expected ',' in pattern near {rest!r}")
        right, rest = _parse_pattern(rest[1:])
        rest = rest.lstrip()
        if not rest.startswith(")"):
            raise ParseError(f"expected ')' in pattern near {rest!r}")
        return pnand(left, right), rest[1:]
    match = re.match(r"[A-Za-z_][A-Za-z_0-9]*", text)
    if not match:
        raise ParseError(f"expected a pin name near {text!r}")
    return leaf(match.group(0)), text[match.end():]


def load_library(text: str) -> CellLibrary:
    """Parse the mini-liberty text form back into a :class:`CellLibrary`.

    Content-keyed memo: loading the same text twice in one process
    (any path, any caller) returns the same immutable library instance
    (see :mod:`repro.library.cache`).  Parse errors are raised fresh
    each time and never cached.
    """
    return cached_library(content_key(text), lambda: _load_library(text))


def _load_library(text: str) -> CellLibrary:
    lib_match = re.search(r'library\s*\(\s*"([^"]+)"\s*\)', text)
    if not lib_match:
        raise ParseError("missing library header")
    name = lib_match.group(1)
    row_match = re.search(r"row_height\s*:\s*([0-9.eE+-]+)\s*;", text)
    row_height = float(row_match.group(1)) if row_match else 5.2

    cells: List[LibCell] = []
    cell_re = re.compile(r'cell\s*\(\s*"([^"]+)"\s*\)\s*\{')
    positions = [(m.start(), m.end(), m.group(1)) for m in cell_re.finditer(text)]
    for i, (_, body_start, cell_name) in enumerate(positions):
        body_end = positions[i + 1][0] if i + 1 < len(positions) else len(text)
        body = text[body_start:body_end]
        cells.append(_parse_cell(cell_name, body))
    if not cells:
        raise ParseError("library has no cells")
    return CellLibrary(name, cells, row_height=row_height)


def _parse_cell(name: str, body: str) -> LibCell:
    def scalar(key: str) -> float:
        match = re.search(rf"{key}\s*:\s*([0-9.eE+-]+)\s*;", body)
        if not match:
            raise ParseError(f"cell {name!r}: missing {key}")
        return float(match.group(1))

    patterns = [parse_pattern(m.group(1))
                for m in re.finditer(r"pattern\s*:\s*([^;]+);", body)]
    if not patterns:
        raise ParseError(f"cell {name!r}: no pattern")
    pin_caps: Dict[str, float] = {}
    for m in re.finditer(r'pin\s*\(\s*"([^"]+)"\s*\)\s*\{\s*cap\s*:\s*'
                         r"([0-9.eE+-]+)\s*;\s*\}", body):
        pin_caps[m.group(1)] = float(m.group(2))
    return LibCell(name=name, patterns=tuple(patterns), area=scalar("area"),
                   intrinsic_delay=scalar("intrinsic"),
                   drive_resistance=scalar("resistance"), pin_caps=pin_caps)
