"""``corelib018`` — the synthetic 0.18 µm standard-cell library.

A stand-in for STMicroelectronics' proprietary CORELIB8DHS 2.0 used in
the paper.  Cell areas are calibrated so the paper's Figure 1 example
reproduces *exactly*:

* minimum-area mapping  = NAND3 + AOI21 + 2×INV = 53.248 µm²
* congestion mapping    = 2×OR2 + 2×NAND2 + INV = 65.536 µm²

Delay numbers are 0.18 µm-class (FO4 ≈ 65–90 ps); resistances are in
kΩ, capacitances in pF, so ``R * C`` is in ns.  Row height is 5.2 µm.
"""

from __future__ import annotations

from typing import List

from .cache import cached_library
from .cell import CellLibrary, LibCell
from .patterns import PatternNode, leaf, pinv, pnand

ROW_HEIGHT_UM = 5.2

#: Build-memo content key: the cell definitions live in this module's
#: code, which cannot change within one process, so the builder name
#: plus a format version fully determines the built library.
_BUILD_KEY = "builtin:corelib018/v1"


def _cell(name: str, patterns: List[PatternNode], area: float,
          intrinsic: float, resistance: float, cin: float) -> LibCell:
    """Uniform-input-cap cell constructor."""
    pins = {p: cin for p in patterns[0].leaves()}
    return LibCell(name=name, patterns=tuple(patterns), area=area,
                   intrinsic_delay=intrinsic, drive_resistance=resistance,
                   pin_caps=pins)


def _nand3(a: str, b: str, c: str) -> PatternNode:
    """NOT(a b c) = NAND2(AND2(a, b), c)."""
    return pnand(pinv(pnand(leaf(a), leaf(b))), leaf(c))


def _nand3_chain(a: str, b: str, c: str) -> PatternNode:
    """Same function, right-leaning shape."""
    return pnand(leaf(a), pinv(pnand(leaf(b), leaf(c))))


def _or2(a: str, b: str) -> PatternNode:
    """a + b = NAND2(a', b')."""
    return pnand(pinv(leaf(a)), pinv(leaf(b)))


def _and2(a: str, b: str) -> PatternNode:
    """a b = INV(NAND2(a, b))."""
    return pinv(pnand(leaf(a), leaf(b)))


def build_corelib018() -> CellLibrary:
    """The full synthetic library (memoized; see :mod:`.cache`).

    The library is immutable, so every in-process caller shares one
    instance — repeated builds (serve jobs, benches, tests) are
    dictionary hits counted in ``library.build_hits``.
    """
    return cached_library(_BUILD_KEY, _build_corelib018)


def _build_corelib018() -> CellLibrary:
    """Construct the library from scratch (the memoized builder)."""
    cells: List[LibCell] = []

    # Inverters and buffers at several drive strengths.
    cells.append(_cell("INV_X1", [pinv(leaf("A"))], 6.656, 0.024, 6.0, 0.0020))
    cells.append(_cell("INV_X2", [pinv(leaf("A"))], 9.984, 0.026, 3.0, 0.0040))
    cells.append(_cell("INV_X4", [pinv(leaf("A"))], 16.640, 0.028, 1.5, 0.0080))
    cells.append(_cell("BUF_X1", [pinv(pinv(leaf("A")))], 9.984, 0.052, 3.6, 0.0018))
    cells.append(_cell("BUF_X2", [pinv(pinv(leaf("A")))], 13.312, 0.056, 1.8, 0.0020))

    # NANDs.
    cells.append(_cell("NAND2_X1", [pnand(leaf("A"), leaf("B"))],
                       9.984, 0.030, 6.5, 0.0022))
    cells.append(_cell("NAND2_X2", [pnand(leaf("A"), leaf("B"))],
                       13.312, 0.032, 3.2, 0.0044))
    cells.append(_cell("NAND3_X1",
                       [_nand3("A", "B", "C"), _nand3_chain("A", "B", "C")],
                       16.640, 0.038, 7.0, 0.0024))
    cells.append(_cell("NAND4_X1",
                       [pnand(_and2("A", "B"), _and2("C", "D")),
                        pnand(pinv(pnand(pinv(pnand(leaf("A"), leaf("B"))),
                                         leaf("C"))), leaf("D"))],
                       23.296, 0.048, 7.5, 0.0026))

    # NORs.
    cells.append(_cell("NOR2_X1", [pinv(pnand(pinv(leaf("A")), pinv(leaf("B"))))],
                       9.984, 0.034, 8.0, 0.0022))
    cells.append(_cell("NOR3_X1",
                       [pinv(pnand(pinv(pnand(pinv(leaf("A")), pinv(leaf("B")))),
                                   pinv(leaf("C"))))],
                       16.640, 0.044, 9.0, 0.0024))

    # AND / OR.
    cells.append(_cell("AND2_X1", [_and2("A", "B")], 13.312, 0.056, 4.0, 0.0020))
    cells.append(_cell("AND3_X1",
                       [pinv(_nand3("A", "B", "C")),
                        pinv(_nand3_chain("A", "B", "C"))],
                       19.968, 0.062, 4.2, 0.0022))
    # OR2 area calibrated to the paper's Figure 1 (see module docstring).
    cells.append(_cell("OR2_X1", [_or2("A", "B")], 19.456, 0.060, 4.5, 0.0020))
    cells.append(_cell("OR3_X1",
                       [pnand(pinv(pnand(pinv(leaf("A")), pinv(leaf("B")))),
                              pinv(leaf("C")))],
                       26.624, 0.068, 4.8, 0.0022))

    # AOI / OAI complex gates.
    cells.append(_cell("AOI21_X1",
                       [pinv(pnand(pnand(leaf("A"), leaf("B")), pinv(leaf("C"))))],
                       23.296, 0.042, 7.8, 0.0023))
    cells.append(_cell("AOI22_X1",
                       [pinv(pnand(pnand(leaf("A"), leaf("B")),
                                   pnand(leaf("C"), leaf("D"))))],
                       26.624, 0.048, 8.2, 0.0024))
    cells.append(_cell("OAI21_X1",
                       [pnand(_or2("A", "B"), leaf("C"))],
                       23.296, 0.044, 7.8, 0.0023))
    cells.append(_cell("OAI22_X1",
                       [pnand(_or2("A", "B"), _or2("C", "D"))],
                       26.624, 0.050, 8.2, 0.0024))

    # AO / OA non-inverting complex gates.
    cells.append(_cell("AO21_X1",
                       [pnand(pnand(leaf("A"), leaf("B")), pinv(leaf("C")))],
                       26.624, 0.058, 4.6, 0.0022))
    cells.append(_cell("OA21_X1",
                       [pinv(pnand(_or2("A", "B"), leaf("C")))],
                       26.624, 0.060, 4.6, 0.0022))

    return CellLibrary("corelib018", cells, row_height=ROW_HEIGHT_UM)


#: Module-level singleton; the library is immutable so sharing is safe.
CORELIB018 = build_corelib018()
