"""Standard-cell and cell-library data model.

Cells carry everything the mapper, placer and timer consume:

* one or more read-once pattern trees over the base functions,
* the logic function (derived from the first pattern),
* area in µm² (the mapper's AREA term and the placer's footprint),
* a linear delay model: ``delay = intrinsic + drive_resistance * load``
  (ns, kΩ, pF), plus per-input-pin capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import LibraryError
from ..network.sop import Sop
from .patterns import PatternNode, pattern_to_sop


@dataclass(frozen=True)
class LibCell:
    """One library cell."""

    name: str
    patterns: Tuple[PatternNode, ...]
    area: float
    intrinsic_delay: float
    drive_resistance: float
    pin_caps: Dict[str, float]
    output: str = "Y"

    def __post_init__(self) -> None:  # noqa: D105
        if not self.patterns:
            raise LibraryError(f"cell {self.name!r} has no pattern")
        for pattern in self.patterns:
            pattern.check()
        pins = sorted(self.patterns[0].leaves())
        for pattern in self.patterns[1:]:
            if sorted(pattern.leaves()) != pins:
                raise LibraryError(
                    f"cell {self.name!r}: patterns disagree on pin set")
            if pattern_to_sop(pattern) != self.function:
                raise LibraryError(
                    f"cell {self.name!r}: patterns disagree on function")
        missing = [p for p in pins if p not in self.pin_caps]
        if missing:
            raise LibraryError(
                f"cell {self.name!r}: missing pin capacitance for {missing}")
        if self.area <= 0:
            raise LibraryError(f"cell {self.name!r}: non-positive area")

    @property
    def function(self) -> Sop:
        """Logic function over formal pin names (from the first pattern)."""
        return pattern_to_sop(self.patterns[0])

    @property
    def input_pins(self) -> List[str]:
        """Sorted formal input pin names."""
        return sorted(self.patterns[0].leaves())

    @property
    def num_inputs(self) -> int:
        """Input pin count."""
        return len(self.patterns[0].leaves())

    def input_cap(self, pin: str) -> float:
        """Capacitance (pF) of one input pin."""
        return self.pin_caps[pin]

    def delay(self, load: float) -> float:
        """Pin-to-output delay (ns) for the given load (pF)."""
        return self.intrinsic_delay + self.drive_resistance * load

    def __repr__(self) -> str:
        return f"LibCell({self.name}, area={self.area}, pins={self.input_pins})"


class CellLibrary:
    """A named collection of :class:`LibCell` objects."""

    def __init__(self, name: str, cells: Sequence[LibCell],
                 row_height: float = 5.2):  # noqa: D107
        self.name = name
        self.row_height = row_height
        self._cells: Dict[str, LibCell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise LibraryError(f"duplicate cell name {cell.name!r}")
            self._cells[cell.name] = cell
        if not self._cells:
            raise LibraryError("library has no cells")
        self._inverter = self._find_inverter()
        self._base_nand = self._find_base_nand()

    def _find_inverter(self) -> LibCell:
        candidates = [c for c in self._cells.values()
                      if c.num_inputs == 1 and c.patterns[0].num_gates() == 1]
        if not candidates:
            raise LibraryError("library has no inverter cell")
        return min(candidates, key=lambda c: (c.area, c.name))

    def _find_base_nand(self) -> LibCell:
        for cell in sorted(self._cells.values(), key=lambda c: (c.area, c.name)):
            pat = cell.patterns[0]
            if pat.kind == "nand2" and pat.num_gates() == 1:
                return cell
        raise LibraryError("library has no two-input NAND cell")

    def cell(self, name: str) -> LibCell:
        """Look up a cell by name."""
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(f"unknown cell {name!r}") from None

    def cells(self) -> List[LibCell]:
        """All cells, sorted by name."""
        return [self._cells[n] for n in sorted(self._cells)]

    def cell_names(self) -> List[str]:
        """Sorted cell names."""
        return sorted(self._cells)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def inverter(self) -> LibCell:
        """The smallest single-inverter cell (used for phase fixes)."""
        return self._inverter

    @property
    def base_nand(self) -> LibCell:
        """The smallest plain NAND2 cell (fallback cover)."""
        return self._base_nand

    def cell_width(self, name: str) -> float:
        """Placement footprint width (µm) of a cell: area / row height."""
        return self.cell(name).area / self.row_height

    def max_pattern_depth(self) -> int:
        """Deepest pattern in the library (bounds matcher recursion)."""
        return max(p.depth() for c in self._cells.values() for p in c.patterns)

    def __repr__(self) -> str:
        return f"CellLibrary({self.name!r}, {len(self)} cells)"
