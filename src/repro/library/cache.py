"""Content-keyed, module-level memo for library construction.

Building a :class:`~repro.library.cell.CellLibrary` is not free: every
cell's patterns are checked, SOPs are derived and cross-validated, and
the inverter/base-NAND lookups are resolved.  One-shot CLI runs paid
that once per process and moved on; a long-lived engine (``repro
serve``), the benches and the test suite all rebuild the *same*
library many times in one process.  This memo makes any repeated
in-process build a dictionary hit.

The memo is keyed by a **content key** — a string that fully determines
the built library:

* :func:`repro.library.liberty.load_library` keys on the SHA-256 of the
  liberty text (two paths with identical content share one build);
* :func:`repro.library.corelib.build_corelib018` keys on its builder
  name plus a format version (the definitions are code, which cannot
  change within one process).

Libraries are immutable (frozen cells, read-only lookups), so handing
every caller the same instance is safe — and is exactly what lets the
matcher/cover memos keyed on library identity compose across callers.

``library.build_hits`` / ``library.build_misses`` are surfaced as a
:class:`~repro.obs.registry.StatsRegistry` snapshot via
:func:`library_build_stats` (kind ``work``: warm processes legitimately
differ from cold ones).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Dict

from ..obs import StatsRegistry
from .cell import CellLibrary

__all__ = ["cached_library", "clear_library_cache", "content_key",
           "library_build_stats"]

_memo: Dict[str, CellLibrary] = {}
_hits = 0
_misses = 0
_lock = threading.Lock()


def content_key(text: str) -> str:
    """SHA-256 content key for text-defined libraries (liberty source)."""
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def cached_library(key: str, builder: Callable[[], CellLibrary]
                   ) -> CellLibrary:
    """The library for ``key``, building it with ``builder`` on a miss.

    ``key`` must fully determine the built library's content (see the
    module docstring); a failed build stores nothing, so transient
    errors never poison the memo.
    """
    global _hits, _misses
    with _lock:
        hit = _memo.get(key)
        if hit is not None:
            _hits += 1
            return hit
    built = builder()
    with _lock:
        # A racing builder may have landed first; keep the incumbent so
        # every caller shares one instance.
        incumbent = _memo.setdefault(key, built)
        _misses += 1
    return incumbent


def library_build_stats() -> StatsRegistry:
    """Snapshot of the process-wide build memo counters.

    ``library.build_hits`` / ``library.build_misses`` (kind ``work``)
    plus ``library.cached`` (kind ``env``, the number of distinct
    libraries held).
    """
    stats = StatsRegistry()
    with _lock:
        stats.work("library.build_hits", _hits)
        stats.work("library.build_misses", _misses)
        stats.env("library.cached", len(_memo))
    return stats


def clear_library_cache() -> None:
    """Drop the memo and zero the counters (test isolation)."""
    global _hits, _misses
    with _lock:
        _memo.clear()
        _hits = 0
        _misses = 0
