"""Pattern trees: library cells expressed over the base functions.

Technology mapping matches library cells structurally against the
subject graph, so every cell carries one or more *pattern trees* built
from the same base functions the subject graph uses (two-input NANDs
and inverters).  Leaves name the cell's formal input pins; each pin
appears exactly once (read-once patterns — the precondition for tree
matching, satisfied by every cell in a DAGON-style library).

The cell's logic function is *derived* from its pattern
(:func:`pattern_to_sop`), which makes pattern/function consistency true
by construction and testable for multi-pattern cells.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import LibraryError
from ..network.sop import Sop

LEAF = "leaf"
P_INV = "inv"
P_NAND = "nand2"


class PatternNode:
    """A node of a pattern tree (LEAF, INV or NAND2)."""

    __slots__ = ("kind", "pin", "children")

    def __init__(self, kind: str, pin: Optional[str] = None,
                 children: Optional[List["PatternNode"]] = None):  # noqa: D107
        self.kind = kind
        self.pin = pin
        self.children = children or []

    def leaves(self) -> List[str]:
        """Pin names in left-to-right order."""
        if self.kind == LEAF:
            assert self.pin is not None
            return [self.pin]
        out: List[str] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def num_gates(self) -> int:
        """Base gates in the pattern (LEAF nodes excluded)."""
        if self.kind == LEAF:
            return 0
        return 1 + sum(child.num_gates() for child in self.children)

    def depth(self) -> int:
        """Gate depth of the pattern."""
        if self.kind == LEAF:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def check(self) -> None:
        """Validate arity and the read-once property."""
        if self.kind == LEAF:
            if self.pin is None:
                raise LibraryError("leaf pattern node without a pin name")
        elif self.kind == P_INV:
            if len(self.children) != 1:
                raise LibraryError("INV pattern node needs exactly one child")
        elif self.kind == P_NAND:
            if len(self.children) != 2:
                raise LibraryError("NAND2 pattern node needs exactly two children")
        else:
            raise LibraryError(f"unknown pattern node kind {self.kind!r}")
        for child in self.children:
            child.check()
        leaves = self.leaves()
        if len(leaves) != len(set(leaves)):
            raise LibraryError(f"pattern is not read-once: {leaves}")

    def to_string(self) -> str:
        """Compact textual form, e.g. ``NAND(INV(A), B)``."""
        if self.kind == LEAF:
            return str(self.pin)
        if self.kind == P_INV:
            return f"INV({self.children[0].to_string()})"
        return f"NAND({self.children[0].to_string()}, {self.children[1].to_string()})"

    def __repr__(self) -> str:
        return f"PatternNode({self.to_string()})"


def leaf(pin: str) -> PatternNode:
    """A leaf bound to formal pin ``pin``."""
    return PatternNode(LEAF, pin=pin)


def pinv(child: PatternNode) -> PatternNode:
    """An inverter pattern node."""
    return PatternNode(P_INV, children=[child])


def pnand(left: PatternNode, right: PatternNode) -> PatternNode:
    """A two-input NAND pattern node."""
    return PatternNode(P_NAND, children=[left, right])


def pattern_to_sop(node: PatternNode) -> Sop:
    """The logic function of a pattern tree, as an SOP over pin names.

    Complementation uses De Morgan expansion; fine for the small
    pattern sizes of a standard-cell library.
    """
    pos, _ = _sop_pair(node)
    return pos


def _sop_pair(node: PatternNode) -> Tuple[Sop, Sop]:
    """(function, complement) of a pattern subtree."""
    if node.kind == LEAF:
        assert node.pin is not None
        return (Sop.literal(node.pin, True), Sop.literal(node.pin, False))
    if node.kind == P_INV:
        pos, neg = _sop_pair(node.children[0])
        return neg, pos
    lpos, lneg = _sop_pair(node.children[0])
    rpos, rneg = _sop_pair(node.children[1])
    # NAND: out = (l & r)', out' = l & r
    out_neg = lpos.mul(rpos).remove_scc()
    out_pos = lneg.add(rneg).remove_scc()
    return out_pos, out_neg
