"""Standard-cell library substrate: cells, pattern trees, corelib018."""

from .cache import (
    cached_library,
    clear_library_cache,
    content_key,
    library_build_stats,
)
from .cell import CellLibrary, LibCell
from .corelib import CORELIB018, ROW_HEIGHT_UM, build_corelib018
from .liberty import dump_library, load_library, parse_pattern
from .patterns import PatternNode, leaf, pattern_to_sop, pinv, pnand

__all__ = [
    "CORELIB018",
    "CellLibrary",
    "LibCell",
    "PatternNode",
    "ROW_HEIGHT_UM",
    "build_corelib018",
    "cached_library",
    "clear_library_cache",
    "content_key",
    "dump_library",
    "library_build_stats",
    "leaf",
    "load_library",
    "parse_pattern",
    "pattern_to_sop",
    "pinv",
    "pnand",
]
