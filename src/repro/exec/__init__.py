"""Parallel execution layer: process-pool fan-out with serial fallback."""

from .pool import default_workers, derive_seed, fan_out, pool_available

__all__ = ["default_workers", "derive_seed", "fan_out", "pool_available"]
