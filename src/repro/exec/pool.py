"""Process-pool fan-out for embarrassingly parallel flow stages.

The paper's methodology (Section 5, Figure 3) is built on re-mapping
being cheap relative to re-synthesis; this module makes the repeated
trials — the K points of a sweep, the placement attempts of an
evaluation — run concurrently when the hardware allows, without ever
changing their results:

* **Ordered collection** — results come back in task order, so callers
  see exactly the sequence the serial loop would have produced.
* **Deterministic seeds** — :func:`derive_seed` is the single formula
  both the serial and the parallel paths use, so a task's RNG stream
  does not depend on which worker ran it.
* **Graceful fallback** — ``workers <= 1``, a single task, or *any*
  failure to stand the pool up (missing ``multiprocessing`` support,
  unpicklable payloads, sandboxed environments) degrades to the serial
  loop.  Parallelism only ever changes wall time.  The degradation is
  *observable*: a failed pool records ``exec.fallback`` in the caller's
  stats registry and emits an ``exec_fallback`` tracer event carrying
  the exception class, so a "parallel" run that actually ran serial is
  diagnosable instead of silent.

Workers receive one constant ``payload`` through the pool initializer
(sent once per worker, not once per task) and then stream tasks.  Task
functions must be module-level callables of ``(payload, task)``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence

from ..obs import StatsRegistry

__all__ = ["default_workers", "derive_seed", "fan_out", "pool_available"]

#: Task function signature: (payload, task) -> result.
TaskFn = Callable[[Any, Any], Any]


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic per-task seed.

    Both the serial and the parallel execution paths derive attempt and
    trial seeds through this one formula, which is what makes
    ``workers=N`` bit-identical to ``workers=1``.
    """
    return base_seed + index


def default_workers() -> int:
    """A sensible worker count for this machine (scheduler-affinity aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def pool_available() -> bool:
    """Whether a process pool can be created at all on this platform."""
    try:
        multiprocessing.get_context(_start_method())
        return True
    except (ImportError, ValueError, OSError):  # pragma: no cover
        return False


def _start_method() -> str:
    """Prefer fork (cheap, shares loaded modules) where supported."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


# Worker-process state, installed once per worker by the initializer.
_worker_fn: Optional[TaskFn] = None
_worker_payload: Any = None


def _pool_initializer(fn: TaskFn, payload: Any) -> None:
    global _worker_fn, _worker_payload
    _worker_fn = fn
    _worker_payload = payload


def _pool_call(task: Any) -> Any:
    assert _worker_fn is not None
    return _worker_fn(_worker_payload, task)


def fan_out(fn: TaskFn, payload: Any, tasks: Sequence[Any],
            workers: int = 1,
            stats: Optional[StatsRegistry] = None,
            tracer: Optional[Any] = None,
            on_result: Optional[Callable[[Any], None]] = None) -> List[Any]:
    """Apply ``fn(payload, task)`` to every task; results in task order.

    ``workers <= 1`` (or a single task) runs the plain serial loop.
    With ``workers > 1`` a process pool is attempted; contiguous chunks
    are handed to each worker so per-process caches (e.g. the matcher
    memo) amortise across a worker's share of the tasks.  Any failure
    to create or use the pool falls back to the serial loop — the
    results are the same either way.

    ``on_result``, when given, is invoked once per result **in task
    order** as results become available (``pool.imap`` under the pool,
    per-iteration in the serial loop) — this is what lets a caller
    stream an ordered output while later tasks are still running.  The
    callback runs in the calling process and must not raise.  Under the
    serial fallback, results already delivered before a mid-stream pool
    failure are recomputed (task functions are deterministic) but *not*
    re-delivered, so the callback sees every task exactly once.

    ``stats``, when given, is a :class:`StatsRegistry` receiving the
    environment facts ``exec.workers`` (processes actually used; 1 for
    serial) and ``exec.parallel`` (0/1).  A pool/pickling failure
    additionally records ``exec.fallback = 1`` there; the registry
    holds numbers only, so the exception *class* goes to ``tracer``
    (an :class:`repro.obs.Tracer`, optional) as an ``exec_fallback``
    event span with ``error``/``detail`` attributes.
    """
    tasks = list(tasks)
    workers = max(1, int(workers))
    nproc = min(workers, len(tasks))
    delivered = 0

    def deliver(result: Any) -> None:
        nonlocal delivered
        if on_result is not None:
            on_result(result)
        delivered += 1

    if nproc > 1 and pool_available():
        try:
            results = _fan_out_pool(fn, payload, tasks, nproc, deliver)
            if stats is not None:
                stats.env("exec.workers", nproc)
                stats.env("exec.parallel", 1)
            return results
        except Exception as exc:
            # Pool or pickling failure: fall through to serial, but
            # leave a trail — a run asked to be parallel that was not
            # should never look identical to one that was.
            if stats is not None:
                stats.env("exec.fallback", 1)
            if tracer is not None:
                with tracer.span("exec_fallback",
                                 error=type(exc).__name__,
                                 detail=str(exc)[:200]):
                    pass
    if stats is not None:
        stats.env("exec.workers", 1)
        stats.env("exec.parallel", 0)
    results = []
    for index, task in enumerate(tasks):
        result = fn(payload, task)
        results.append(result)
        if index >= delivered:
            deliver(result)
    return results


def _fan_out_pool(fn: TaskFn, payload: Any, tasks: List[Any],
                  nproc: int,
                  deliver: Callable[[Any], None]) -> List[Any]:
    ctx = multiprocessing.get_context(_start_method())
    chunksize = max(1, math.ceil(len(tasks) / nproc))
    with ctx.Pool(processes=nproc, initializer=_pool_initializer,
                  initargs=(fn, payload)) as pool:
        results: List[Any] = []
        for result in pool.imap(_pool_call, tasks, chunksize=chunksize):
            results.append(result)
            deliver(result)
        return results
