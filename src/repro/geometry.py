"""Layout geometry: positions, distances, centers of mass.

The congestion-aware mapper works against a *layout image*: each base
gate of the technology-independent network carries placement
coordinates.  When a match is committed, the positions of all covered
base gates collapse to the match's center of mass — the paper's
incremental companion-placement update — so later trees see where
already-mapped logic actually sits.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .errors import MappingError

Point = Tuple[float, float]

MANHATTAN = "manhattan"
EUCLIDEAN = "euclidean"


def distance(a: Point, b: Point, metric: str = MANHATTAN) -> float:
    """Distance between two layout points under the chosen metric."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    if metric == MANHATTAN:
        return abs(dx) + abs(dy)
    if metric == EUCLIDEAN:
        return float(np.hypot(dx, dy))
    raise MappingError(f"unknown distance metric {metric!r}")


class PositionMap:
    """Mutable vertex -> (x, y) map with center-of-mass commits."""

    def __init__(self, positions: Sequence[Point],
                 metric: str = MANHATTAN):  # noqa: D107
        self._x = np.asarray([p[0] for p in positions], dtype=float)
        self._y = np.asarray([p[1] for p in positions], dtype=float)
        self.metric = metric

    @classmethod
    def zeros(cls, num_vertices: int, metric: str = MANHATTAN) -> "PositionMap":
        """All-zero positions (used when wire cost is disabled, K = 0)."""
        return cls([(0.0, 0.0)] * num_vertices, metric=metric)

    def __len__(self) -> int:
        return len(self._x)

    def get(self, vertex: int) -> Point:
        """Current position of a vertex."""
        return (float(self._x[vertex]), float(self._y[vertex]))

    def set(self, vertex: int, point: Point) -> None:
        """Overwrite a vertex position."""
        self._x[vertex] = point[0]
        self._y[vertex] = point[1]

    def centroid(self, vertices: Iterable[int]) -> Point:
        """Center of mass of a set of vertices (current positions)."""
        ids = list(vertices)
        if not ids:
            raise MappingError("centroid of an empty vertex set")
        return (float(self._x[ids].mean()), float(self._y[ids].mean()))

    def commit(self, vertices: Iterable[int], com: Point) -> None:
        """Collapse all given vertices onto the committed center of mass."""
        ids = list(vertices)
        self._x[ids] = com[0]
        self._y[ids] = com[1]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The underlying (x, y) coordinate arrays.

        Exposed for the vectorized covering/placement engines, which
        gather many positions per step; treat the arrays as read-only.
        """
        return self._x, self._y

    def dist(self, a: Point, b: Point) -> float:
        """Distance under this map's metric."""
        return distance(a, b, self.metric)

    def dist_vertices(self, u: int, v: int) -> float:
        """Distance between two vertices' current positions."""
        return self.dist(self.get(u), self.get(v))

    def copy(self) -> "PositionMap":
        """Independent copy (commits on the copy don't affect the original)."""
        out = PositionMap.__new__(PositionMap)
        out._x = self._x.copy()
        out._y = self._y.copy()
        out.metric = self.metric
        return out

    def as_points(self) -> List[Point]:
        """All positions as a list of tuples (deterministic order)."""
        return [(float(x), float(y)) for x, y in zip(self._x, self._y)]
