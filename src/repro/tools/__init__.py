"""Repo-facing tools that are not part of the synthesis flow itself.

Currently one member: :mod:`~repro.tools.benchreport`, the
bench-regression reporter behind ``repro benchreport`` and the CI
benchmark gate.
"""

from .benchreport import (
    BenchComparison,
    MetricResult,
    compare_benches,
    load_envelopes,
    render_markdown,
    run_benchreport,
)

__all__ = [
    "BenchComparison",
    "MetricResult",
    "compare_benches",
    "load_envelopes",
    "render_markdown",
    "run_benchreport",
]
