"""Bench-regression reporter: compare ``BENCH_*.json`` against baselines.

``benchmarks/bench_*.py`` runs drop machine-readable envelopes
(``BENCH_<name>.json``, schema in ``benchmarks/bench_common.py``) into
``benchmarks/results/``.  This module compares a directory of fresh
envelopes against a checked-in **baseline** directory and answers one
question per tracked metric: *did it regress beyond its noise floor?*

Design points:

* **Keyed on the envelope, not the filename.**  Envelopes pair by
  their ``bench`` field; a ``schema_version`` mismatch is a hard
  regression (the comparison itself is meaningless).
* **Per-bench noise floors.**  Wall-clock-derived ratios (speedups,
  jobs/sec) on a busy 1-CPU CI box are noisy, so they get generous
  relative tolerances; deterministic values (row identity, evaluation
  counts, chosen K) are compared **exactly** — those regressing means
  the determinism contract broke, not that the machine was slow.
* **Mode-aware.**  A ``mode`` mismatch (smoke vs full) skips the bench
  instead of comparing apples to oranges; a bench present in the
  baselines but *missing* from the results is a regression (the gate
  must not pass because a bench silently stopped running).
* **Markdown trend table** written next to the results (CI uploads it
  as an artifact), process exit non-zero iff any metric regressed.

The CLI front-end is ``repro benchreport``; CI wires it as a gate after
the smoke benches (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["BenchComparison", "MetricResult", "compare_benches",
           "load_envelopes", "render_markdown", "run_benchreport"]

#: Statuses that make the gate fail.
_FAILING = ("regressed", "missing", "schema")


def _get(doc: Dict[str, Any], path: str) -> Optional[Any]:
    """Dotted-path lookup (``parallel.parallel_speedup``); None if absent."""
    node: Any = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _row_mean(field: str) -> Callable[[Dict[str, Any]], Optional[float]]:
    def extract(doc: Dict[str, Any]) -> Optional[float]:
        rows = doc.get("rows") or []
        vals = [float(r[field]) for r in rows if field in r]
        return _mean(vals)
    return extract


def _row_sum(field: str) -> Callable[[Dict[str, Any]], Optional[float]]:
    def extract(doc: Dict[str, Any]) -> Optional[float]:
        rows = doc.get("rows") or []
        vals = [float(r[field]) for r in rows if field in r]
        return float(sum(vals)) if vals else None
    return extract


def _strategy_field(strategy: str, field: str
                    ) -> Callable[[Dict[str, Any]], Optional[Any]]:
    def extract(doc: Dict[str, Any]) -> Optional[Any]:
        for row in doc.get("rows") or []:
            if row.get("strategy") == strategy:
                return row.get(field)
        return None
    return extract


class _Spec:
    """One tracked metric of one bench.

    ``direction`` is ``"higher"`` (bigger is better), ``"lower"``
    (smaller is better) or ``"exact"`` (any difference regresses —
    reserved for values the determinism contract pins).  ``rel_tol``
    is the noise floor for directional metrics: the current value may
    fall short of (exceed) the baseline by up to ``baseline *
    rel_tol + abs_tol`` before the metric counts as regressed.
    """

    __slots__ = ("name", "extract", "direction", "rel_tol", "abs_tol")

    def __init__(self, name: str,
                 extract: Callable[[Dict[str, Any]], Optional[Any]],
                 direction: str = "exact", rel_tol: float = 0.0,
                 abs_tol: float = 0.0):  # noqa: D107
        assert direction in ("higher", "lower", "exact")
        self.name = name
        self.extract = extract
        self.direction = direction
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol

    def judge(self, base: Any, current: Any) -> str:
        """'ok' | 'regressed' for one (baseline, current) value pair."""
        if self.direction == "exact":
            return "ok" if current == base else "regressed"
        base_f, cur_f = float(base), float(current)
        slack = abs(base_f) * self.rel_tol + self.abs_tol
        if self.direction == "higher":
            return "ok" if cur_f >= base_f - slack else "regressed"
        return "ok" if cur_f <= base_f + slack else "regressed"


#: The tracked metrics, per bench.  Wall-clock ratios get a 50%
#: relative floor (1-CPU CI wall-times are that noisy); deterministic
#: values are exact.
_SPECS: Dict[str, List[_Spec]] = {
    "placement": [
        _Spec("speedup(mean)", _row_mean("speedup"),
              direction="higher", rel_tol=0.5),
        _Spec("rows", lambda d: len(d.get("rows") or [])),
        _Spec("gates(sum)", _row_sum("gates")),
    ],
    "routing": [
        _Spec("speedup(mean)", _row_mean("speedup"),
              direction="higher", rel_tol=0.5),
        _Spec("violations(sum)", _row_sum("violations")),
        _Spec("nets(sum)", _row_sum("nets")),
    ],
    "ksearch": [
        _Spec("identity.matches", lambda d: _get(d, "identity.matches")),
        _Spec("grid.evaluations", _strategy_field("grid", "evaluations")),
        _Spec("bisect.evaluations",
              _strategy_field("bisect", "evaluations")),
        _Spec("bisect.chosen_k", _strategy_field("bisect", "chosen_k")),
        _Spec("portfolio.chosen_k",
              _strategy_field("portfolio", "chosen_k")),
    ],
    "serve": [
        _Spec("identical_rows", lambda d: d.get("identical_rows")),
        _Spec("parallel.identical_rows",
              lambda d: _get(d, "parallel.identical_rows")),
        _Spec("speedup", lambda d: d.get("speedup"),
              direction="higher", rel_tol=0.5),
        _Spec("serve_jobs_per_sec", lambda d: d.get("serve_jobs_per_sec"),
              direction="higher", rel_tol=0.5),
        _Spec("parallel.pool_fallbacks",
              lambda d: _get(d, "parallel.pool_fallbacks"),
              direction="lower"),
    ],
}


class MetricResult:
    """One metric's comparison outcome."""

    __slots__ = ("name", "baseline", "current", "status", "note")

    def __init__(self, name: str, baseline: Any, current: Any,
                 status: str, note: str = ""):  # noqa: D107
        self.name = name
        self.baseline = baseline
        self.current = current
        self.status = status
        self.note = note


class BenchComparison:
    """All metric outcomes of one bench pairing."""

    __slots__ = ("bench", "status", "note", "metrics")

    def __init__(self, bench: str, status: str, note: str = "",
                 metrics: Optional[List[MetricResult]] = None):  # noqa: D107
        self.bench = bench
        self.status = status
        self.note = note
        self.metrics = metrics if metrics is not None else []

    @property
    def failed(self) -> bool:
        """Whether this bench makes the gate fail."""
        return self.status in _FAILING or \
            any(m.status in _FAILING for m in self.metrics)


def load_envelopes(directory: str) -> Dict[str, Dict[str, Any]]:
    """``{bench name: envelope}`` for every ``BENCH_*.json`` in a dir.

    Unreadable/unparsable files are skipped with a ``__errors__``
    entry (list of messages) so the report can surface them.
    """
    envelopes: Dict[str, Dict[str, Any]] = {}
    errors: List[str] = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as handle:
                doc = json.load(handle)
            bench = doc["bench"]
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            errors.append(f"{os.path.basename(path)}: "
                          f"{type(exc).__name__}: {exc}")
            continue
        envelopes[bench] = doc
    if errors:
        envelopes["__errors__"] = {"errors": errors}  # type: ignore
    return envelopes


def _compare_one(bench: str, base: Dict[str, Any],
                 current: Dict[str, Any]) -> BenchComparison:
    if base.get("schema_version") != current.get("schema_version"):
        return BenchComparison(
            bench, "schema",
            f"schema_version {current.get('schema_version')!r} vs "
            f"baseline {base.get('schema_version')!r}")
    if base.get("mode") != current.get("mode"):
        return BenchComparison(
            bench, "skipped",
            f"mode {current.get('mode')!r} vs baseline "
            f"{base.get('mode')!r} — not comparable")
    metrics: List[MetricResult] = []
    for spec in _SPECS.get(bench, []):
        base_val = spec.extract(base)
        cur_val = spec.extract(current)
        if base_val is None and cur_val is None:
            continue
        if base_val is None:
            metrics.append(MetricResult(spec.name, None, cur_val, "new",
                                        "no baseline value"))
            continue
        if cur_val is None:
            metrics.append(MetricResult(spec.name, base_val, None,
                                        "missing", "value disappeared"))
            continue
        status = spec.judge(base_val, cur_val)
        note = ""
        if spec.direction != "exact":
            note = f"{spec.direction} is better, " \
                   f"rel_tol {spec.rel_tol:.0%}"
        metrics.append(MetricResult(spec.name, base_val, cur_val,
                                    status, note))
    return BenchComparison(bench, "compared", metrics=metrics)


def compare_benches(results: Dict[str, Dict[str, Any]],
                    baselines: Dict[str, Dict[str, Any]]
                    ) -> List[BenchComparison]:
    """Compare every baselined bench; order follows the baseline set.

    Baseline benches missing from the results regress (a bench that
    silently stopped running must not pass the gate); result benches
    with no baseline report as ``new`` (informational).
    """
    comparisons: List[BenchComparison] = []
    for bench in sorted(baselines):
        if bench == "__errors__":
            continue
        if bench not in results:
            comparisons.append(BenchComparison(
                bench, "missing", "bench absent from results"))
            continue
        comparisons.append(_compare_one(bench, baselines[bench],
                                        results[bench]))
    for bench in sorted(results):
        if bench != "__errors__" and bench not in baselines:
            comparisons.append(BenchComparison(
                bench, "new", "no baseline yet"))
    for source, envelopes in (("results", results),
                              ("baselines", baselines)):
        for message in envelopes.get("__errors__", {}).get("errors", []):
            comparisons.append(BenchComparison(
                f"({source})", "schema", message))
    return comparisons


def _fmt(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _delta(base: Any, current: Any) -> str:
    try:
        base_f, cur_f = float(base), float(current)
    except (TypeError, ValueError):
        return "—"
    if isinstance(base, bool) or isinstance(current, bool) or base_f == 0:
        return "—"
    return f"{(cur_f - base_f) / abs(base_f):+.1%}"


def render_markdown(comparisons: List[BenchComparison],
                    results_dir: str, baselines_dir: str) -> str:
    """The trend table CI uploads as an artifact."""
    failed = [c.bench for c in comparisons if c.failed]
    lines = [
        "# Benchmark trend report",
        "",
        f"Results `{results_dir}` vs baselines `{baselines_dir}` — "
        + ("**REGRESSED**: " + ", ".join(failed) if failed
           else "all gates passed"),
        "",
        "| bench | metric | baseline | current | delta | status | note |",
        "|---|---|---:|---:|---:|---|---|",
    ]
    for comp in comparisons:
        if not comp.metrics:
            lines.append(f"| {comp.bench} | — | — | — | — | "
                         f"{comp.status} | {comp.note} |")
            continue
        for metric in comp.metrics:
            lines.append(
                f"| {comp.bench} | {metric.name} "
                f"| {_fmt(metric.baseline)} | {_fmt(metric.current)} "
                f"| {_delta(metric.baseline, metric.current)} "
                f"| {metric.status} | {metric.note} |")
    lines.append("")
    lines.append("Deterministic metrics compare exactly; wall-clock "
                 "ratios carry per-metric noise floors (see "
                 "`src/repro/tools/benchreport.py`).")
    return "\n".join(lines) + "\n"


def run_benchreport(results_dir: str = "benchmarks/results",
                    baselines_dir: str = "benchmarks/baselines",
                    out_path: str = "") -> int:
    """CLI/CI entry point: compare, write the table, gate on regressions.

    Returns the process exit code: 0 when every gated metric held, 1 on
    any regression, 2 when the baseline directory has no envelopes at
    all (a misconfigured gate must fail loudly, not pass trivially).
    """
    results = load_envelopes(results_dir)
    baselines = load_envelopes(baselines_dir)
    if not any(b != "__errors__" for b in baselines):
        print(f"benchreport: no BENCH_*.json baselines in "
              f"{baselines_dir!r}", flush=True)
        return 2
    comparisons = compare_benches(results, baselines)
    report = render_markdown(comparisons, results_dir, baselines_dir)
    out_path = out_path or os.path.join(results_dir, "BENCHREPORT.md")
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w") as handle:
        handle.write(report)
    failed = [c.bench for c in comparisons if c.failed]
    for comp in comparisons:
        flags = [m for m in comp.metrics if m.status in _FAILING]
        detail = "; ".join(f"{m.name}: {_fmt(m.baseline)} -> "
                           f"{_fmt(m.current)}" for m in flags)
        print(f"benchreport: {comp.bench}: "
              f"{'REGRESSED ' + detail if flags else comp.status}"
              + (f" ({comp.note})" if comp.note else ""))
    print(f"benchreport: table -> {out_path}")
    if failed:
        print(f"benchreport: REGRESSED: {', '.join(failed)}")
        return 1
    print("benchreport: all gates passed")
    return 0
