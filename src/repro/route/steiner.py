"""Net topology generation: MST decomposition into two-pin segments.

Multi-pin nets are decomposed into two-pin connections along a
rectilinear minimum spanning tree (Prim).  An RMST is within 1.5× of
the optimal rectilinear Steiner tree and is the standard global-routing
decomposition; the congestion *trends* the benches assert are
insensitive to the Steiner gap.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Point = Tuple[float, float]
GCell = Tuple[int, int]


def manhattan(a: Sequence[float], b: Sequence[float]) -> float:
    """Manhattan distance."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def gcell_signature(points: Sequence[GCell]) -> Tuple[GCell, ...]:
    """Canonical pin signature of a net: sorted distinct GCells.

    :func:`mst_segments` depends only on this signature, which is what
    makes it a sound cross-K route-reuse key: two nets with equal
    signatures decompose into identical two-pin segments.
    """
    return tuple(sorted(set(points)))


def mst_segments(points: Sequence[GCell]) -> List[Tuple[GCell, GCell]]:
    """Prim MST over GCells; returns two-pin segments (deduplicated).

    Degenerate nets (zero or one distinct point) return no segments.
    """
    unique = sorted(set(points))
    n = len(unique)
    if n < 2:
        return []
    xs = np.asarray([p[0] for p in unique], dtype=float)
    ys = np.asarray([p[1] for p in unique], dtype=float)
    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_parent = np.full(n, -1, dtype=int)
    in_tree[0] = True
    dist0 = np.abs(xs - xs[0]) + np.abs(ys - ys[0])
    best_dist = np.minimum(best_dist, dist0)
    best_parent[dist0 <= best_dist] = 0
    best_dist[0] = np.inf
    segments: List[Tuple[GCell, GCell]] = []
    for _ in range(n - 1):
        masked = np.where(in_tree, np.inf, best_dist)
        nxt = int(np.argmin(masked))
        parent = int(best_parent[nxt])
        segments.append((unique[parent], unique[nxt]))
        in_tree[nxt] = True
        dist = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
        improved = (~in_tree) & (dist < best_dist)
        best_dist[improved] = dist[improved]
        best_parent[improved] = nxt
    return segments


def hpwl_of_points(points: Sequence[Point]) -> float:
    """Half-perimeter bounding box of a point set."""
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
