"""Global-routing grid (GCells) and routing-resource model.

The die is tiled into GCells; each boundary between adjacent GCells is
an *edge* with a track capacity derived from the metal stack — the
paper's experiments fix **three metal layers**, which is what makes the
routability window in its Tables 2/4 exist at all.

Capacity model: with three layers, M2 carries vertical tracks, M3
horizontal tracks, and M1 contributes a partial share (the rest is used
inside the cells).  Tracks per edge = (usable layers) × gcell span /
track pitch × derate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from ..errors import RoutingError
from ..place.floorplan import Floorplan

Point = Tuple[float, float]
GCell = Tuple[int, int]

HORIZONTAL = 0
VERTICAL = 1


@dataclass(frozen=True)
class RoutingResources:
    """The metal stack available to the router."""

    metal_layers: int = 3
    track_pitch: float = 0.56     # µm (0.18 µm-class M2/M3 pitch)
    m1_usable: float = 0.25       # share of M1 left over after cell use
    derate: float = 0.80          # blockage / via / manufacturing margin

    def __post_init__(self) -> None:  # noqa: D105
        if self.metal_layers < 2:
            raise RoutingError("need at least two metal layers to route")

    def layer_shares(self) -> Tuple[float, float]:
        """(horizontal, vertical) effective full-layer counts.

        Convention: M1 horizontal (partial), M2 vertical, M3 horizontal,
        M4 vertical, ...
        """
        horizontal = self.m1_usable
        vertical = 0.0
        for layer in range(2, self.metal_layers + 1):
            if layer % 2 == 0:
                vertical += 1.0
            else:
                horizontal += 1.0
        return horizontal, vertical


class RoutingGrid:
    """GCell grid with per-edge demand/capacity bookkeeping.

    Horizontal edges connect (x, y) to (x+1, y) — they consume
    horizontal tracks; vertical edges connect (x, y) to (x, y+1).
    """

    def __init__(self, floorplan: Floorplan, resources: RoutingResources,
                 gcell_rows: int = 2):  # noqa: D107
        self.floorplan = floorplan
        self.resources = resources
        gcell_h = gcell_rows * floorplan.row_height
        self.ny = max(2, int(round(floorplan.height / gcell_h)))
        self.nx = max(2, int(round(floorplan.width / gcell_h)))
        self.gw = floorplan.width / self.nx
        self.gh = floorplan.height / self.ny
        h_share, v_share = resources.layer_shares()
        self.hcap = max(1, int(self.gh / resources.track_pitch
                               * h_share * resources.derate))
        self.vcap = max(1, int(self.gw / resources.track_pitch
                               * v_share * resources.derate))
        # demand[HORIZONTAL]: (nx-1, ny); demand[VERTICAL]: (nx, ny-1)
        self.demand = [np.zeros((self.nx - 1, self.ny), dtype=np.int32),
                       np.zeros((self.nx, self.ny - 1), dtype=np.int32)]
        self.history = [np.zeros((self.nx - 1, self.ny), dtype=np.float64),
                        np.zeros((self.nx, self.ny - 1), dtype=np.float64)]

    # -- coordinate mapping -----------------------------------------------

    def gcell_of(self, point: Point) -> GCell:
        """The GCell containing a die point (clamped to the core)."""
        x = int(np.clip(point[0] / self.gw, 0, self.nx - 1))
        y = int(np.clip(point[1] / self.gh, 0, self.ny - 1))
        return (x, y)

    def gcell_center(self, cell: GCell) -> Point:
        """Die coordinates of a GCell center."""
        return ((cell[0] + 0.5) * self.gw, (cell[1] + 0.5) * self.gh)

    # -- edges ----------------------------------------------------------

    def edge_between(self, a: GCell, b: GCell) -> Tuple[int, int, int]:
        """(direction, ex, ey) of the edge joining two adjacent GCells."""
        (ax, ay), (bx, by) = a, b
        if ay == by and abs(ax - bx) == 1:
            return (HORIZONTAL, min(ax, bx), ay)
        if ax == bx and abs(ay - by) == 1:
            return (VERTICAL, ax, min(ay, by))
        raise RoutingError(f"gcells {a} and {b} are not adjacent")

    def capacity(self, direction: int) -> int:
        """Track capacity of edges in a direction."""
        return self.hcap if direction == HORIZONTAL else self.vcap

    def edge_length(self, direction: int) -> float:
        """Physical length (µm) represented by one edge crossing."""
        return self.gw if direction == HORIZONTAL else self.gh

    def add_demand(self, edges: Iterable[Tuple[int, int, int]],
                   amount: int = 1) -> None:
        """Adjust demand on a set of edges."""
        for direction, ex, ey in edges:
            self.demand[direction][ex, ey] += amount

    def overflow_total(self) -> int:
        """Total demand above capacity (the routing-violation proxy)."""
        over_h = np.maximum(self.demand[HORIZONTAL] - self.hcap, 0).sum()
        over_v = np.maximum(self.demand[VERTICAL] - self.vcap, 0).sum()
        return int(over_h + over_v)

    def overflow_max(self) -> int:
        """Worst single-edge overflow."""
        over_h = np.maximum(self.demand[HORIZONTAL] - self.hcap, 0)
        over_v = np.maximum(self.demand[VERTICAL] - self.vcap, 0)
        return int(max(over_h.max(initial=0), over_v.max(initial=0)))

    def overflowed_edges(self) -> List[Tuple[int, int, int]]:
        """All edges whose demand exceeds capacity."""
        out: List[Tuple[int, int, int]] = []
        for direction, cap in ((HORIZONTAL, self.hcap), (VERTICAL, self.vcap)):
            xs, ys = np.nonzero(self.demand[direction] > cap)
            out.extend((direction, int(x), int(y)) for x, y in zip(xs, ys))
        return out

    def edge_congestion(self, direction: int, ex: int, ey: int) -> float:
        """demand / capacity of one edge."""
        return float(self.demand[direction][ex, ey]) / self.capacity(direction)

    def utilization_map(self) -> np.ndarray:
        """(nx, ny) max surrounding-edge congestion per GCell."""
        util = np.zeros((self.nx, self.ny))
        dh = self.demand[HORIZONTAL] / self.hcap
        dv = self.demand[VERTICAL] / self.vcap
        util[:-1, :] = np.maximum(util[:-1, :], dh)
        util[1:, :] = np.maximum(util[1:, :], dh)
        util[:, :-1] = np.maximum(util[:, :-1], dv)
        util[:, 1:] = np.maximum(util[:, 1:], dv)
        return util

    def reset_demand(self) -> None:
        """Clear all demand (history is kept)."""
        self.demand[HORIZONTAL][:] = 0
        self.demand[VERTICAL][:] = 0
