"""Global-routing grid (GCells) and routing-resource model.

The die is tiled into GCells; each boundary between adjacent GCells is
an *edge* with a track capacity derived from the metal stack — the
paper's experiments fix **three metal layers**, which is what makes the
routability window in its Tables 2/4 exist at all.

Capacity model: with three layers, M2 carries vertical tracks, M3
horizontal tracks, and M1 contributes a partial share (the rest is used
inside the cells).  Tracks per edge = (usable layers) × gcell span /
track pitch × derate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from ..errors import RoutingError
from ..place.floorplan import Floorplan

Point = Tuple[float, float]
GCell = Tuple[int, int]

HORIZONTAL = 0
VERTICAL = 1


@dataclass(frozen=True)
class RoutingResources:
    """The metal stack available to the router."""

    metal_layers: int = 3
    track_pitch: float = 0.56     # µm (0.18 µm-class M2/M3 pitch)
    m1_usable: float = 0.25       # share of M1 left over after cell use
    derate: float = 0.80          # blockage / via / manufacturing margin

    def __post_init__(self) -> None:  # noqa: D105
        if self.metal_layers < 2:
            raise RoutingError("need at least two metal layers to route")

    def layer_shares(self) -> Tuple[float, float]:
        """(horizontal, vertical) effective full-layer counts.

        Convention: M1 horizontal (partial), M2 vertical, M3 horizontal,
        M4 vertical, ...
        """
        horizontal = self.m1_usable
        vertical = 0.0
        for layer in range(2, self.metal_layers + 1):
            if layer % 2 == 0:
                vertical += 1.0
            else:
                horizontal += 1.0
        return horizontal, vertical


class RoutingGrid:
    """GCell grid with per-edge demand/capacity bookkeeping.

    Horizontal edges connect (x, y) to (x+1, y) — they consume
    horizontal tracks; vertical edges connect (x, y) to (x, y+1).

    Every edge also has a **flat id**: horizontal edge (ex, ey) maps to
    ``ex * ny + ey`` and vertical edge (ex, ey) to
    ``num_h_edges + ex * (ny - 1) + ey``.  ``demand``/``history`` are
    C-order views of the flat arrays, so per-edge tuple code and the
    vectorized engine share one set of books.
    """

    def __init__(self, floorplan: Floorplan, resources: RoutingResources,
                 gcell_rows: int = 2):  # noqa: D107
        self.floorplan = floorplan
        self.resources = resources
        gcell_h = gcell_rows * floorplan.row_height
        self.ny = max(2, int(round(floorplan.height / gcell_h)))
        self.nx = max(2, int(round(floorplan.width / gcell_h)))
        self.gw = floorplan.width / self.nx
        self.gh = floorplan.height / self.ny
        h_share, v_share = resources.layer_shares()
        self.hcap = max(1, int(self.gh / resources.track_pitch
                               * h_share * resources.derate))
        self.vcap = max(1, int(self.gw / resources.track_pitch
                               * v_share * resources.derate))
        self.num_h_edges = (self.nx - 1) * self.ny
        self.num_v_edges = self.nx * (self.ny - 1)
        self.num_edges = self.num_h_edges + self.num_v_edges
        self.demand_flat = np.zeros(self.num_edges, dtype=np.int32)
        self.history_flat = np.zeros(self.num_edges, dtype=np.float64)
        # demand[HORIZONTAL]: (nx-1, ny); demand[VERTICAL]: (nx, ny-1)
        # — views of the flat arrays (writes through either are shared).
        self.demand = [
            self.demand_flat[:self.num_h_edges].reshape(self.nx - 1, self.ny),
            self.demand_flat[self.num_h_edges:].reshape(self.nx, self.ny - 1)]
        self.history = [
            self.history_flat[:self.num_h_edges].reshape(self.nx - 1, self.ny),
            self.history_flat[self.num_h_edges:].reshape(self.nx, self.ny - 1)]
        self.capacity_flat = np.empty(self.num_edges, dtype=np.int32)
        self.capacity_flat[:self.num_h_edges] = self.hcap
        self.capacity_flat[self.num_h_edges:] = self.vcap

    # -- coordinate mapping -----------------------------------------------

    def gcell_of(self, point: Point) -> GCell:
        """The GCell containing a die point (clamped to the core).

        Pure-scalar clamping: this runs once per pin per routing call,
        and ``np.clip`` on scalars costs microseconds — enough to
        dominate router init on small designs.
        """
        x = point[0] / self.gw
        y = point[1] / self.gh
        nx1 = self.nx - 1
        ny1 = self.ny - 1
        return (int(x if x < nx1 else nx1) if x > 0 else 0,
                int(y if y < ny1 else ny1) if y > 0 else 0)

    def gcell_center(self, cell: GCell) -> Point:
        """Die coordinates of a GCell center."""
        return ((cell[0] + 0.5) * self.gw, (cell[1] + 0.5) * self.gh)

    # -- edges ----------------------------------------------------------

    def edge_between(self, a: GCell, b: GCell) -> Tuple[int, int, int]:
        """(direction, ex, ey) of the edge joining two adjacent GCells."""
        (ax, ay), (bx, by) = a, b
        if ay == by and abs(ax - bx) == 1:
            return (HORIZONTAL, min(ax, bx), ay)
        if ax == bx and abs(ay - by) == 1:
            return (VERTICAL, ax, min(ay, by))
        raise RoutingError(f"gcells {a} and {b} are not adjacent")

    def capacity(self, direction: int) -> int:
        """Track capacity of edges in a direction."""
        return self.hcap if direction == HORIZONTAL else self.vcap

    def edge_length(self, direction: int) -> float:
        """Physical length (µm) represented by one edge crossing."""
        return self.gw if direction == HORIZONTAL else self.gh

    # -- flat edge ids --------------------------------------------------

    def edge_id(self, direction: int, ex: int, ey: int) -> int:
        """Flat id of one edge."""
        if direction == HORIZONTAL:
            return ex * self.ny + ey
        return self.num_h_edges + ex * (self.ny - 1) + ey

    def edge_ids(self, edges: Iterable[Tuple[int, int, int]]) -> np.ndarray:
        """Flat ids of a sequence of (direction, ex, ey) edges."""
        edges = list(edges)
        if not edges:
            return np.empty(0, dtype=np.int64)
        arr = np.asarray(edges, dtype=np.int64)
        horizontal = arr[:, 0] == HORIZONTAL
        ids = np.where(horizontal,
                       arr[:, 1] * self.ny + arr[:, 2],
                       self.num_h_edges + arr[:, 1] * (self.ny - 1)
                       + arr[:, 2])
        return ids

    def decode_edge_ids(self, ids: np.ndarray) -> List[Tuple[int, int, int]]:
        """(direction, ex, ey) tuples of a flat-id array."""
        ids = np.asarray(ids, dtype=np.int64)
        horizontal = ids < self.num_h_edges
        vid = ids - self.num_h_edges
        ex = np.where(horizontal, ids // self.ny, vid // (self.ny - 1))
        ey = np.where(horizontal, ids % self.ny, vid % (self.ny - 1))
        direction = np.where(horizontal, HORIZONTAL, VERTICAL)
        return list(zip(direction.tolist(), ex.tolist(), ey.tolist()))

    def add_demand_ids(self, ids: np.ndarray, amount: int = 1) -> None:
        """Adjust demand on a flat-id array (ids may repeat)."""
        np.add.at(self.demand_flat, ids, amount)

    def add_demand(self, edges: Iterable[Tuple[int, int, int]],
                   amount: int = 1) -> None:
        """Adjust demand on a set of edges."""
        for direction, ex, ey in edges:
            self.demand[direction][ex, ey] += amount

    def overflow_total(self) -> int:
        """Total demand above capacity (the routing-violation proxy)."""
        return int(np.maximum(self.demand_flat - self.capacity_flat, 0).sum())

    def overflow_max(self) -> int:
        """Worst single-edge overflow."""
        over = self.demand_flat - self.capacity_flat
        return int(max(over.max(initial=0), 0))

    def overflowed_edge_ids(self) -> np.ndarray:
        """Flat ids (ascending) of edges whose demand exceeds capacity."""
        return np.nonzero(self.demand_flat > self.capacity_flat)[0]

    def overflowed_edges(self) -> List[Tuple[int, int, int]]:
        """All edges whose demand exceeds capacity."""
        out: List[Tuple[int, int, int]] = []
        for direction, cap in ((HORIZONTAL, self.hcap), (VERTICAL, self.vcap)):
            xs, ys = np.nonzero(self.demand[direction] > cap)
            out.extend((direction, int(x), int(y)) for x, y in zip(xs, ys))
        return out

    def edge_congestion(self, direction: int, ex: int, ey: int) -> float:
        """demand / capacity of one edge."""
        return float(self.demand[direction][ex, ey]) / self.capacity(direction)

    def overflow_map(self) -> np.ndarray:
        """(nx, ny) max surrounding-edge overflow per GCell (int)."""
        over = np.zeros((self.nx, self.ny), dtype=np.int64)
        oh = np.maximum(self.demand[HORIZONTAL] - self.hcap, 0)
        ov = np.maximum(self.demand[VERTICAL] - self.vcap, 0)
        over[:-1, :] = np.maximum(over[:-1, :], oh)
        over[1:, :] = np.maximum(over[1:, :], oh)
        over[:, :-1] = np.maximum(over[:, :-1], ov)
        over[:, 1:] = np.maximum(over[:, 1:], ov)
        return over

    def utilization_map(self) -> np.ndarray:
        """(nx, ny) max surrounding-edge congestion per GCell."""
        util = np.zeros((self.nx, self.ny))
        dh = self.demand[HORIZONTAL] / self.hcap
        dv = self.demand[VERTICAL] / self.vcap
        util[:-1, :] = np.maximum(util[:-1, :], dh)
        util[1:, :] = np.maximum(util[1:, :], dh)
        util[:, :-1] = np.maximum(util[:, :-1], dv)
        util[:, 1:] = np.maximum(util[:, 1:], dv)
        return util

    def reset_demand(self) -> None:
        """Clear all demand (history is kept)."""
        self.demand[HORIZONTAL][:] = 0
        self.demand[VERTICAL][:] = 0
