"""Congestion-map evaluation and reporting (Figure 3's decision box).

The methodology loop of Section 5 gates on a *congestion map* computed
from global placement and coarse routing — much cheaper than detailed
place & route.  This module wraps the routing grid into that map, with
summary statistics and an ASCII rendering for interactive use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..io.report import render_heatmap
from .grid import RoutingGrid
from .router import RoutingResult


@dataclass
class CongestionStats:
    """Summary of a congestion map."""

    violations: int           # total track overflow
    overflowed_nets: int
    max_edge_overflow: int
    mean_utilization: float   # mean demand/capacity over edges
    peak_utilization: float
    congested_fraction: float  # share of edges above 90% utilization

    @property
    def acceptable(self) -> bool:
        """The Figure 3 gate: proceed to detailed P&R?"""
        return self.violations == 0


def congestion_stats(result: RoutingResult,
                     hot_threshold: float = 0.9) -> CongestionStats:
    """Compute summary statistics from a routing result."""
    grid = result.grid
    all_util = grid.demand_flat.astype(float) / grid.capacity_flat
    return CongestionStats(
        violations=result.violations,
        overflowed_nets=result.overflowed_nets,
        max_edge_overflow=grid.overflow_max(),
        mean_utilization=float(all_util.mean()) if all_util.size else 0.0,
        peak_utilization=float(all_util.max()) if all_util.size else 0.0,
        congested_fraction=float((all_util > hot_threshold).mean())
        if all_util.size else 0.0,
    )


def render_congestion_map(grid: RoutingGrid, width: int = 0) -> str:
    """ASCII heat map of GCell congestion (darker = more congested)."""
    header = (f"congestion map {grid.nx}x{grid.ny} "
              f"(hcap={grid.hcap}, vcap={grid.vcap})")
    return header + "\n" + render_heatmap(grid.utilization_map())
