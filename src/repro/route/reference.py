"""Per-edge reference implementation of the global-routing algorithm.

This is the pure-Python rendition of the exact algorithm the vectorized
engine in :mod:`repro.route.router` runs: best-of-two-L initial
routing, segment-level incremental rip-up under the seeded victim
ordering, overflow-free L/Z pattern rerouting with maze fallback.  It
exists as the **equivalence oracle**: property tests assert both
engines report identical violations, overflowed-net counts and
wirelength, and the routing micro-bench measures the vectorized
engine's speedup against this path.

Every cost it computes is a sum of exactly-representable float64
values in a different order than the vectorized engine's prefix sums;
exactness is what makes the two engines take bit-identical decisions
(see the router module docstring).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .grid import GCell, HORIZONTAL, RoutingGrid, VERTICAL
from .maze import l_route_edges, maze_route
from .router import (
    PENALTY_STEP,
    PLATEAU_RATIO,
    PLATEAU_ROUNDS,
    REFERENCE,
    NetRoute,
    RoutingResult,
    Signature,
    _router_stats,
    victim_order,
)
from .steiner import gcell_signature, mst_segments

Edge = Tuple[int, int, int]


def _best_l_reference(grid: RoutingGrid, a: GCell, b: GCell) -> List[Edge]:
    """The cheaper L-shape, computed edge by edge."""
    first = l_route_edges(a, b, horizontal_first=True)
    second = l_route_edges(a, b, horizontal_first=False)
    if first == second:
        return first

    def load(edges: List[Edge]) -> float:
        h_sum = 0
        v_sum = 0
        for direction, ex, ey in edges:
            if direction == HORIZONTAL:
                h_sum += int(grid.demand[HORIZONTAL][ex, ey])
            else:
                v_sum += int(grid.demand[VERTICAL][ex, ey])
        return h_sum / grid.hcap + v_sum / grid.vcap

    return first if load(first) <= load(second) else second


def _pattern_edges_hvh(a: GCell, b: GCell, x: int) -> List[Edge]:
    """HVH pattern with the vertical run at column x."""
    (ax, ay), (bx, by) = a, b
    edges = l_route_edges((ax, ay), (x, ay))          # horizontal on row ay
    edges += l_route_edges((x, ay), (x, by), horizontal_first=False)
    edges += l_route_edges((x, by), (bx, by))         # horizontal on row by
    return edges


def _pattern_edges_vhv(a: GCell, b: GCell, y: int) -> List[Edge]:
    """VHV pattern with the horizontal run at row y."""
    (ax, ay), (bx, by) = a, b
    edges = l_route_edges((ax, ay), (ax, y), horizontal_first=False)
    edges += l_route_edges((ax, y), (bx, y))          # horizontal on row y
    edges += l_route_edges((bx, y), (bx, by), horizontal_first=False)
    return edges


def _best_pattern_reference(grid: RoutingGrid, a: GCell, b: GCell,
                            penalty: float) -> Optional[List[Edge]]:
    """Cheapest overflow-free L/Z pattern, scanned per edge.

    Candidate order matches the vectorized engine exactly: HVH with the
    vertical run at each column (ascending), then VHV with the
    horizontal run at each row (ascending); first strict minimum wins.
    """
    (ax, ay), (bx, by) = a, b
    x_lo, x_hi = min(ax, bx), max(ax, bx)
    y_lo, y_hi = min(ay, by), max(ay, by)

    def evaluate(edges: List[Edge]) -> Tuple[float, int]:
        cost = 0.0
        over_total = 0
        for direction, ex, ey in edges:
            demand = int(grid.demand[direction][ex, ey])
            over = demand + 1 - grid.capacity(direction)
            cost += 1.0 + grid.history[direction][ex, ey]
            if over > 0:
                cost += penalty * over
                over_total += over
        return cost, over_total

    if ay == by or ax == bx:           # straight: one candidate
        edges = l_route_edges(a, b)
        _, over_total = evaluate(edges)
        return edges if over_total == 0 else None

    best: Optional[List[Edge]] = None
    best_cost = float("inf")
    for x in range(x_lo, x_hi + 1):
        edges = _pattern_edges_hvh(a, b, x)
        cost, over_total = evaluate(edges)
        if over_total == 0 and cost < best_cost:
            best, best_cost = edges, cost
    for y in range(y_lo, y_hi + 1):
        edges = _pattern_edges_vhv(a, b, y)
        cost, over_total = evaluate(edges)
        if over_total == 0 and cost < best_cost:
            best, best_cost = edges, cost
    return best


def route_reference(router, grid: RoutingGrid,
                    net_points: Dict[str, List[Tuple[float, float]]],
                    warm: Dict[Signature, List[np.ndarray]]
                    ) -> RoutingResult:
    """Route all nets with the per-edge reference engine."""
    t0 = time.perf_counter()
    names = sorted(net_points)
    routes: Dict[str, NetRoute] = {}
    seg_net: List[int] = []
    seg_pins: List[Tuple[GCell, GCell]] = []
    seg_edges: List[List[Edge]] = []
    net_first: List[int] = []
    routes_reused = 0
    for i, name in enumerate(names):
        pins = [grid.gcell_of(p) for p in net_points[name]]
        signature = gcell_signature(pins)
        segments = mst_segments(pins)
        routes[name] = NetRoute(name=name, pins=pins, segments=segments,
                                signature=signature)
        net_first.append(len(seg_edges))
        cached = warm.get(signature)
        reuse = cached is not None and len(cached) == len(segments)
        if reuse:
            routes_reused += 1
        for j, (a, b) in enumerate(segments):
            edges = (grid.decode_edge_ids(cached[j]) if reuse
                     else _best_l_reference(grid, a, b))
            grid.add_demand(edges)
            seg_net.append(i)
            seg_pins.append((a, b))
            seg_edges.append(edges)
    net_first.append(len(seg_edges))
    t_init = time.perf_counter() - t0

    t0 = time.perf_counter()
    rng = np.random.default_rng(router.seed)
    iterations = 0
    plateau = 0
    previous = None
    rerouted_nets: set = set()
    segments_rerouted = 0
    for iteration in range(router.max_iterations):
        violations = grid.overflow_total()
        if violations == 0:
            break
        if previous is not None and violations >= previous * PLATEAU_RATIO:
            plateau += 1
            if plateau >= PLATEAU_ROUNDS:
                break
        else:
            plateau = 0
        previous = violations
        iterations = iteration + 1
        over = set(grid.overflowed_edges())
        for direction, ex, ey in over:
            grid.history[direction][ex, ey] += 1.0
        victims = [s for s in range(len(seg_edges))
                   if over.intersection(seg_edges[s])]
        if not victims:
            break
        order = [victims[int(p)]
                 for p in victim_order(len(victims), rng)]
        penalty = PENALTY_STEP * (iteration + 1)
        for s in order:
            grid.add_demand(seg_edges[s], amount=-1)
            a, b = seg_pins[s]
            new_edges = _best_pattern_reference(grid, a, b, penalty)
            if new_edges is None:
                new_edges = maze_route(grid, a, b, overflow_penalty=penalty)
            grid.add_demand(new_edges)
            seg_edges[s] = new_edges
            segments_rerouted += 1
            rerouted_nets.add(seg_net[s])
    t_negotiate = time.perf_counter() - t0

    violations = grid.overflow_total()
    over = set(grid.overflowed_edges())
    overflowed_nets = 0
    h_edges = 0
    total_edges = 0
    for i, name in enumerate(names):
        route = routes[name]
        edges: List[Edge] = []
        for s in range(net_first[i], net_first[i + 1]):
            edges.extend(seg_edges[s])
        route.edges = edges
        route.seg_edge_ids = [grid.edge_ids(seg_edges[s])
                              for s in range(net_first[i], net_first[i + 1])]
        if over.intersection(edges):
            overflowed_nets += 1
        h_edges += sum(1 for d, _, _ in edges if d == HORIZONTAL)
        total_edges += len(edges)
    total_wl = h_edges * grid.gw + (total_edges - h_edges) * grid.gh
    stats = _router_stats(t_init, t_negotiate, len(rerouted_nets),
                          segments_rerouted, routes_reused, iterations,
                          violations, overflowed_nets, total_wl)
    return RoutingResult(grid=grid, routes=routes, violations=violations,
                         overflowed_nets=overflowed_nets,
                         iterations=iterations, total_wirelength=total_wl,
                         engine=REFERENCE, stats=stats)
