"""The global router: initial pattern routing + negotiated rip-up/reroute.

This is the Silicon Ensemble stand-in.  Every net is decomposed into
two-pin segments (MST), routed initially with the cheaper of the two
L-shapes, then overflowed **segments** are iteratively ripped up and
rerouted under a growing congestion/history penalty.  Whatever overflow
survives the final round is reported as **routing violations** — the
proxy for the paper's detailed-routing violation counts (zero overflow
⇒ routable; see DESIGN.md on this substitution).

Two engines implement the same algorithm:

* ``engine="vector"`` (default) — routes are flat numpy edge-id arrays;
  demand accumulation, victim selection and L/Z candidate costing are
  array operations.  Rip-up is *incremental*: only segments crossing an
  overflowed edge are ripped, and each is first offered the cheapest
  overflow-free L/Z pattern (vectorized gathers) before paying for a
  maze search.
* ``engine="reference"`` — the per-edge pure-Python rendition of the
  identical algorithm (see :mod:`repro.route.reference`), retained as
  the equivalence oracle: both engines produce the same violations,
  overflowed-net counts and wirelength (tested property).

All cost comparisons are sums of exactly-representable float64 values
(unit costs, integer history, ``penalty × integer overflow``, and
integer demand sums divided once by capacity), so the two engines take
bit-identical decisions despite summing in different orders.

The router ``seed`` feeds the negotiation's victim ordering (see
:func:`victim_order`), which is what lets the placement-retry loop in
``core.flow`` explore different rip-up schedules on each attempt.

Cross-evaluation route reuse: a :class:`RouteCache` carries the final
per-segment routes of one run, keyed by each net's **pin GCell
signature** (sorted distinct GCells).  A later run over the same grid
warm-starts any net with an unchanged signature from the cached route
instead of re-deriving L-shapes — the mechanism ``core.flow.k_sweep``
uses so adjacent K points stop paying full routing cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import RoutingError
from ..obs import StatsRegistry
from ..place.floorplan import Floorplan
from .grid import GCell, HORIZONTAL, RoutingGrid, RoutingResources, VERTICAL
from .maze import (
    BBOX_MARGIN,
    backtrack_path,
    l_fallback,
    maze_window,
    window_contains,
)
from .steiner import gcell_signature, mst_segments

Point = Tuple[float, float]
Edge = Tuple[int, int, int]
Signature = Tuple[GCell, ...]

#: Engine names.
VECTOR = "vector"
REFERENCE = "reference"
AUTO = "auto"
ENGINES = (VECTOR, REFERENCE, AUTO)

#: ``engine="auto"`` routes designs below this many nets through the
#: per-edge reference engine (lower fixed cost) and everything else
#: through the vectorized engine.  Both engines produce bit-identical
#: results, so the split is purely a wall-clock calibration (see
#: benchmarks/bench_scaling.py::test_routing_engines).
AUTO_NET_THRESHOLD = 64

#: Overflow-penalty growth per negotiation round.
PENALTY_STEP = 4.0

#: Relative-improvement threshold / round budget of plateau detection.
PLATEAU_RATIO = 0.98
PLATEAU_ROUNDS = 3


@dataclass
class NetRoute:
    """The committed route of one net."""

    name: str
    pins: List[GCell]
    segments: List[Tuple[GCell, GCell]]
    edges: List[Edge] = field(default_factory=list)
    signature: Signature = ()
    #: Per-MST-segment flat edge-id arrays (aligned with ``segments``).
    seg_edge_ids: List[np.ndarray] = field(default_factory=list)

    def wirelength(self, grid: RoutingGrid) -> float:
        """Routed wirelength (µm)."""
        return sum(grid.edge_length(direction)
                   for direction, _, _ in self.edges)


@dataclass
class RoutingResult:
    """Summary of a global-routing run."""

    grid: RoutingGrid
    routes: Dict[str, NetRoute]
    violations: int               # total track overflow
    overflowed_nets: int
    iterations: int
    total_wirelength: float       # µm
    engine: str = VECTOR
    #: Router phase timings, work counters and result counts, all under
    #: the ``route.`` namespace: ``route.t_init`` / ``route.t_negotiate``
    #: (times), ``route.nets_rerouted`` / ``route.segments_rerouted`` /
    #: ``route.routes_reused`` / ``route.iterations`` (work),
    #: ``route.violations`` / ``route.overflowed_nets`` (counts) and
    #: ``route.wirelength`` (metric).  ``route.reuse_skipped`` (work) is
    #: 1 when a non-empty warm cache was presented but matched nothing
    #: because the routing grid changed shape (recorded by
    #: :meth:`GlobalRouter.route` on both engines).
    stats: StatsRegistry = field(default_factory=StatsRegistry)

    @property
    def routable(self) -> bool:
        """True when the design fits the routing resources."""
        return self.violations == 0

    def net_wirelength(self, name: str) -> float:
        """Routed wirelength of one net (µm)."""
        return self.routes[name].wirelength(self.grid)


class RouteCache:
    """Cross-evaluation warm-start store (the cross-K reuse key).

    Maps pin GCell signatures to the per-segment edge-id arrays of the
    most recently stored routing result.  A signature fully determines
    the MST decomposition (:func:`repro.route.steiner.gcell_signature`),
    so a cached entry can seed any later net with the same signature on
    a compatible grid.  Routers only *read* the cache; the flow layer
    calls :meth:`store` once per accepted evaluation, which keeps
    retry fan-outs deterministic (every attempt sees the same snapshot).
    """

    def __init__(self) -> None:  # noqa: D107
        self.grid_key: Optional[Tuple[int, int, int, int]] = None
        self.routes: Dict[Signature, List[np.ndarray]] = {}

    @staticmethod
    def _key(grid: RoutingGrid) -> Tuple[int, int, int, int]:
        return (grid.nx, grid.ny, grid.hcap, grid.vcap)

    def clone(self) -> "RouteCache":
        """An independent cache holding the same snapshot.

        The per-segment edge-id arrays are shared (routers never mutate
        them in place — rerouting rebinds a fresh array), but the
        containers are copied, so a clone can be stored into without
        affecting its source.  This is what gives every task of a
        parallel sweep round its own warm-start shard seeded from the
        round's opening snapshot.
        """
        out = RouteCache()
        out.grid_key = self.grid_key
        out.routes = {sig: list(arrs) for sig, arrs in self.routes.items()}
        return out

    def warm_routes(self, grid: RoutingGrid) -> Dict[Signature,
                                                     List[np.ndarray]]:
        """The reusable routes for a grid (empty on grid mismatch)."""
        if self.grid_key != self._key(grid):
            return {}
        return self.routes

    def store(self, result: RoutingResult) -> None:
        """Replace the cache with a result's final routes."""
        self.grid_key = self._key(result.grid)
        self.routes = {route.signature: list(route.seg_edge_ids)
                       for _, route in sorted(result.routes.items())}


def _router_stats(t_init: float, t_negotiate: float, nets_rerouted: int,
                  segments_rerouted: int, routes_reused: int,
                  iterations: int, violations: int, overflowed_nets: int,
                  wirelength: float) -> StatsRegistry:
    """The routing stats registry — one shape for both engines.

    Violations and overflowed nets are *results* (deterministic
    counts); reroute and reuse tallies are *work* (they vary with
    warm-starting and negotiation schedule even when the results are
    bit-identical).  Wirelength is a *metric*: a warm-started net keeps
    its cached (legal) route, so the total can differ from a cold run
    that never needed to detour.
    """
    stats = StatsRegistry()
    stats.time("route.t_init", t_init)
    stats.time("route.t_negotiate", t_negotiate)
    stats.work("route.nets_rerouted", int(nets_rerouted))
    stats.work("route.segments_rerouted", int(segments_rerouted))
    stats.work("route.routes_reused", int(routes_reused))
    stats.work("route.iterations", int(iterations))
    stats.count("route.violations", int(violations))
    stats.count("route.overflowed_nets", int(overflowed_nets))
    stats.metric("route.wirelength", float(wirelength))
    return stats


def victim_order(count: int, rng: np.random.Generator) -> np.ndarray:
    """Seeded processing order for ``count`` victim segments.

    Victims are collected in canonical (net name, segment index) order;
    this permutation — drawn from the router's seeded RNG stream, one
    draw per negotiation round — decides who reroutes first.  Both
    engines consume the identical stream, and placement retries advance
    the seed so each attempt explores a different schedule.
    """
    return rng.permutation(count)


class GlobalRouter:
    """Routes a set of nets over a :class:`RoutingGrid`."""

    def __init__(self, floorplan: Floorplan,
                 resources: Optional[RoutingResources] = None,
                 gcell_rows: int = 2, max_iterations: int = 6,
                 seed: int = 0, engine: str = VECTOR):  # noqa: D107
        if engine not in ENGINES:
            raise RoutingError(f"unknown routing engine {engine!r}; "
                               f"expected one of {ENGINES}")
        self.floorplan = floorplan
        self.resources = resources or RoutingResources()
        self.gcell_rows = gcell_rows
        self.max_iterations = max_iterations
        self.seed = seed
        self.engine = engine

    def route(self, net_points: Dict[str, List[Point]],
              cache: Optional[RouteCache] = None) -> RoutingResult:
        """Route all nets; returns the result with violation counts.

        ``cache`` (read-only here) warm-starts nets whose pin GCell
        signature matches a cached route on a compatible grid.  A
        non-empty cache that matches nothing because the grid changed
        shape is counted as ``route.reuse_skipped`` in the result's
        stats — the one residual way a requested warm start can be
        silently dropped.
        """
        grid = RoutingGrid(self.floorplan, self.resources, self.gcell_rows)
        warm = cache.warm_routes(grid) if cache is not None else {}
        reuse_skipped = int(cache is not None and bool(cache.routes)
                            and not warm)
        engine = self.engine
        if engine == AUTO:
            engine = (REFERENCE if len(net_points) < AUTO_NET_THRESHOLD
                      else VECTOR)
        if engine == REFERENCE:
            from .reference import route_reference
            result = route_reference(self, grid, net_points, warm)
        else:
            result = self._route_vector(grid, net_points, warm)
        result.stats.work("route.reuse_skipped", reuse_skipped)
        return result

    # -- vectorized engine ----------------------------------------------

    def _route_vector(self, grid: RoutingGrid,
                      net_points: Dict[str, List[Point]],
                      warm: Dict[Signature, List[np.ndarray]]
                      ) -> RoutingResult:
        t0 = time.perf_counter()
        names = sorted(net_points)
        routes: Dict[str, NetRoute] = {}
        seg_net: List[int] = []            # owning-net index per segment
        seg_pins: List[Tuple[GCell, GCell]] = []
        seg_ids: List[np.ndarray] = []     # committed edge ids per segment
        net_first: List[int] = []          # first segment index per net
        routes_reused = 0
        demand_flat = grid.demand_flat
        for i, name in enumerate(names):
            pins = [grid.gcell_of(p) for p in net_points[name]]
            signature = gcell_signature(pins)
            segments = mst_segments(pins)
            routes[name] = NetRoute(name=name, pins=pins, segments=segments,
                                    signature=signature)
            net_first.append(len(seg_ids))
            cached = warm.get(signature)
            reuse = cached is not None and len(cached) == len(segments)
            if reuse:
                routes_reused += 1
            for j, (a, b) in enumerate(segments):
                ids = cached[j] if reuse else _best_l_ids(grid, a, b)
                demand_flat[ids] += 1
                seg_net.append(i)
                seg_pins.append((a, b))
                seg_ids.append(ids)
        net_first.append(len(seg_ids))
        t_init = time.perf_counter() - t0

        t0 = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        nseg = len(seg_ids)
        seg_net_arr = np.asarray(seg_net, dtype=np.int64)
        iterations = 0
        plateau = 0
        previous = None
        rerouted_nets: set = set()
        segments_rerouted = 0
        for iteration in range(self.max_iterations):
            violations = grid.overflow_total()
            if violations == 0:
                break
            # Plateau detection: congested designs stop improving after
            # a few negotiation rounds; further rip-up is wasted work.
            if previous is not None and violations >= previous * PLATEAU_RATIO:
                plateau += 1
                if plateau >= PLATEAU_ROUNDS:
                    break
            else:
                plateau = 0
            previous = violations
            iterations = iteration + 1
            over_mask = demand_flat > grid.capacity_flat
            grid.history_flat[over_mask] += 1.0
            if nseg == 0:
                break
            lens = np.fromiter((len(ids) for ids in seg_ids),
                               dtype=np.int64, count=nseg)
            all_ids = (np.concatenate(seg_ids) if lens.sum()
                       else np.empty(0, dtype=np.int64))
            seg_of = np.repeat(np.arange(nseg), lens)
            victims = np.unique(seg_of[over_mask[all_ids]])
            if victims.size == 0:
                break
            order = victims[victim_order(victims.size, rng)]
            penalty = PENALTY_STEP * (iteration + 1)
            for s in order:
                s = int(s)
                ids = seg_ids[s]
                demand_flat[ids] -= 1
                a, b = seg_pins[s]
                new_ids = _best_pattern_ids(grid, a, b, penalty)
                if new_ids is None:
                    new_ids = _maze_ids(grid, a, b, penalty)
                demand_flat[new_ids] += 1
                seg_ids[s] = new_ids
                segments_rerouted += 1
                rerouted_nets.add(seg_net[s])
        t_negotiate = time.perf_counter() - t0

        violations = grid.overflow_total()
        over_mask = demand_flat > grid.capacity_flat
        if nseg:
            lens = np.fromiter((len(ids) for ids in seg_ids),
                               dtype=np.int64, count=nseg)
            all_ids = (np.concatenate(seg_ids) if lens.sum()
                       else np.empty(0, dtype=np.int64))
            edge_net = np.repeat(seg_net_arr, lens)
            overflowed_nets = int(
                np.unique(edge_net[over_mask[all_ids]]).size)
            h_edges = int((all_ids < grid.num_h_edges).sum())
            total_wl = h_edges * grid.gw + (all_ids.size - h_edges) * grid.gh
        else:
            overflowed_nets = 0
            total_wl = 0.0
        for i, name in enumerate(names):
            route = routes[name]
            route.seg_edge_ids = seg_ids[net_first[i]:net_first[i + 1]]
            route.edges = (
                grid.decode_edge_ids(np.concatenate(route.seg_edge_ids))
                if route.seg_edge_ids else [])
        stats = _router_stats(t_init, t_negotiate, len(rerouted_nets),
                              segments_rerouted, routes_reused, iterations,
                              violations, overflowed_nets, total_wl)
        return RoutingResult(grid=grid, routes=routes, violations=violations,
                             overflowed_nets=overflowed_nets,
                             iterations=iterations,
                             total_wirelength=total_wl,
                             engine=VECTOR, stats=stats)

    @staticmethod
    def _best_l(grid: RoutingGrid, a: GCell, b: GCell) -> List[Edge]:
        """The L-shape with lower present congestion (edge tuples)."""
        return grid.decode_edge_ids(_best_l_ids(grid, a, b))


# -- vectorized candidate generation -----------------------------------


def _h_run_ids(grid: RoutingGrid, x_lo: int, x_hi: int, y: int) -> np.ndarray:
    """Ids of the horizontal edges spanning columns [x_lo, x_hi) at row y."""
    return np.arange(x_lo, x_hi, dtype=np.int64) * grid.ny + y


def _v_run_ids(grid: RoutingGrid, x: int, y_lo: int, y_hi: int) -> np.ndarray:
    """Ids of the vertical edges spanning rows [y_lo, y_hi) at column x."""
    return (grid.num_h_edges + x * (grid.ny - 1)
            + np.arange(y_lo, y_hi, dtype=np.int64))


def _best_l_ids(grid: RoutingGrid, a: GCell, b: GCell) -> np.ndarray:
    """The cheaper L-shape between two GCells, as flat edge ids.

    Load of a candidate = (Σ demand over its horizontal edges) / hcap +
    (Σ demand over its vertical edges) / vcap — the same quantity the
    reference engine computes from per-edge sums, exact in float64.
    Ties keep the horizontal-first L.
    """
    (ax, ay), (bx, by) = a, b
    x_lo, x_hi = min(ax, bx), max(ax, bx)
    y_lo, y_hi = min(ay, by), max(ay, by)
    if ay == by:                       # straight (or empty) horizontal
        return _h_run_ids(grid, x_lo, x_hi, ay)
    if ax == bx:                       # straight vertical
        return _v_run_ids(grid, ax, y_lo, y_hi)
    # Loads come from strided 2-D demand slices — no index arrays are
    # materialised for the losing candidate (int32 sums promote to
    # int64, so the totals equal the flat-gather formulation exactly).
    dh = grid.demand[HORIZONTAL]
    dv = grid.demand[VERTICAL]
    load_h = (int(dh[x_lo:x_hi, ay].sum()) / grid.hcap
              + int(dv[bx, y_lo:y_hi].sum()) / grid.vcap)
    load_v = (int(dh[x_lo:x_hi, by].sum()) / grid.hcap
              + int(dv[ax, y_lo:y_hi].sum()) / grid.vcap)
    if load_h <= load_v:
        return np.concatenate([_h_run_ids(grid, x_lo, x_hi, ay),
                               _v_run_ids(grid, bx, y_lo, y_hi)])
    return np.concatenate([_v_run_ids(grid, ax, y_lo, y_hi),
                           _h_run_ids(grid, x_lo, x_hi, by)])


def _maze_ids(grid: RoutingGrid, a: GCell, b: GCell,
              penalty: float, margin: int = BBOX_MARGIN) -> np.ndarray:
    """Vectorized maze search: flat ids of the cheapest window path.

    Computes the same distance field as :func:`repro.route.maze
    .maze_route`'s Dijkstra, but by directional sweep relaxation: each
    pass relaxes every row left-to-right and right-to-left and every
    column bottom-up and top-down with prefix-sum/cumulative-minimum
    scans, repeated until the field stops changing.  A path with *k*
    straight runs is fully relaxed after *k* passes, so the loop
    terminates at the exact Dijkstra fixpoint (all summands are
    exactly-representable float64 values).  The canonical backtrack
    shared with the reference engine then yields the identical path.
    """
    if a == b:
        return np.empty(0, dtype=np.int64)
    window = maze_window(grid, a, b, margin)
    if not (window_contains(window, a) and window_contains(window, b)):
        return grid.edge_ids(l_fallback(grid, a, b, penalty))
    x_lo, x_hi, y_lo, y_hi = window
    w, h = x_hi - x_lo + 1, y_hi - y_lo + 1

    dh = grid.demand[HORIZONTAL][x_lo:x_hi, y_lo:y_hi + 1]
    wh = (1.0 + grid.history[HORIZONTAL][x_lo:x_hi, y_lo:y_hi + 1]
          + penalty * np.maximum(dh.astype(np.int64) + 1 - grid.hcap, 0))
    dv = grid.demand[VERTICAL][x_lo:x_hi + 1, y_lo:y_hi]
    wv = (1.0 + grid.history[VERTICAL][x_lo:x_hi + 1, y_lo:y_hi]
          + penalty * np.maximum(dv.astype(np.int64) + 1 - grid.vcap, 0))
    # Prefix sums of run costs: crossing columns [x0, x) on row y costs
    # pw[x, y] - pw[x0, y]; integer-valued, so differences are exact.
    pw = np.zeros((w, h))
    np.cumsum(wh, axis=0, out=pw[1:])
    pv = np.zeros((w, h))
    np.cumsum(wv, axis=1, out=pv[:, 1:])

    dist = np.full((w, h), np.inf)
    dist[a[0] - x_lo, a[1] - y_lo] = 0.0
    t = np.empty((w, h))
    prev = np.empty((w, h))
    passes = 0              # the first pass always lowers distances
    while True:
        if passes:
            np.copyto(prev, dist)
        np.subtract(dist, pw, out=t)       # rightward sweep
        np.minimum.accumulate(t, axis=0, out=t)
        t += pw
        np.minimum(dist, t, out=dist)
        np.add(dist, pw, out=t)            # leftward sweep
        rt = t[::-1]
        np.minimum.accumulate(rt, axis=0, out=rt)
        t -= pw
        np.minimum(dist, t, out=dist)
        np.subtract(dist, pv, out=t)       # upward sweep
        np.minimum.accumulate(t, axis=1, out=t)
        t += pv
        np.minimum(dist, t, out=dist)
        np.add(dist, pv, out=t)            # downward sweep
        rt = t[:, ::-1]
        np.minimum.accumulate(rt, axis=1, out=rt)
        t -= pv
        np.minimum(dist, t, out=dist)
        if passes and np.array_equal(prev, dist):
            break
        passes += 1
    if not np.isfinite(dist[b[0] - x_lo, b[1] - y_lo]):
        return grid.edge_ids(l_fallback(grid, a, b, penalty))

    dl = dist.tolist()
    whl = wh.tolist()
    wvl = wv.tolist()
    edges = backtrack_path(
        lambda cell: dl[cell[0] - x_lo][cell[1] - y_lo],
        lambda direction, ex, ey: (
            whl[ex - x_lo][ey - y_lo] if direction == HORIZONTAL
            else wvl[ex - x_lo][ey - y_lo]),
        window, a, b)
    return grid.edge_ids(edges)


def _best_pattern_ids(grid: RoutingGrid, a: GCell, b: GCell,
                      penalty: float) -> Optional[np.ndarray]:
    """Cheapest **overflow-free** L/Z pattern between two GCells.

    Candidates, in canonical order: HVH patterns with the vertical run
    at each column x ∈ [min, max] (the two Ls are the extremes), then
    VHV patterns with the horizontal run at each row y.  Edge cost
    matches the maze search (1 + history + penalty × would-be
    overflow); a candidate is eligible only when committing it causes
    no overflow.  Returns ``None`` when every candidate overflows —
    the caller then falls back to :func:`repro.route.maze.maze_route`.

    All candidate costs are evaluated with prefix-sum gathers; because
    the summands are exactly representable, the selection is
    bit-identical to the reference engine's per-edge scan.
    """
    (ax, ay), (bx, by) = a, b
    demand = grid.demand_flat
    history = grid.history_flat
    hcap, vcap = grid.hcap, grid.vcap
    x_lo, x_hi = min(ax, bx), max(ax, bx)
    y_lo, y_hi = min(ay, by), max(ay, by)

    def over_of(ids: np.ndarray, cap: int) -> np.ndarray:
        # Capacity is uniform per direction, so a scalar stands in for
        # the per-edge gather; int32 demand cannot overflow here.
        return np.maximum(demand[ids] + 1 - cap, 0)

    if ay == by or ax == bx:           # straight: one candidate
        ids, cap = ((_h_run_ids(grid, x_lo, x_hi, ay), hcap) if ay == by
                    else (_v_run_ids(grid, ax, y_lo, y_hi), vcap))
        return ids if int(over_of(ids, cap).sum()) == 0 else None

    def run_cost(ids: np.ndarray, cap: int) -> Tuple[np.ndarray, np.ndarray]:
        over = over_of(ids, cap)
        return 1.0 + history[ids] + penalty * over, over

    def prefix(values: np.ndarray) -> np.ndarray:
        out = np.empty(len(values) + 1, dtype=values.dtype)
        out[0] = 0
        np.cumsum(values, out=out[1:])
        return out

    # HVH: horizontal on row ay from ax to x, vertical at column x,
    # horizontal on row by from x to bx, for every x in [x_lo, x_hi].
    xs = np.arange(x_lo, x_hi + 1, dtype=np.int64)
    w_row_a, o_row_a = run_cost(_h_run_ids(grid, x_lo, x_hi, ay), hcap)
    w_row_b, o_row_b = run_cost(_h_run_ids(grid, x_lo, x_hi, by), hcap)
    pw_a, po_a = prefix(w_row_a), prefix(o_row_a)
    pw_b, po_b = prefix(w_row_b), prefix(o_row_b)
    vert_ids = (grid.num_h_edges + xs[:, None] * (grid.ny - 1)
                + np.arange(y_lo, y_hi, dtype=np.int64)[None, :])
    vert_over = np.maximum(demand[vert_ids] + 1 - vcap, 0)
    vert_cost = (1.0 + history[vert_ids] + penalty * vert_over).sum(axis=1)
    pos = xs - x_lo
    cost_hvh = (np.abs(pw_a[pos] - pw_a[ax - x_lo])
                + np.abs(pw_b[pos] - pw_b[bx - x_lo]) + vert_cost)
    over_hvh = (np.abs(po_a[pos] - po_a[ax - x_lo])
                + np.abs(po_b[pos] - po_b[bx - x_lo])
                + vert_over.sum(axis=1))

    # VHV: vertical at column ax from ay to y, horizontal on row y,
    # vertical at column bx from y to by, for every y in [y_lo, y_hi].
    ys = np.arange(y_lo, y_hi + 1, dtype=np.int64)
    w_col_a, o_col_a = run_cost(_v_run_ids(grid, ax, y_lo, y_hi), vcap)
    w_col_b, o_col_b = run_cost(_v_run_ids(grid, bx, y_lo, y_hi), vcap)
    pw_ca, po_ca = prefix(w_col_a), prefix(o_col_a)
    pw_cb, po_cb = prefix(w_col_b), prefix(o_col_b)
    horiz_ids = (np.arange(x_lo, x_hi, dtype=np.int64)[None, :] * grid.ny
                 + ys[:, None])
    horiz_over = np.maximum(demand[horiz_ids] + 1 - hcap, 0)
    horiz_cost = (1.0 + history[horiz_ids]
                  + penalty * horiz_over).sum(axis=1)
    ypos = ys - y_lo
    cost_vhv = (np.abs(pw_ca[ypos] - pw_ca[ay - y_lo])
                + np.abs(pw_cb[ypos] - pw_cb[by - y_lo]) + horiz_cost)
    over_vhv = (np.abs(po_ca[ypos] - po_ca[ay - y_lo])
                + np.abs(po_cb[ypos] - po_cb[by - y_lo])
                + horiz_over.sum(axis=1))

    costs = np.concatenate([cost_hvh, cost_vhv])
    overs = np.concatenate([over_hvh, over_vhv])
    feasible = overs == 0
    if not feasible.any():
        return None
    best = int(np.argmin(np.where(feasible, costs, np.inf)))
    if best < len(xs):                 # HVH at column x
        x = x_lo + best
        return np.concatenate([
            _h_run_ids(grid, min(ax, x), max(ax, x), ay),
            _v_run_ids(grid, x, y_lo, y_hi),
            _h_run_ids(grid, min(x, bx), max(x, bx), by)])
    y = y_lo + (best - len(xs))        # VHV at row y
    return np.concatenate([
        _v_run_ids(grid, ax, min(ay, y), max(ay, y)),
        _h_run_ids(grid, x_lo, x_hi, y),
        _v_run_ids(grid, bx, min(y, by), max(y, by))])
