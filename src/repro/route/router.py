"""The global router: initial pattern routing + negotiated rip-up/reroute.

This is the Silicon Ensemble stand-in.  Every net is decomposed into
two-pin segments (MST), routed initially with the cheaper of the two
L-shapes, then overflowed nets are iteratively ripped up and maze-
rerouted under a growing congestion/history penalty.  Whatever overflow
survives the final round is reported as **routing violations** — the
proxy for the paper's detailed-routing violation counts (zero overflow
⇒ routable; see DESIGN.md on this substitution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from ..place.floorplan import Floorplan
from .grid import GCell, RoutingGrid, RoutingResources
from .maze import l_route_edges, maze_route
from .steiner import mst_segments

Point = Tuple[float, float]
Edge = Tuple[int, int, int]


@dataclass
class NetRoute:
    """The committed route of one net."""

    name: str
    pins: List[GCell]
    segments: List[Tuple[GCell, GCell]]
    edges: List[Edge] = field(default_factory=list)

    def wirelength(self, grid: RoutingGrid) -> float:
        """Routed wirelength (µm)."""
        return sum(grid.edge_length(direction)
                   for direction, _, _ in self.edges)


@dataclass
class RoutingResult:
    """Summary of a global-routing run."""

    grid: RoutingGrid
    routes: Dict[str, NetRoute]
    violations: int               # total track overflow
    overflowed_nets: int
    iterations: int
    total_wirelength: float       # µm

    @property
    def routable(self) -> bool:
        """True when the design fits the routing resources."""
        return self.violations == 0

    def net_wirelength(self, name: str) -> float:
        """Routed wirelength of one net (µm)."""
        return self.routes[name].wirelength(self.grid)


class GlobalRouter:
    """Routes a set of nets over a :class:`RoutingGrid`."""

    def __init__(self, floorplan: Floorplan,
                 resources: Optional[RoutingResources] = None,
                 gcell_rows: int = 2, max_iterations: int = 6,
                 seed: int = 0):  # noqa: D107
        self.floorplan = floorplan
        self.resources = resources or RoutingResources()
        self.gcell_rows = gcell_rows
        self.max_iterations = max_iterations
        self.seed = seed

    def route(self, net_points: Dict[str, List[Point]]) -> RoutingResult:
        """Route all nets; returns the result with violation counts."""
        grid = RoutingGrid(self.floorplan, self.resources, self.gcell_rows)
        routes: Dict[str, NetRoute] = {}
        for name in sorted(net_points):
            pins = [grid.gcell_of(p) for p in net_points[name]]
            segments = mst_segments(pins)
            routes[name] = NetRoute(name=name, pins=pins, segments=segments)

        # Initial routing: cheaper of the two L-shapes per segment.
        for name in sorted(routes):
            route = routes[name]
            for a, b in route.segments:
                edges = self._best_l(grid, a, b)
                grid.add_demand(edges)
                route.edges.extend(edges)

        iterations = 0
        plateau = 0
        previous = None
        for iteration in range(self.max_iterations):
            violations = grid.overflow_total()
            if violations == 0:
                break
            # Plateau detection: congested designs stop improving after
            # a few negotiation rounds; further rip-up is wasted work.
            if previous is not None and violations >= previous * 0.98:
                plateau += 1
                if plateau >= 3:
                    break
            else:
                plateau = 0
            previous = violations
            iterations = iteration + 1
            over_edges = set(grid.overflowed_edges())
            # Accumulate history on congested edges (negotiation).
            for direction, ex, ey in over_edges:
                grid.history[direction][ex, ey] += 1.0
            victims = [name for name in sorted(routes)
                       if over_edges.intersection(routes[name].edges)]
            penalty = 4.0 * (iteration + 1)
            for name in victims:
                route = routes[name]
                grid.add_demand(route.edges, amount=-1)
                route.edges = []
                for a, b in route.segments:
                    edges = maze_route(grid, a, b, overflow_penalty=penalty)
                    grid.add_demand(edges)
                    route.edges.extend(edges)

        violations = grid.overflow_total()
        over_edges = set(grid.overflowed_edges())
        overflowed_nets = sum(
            1 for route in routes.values()
            if over_edges.intersection(route.edges))
        total_wl = sum(route.wirelength(grid) for route in routes.values())
        return RoutingResult(grid=grid, routes=routes, violations=violations,
                             overflowed_nets=overflowed_nets,
                             iterations=iterations,
                             total_wirelength=total_wl)

    @staticmethod
    def _best_l(grid: RoutingGrid, a: GCell, b: GCell) -> List[Edge]:
        """The L-shape with lower present congestion."""
        first = l_route_edges(a, b, horizontal_first=True)
        second = l_route_edges(a, b, horizontal_first=False)
        if first == second:
            return first

        def load(edges: List[Edge]) -> float:
            return sum(grid.edge_congestion(*e) for e in edges)

        return first if load(first) <= load(second) else second
