"""Global-routing substrate: grid, maze routing, congestion maps."""

from .congestion import CongestionStats, congestion_stats, render_congestion_map
from .grid import GCell, HORIZONTAL, RoutingGrid, RoutingResources, VERTICAL
from .maze import l_route_edges, maze_route
from .router import GlobalRouter, NetRoute, RoutingResult
from .steiner import hpwl_of_points, manhattan, mst_segments

__all__ = [
    "CongestionStats",
    "GCell",
    "GlobalRouter",
    "HORIZONTAL",
    "NetRoute",
    "RoutingGrid",
    "RoutingResources",
    "RoutingResult",
    "VERTICAL",
    "congestion_stats",
    "hpwl_of_points",
    "l_route_edges",
    "manhattan",
    "maze_route",
    "mst_segments",
    "render_congestion_map",
]
