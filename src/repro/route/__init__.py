"""Global-routing substrate: grid, maze routing, congestion maps."""

from .congestion import CongestionStats, congestion_stats, render_congestion_map
from .grid import GCell, HORIZONTAL, RoutingGrid, RoutingResources, VERTICAL
from .maze import l_route_edges, maze_route
from .router import (
    ENGINES,
    REFERENCE,
    VECTOR,
    GlobalRouter,
    NetRoute,
    RouteCache,
    RoutingResult,
    victim_order,
)
from .steiner import gcell_signature, hpwl_of_points, manhattan, mst_segments

__all__ = [
    "CongestionStats",
    "ENGINES",
    "GCell",
    "GlobalRouter",
    "HORIZONTAL",
    "NetRoute",
    "REFERENCE",
    "RouteCache",
    "RoutingGrid",
    "RoutingResources",
    "RoutingResult",
    "VECTOR",
    "VERTICAL",
    "congestion_stats",
    "gcell_signature",
    "hpwl_of_points",
    "l_route_edges",
    "manhattan",
    "maze_route",
    "mst_segments",
    "render_congestion_map",
    "victim_order",
]
