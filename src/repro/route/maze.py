"""Congestion-aware maze routing (PathFinder-style cost).

A* search over the GCell graph for one two-pin connection.  Edge cost
combines a unit base cost, a present-congestion penalty and accumulated
history, which is the negotiation mechanism that lets the rip-up-and-
reroute loop converge on routable designs and expose true overflow on
unroutable ones.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from .grid import GCell, HORIZONTAL, RoutingGrid, VERTICAL

#: Cost multiplier per unit of (would-be) overflow on an edge.
OVERFLOW_PENALTY = 8.0
#: Weight of accumulated history cost.
HISTORY_WEIGHT = 1.0
#: Bounding-box margin (in GCells) around the two pins.
BBOX_MARGIN = 6


def edge_cost(grid: RoutingGrid, direction: int, ex: int, ey: int,
              overflow_penalty: float = OVERFLOW_PENALTY) -> float:
    """Cost of pushing one more track through an edge."""
    demand = grid.demand[direction][ex, ey]
    capacity = grid.capacity(direction)
    cost = 1.0 + HISTORY_WEIGHT * grid.history[direction][ex, ey]
    if demand + 1 > capacity:
        cost += overflow_penalty * (demand + 1 - capacity)
    return cost


def maze_route(grid: RoutingGrid, source: GCell, target: GCell,
               margin: int = BBOX_MARGIN,
               overflow_penalty: float = OVERFLOW_PENALTY
               ) -> List[Tuple[int, int, int]]:
    """A* route between two GCells; returns the list of edges used.

    The search is restricted to the pin bounding box plus ``margin``
    GCells of detour room (detours are exactly the wire meandering the
    paper attributes congestion-induced delay to).
    """
    if source == target:
        return []
    x_lo = max(0, min(source[0], target[0]) - margin)
    x_hi = min(grid.nx - 1, max(source[0], target[0]) + margin)
    y_lo = max(0, min(source[1], target[1]) - margin)
    y_hi = min(grid.ny - 1, max(source[1], target[1]) + margin)

    tx, ty = target
    # Hot loop: hoist array and scalar lookups out of the search.
    demand_h = grid.demand[HORIZONTAL]
    demand_v = grid.demand[VERTICAL]
    history_h = grid.history[HORIZONTAL]
    history_v = grid.history[VERTICAL]
    hcap = grid.hcap
    vcap = grid.vcap
    inf = float("inf")

    best: Dict[GCell, float] = {source: 0.0}
    parent: Dict[GCell, GCell] = {}
    heap: List[Tuple[float, float, GCell]] = [
        (abs(source[0] - tx) + abs(source[1] - ty), 0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        _, g, cell = pop(heap)
        if cell == target:
            break
        if g > best.get(cell, inf):
            continue
        cx, cy = cell
        for nxt, horizontal, ex, ey in (
                ((cx - 1, cy), True, cx - 1, cy),
                ((cx + 1, cy), True, cx, cy),
                ((cx, cy - 1), False, cx, cy - 1),
                ((cx, cy + 1), False, cx, cy)):
            nx, ny = nxt
            if not (x_lo <= nx <= x_hi and y_lo <= ny <= y_hi):
                continue
            if horizontal:
                demand = demand_h[ex, ey]
                cost = 1.0 + HISTORY_WEIGHT * history_h[ex, ey]
                if demand + 1 > hcap:
                    cost += overflow_penalty * (demand + 1 - hcap)
            else:
                demand = demand_v[ex, ey]
                cost = 1.0 + HISTORY_WEIGHT * history_v[ex, ey]
                if demand + 1 > vcap:
                    cost += overflow_penalty * (demand + 1 - vcap)
            ng = g + cost
            if ng < best.get(nxt, inf):
                best[nxt] = ng
                parent[nxt] = cell
                push(heap, (ng + abs(nx - tx) + abs(ny - ty), ng, nxt))
    if target not in parent and source != target:
        # Unreachable inside the window (cannot happen with a positive
        # margin, but guard anyway): fall back to an L-shape.
        return l_route_edges(source, target)
    edges: List[Tuple[int, int, int]] = []
    cell = target
    while cell != source:
        prev = parent[cell]
        edges.append(_edge_of(prev, cell))
        cell = prev
    edges.reverse()
    return edges


def _edge_of(a: GCell, b: GCell) -> Tuple[int, int, int]:
    if a[1] == b[1]:
        return (HORIZONTAL, min(a[0], b[0]), a[1])
    return (VERTICAL, a[0], min(a[1], b[1]))


def l_route_edges(source: GCell, target: GCell,
                  horizontal_first: bool = True) -> List[Tuple[int, int, int]]:
    """The edges of an L-shaped route."""
    edges: List[Tuple[int, int, int]] = []
    sx, sy = source
    tx, ty = target
    if horizontal_first:
        for x in range(min(sx, tx), max(sx, tx)):
            edges.append((HORIZONTAL, x, sy))
        for y in range(min(sy, ty), max(sy, ty)):
            edges.append((VERTICAL, tx, y))
    else:
        for y in range(min(sy, ty), max(sy, ty)):
            edges.append((VERTICAL, sx, y))
        for x in range(min(sx, tx), max(sx, tx)):
            edges.append((HORIZONTAL, x, ty))
    return edges
