"""Congestion-aware maze routing (PathFinder-style cost).

Shortest-path search over the GCell graph for one two-pin connection.
Edge cost combines a unit base cost, a present-congestion penalty and
accumulated history, which is the negotiation mechanism that lets the
rip-up-and-reroute loop converge on routable designs and expose true
overflow on unroutable ones.

The search is split into two phases so the two router engines can share
exact decisions:

1. a **distance field** over the search window — per-edge Dijkstra here
   (the reference engine's rendition), vectorized sweep relaxation in
   :mod:`repro.route.router` — and
2. a **canonical backtrack** (:func:`backtrack_path`) that walks from
   the target to the source choosing, at every step, the first neighbor
   in a fixed scan order whose distance plus edge cost equals the
   current cell's distance.

Because every edge cost is an exactly-representable float64 (unit base,
integer history, penalty x integer overflow), both engines compute
bit-identical distance fields, and the shared backtrack then yields
bit-identical paths.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Tuple

from .grid import GCell, HORIZONTAL, RoutingGrid, VERTICAL

#: Cost multiplier per unit of (would-be) overflow on an edge.
OVERFLOW_PENALTY = 8.0
#: Weight of accumulated history cost.
HISTORY_WEIGHT = 1.0
#: Bounding-box margin (in GCells) around the two pins.
BBOX_MARGIN = 6

Window = Tuple[int, int, int, int]


def edge_cost(grid: RoutingGrid, direction: int, ex: int, ey: int,
              overflow_penalty: float = OVERFLOW_PENALTY) -> float:
    """Cost of pushing one more track through an edge."""
    demand = grid.demand[direction][ex, ey]
    capacity = grid.capacity(direction)
    cost = 1.0 + HISTORY_WEIGHT * grid.history[direction][ex, ey]
    if demand + 1 > capacity:
        cost += overflow_penalty * (demand + 1 - capacity)
    return cost


def maze_window(grid: RoutingGrid, source: GCell, target: GCell,
                margin: int) -> Window:
    """The clipped search window (x_lo, x_hi, y_lo, y_hi), inclusive.

    The window is the pin bounding box plus ``margin`` GCells of detour
    room (detours are exactly the wire meandering the paper attributes
    congestion-induced delay to).
    """
    x_lo = max(0, min(source[0], target[0]) - margin)
    x_hi = min(grid.nx - 1, max(source[0], target[0]) + margin)
    y_lo = max(0, min(source[1], target[1]) - margin)
    y_hi = min(grid.ny - 1, max(source[1], target[1]) + margin)
    return x_lo, x_hi, y_lo, y_hi


def window_contains(window: Window, cell: GCell) -> bool:
    """Whether a GCell lies inside a search window."""
    x_lo, x_hi, y_lo, y_hi = window
    return x_lo <= cell[0] <= x_hi and y_lo <= cell[1] <= y_hi


def l_fallback(grid: RoutingGrid, source: GCell, target: GCell,
               overflow_penalty: float) -> List[Tuple[int, int, int]]:
    """Deterministic fallback when the window search cannot connect.

    Returns the cheaper of the two L-shapes under the same congestion
    cost the search optimises (tie keeps horizontal-first).  An L
    between the pins never leaves the pin bounding box, so the fallback
    stays inside any window that contains both pins.
    """
    first = l_route_edges(source, target, horizontal_first=True)
    second = l_route_edges(source, target, horizontal_first=False)
    if first == second:
        return first
    cost_first = sum(edge_cost(grid, *e, overflow_penalty=overflow_penalty)
                     for e in first)
    cost_second = sum(edge_cost(grid, *e, overflow_penalty=overflow_penalty)
                      for e in second)
    return first if cost_first <= cost_second else second


def backtrack_path(dist_of: Callable[[GCell], float],
                   cost_of: Callable[[int, int, int], float],
                   window: Window, source: GCell, target: GCell
                   ) -> List[Tuple[int, int, int]]:
    """Canonical walk from target to source over a distance field.

    At each cell the neighbors are scanned in a fixed order (left,
    right, down, up); the first one whose distance plus the connecting
    edge's cost **exactly equals** the cell's distance is taken.  With
    exact distances the equality always holds for at least one neighbor
    of every reachable cell, and the fixed order makes the chosen path
    unique — independent of how the distance field was computed.
    """
    edges: List[Tuple[int, int, int]] = []
    cell = target
    while cell != source:
        cx, cy = cell
        d = dist_of(cell)
        for nxt, direction, ex, ey in (
                ((cx - 1, cy), HORIZONTAL, cx - 1, cy),
                ((cx + 1, cy), HORIZONTAL, cx, cy),
                ((cx, cy - 1), VERTICAL, cx, cy - 1),
                ((cx, cy + 1), VERTICAL, cx, cy)):
            if not window_contains(window, nxt):
                continue
            if dist_of(nxt) + cost_of(direction, ex, ey) == d:
                edges.append((direction, ex, ey))
                cell = nxt
                break
        else:  # pragma: no cover - impossible for an exact field
            raise AssertionError(f"inconsistent distance field at {cell}")
    edges.reverse()
    return edges


def maze_route(grid: RoutingGrid, source: GCell, target: GCell,
               margin: int = BBOX_MARGIN,
               overflow_penalty: float = OVERFLOW_PENALTY
               ) -> List[Tuple[int, int, int]]:
    """Shortest congestion-cost route between two GCells (edge tuples).

    Runs Dijkstra to exhaustion over the search window (so every cell's
    distance is final), then reconstructs the path with the canonical
    backtrack.  Falls back to the cheaper L-shape when the window
    cannot connect the pins (degenerate or inverted windows).
    """
    if source == target:
        return []
    window = maze_window(grid, source, target, margin)
    if not (window_contains(window, source)
            and window_contains(window, target)):
        return l_fallback(grid, source, target, overflow_penalty)
    x_lo, x_hi, y_lo, y_hi = window

    # Hot loop: hoist array and scalar lookups out of the search.
    demand_h = grid.demand[HORIZONTAL]
    demand_v = grid.demand[VERTICAL]
    history_h = grid.history[HORIZONTAL]
    history_v = grid.history[VERTICAL]
    hcap = grid.hcap
    vcap = grid.vcap
    inf = float("inf")

    best: Dict[GCell, float] = {source: 0.0}
    heap: List[Tuple[float, GCell]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        g, cell = pop(heap)
        if g > best.get(cell, inf):
            continue
        cx, cy = cell
        for nxt, horizontal, ex, ey in (
                ((cx - 1, cy), True, cx - 1, cy),
                ((cx + 1, cy), True, cx, cy),
                ((cx, cy - 1), False, cx, cy - 1),
                ((cx, cy + 1), False, cx, cy)):
            nx, ny = nxt
            if not (x_lo <= nx <= x_hi and y_lo <= ny <= y_hi):
                continue
            if horizontal:
                demand = demand_h[ex, ey]
                cost = 1.0 + HISTORY_WEIGHT * history_h[ex, ey]
                if demand + 1 > hcap:
                    cost += overflow_penalty * (demand + 1 - hcap)
            else:
                demand = demand_v[ex, ey]
                cost = 1.0 + HISTORY_WEIGHT * history_v[ex, ey]
                if demand + 1 > vcap:
                    cost += overflow_penalty * (demand + 1 - vcap)
            ng = g + cost
            if ng < best.get(nxt, inf):
                best[nxt] = ng
                push(heap, (ng, nxt))
    if best.get(target, inf) == inf:
        return l_fallback(grid, source, target, overflow_penalty)
    return backtrack_path(
        lambda cell: best.get(cell, inf),
        lambda direction, ex, ey: edge_cost(
            grid, direction, ex, ey, overflow_penalty=overflow_penalty),
        window, source, target)


def l_route_edges(source: GCell, target: GCell,
                  horizontal_first: bool = True) -> List[Tuple[int, int, int]]:
    """The edges of an L-shaped route."""
    edges: List[Tuple[int, int, int]] = []
    sx, sy = source
    tx, ty = target
    if horizontal_first:
        for x in range(min(sx, tx), max(sx, tx)):
            edges.append((HORIZONTAL, x, sy))
        for y in range(min(sy, ty), max(sy, ty)):
            edges.append((VERTICAL, tx, y))
    else:
        for y in range(min(sy, ty), max(sy, ty)):
            edges.append((VERTICAL, sx, y))
        for x in range(min(sx, tx), max(sx, tx)):
            edges.append((HORIZONTAL, x, ty))
    return edges
