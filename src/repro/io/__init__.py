"""Netlist and placement I/O: BLIF, Verilog, placement text, tables."""

from .blif import dump_blif, parse_blif
from .placement_io import dump_placement, parse_placement
from .report import format_table, k_sweep_table, render_heatmap, sta_table
from .verilog import dump_verilog
from .verilog_reader import parse_verilog

__all__ = [
    "dump_blif",
    "dump_placement",
    "dump_verilog",
    "format_table",
    "k_sweep_table",
    "parse_blif",
    "parse_placement",
    "parse_verilog",
    "render_heatmap",
    "sta_table",
]
