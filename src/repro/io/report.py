"""Fixed-width table and heatmap rendering in the paper's style.

The benchmark harness prints its reproduction of each table through
these helpers so outputs line up with the paper's layout for eyeball
comparison; the observability layer renders congestion heatmaps and
profile tables through the same module.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

#: Darkness ramp used by the ASCII heatmap rendering.
HEAT_SHADES = " .:-=+*#%@"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 0.01:
            return f"{cell:g}"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)


def render_heatmap(values, shades: str = HEAT_SHADES) -> str:
    """ASCII heatmap of a 2D field (darker = higher).

    ``values`` is indexable as ``values[x, y]`` with ``shape`` —
    typically a numpy array like a routing grid's utilization map —
    rendered with y increasing upward (row 0 printed last).  Values
    are clipped to [0, 1] before shading.
    """
    nx, ny = values.shape
    top = len(shades) - 1
    lines: List[str] = []
    for y in range(ny - 1, -1, -1):
        row = []
        for x in range(nx):
            level = min(int(values[x, y] * top), top)
            row.append(shades[max(level, 0)])
        lines.append("".join(row))
    return "\n".join(lines)


def k_sweep_table(points, title: str) -> str:
    """The paper's Table 2/4 layout from a list of EvalPoints."""
    headers = ["K", "Cell Area (um2)", "No. of Cells",
               "Area Utilization%", "No. of Routing violations"]
    rows = [(p.k, p.cell_area, p.num_cells, p.utilization, p.violations)
            for p in points]
    return format_table(headers, rows, title=title)


def sta_table(rows, title: str) -> str:
    """The paper's Table 3/5 layout.

    ``rows`` are (label, own_critical_str, reference_str, chip_area,
    num_rows) tuples.
    """
    headers = ["K", "Critical Path Arrival (ns)",
               "Same path as critical of ref", "Chip Area (um2)", "Rows"]
    return format_table(headers, rows, title=title)
