"""BLIF (Berkeley Logic Interchange Format) read/write.

BLIF is SIS's native netlist format; supporting it keeps this library
interoperable with the classic tool chain the paper used.  The
combinational subset is implemented: ``.model``, ``.inputs``,
``.outputs``, ``.names`` with ``{0,1,-}`` covers, and ``.end``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ParseError
from ..network.boolnet import BooleanNetwork
from ..network.cubes import lit
from ..network.sop import Sop


def parse_blif(text: str) -> BooleanNetwork:
    """Parse combinational BLIF into a Boolean network."""
    lines = _logical_lines(text)
    name = "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    names_blocks: List[Tuple[List[str], List[str]]] = []
    current: Optional[Tuple[List[str], List[str]]] = None
    for line in lines:
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key == ".model":
                name = parts[1] if len(parts) > 1 else name
            elif key == ".inputs":
                inputs.extend(parts[1:])
            elif key == ".outputs":
                outputs.extend(parts[1:])
            elif key == ".names":
                current = (parts[1:], [])
                names_blocks.append(current)
            elif key == ".end":
                break
            elif key in (".latch", ".subckt", ".gate"):
                raise ParseError(f"unsupported BLIF construct {key}")
            else:
                current = None  # unknown directive ends a cover
        else:
            if current is None:
                raise ParseError(f"cover row outside .names: {line!r}")
            current[1].append(line)

    network = BooleanNetwork(name)
    for pin in inputs:
        network.add_input(pin)
    for signals, rows in names_blocks:
        if not signals:
            raise ParseError(".names with no signals")
        *fanins, output = signals
        network.add_node(output, _cover_to_sop(fanins, rows, output))
    for po in outputs:
        network.add_output(po)
    network.check()
    return network


def _cover_to_sop(fanins: List[str], rows: List[str], output: str) -> Sop:
    """Convert a .names cover to an SOP (ON-set covers only)."""
    if not rows:
        return Sop.zero()
    cubes = []
    for row in rows:
        parts = row.split()
        if not fanins:
            # Constant node: single output column.
            if parts == ["1"]:
                return Sop.one()
            if parts == ["0"]:
                return Sop.zero()
            raise ParseError(f"bad constant row {row!r} for {output!r}")
        if len(parts) != 2:
            raise ParseError(f"bad cover row {row!r} for {output!r}")
        pattern, value = parts
        if value != "1":
            raise ParseError(
                f"only ON-set covers supported (node {output!r})")
        if len(pattern) != len(fanins):
            raise ParseError(f"cover width mismatch in {output!r}")
        lits = []
        for bit, fanin in zip(pattern, fanins):
            if bit == "1":
                lits.append(lit(fanin, True))
            elif bit == "0":
                lits.append(lit(fanin, False))
            elif bit != "-":
                raise ParseError(f"bad cover character {bit!r}")
        cubes.append(lits)
    return Sop.from_cubes(cubes)


def _logical_lines(text: str) -> List[str]:
    """Strip comments, join continuation lines."""
    out: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        out.append((pending + line).strip())
        pending = ""
    if pending.strip():
        out.append(pending.strip())
    return out


def dump_blif(network: BooleanNetwork) -> str:
    """Serialise a Boolean network to BLIF text."""
    lines = [f".model {network.name}",
             ".inputs " + " ".join(network.inputs),
             ".outputs " + " ".join(network.outputs)]
    for node_name in network.topological_order():
        sop = network.nodes[node_name].sop
        fanins = sorted(sop.support())
        lines.append(".names " + " ".join(fanins + [node_name]))
        if sop.is_one():
            lines.append("1")
            continue
        if sop.is_zero():
            continue
        for cube in sorted(sop.cubes, key=lambda c: sorted(c)):
            phase = {name: bit for name, bit in cube}
            pattern = "".join(
                ("1" if phase[f] else "0") if f in phase else "-"
                for f in fanins)
            lines.append(f"{pattern} 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"
