"""Structural Verilog reader (the subset the writer emits).

Parses a flat gate-level module — ``input``/``output``/``wire``
declarations, ``assign`` aliases and cell instantiations with named
connections — back into a :class:`MappedNetlist`.  Together with
:func:`repro.io.verilog.dump_verilog` this closes the hand-off loop a
downstream user needs (edit a mapped netlist outside the tool, read it
back, re-place and re-route).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..errors import ParseError
from ..network.netlist import MappedNetlist

_IDENT = r"(?:\\[^ ]+ |[A-Za-z_][A-Za-z_0-9$]*)"


def _clean(name: str) -> str:
    name = name.strip()
    if name.startswith("\\"):
        return name[1:].rstrip()
    return name


def parse_verilog(text: str, library=None) -> MappedNetlist:
    """Parse a flat structural module into a mapped netlist.

    ``library`` (optional) validates cell names and pin sets when
    provided.  Raises :class:`ParseError` on anything outside the
    supported subset (behavioural code, busses, multiple modules).
    """
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    module = re.search(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;(.*?)endmodule",
                       text, flags=re.S)
    if not module:
        raise ParseError("no module found")
    if re.search(r"\bmodule\b", text[module.end():]):
        raise ParseError("multiple modules are not supported")
    name, _ports, body = module.groups()
    netlist = MappedNetlist(_clean(name))

    statements = [s.strip() for s in body.split(";") if s.strip()]
    outputs: List[str] = []
    aliases: Dict[str, str] = {}
    for statement in statements:
        key = statement.split(None, 1)[0]
        if key == "input":
            for pin in _split_names(statement[len("input"):]):
                netlist.add_input(pin)
        elif key == "output":
            outputs.extend(_split_names(statement[len("output"):]))
        elif key == "wire":
            continue
        elif key == "assign":
            match = re.fullmatch(
                rf"assign\s+({_IDENT})\s*=\s*({_IDENT})\s*", statement)
            if not match:
                raise ParseError(f"unsupported assign: {statement!r}")
            aliases[_clean(match.group(1))] = _clean(match.group(2))
        else:
            _parse_instance(statement, netlist, library)

    for po in outputs:
        netlist.add_output(po, net=aliases.get(po, po))
    netlist.check()
    return netlist


def _split_names(text: str) -> List[str]:
    if re.search(r"\[\s*\d+\s*:\s*\d+\s*\]", text):
        raise ParseError("bus declarations are not supported")
    return [_clean(part) for part in text.split(",") if part.strip()]


def _parse_instance(statement: str, netlist: MappedNetlist,
                    library) -> None:
    match = re.fullmatch(
        rf"({_IDENT})\s+({_IDENT})\s*\((.*)\)\s*", statement, flags=re.S)
    if not match:
        raise ParseError(f"unsupported statement: {statement!r}")
    cell_name, inst_name, conns = match.groups()
    cell_name = _clean(cell_name)
    pins: Dict[str, str] = {}
    output: Optional[str] = None
    for conn in re.finditer(rf"\.([A-Za-z_][A-Za-z_0-9]*)\s*\(\s*({_IDENT})"
                            r"\s*\)", conns):
        pin, net = conn.group(1), _clean(conn.group(2))
        if pin == "Y":
            output = net
        else:
            pins[pin] = net
    if output is None:
        raise ParseError(f"instance {inst_name!r} has no .Y output")
    if library is not None:
        cell = library.cell(cell_name)
        if sorted(pins) != cell.input_pins:
            raise ParseError(
                f"instance {inst_name!r}: pins {sorted(pins)} do not match "
                f"cell {cell_name!r} ({cell.input_pins})")
    netlist.add_instance(cell_name, pins, output, name=_clean(inst_name))
