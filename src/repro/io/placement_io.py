"""Placement save/load (a DEF-flavoured plain-text format).

One line per object: ``CELL <name> <x> <y>`` or ``PAD <name> <x> <y>``,
with a ``DIE <width> <row_height> <num_rows>`` header (full float
precision, so round trips are exact) — enough to
round-trip :class:`repro.place.placer.Placement` objects and inspect
them with standard text tools.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ParseError
from ..place.floorplan import Floorplan
from ..place.placer import Placement


def dump_placement(placement: Placement) -> str:
    """Serialise a placement to the text format."""
    fp = placement.floorplan
    lines = [f"DIE {fp.width:.6f} {fp.row_height:.6f} {fp.num_rows}"]
    for name in sorted(placement.positions):
        x, y = placement.positions[name]
        lines.append(f"CELL {name} {x!r} {y!r}")
    for name in sorted(placement.pads):
        x, y = placement.pads[name]
        lines.append(f"PAD {name} {x!r} {y!r}")
    return "\n".join(lines) + "\n"


def parse_placement(text: str) -> Placement:
    """Parse the text format back into a :class:`Placement`."""
    floorplan = None
    positions: Dict[str, Tuple[float, float]] = {}
    pads: Dict[str, Tuple[float, float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "DIE":
            if len(parts) != 4:
                raise ParseError(f"bad DIE line: {line!r}")
            floorplan = Floorplan(width=float(parts[1]),
                                  row_height=float(parts[2]),
                                  num_rows=int(parts[3]))
        elif kind in ("CELL", "PAD"):
            if len(parts) != 4:
                raise ParseError(f"bad {kind} line: {line!r}")
            target = positions if kind == "CELL" else pads
            target[parts[1]] = (float(parts[2]), float(parts[3]))
        else:
            raise ParseError(f"unknown record {kind!r}")
    if floorplan is None:
        raise ParseError("missing DIE header")
    return Placement(positions=positions, pads=pads, floorplan=floorplan)
