"""Structural Verilog writer for mapped netlists.

Emits a flat gate-level module instantiating library cells by name —
the hand-off format a mapped netlist would take into a commercial
place-and-route tool.
"""

from __future__ import annotations

import re
from typing import Set

from ..network.netlist import MappedNetlist


def _escape(name: str) -> str:
    """Verilog-legal identifier (escaped identifier when needed)."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9$]*", name):
        return name
    return "\\" + name + " "


def dump_verilog(netlist: MappedNetlist) -> str:
    """Serialise a mapped netlist as structural Verilog."""
    ports = [_escape(p) for p in netlist.inputs + netlist.outputs]
    lines = [f"module {_escape(netlist.name)} (" + ", ".join(ports) + ");"]
    for pin in netlist.inputs:
        lines.append(f"  input {_escape(pin)};")
    for pin in netlist.outputs:
        lines.append(f"  output {_escape(pin)};")
    io_names: Set[str] = set(netlist.inputs) | set(netlist.outputs)
    for net in netlist.nets():
        if net not in io_names:
            lines.append(f"  wire {_escape(net)};")
    for po in netlist.outputs:
        net = netlist.output_net[po]
        if net != po:
            lines.append(f"  assign {_escape(po)} = {_escape(net)};")
    for inst_name in sorted(netlist.instances):
        inst = netlist.instances[inst_name]
        conns = [f".Y({_escape(inst.output)})"]
        for pin in sorted(inst.pins):
            conns.append(f".{pin}({_escape(inst.pins[pin])})")
        lines.append(f"  {inst.cell_name} {_escape(inst_name)} ("
                     + ", ".join(conns) + ");")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
