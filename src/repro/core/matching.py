"""Structural pattern matching of library cells onto subject trees.

The matcher is *phase aware*: a pattern can be matched so that its
output realises either the subject signal (``POS``) or its complement
(``NEG``).  An INV pattern node may either consume a subject inverter
or supply a free negation (the classic inverter-pair trick expressed as
polarity propagation), and a subject inverter may likewise be consumed
while flipping the requested polarity.  NAND2 inputs are symmetric, so
both child orders are tried.

A :class:`Match` records the cell, the root vertex and polarity, the
set of consumed subject vertices, and the leaf bindings
``pin -> (vertex, phase)``.  The tree-covering DP
(:mod:`repro.core.covering`) consumes these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..library.cell import CellLibrary, LibCell
from ..library.patterns import LEAF, P_INV, P_NAND, PatternNode
from ..network.dag import BaseNetwork, INV, NAND2

POS = True
NEG = False

#: One partial result: (bindings, consumed vertex set).
_Partial = Tuple[Tuple[Tuple[str, Tuple[int, bool]], ...], FrozenSet[int]]


@dataclass(frozen=True)
class Match:
    """A committed-candidate cell match rooted at a subject vertex."""

    cell: LibCell
    root: int
    phase: bool
    leaves: Tuple[Tuple[str, Tuple[int, bool]], ...]  # (pin, (vertex, phase))
    consumed: FrozenSet[int]

    def leaf_refs(self) -> List[Tuple[int, bool]]:
        """The (vertex, phase) pairs the match's input pins bind to."""
        return [ref for _, ref in self.leaves]

    def __repr__(self) -> str:
        sign = "+" if self.phase else "-"
        return (f"Match({self.cell.name}@{self.root}{sign}, "
                f"leaves={list(self.leaves)})")


class Matcher:
    """Enumerates matches of a library's patterns over a base network.

    Enumeration depends only on the network, the library and the
    membership set of the current subject tree — never on the covering
    objective — so results are memoized per ``(vertex, tree members)``
    (see :meth:`matches_in_tree`).  A K sweep that re-maps the same
    partitioned network 14 times then enumerates each tree's matches
    once, not once per K.  ``stats`` counts cache hits and misses.
    """

    def __init__(self, network: BaseNetwork, library: CellLibrary):  # noqa: D107
        self.network = network
        self.library = library
        self._memo: Dict[Tuple[int, FrozenSet[int]],
                         Dict[bool, List[Match]]] = {}
        self.stats: Dict[str, int] = {"match_cache_hits": 0,
                                      "match_cache_misses": 0}

    def matches_in_tree(self, vertex: int, members: FrozenSet[int]
                        ) -> Dict[bool, List[Match]]:
        """Memoized :meth:`matches_at` for a tree's membership set.

        ``members`` must be the frozen member set of the subject tree
        rooted above ``vertex`` (consumability == membership).  The
        returned dict is shared between callers and must not be mutated.
        """
        key = (vertex, members)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats["match_cache_hits"] += 1
            return cached
        self.stats["match_cache_misses"] += 1
        out = self.matches_at(vertex, members.__contains__)
        self._memo[key] = out
        return out

    def matches_at(self, vertex: int, consumable: Callable[[int], bool]
                   ) -> Dict[bool, List[Match]]:
        """All matches rooted at ``vertex``, keyed by output phase.

        ``consumable(v)`` says whether subject vertex ``v`` may be
        covered (i.e. is internal to the current tree).  Matches that
        consume nothing (pure polarity conversions) are dropped — the
        covering DP models those explicitly with inverter insertion.
        """
        out: Dict[bool, List[Match]] = {POS: [], NEG: []}
        if not consumable(vertex):
            return out
        for cell in self.library.cells():
            for pattern in cell.patterns:
                for phase in (POS, NEG):
                    for bindings, consumed in self._match(
                            pattern, vertex, phase, consumable):
                        if vertex not in consumed:
                            continue  # pure phase conversion
                        out[phase].append(Match(
                            cell=cell, root=vertex, phase=phase,
                            leaves=bindings, consumed=consumed))
        for phase in (POS, NEG):
            out[phase] = _dedupe(out[phase])
        return out

    def _match(self, p: PatternNode, s: int, phase: bool,
               consumable: Callable[[int], bool]) -> List[_Partial]:
        """All ways pattern node ``p`` realises (``phase`` of) vertex ``s``."""
        results: List[_Partial] = []
        kind = self.network.kind[s]
        if p.kind == LEAF:
            assert p.pin is not None
            results.append((((p.pin, (s, phase)),), frozenset()))
            return results
        if p.kind == P_INV:
            # The pattern inverter supplies the negation without
            # consuming a subject gate.
            for bindings, consumed in self._match(
                    p.children[0], s, not phase, consumable):
                results.append((bindings, consumed))
        if kind == INV and consumable(s):
            # Consume the subject inverter, flipping the polarity the
            # remaining pattern must realise.
            child = self.network.fanins[s][0]
            for bindings, consumed in self._match(p, child, not phase, consumable):
                results.append((bindings, consumed | {s}))
        if (p.kind == P_NAND and phase == POS and kind == NAND2
                and consumable(s)):
            a, b = self.network.fanins[s]
            left, right = p.children
            orders = [(a, b)] if a == b else [(a, b), (b, a)]
            for sa, sb in orders:
                for lb, lc in self._match(left, sa, POS, consumable):
                    for rb, rc in self._match(right, sb, POS, consumable):
                        merged = _merge_bindings(lb, rb)
                        if merged is not None:
                            results.append((merged, lc | rc | {s}))
        return results


def _merge_bindings(a: Tuple, b: Tuple) -> Optional[Tuple]:
    """Concatenate leaf bindings; pins are disjoint by read-once-ness."""
    return tuple(a) + tuple(b)


def _dedupe(matches: List[Match]) -> List[Match]:
    """Drop duplicate matches (same cell, bindings and cover)."""
    seen: Set[Tuple] = set()
    out: List[Match] = []
    for m in matches:
        key = (m.cell.name, tuple(sorted(m.leaves)), m.consumed)
        if key not in seen:
            seen.add(key)
            out.append(m)
    return out
