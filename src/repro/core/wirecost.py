"""Position bookkeeping for placement-driven mapping (Section 3.2).

The implementation lives in :mod:`repro.geometry` (it is shared with the
placement package); this module re-exports it under the name the paper's
terminology suggests.
"""

from ..geometry import (  # noqa: F401
    EUCLIDEAN,
    MANHATTAN,
    Point,
    PositionMap,
    distance,
)

__all__ = ["EUCLIDEAN", "MANHATTAN", "Point", "PositionMap", "distance"]
