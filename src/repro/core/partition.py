"""DAG partitioning into subject trees (Section 3.1, Figure 2).

Three partitioners share one tree-construction framework built on
*father links*: every gate vertex with fanout is assigned one of its
readers as its ``father``; a tree is a root plus all vertices whose
father chain reaches it.

* :func:`dagon_partition` — the DAGON baseline: the DAG is broken at
  every multi-fanout vertex, so multi-fanout vertices are leaves of
  their readers' trees (no logic duplication, no cross-fanout
  optimization).
* :func:`cone_partition` — the MIS-style scheme: fathers follow the
  depth-first traversal from the primary outputs in a caller-supplied
  order, so a multi-fanout vertex stays *internal* to the tree of the
  first reader that reaches it (enabling absorption, at the price of
  logic duplication and order dependence — the two drawbacks the paper
  lists).
* :func:`placement_partition` — the paper's contribution: the father of
  every vertex is its geometrically **nearest** reader on the layout
  image, making the result order-independent and the subject trees
  physically clustered.

Every multi-fanout vertex (and every primary-output driver) is a tree
*root* regardless of scheme: its signal must materialise as a mapped
net for its detached readers.  Under cone/placement partitioning the
same vertex can additionally be internal to its father's tree; covering
may then absorb it into a larger match, duplicating its logic — the
duplication the paper calls "comparable with [12]".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..errors import MappingError
from ..network.dag import BaseNetwork
from .wirecost import PositionMap

DAGON = "dagon"
CONE = "cone"
PLACEMENT = "placement"

#: Safety valve: trees larger than this stop absorbing materialized
#: vertices (they become leaves, as in DAGON), bounding nested
#: duplication on pathological fanout chains.
DEFAULT_MAX_TREE_SIZE = 4000


@dataclass
class Tree:
    """One subject tree: a root vertex plus its internal member set."""

    root: int
    members: Set[int] = field(default_factory=set)
    _frozen: Optional[FrozenSet[int]] = field(
        default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.members)

    def frozen_members(self) -> FrozenSet[int]:
        """The member set as a (cached) frozenset — the matcher memo key."""
        if self._frozen is None or len(self._frozen) != len(self.members):
            self._frozen = frozenset(self.members)
        return self._frozen


@dataclass
class Partition:
    """The full partitioning result."""

    style: str
    fathers: Dict[int, int]
    roots: List[int]                  # ascending vertex id == topological
    trees: Dict[int, Tree]
    materialized: Set[int]            # vertices whose nets must exist

    def tree_sizes(self) -> List[int]:
        """Member count per tree (in root order)."""
        return [len(self.trees[r]) for r in self.roots]

    def duplication(self) -> int:
        """Total vertex memberships beyond one (absorbed materialized logic)."""
        counts: Dict[int, int] = {}
        for tree in self.trees.values():
            for v in tree.members:
                counts[v] = counts.get(v, 0) + 1
        return sum(c - 1 for c in counts.values())


def _readers(network: BaseNetwork) -> List[List[int]]:
    """Gate readers per vertex (primary-output uses excluded)."""
    return network.fanout_map()


def _root_set(network: BaseNetwork) -> Set[int]:
    """PO drivers plus multi-fanout gate vertices."""
    counts = network.fanout_counts()
    roots: Set[int] = set()
    for name in network.outputs:
        v = network.outputs[name]
        if not network.is_pi(v):
            roots.add(v)
    for v in network.gates():
        if counts[v] >= 2:
            roots.add(v)
    return roots


def _build_trees(network: BaseNetwork, fathers: Dict[int, int], style: str,
                 absorb: bool, max_tree_size: int) -> Partition:
    """Expand trees from the root set along father links."""
    roots = sorted(_root_set(network))
    trees: Dict[int, Tree] = {}
    readers_by_father: Dict[int, List[int]] = {}
    for child, father in fathers.items():
        readers_by_father.setdefault(father, []).append(child)
    root_set = set(roots)
    for root in roots:
        members = {root}
        frontier = [root]
        while frontier:
            parent = frontier.pop()
            for child in sorted(readers_by_father.get(parent, [])):
                if child in members:
                    continue
                if child in root_set and (
                        not absorb or len(members) >= max_tree_size):
                    continue  # stays a leaf; its own tree materializes it
                members.add(child)
                frontier.append(child)
        trees[root] = Tree(root=root, members=members)
    return Partition(style=style, fathers=fathers, roots=roots, trees=trees,
                     materialized=root_set)


def dagon_partition(network: BaseNetwork,
                    max_tree_size: int = DEFAULT_MAX_TREE_SIZE) -> Partition:
    """Break the DAG at every multi-fanout vertex (DAGON, [11])."""
    fathers: Dict[int, int] = {}
    fanout = _readers(network)
    counts = network.fanout_counts()
    for v in network.gates():
        if counts[v] == 1 and fanout[v]:
            fathers[v] = fanout[v][0]
    return _build_trees(network, fathers, DAGON, absorb=False,
                        max_tree_size=max_tree_size)


def cone_partition(network: BaseNetwork,
                   output_order: Optional[Sequence[str]] = None,
                   max_tree_size: int = DEFAULT_MAX_TREE_SIZE) -> Partition:
    """MIS-style cones: father = first reader in DFS from the POs ([12]).

    ``output_order`` controls the (result-affecting) traversal order;
    defaults to sorted output names.
    """
    if output_order is None:
        output_order = sorted(network.outputs)
    fathers: Dict[int, int] = {}
    visited: Set[int] = set()

    def claim(root: int) -> None:
        stack = [root]
        while stack:
            v = stack.pop()
            if v in visited:
                continue
            visited.add(v)
            for child in network.fanins[v]:
                if network.is_pi(child):
                    continue
                if child not in fathers:
                    fathers[child] = v
                stack.append(child)

    for name in output_order:
        if name not in network.outputs:
            raise MappingError(f"unknown primary output {name!r}")
        v = network.outputs[name]
        if not network.is_pi(v):
            claim(v)
    return _build_trees(network, fathers, CONE, absorb=True,
                        max_tree_size=max_tree_size)


def placement_partition(network: BaseNetwork, positions: PositionMap,
                        max_tree_size: int = DEFAULT_MAX_TREE_SIZE) -> Partition:
    """The paper's placement-driven partitioning (Figure 2).

    ``father(w)`` is the reader of ``w`` nearest to ``w`` on the layout
    image; ties break to the smallest vertex id.  The result depends
    only on the placement, not on any traversal order — the
    order-independence property Section 3.1 emphasises.
    """
    if len(positions) < network.num_vertices():
        raise MappingError("position map smaller than the network")
    fanout = _readers(network)
    fathers: Dict[int, int] = {}
    for v in network.gates():
        readers = fanout[v]
        if not readers:
            continue
        best = None
        best_dist = float("inf")
        for u in sorted(readers):
            d = positions.dist_vertices(u, v)
            if d < best_dist:
                best_dist = d
                best = u
        assert best is not None
        fathers[v] = best
    return _build_trees(network, fathers, PLACEMENT, absorb=True,
                        max_tree_size=max_tree_size)


def partition(network: BaseNetwork, style: str,
              positions: Optional[PositionMap] = None,
              max_tree_size: int = DEFAULT_MAX_TREE_SIZE) -> Partition:
    """Dispatch on partitioning style."""
    if style == DAGON:
        return dagon_partition(network, max_tree_size)
    if style == CONE:
        return cone_partition(network, max_tree_size=max_tree_size)
    if style == PLACEMENT:
        if positions is None:
            raise MappingError("placement partitioning needs a position map")
        return placement_partition(network, positions, max_tree_size)
    raise MappingError(f"unknown partition style {style!r}")
