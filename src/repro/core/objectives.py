"""Covering cost objectives (Section 3.2, Eq. 5, and Section 3.3).

The dynamic-programming tree covering is objective-agnostic: every
candidate solution carries an (area, wire, arrival) triple and the
objective folds it into the scalar the DP minimises.

* ``MinArea``            — classic DAGON:   cost = AREA
* ``AreaCongestion(K)``  — the paper:       cost = AREA + K * WIRE
  where WIRE = WIRE1 + WIRE2 (Eq. 4): the match's own fanin distances
  plus the fanins' *stored* wire costs, accumulated down to the current
  tree's leaves (Eqs. 2–3) and restarting at tree boundaries.
* ``AreaCongestion(K, transitive_wire=True)`` — the Pedram–Bhat [9]
  variant the paper argues against: WIRE additionally accumulates
  *across* tree boundaries, over all transitive fanins down to the
  primary inputs (used by the ablation bench).
* ``MinDelay``           — Rudell-style minimum arrival under a
  constant-load delay estimate, with optional wire term.

Note the classic limitation of constant-load delay covering: the DP
minimises a *load-independent* arrival estimate, so it reliably reduces
logic depth but can lose on post-route STA when its duplication loads
shared nets (Rudell's load-binned formulation addresses this; out of
scope here).  The paper's own objective is the area/wire form.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoverObjective:
    """Scalarisation of (area, wire, arrival) used by the covering DP.

    ``k`` is the paper's congestion minimization factor K; ``mode``
    selects the primary figure of merit; ``transitive_wire`` switches
    WIRE2 from the paper's one-level lookback to full transitive
    accumulation; ``load_estimate`` (pF) is the constant load used for
    arrival estimation during covering.
    """

    mode: str = "area"            # "area" or "delay"
    k: float = 0.0
    transitive_wire: bool = False
    load_estimate: float = 0.010

    def __post_init__(self) -> None:  # noqa: D105
        if self.mode not in ("area", "delay"):
            raise ValueError(f"unknown objective mode {self.mode!r}")
        if self.k < 0:
            raise ValueError("congestion factor K must be non-negative")

    def cost(self, area: float, wire: float, arrival: float) -> float:
        """The scalar the DP minimises (Eq. 5 for area mode)."""
        if self.mode == "area":
            return area + self.k * wire
        return arrival + self.k * wire

    @property
    def uses_positions(self) -> bool:
        """True when the objective needs placement information."""
        return self.k > 0.0


def min_area() -> CoverObjective:
    """The DAGON baseline objective (K = 0)."""
    return CoverObjective(mode="area", k=0.0)


def area_congestion(k: float, transitive_wire: bool = False) -> CoverObjective:
    """The paper's congestion-aware objective: AREA + K * WIRE."""
    return CoverObjective(mode="area", k=k, transitive_wire=transitive_wire)


def min_delay(k: float = 0.0, load_estimate: float = 0.010) -> CoverObjective:
    """Minimum-arrival covering with optional congestion term."""
    return CoverObjective(mode="delay", k=k, load_estimate=load_estimate)
