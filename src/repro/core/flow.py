"""End-to-end flows: the paper's methodology (Section 5, Figure 3).

This module glues the substrates into the experiments the paper runs:

* :func:`evaluate_netlist` — place, globally route and summarise one
  mapped netlist in a fixed floorplan (one row of Tables 1/2/4).
* :func:`run_k_point` — map the placed base network at one K and
  evaluate it.
* :func:`k_sweep` — the Table 2/4 experiment: the base network and its
  placement are produced **once**, then re-mapped per K (the re-use the
  paper emphasises as the methodology's cheapness).
* :func:`congestion_aware_flow` — the Figure 3 loop: start at K = 0,
  evaluate the congestion map, raise K until the map is acceptable.
* :func:`find_routable_die` — grow the die row by row until a netlist
  routes (the paper's 71→72→75-row escalations).
* :func:`sis_flow` / :func:`dagon_flow` — the two baselines of Table 1.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import PlacementError, ReproError
from ..exec import derive_seed, fan_out
from ..library.cell import CellLibrary
from ..obs import Span, StatsRegistry, Tracer
from ..network.boolnet import BooleanNetwork
from ..network.dag import BaseNetwork
from ..network.decompose import decompose
from ..network.netlist import MappedNetlist
from ..place.floorplan import Floorplan
from ..place.placer import Placement, place_base_network, place_netlist
from ..route.grid import RoutingResources
from ..route.router import AUTO, VECTOR, GlobalRouter, RouteCache, \
    RoutingResult
from ..synth.optimize import optimize
from ..timing.sta import StaticTimingAnalyzer, TimingReport
from .mapper import MappingResult, map_network
from .matching import Matcher
from .objectives import area_congestion, min_area
from .partition import DAGON, PLACEMENT, Partition, partition as make_partition
from .wirecost import PositionMap

#: The K schedule of the paper's Tables 2 and 4.
PAPER_K_VALUES: Tuple[float, ...] = (
    0.0, 0.0001, 0.00025, 0.0005, 0.00075, 0.001,
    0.0025, 0.005, 0.0075, 0.01, 0.05, 0.1, 0.5, 1.0)


@dataclass
class FlowConfig:
    """Shared configuration for all flow entry points.

    ``workers`` is the default process fan-out for the parallel stages
    (K points of a sweep, placement attempts of an evaluation); 1 keeps
    everything serial.  Parallel runs are bit-identical to serial ones.

    ``route_engine`` selects the global-routing implementation
    (``"vector"`` — the numpy flat-edge engine — ``"reference"``, the
    per-edge oracle, or ``"auto"``, which picks per problem size; all
    produce identical results).
    ``route_reuse`` enables cross-K route warm-starting in the serial
    sweep loops: nets whose pin GCell signature is unchanged between
    adjacent K netlists start from the previous K's final route.
    ``place_engine`` selects the placement/covering compute engine
    (``"vector"`` — batched numpy kernels — or ``"reference"``, the
    scalar oracles; bit-identical results either way).
    ``cover_memo`` enables the per-matcher covering memo: trees whose
    DP inputs (member positions, boundary values, objective) are
    unchanged — or bracketed by two K points that picked the same
    assignment — reuse the previous cover instead of re-running the
    DP.  Memo hits are pure speedups; the chosen covers are identical.
    """

    library: CellLibrary
    resources: RoutingResources = field(default_factory=RoutingResources)
    partition_style: str = PLACEMENT
    gcell_rows: int = 2
    max_route_iterations: int = 25
    use_seed_positions: bool = False
    seed: int = 0
    place_attempts: int = 1
    workers: int = 1
    route_engine: str = AUTO
    route_reuse: bool = True
    place_engine: str = VECTOR
    cover_memo: bool = True


@dataclass
class EvalPoint:
    """One evaluated mapping — a row of Table 2/4."""

    k: float
    cell_area: float
    num_cells: int
    utilization: float          # percent
    violations: int
    overflowed_nets: int
    routed_wirelength: float    # µm
    hpwl: float                 # µm
    routable: bool
    mapping: Optional[MappingResult] = None
    placement: Optional[Placement] = None
    routing: Optional[RoutingResult] = None
    #: Namespaced flow counters: ``eval.*`` wall-times plus the
    #: absorbed ``map.*`` / ``route.*`` / ``exec.*`` registries of the
    #: point's phases (duplicate keys raise instead of overwriting).
    stats: StatsRegistry = field(default_factory=StatsRegistry)
    #: The point's span subtree (k_point → map / evaluate → attempt →
    #: place / route), built identically on the serial and the
    #: process-pool paths; sweeps adopt it into the run's trace.
    trace: Optional[Span] = None

    def row(self) -> Tuple[float, float, int, float, int]:
        """(K, cell area, #cells, utilization %, violations)."""
        return (self.k, self.cell_area, self.num_cells,
                self.utilization, self.violations)


def _placement_attempt(payload: Tuple[Any, ...], attempt: int) -> EvalPoint:
    """One placement + global-routing attempt (a fan-out task).

    Placement *and* routing seeds advance with the attempt index, so
    retries explore both RNG streams instead of re-rolling only the
    placer against a frozen router (the router seed drives the
    negotiation's victim ordering).  ``route_cache`` is read-only here:
    every attempt warm-starts from the same cache snapshot, which keeps
    parallel attempt fan-outs bit-identical to serial ones.
    """
    netlist, floorplan, config, seed_positions, k, area, route_cache = payload
    seed = derive_seed(config.seed, attempt)
    tracer = Tracer("attempt", attempt=attempt)
    place_timings: Dict[str, float] = {}
    with tracer.span("place") as sp_place:
        placement = place_netlist(
            netlist, config.library, floorplan,
            seed_positions=(seed_positions if config.use_seed_positions
                            else None),
            seed=seed, engine=config.place_engine, timings=place_timings)
    router = GlobalRouter(floorplan, config.resources,
                          gcell_rows=config.gcell_rows,
                          max_iterations=config.max_route_iterations,
                          seed=seed, engine=config.route_engine)
    with tracer.span("route") as sp_route:
        points = placement.net_points(netlist)
        routing = (router.route(points, cache=route_cache)
                   if route_cache is not None else router.route(points))
    sp_route.counters.absorb(routing.stats)
    stats = StatsRegistry()
    stats.time("eval.t_place", sp_place.duration)
    stats.time("eval.t_route", sp_route.duration)
    for phase, seconds in sorted(place_timings.items()):
        stats.time(f"place.{phase}", seconds)
    stats.absorb(routing.stats)
    return EvalPoint(
        k=k, cell_area=area, num_cells=netlist.num_cells(),
        utilization=floorplan.utilization(area),
        violations=routing.violations,
        overflowed_nets=routing.overflowed_nets,
        routed_wirelength=routing.total_wirelength,
        hpwl=placement.hpwl(netlist),
        routable=routing.violations == 0,
        placement=placement, routing=routing,
        stats=stats, trace=tracer.close())


def _select_best(points: Sequence[EvalPoint]) -> EvalPoint:
    """Replicate the serial retry loop's pick over precomputed attempts.

    The serial loop keeps the strictly best (violations, wirelength)
    seen so far and stops at the first zero-violation best; scanning
    the full attempt list in order with the same rule selects the same
    point, which is what keeps ``workers=N`` bit-identical.
    """
    best: Optional[EvalPoint] = None
    for point in points:
        if best is None or (point.violations, point.routed_wirelength) < \
                (best.violations, best.routed_wirelength):
            best = point
        if best.violations == 0:
            break
    assert best is not None
    return best


def evaluate_netlist(netlist: MappedNetlist, floorplan: Floorplan,
                     config: FlowConfig,
                     seed_positions: Optional[Dict[str, Tuple[float, float]]]
                     = None, k: float = 0.0,
                     workers: Optional[int] = None,
                     route_cache: Optional[RouteCache] = None) -> EvalPoint:
    """Place + globally route one netlist; summarise like a table row.

    Up to ``config.place_attempts`` placement seeds are tried and the
    best result kept (stopping early at zero violations) — the "let the
    P&R tool try again" that any physical-design flow applies before
    declaring a netlist unroutable.  With ``workers > 1`` (defaulting
    to ``config.workers``) the attempts fan out over a process pool;
    the selected point is identical to the serial path's.

    ``route_cache`` warm-starts unchanged nets from a previous
    evaluation's routes; all attempts read the same cache snapshot and
    the cache is refreshed once from the selected point's routes.

    The returned point's :attr:`EvalPoint.trace` is an ``evaluate``
    span wrapping the *selected* attempt's span — only the chosen
    attempt is kept, so serial early-exit and parallel
    run-all-attempts produce identical span trees.
    """
    tracer = Tracer("evaluate", k=k)
    area = netlist.total_area(config.library)
    attempts = max(1, config.place_attempts)
    nworkers = max(1, config.workers if workers is None else workers)
    payload = (netlist, floorplan, config, seed_positions, k, area,
               route_cache)
    if attempts > 1 and nworkers > 1:
        exec_stats = StatsRegistry()
        points = fan_out(_placement_attempt, payload, range(attempts),
                         workers=nworkers, stats=exec_stats)
        best = _select_best(points)
        best.stats.merge(exec_stats)
    else:
        best = None
        for attempt in range(attempts):
            point = _placement_attempt(payload, attempt)
            if best is None or \
                    (point.violations, point.routed_wirelength) < \
                    (best.violations, best.routed_wirelength):
                best = point
            if best.violations == 0:
                break
        assert best is not None
    # Only clean routings refresh the cache.  Warm-starting the next K
    # point's negotiation from a *congested* snapshot poisons it — the
    # router inherits overflow history it cannot unwind and lands on
    # strictly worse solutions than a cold start (the figure3
    # non-convergence regression).  A failed point therefore leaves the
    # last known-good routes in place.
    if route_cache is not None and best.routing is not None \
            and best.routing.violations == 0:
        route_cache.store(best.routing)
    tracer.adopt(best.trace)
    best.trace = tracer.close()
    best.stats.time("eval.t_total", best.trace.duration)
    return best


def run_k_point(base: BaseNetwork, positions: PositionMap,
                floorplan: Floorplan, config: FlowConfig,
                k: float, partition: Optional[Partition] = None,
                matcher: Optional[Matcher] = None,
                route_cache: Optional[RouteCache] = None) -> EvalPoint:
    """Map the (already placed) base network at one K and evaluate it.

    ``partition`` and ``matcher`` are the K-independent products of the
    base network and its placement; sweeps compute them once and pass
    them to every K point (see :func:`k_sweep`).  ``route_cache``
    carries routes between K points: nets whose pin GCell signature is
    unchanged warm-start from the previous K's final route.
    """
    objective = area_congestion(k)
    tracer = Tracer("k_point", k=k)
    with tracer.span("map") as sp_map:
        mapping = map_network(base, config.library, objective,
                              partition_style=config.partition_style,
                              positions=positions,
                              partition=partition, matcher=matcher,
                              engine=config.place_engine,
                              cover_memo=config.cover_memo)
    sp_map.counters.absorb(mapping.stats)
    point = evaluate_netlist(mapping.netlist, floorplan, config,
                             seed_positions=mapping.instance_positions, k=k,
                             route_cache=route_cache)
    point.mapping = mapping
    point.stats.time("map.t_total", sp_map.duration)
    point.stats.absorb(mapping.stats)
    tracer.adopt(point.trace)
    point.trace = tracer.close()
    return point


#: Single-slot per-process cache: (payload, Matcher).  Workers receive
#: the same payload object for every task of one round, so the matcher
#: — and its match memo — is shared across all K points a process runs.
_sweep_matcher: Optional[Tuple[Any, Matcher]] = None


def _k_point_task(payload: Tuple[Any, ...], k: float) -> EvalPoint:
    """One K point of a sweep round (a fan-out task).

    The payload's last slot is an optional :class:`RouteCache`
    snapshot; each task clones it into a private shard, so every K
    point of a round warm-starts from the same opening snapshot no
    matter which worker runs it (or whether the round fell back to the
    serial loop) — the property that keeps sharded rounds bit-identical
    across execution plans.
    """
    global _sweep_matcher
    base, positions, floorplan, config, part, snapshot = payload
    if _sweep_matcher is None or _sweep_matcher[0] is not payload:
        _sweep_matcher = (payload, Matcher(base, config.library))
    matcher = _sweep_matcher[1]
    shard = snapshot.clone() if snapshot is not None else None
    return run_k_point(base, positions, floorplan, config, k,
                       partition=part, matcher=matcher, route_cache=shard)


def evaluate_k_round(base: BaseNetwork, positions: PositionMap,
                     floorplan: Floorplan, config: FlowConfig,
                     ks: Sequence[float], part: Partition,
                     workers: int = 1,
                     route_cache: Optional[RouteCache] = None,
                     stats: Optional[StatsRegistry] = None,
                     tracer: Optional[Tracer] = None) -> List[EvalPoint]:
    """Evaluate one *round* of K points over the process pool.

    Every task receives the same opening snapshot of ``route_cache``
    (or no cache) and clones it into a private shard; the caller merges
    the round's results back with :func:`merge_round_routes`.  Results
    come back in ``ks`` order.  This is the parallel-safe unit both
    :func:`k_sweep` and :func:`repro.core.ksearch.k_search` build on.
    """
    snapshot = (route_cache
                if route_cache is not None and route_cache.routes else None)
    payload = (base, positions, floorplan, config, part, snapshot)
    return fan_out(_k_point_task, payload, list(ks), workers=workers,
                   stats=stats, tracer=tracer)


def merge_round_routes(cache: RouteCache, points: Sequence[EvalPoint],
                       prefer_low_k: bool = False) -> None:
    """Deterministically merge a round's shards back into the cache.

    Shards only ever *store* the zero-violation routing of their own K
    point, so merging reduces to picking one clean round member as the
    next snapshot: the highest-K clean point by default — exactly the
    state a serial ascending sweep would have left behind — or the
    lowest-K one (``prefer_low_k``), which is what a minimum-K search
    wants its next, smaller probes to warm-start from.  The pick
    depends only on the round's results, never on worker scheduling.
    """
    clean = [p for p in points
             if p.routing is not None and p.routing.violations == 0]
    if clean:
        pick = (min if prefer_low_k else max)(clean, key=lambda p: p.k)
        cache.store(pick.routing)


def _progress_line(point: EvalPoint) -> str:
    return (f"K={point.k:g}: area={point.cell_area:.0f} "
            f"cells={point.num_cells} util={point.utilization:.1f}% "
            f"violations={point.violations}")


def _resolve_caches(config: FlowConfig, route_cache: Optional[RouteCache]
                    ) -> Optional[RouteCache]:
    """The warm-start cache a sweep loop should thread through its
    K points: the injected one (a session-scoped pool entry from e.g.
    ``repro serve``), a fresh one, or ``None`` with reuse disabled.

    Warm starts are pure speedups — a warm-started point reports the
    same row as a cold one — so injecting a pre-warmed cache never
    changes results, only wall time.
    """
    if not config.route_reuse:
        return None
    return route_cache if route_cache is not None else RouteCache()


def k_sweep(base: BaseNetwork, floorplan: Floorplan, config: FlowConfig,
            k_values: Sequence[float] = PAPER_K_VALUES,
            positions: Optional[PositionMap] = None,
            progress: Optional[Callable[[str], None]] = None,
            workers: Optional[int] = None,
            tracer: Optional[Tracer] = None,
            partition: Optional[Partition] = None,
            matcher: Optional[Matcher] = None,
            route_cache: Optional[RouteCache] = None) -> List[EvalPoint]:
    """The Table 2/4 experiment: one mapping + evaluation per K.

    The technology-independent placement is computed once and re-used
    for every K (each :func:`run_k_point` copies it internally through
    the mapper), exactly as the paper's methodology prescribes.  The
    partition and the matcher's match enumeration likewise depend only
    on the base network and its placement, so they are hoisted out of
    the per-K loop.

    ``workers`` (defaulting to ``config.workers``) fans the K points
    out over a process pool; the returned points are bit-identical to
    the serial path's (same ``EvalPoint.row()`` tuples, same order).

    With ``config.route_reuse`` on, both paths thread a
    :class:`RouteCache` through the K points: nets whose pin GCell
    signature is unchanged between K netlists warm-start from a
    previous K's final route, so the sweep stops paying full routing
    cost at every K.  The serial path carries the cache point to
    point; the parallel path runs the sweep in rounds of ``workers``
    K points, where every task of a round clones the last
    zero-violation snapshot into a private shard and the round's clean
    results are merged back deterministically
    (:func:`merge_round_routes`).  Warm starts are pure speedups —
    a warm-started point reports the same row as a cold one — so the
    sharded rounds stay bit-identical to the serial warm sweep.  With
    ``route_reuse`` off, the parallel path keeps the single fan-out
    (one pool, contiguous chunks).

    ``tracer``, when given, receives one ``sweep`` span whose children
    are the K points' subtrees, adopted in K order on both execution
    paths.

    ``partition`` / ``matcher`` / ``route_cache`` inject session-scoped
    caches (see :mod:`repro.serve`): the K-independent partition, a
    shared matcher (match memo + cover memo; serial path only — pool
    workers build their own) and a warm-start route cache carried
    across calls.  All three are pure speedups; the returned rows are
    identical to an uninjected sweep's.
    """
    if positions is None:
        positions = place_base_network(base, floorplan, seed=config.seed,
                                       engine=config.place_engine)
    nworkers = max(1, config.workers if workers is None else workers)
    part = partition if partition is not None else \
        make_partition(base, config.partition_style, positions=positions)
    k_list = list(k_values)
    span_cm = (tracer.span("sweep", points=len(k_list))
               if tracer is not None else contextlib.nullcontext())
    with span_cm as sweep_span:
        if nworkers > 1 and len(k_list) > 1:
            route_cache = _resolve_caches(config, route_cache)
            groups = ([k_list] if route_cache is None else
                      [k_list[i:i + nworkers]
                       for i in range(0, len(k_list), nworkers)])
            exec_stats = StatsRegistry()
            points: List[EvalPoint] = []
            for group in groups:
                round_stats = StatsRegistry()
                round_points = evaluate_k_round(
                    base, positions, floorplan, config, group, part,
                    workers=nworkers, route_cache=route_cache,
                    stats=round_stats, tracer=tracer)
                if route_cache is not None:
                    merge_round_routes(route_cache, round_points)
                exec_stats.merge(round_stats)
                for point in round_points:
                    point.stats.merge(round_stats)
                    if tracer is not None:
                        tracer.adopt(point.trace)
                    if progress is not None:
                        progress(_progress_line(point))
                points.extend(round_points)
            if sweep_span is not None:
                sweep_span.counters.merge(exec_stats)
            return points
        if matcher is None:
            matcher = Matcher(base, config.library)
        route_cache = _resolve_caches(config, route_cache)
        points: List[EvalPoint] = []
        for k in k_list:
            point = run_k_point(base, positions, floorplan, config, k,
                                partition=part, matcher=matcher,
                                route_cache=route_cache)
            points.append(point)
            if tracer is not None:
                tracer.adopt(point.trace)
            if progress is not None:
                progress(_progress_line(point))
        return points


#: :attr:`FlowResult.verdict` values — why the Figure 3 loop ended.
FLOW_CONVERGED = "converged"
FLOW_EARLY_STOP = "early_stop"
FLOW_SCHEDULE_EXHAUSTED = "schedule_exhausted"


@dataclass
class FlowResult:
    """Outcome of the Figure 3 methodology loop."""

    chosen: Optional[EvalPoint]
    history: List[EvalPoint]
    converged: bool
    #: Why the loop ended: :data:`FLOW_CONVERGED` (an acceptable map
    #: was found), :data:`FLOW_EARLY_STOP` (the three-strictly-rising
    #: violations heuristic fired) or :data:`FLOW_SCHEDULE_EXHAUSTED`
    #: (the K schedule ran out) — so benches can tell a heuristic stop
    #: from a genuinely exhausted schedule.
    verdict: str = ""

    @property
    def chosen_k(self) -> Optional[float]:
        """The K that produced the accepted congestion map."""
        return self.chosen.k if self.chosen else None


def congestion_aware_flow(base: BaseNetwork, floorplan: Floorplan,
                          config: FlowConfig,
                          k_schedule: Sequence[float] = PAPER_K_VALUES,
                          positions: Optional[PositionMap] = None,
                          tolerance: int = 0,
                          tracer: Optional[Tracer] = None,
                          partition: Optional[Partition] = None,
                          matcher: Optional[Matcher] = None,
                          route_cache: Optional[RouteCache] = None
                          ) -> FlowResult:
    """The modified ASIC design flow of Figure 3.

    Place the technology-independent netlist once; map with K = 0;
    evaluate the congestion map; while congested, take the next K from
    the schedule and re-map (technology mapping is linear-time, so this
    loop is cheap relative to re-synthesis).  Stops at the first
    acceptable map, or reports non-convergence — the case where the
    paper says floorplan constraints must be relaxed.

    ``tracer``, when given, receives one ``flow`` span whose children
    are the evaluated K points' subtrees in schedule order.

    ``partition`` / ``matcher`` / ``route_cache``, when given, inject
    session-scoped caches the same way :func:`k_sweep` accepts them —
    pure speedups, identical results.
    """
    if positions is None:
        positions = place_base_network(base, floorplan, seed=config.seed,
                                       engine=config.place_engine)
    # The loop is inherently sequential (each K's verdict gates the
    # next), but the K-independent work — partition and match
    # enumeration — is still hoisted out of it, and routes of unchanged
    # nets are carried between K points via the route cache.
    if partition is None:
        partition = make_partition(base, config.partition_style,
                                   positions=positions)
    if matcher is None:
        matcher = Matcher(base, config.library)
    route_cache = _resolve_caches(config, route_cache)
    span_cm = (tracer.span("flow", tolerance=tolerance)
               if tracer is not None else contextlib.nullcontext())
    with span_cm as flow_span:
        history: List[EvalPoint] = []
        chosen: Optional[EvalPoint] = None
        verdict = FLOW_SCHEDULE_EXHAUSTED
        for k in k_schedule:
            point = run_k_point(base, positions, floorplan, config, k,
                                partition=partition, matcher=matcher,
                                route_cache=route_cache)
            history.append(point)
            if tracer is not None:
                tracer.adopt(point.trace)
            if point.violations <= tolerance:
                chosen = point
                verdict = FLOW_CONVERGED
                break
            # The paper's stopping heuristic: once congestion worsens
            # while the area penalty keeps growing, more K will not
            # help.
            if len(history) >= 3:
                recent = history[-3:]
                if (recent[2].violations > recent[1].violations
                        > recent[0].violations):
                    verdict = FLOW_EARLY_STOP
                    break
        if flow_span is not None:
            flow_span.attrs["verdict"] = verdict
            flow_span.counters.gauge(
                "flow.early_stop", 1.0 if verdict == FLOW_EARLY_STOP else 0.0)
        return FlowResult(chosen=chosen, history=history,
                          converged=verdict == FLOW_CONVERGED,
                          verdict=verdict)


def find_routable_die(netlist: MappedNetlist, start_rows: int,
                      config: FlowConfig,
                      seed_positions: Optional[Dict] = None,
                      max_extra_rows: int = 12, aspect: float = 1.0,
                      row_height: Optional[float] = None,
                      tolerance: int = 0) -> Tuple[Floorplan, EvalPoint]:
    """Grow the die (aspect kept) until the netlist routes.

    This is how the paper's Tables 3/5 derive 'chip area / number of
    rows' per netlist.  ``tolerance`` is the violation count still
    considered fixable in post-routing (the paper treats 2 and 9
    violations as "basically routable").  Raises :class:`ReproError`
    when even the largest attempted die fails.
    """
    rh = row_height if row_height is not None else config.library.row_height
    last_error: Optional[str] = None
    for rows in range(start_rows, start_rows + max_extra_rows + 1):
        floorplan = Floorplan.from_rows(rows, row_height=rh, aspect=aspect)
        try:
            point = evaluate_netlist(netlist, floorplan, config,
                                     seed_positions=seed_positions)
        except PlacementError as exc:
            last_error = str(exc)
            continue
        if point.violations <= tolerance:
            return floorplan, point
    raise ReproError(
        f"netlist unroutable even with {start_rows + max_extra_rows} rows"
        + (f" (last placement error: {last_error})" if last_error else ""))


def sis_flow(network: BooleanNetwork, library: CellLibrary,
             effort: str = "high") -> MappingResult:
    """The SIS baseline: aggressive tech-independent optimization,
    then minimum-area mapping.

    Operates on a copy; the input network is untouched.
    """
    optimized = network.copy(network.name + "_sis")
    optimize(optimized, effort=effort)
    base = decompose(optimized)
    return map_network(base, library, min_area(), partition_style=DAGON)


def dagon_flow(network: BooleanNetwork, library: CellLibrary,
               effort: str = "standard") -> MappingResult:
    """The DAGON baseline: moderately optimized technology-independent
    netlist mapped for minimum area by pure tree covering.

    The paper gives DAGON a SIS-generated technology-independent
    netlist; ``effort="standard"`` models that preprocessing.
    """
    prepared = network.copy(network.name + "_dagon")
    if effort != "none":
        optimize(prepared, effort=effort)
    base = decompose(prepared)
    return map_network(base, library, min_area(), partition_style=DAGON)


def timing_of_point(point: EvalPoint, config: FlowConfig,
                    netlist: Optional[MappedNetlist] = None) -> TimingReport:
    """STA of an evaluated point using its routed wirelengths.

    ``netlist`` defaults to the one attached via ``point.mapping``; pass
    it explicitly for points produced by :func:`evaluate_netlist`.
    """
    if point.placement is None or point.routing is None:
        raise ReproError("point was evaluated without placement/routing")
    if netlist is None:
        if point.mapping is None:
            raise ReproError("point has no mapping attached; pass netlist=")
        netlist = point.mapping.netlist
    lengths = {name: point.routing.net_wirelength(name)
               for name in point.routing.routes}
    analyzer = StaticTimingAnalyzer(config.library)
    return analyzer.analyze(netlist, lengths)
