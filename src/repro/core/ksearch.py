"""Adaptive search for the minimum routable K of the paper's sweep.

Tables 2 and 4 evaluate every K of :data:`~repro.core.flow.PAPER_K_VALUES`
and read off the smallest K whose map routes.  When only that minimum is
wanted, the exhaustive sweep over-pays: the violation profile over K has
the paper's three-region shape (Section 5) — violations *fall* with K
while the mapper still trades area for wire (region 1), bottom out in a
routable window (region 2), then *rise* again once the area penalty
bloats the netlist past the die's capacity (region 3) — and that
structure admits a bracketing search.

:func:`k_search` finds the grid minimum with one of three strategies:

* :data:`GRID` — the ascending reference scan, stopping at the first
  routable K.  This is the oracle the adaptive strategies are asserted
  against; with ``workers > 1`` it scans in pool rounds.
* :data:`BISECT` — region-aware bisection.  An unroutable probe whose
  violation count does **not** exceed the running left anchor's is still
  in region 1, so every grid point left of it is certified unroutable by
  the region's monotonicity and the bracket's low edge jumps there
  without evaluating them.  A probe whose violations *exceed* the anchor
  has overshot the window and tightens the high edge instead.  When the
  bracket closes without a routable hit, an ascending verification scan
  of the still-unevaluated points (capped by the best routable point
  seen, if any) recovers exhaustive-scan behaviour — the blips real
  profiles show (e.g. the Table 2 K=0.05 bump) cost extra evaluations,
  never a wrong answer.
* :data:`PORTFOLIO` — the same bracket logic fed by *rounds* of up to
  ``workers`` probes evaluated concurrently through
  :func:`~repro.core.flow.evaluate_k_round`.  The opening round spreads
  probes evenly across the grid (always including the K=0 anchor); each
  round's results are folded into the bracket in ascending-K order, so
  the bracket evolution — and therefore the chosen K — is independent
  of worker scheduling.

All three return the same chosen K; the adaptive strategies just
evaluate fewer points (the acceptance dies of Tables 2/4 close in ≤50%
of the grid).  Warm-start reuse composes with every strategy: serial
strategies thread one :class:`~repro.route.router.RouteCache` through
the probes, parallel rounds shard it per task and merge clean results
back with ``prefer_low_k=True`` — the next, smaller probes of a
minimum-K search warm-start from the lowest clean K seen, and since
warm starts are pure speedups the evaluated rows match the exhaustive
sweep's bit for bit.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..network.dag import BaseNetwork
from ..obs import StatsRegistry, Tracer
from ..place.floorplan import Floorplan
from ..place.placer import place_base_network
from ..route.router import RouteCache
from .flow import (
    EvalPoint,
    FlowConfig,
    PAPER_K_VALUES,
    _progress_line,
    _resolve_caches,
    evaluate_k_round,
    merge_round_routes,
    run_k_point,
)
from .matching import Matcher
from .partition import Partition, partition as make_partition
from .wirecost import PositionMap

__all__ = ["BISECT", "FOUND", "GRID", "KSearchResult", "PORTFOLIO",
           "STRATEGIES", "UNROUTABLE", "k_search"]

#: Search strategies (see module docstring).
GRID = "grid"
BISECT = "bisect"
PORTFOLIO = "portfolio"
STRATEGIES = (GRID, BISECT, PORTFOLIO)

#: :attr:`KSearchResult.verdict` values.
FOUND = "found"
UNROUTABLE = "unroutable"


@dataclass
class KSearchResult:
    """Outcome of a minimum-K search."""

    #: The grid-minimum routable point, or ``None`` when no grid K
    #: routes within ``tolerance``.
    chosen: Optional[EvalPoint]
    #: Every point actually evaluated, in evaluation order — the
    #: audit trail of what the strategy probed.
    evaluated: List[EvalPoint]
    #: The (sorted, deduplicated) K grid searched.
    k_grid: Tuple[float, ...]
    strategy: str
    #: :data:`FOUND` or :data:`UNROUTABLE`.
    verdict: str
    tolerance: int
    #: ``ksearch.*`` counters: ``grid_points`` / ``found`` (count —
    #: plan-independent), ``evaluations`` / ``rounds`` /
    #: ``certified_skips`` (work — they depend on strategy and worker
    #: count by design).
    stats: StatsRegistry = field(default_factory=StatsRegistry)

    @property
    def chosen_k(self) -> Optional[float]:
        """The minimum routable K, if one was found."""
        return self.chosen.k if self.chosen else None

    @property
    def evaluations(self) -> int:
        """How many grid points the strategy actually evaluated."""
        return len(self.evaluated)

    def table_points(self) -> List[EvalPoint]:
        """The evaluated points in ascending-K order (for reporting)."""
        return sorted(self.evaluated, key=lambda p: p.k)


class _Evaluator:
    """Grid-point evaluation with memoisation, reuse and bookkeeping.

    Strategies talk indices; the evaluator owns the mapping to K
    values, the shared matcher, the route cache, and the per-point
    tracing/progress plumbing.  ``evaluate`` is the serial path (one
    matcher, one threaded cache — exactly :func:`~repro.core.flow.k_sweep`'s
    serial loop); ``evaluate_round`` is the parallel-safe unit (shards
    cloned from the last clean snapshot, merged back preferring the
    lowest clean K so subsequent smaller probes warm-start).
    """

    def __init__(self, base: BaseNetwork, positions: PositionMap,
                 floorplan: Floorplan, config: FlowConfig,
                 grid: Tuple[float, ...], part: Partition,
                 tolerance: int, workers: int,
                 tracer: Optional[Tracer],
                 progress: Optional[Callable[[str], None]],
                 matcher: Optional[Matcher] = None,
                 route_cache: Optional[RouteCache] = None):
        self.base = base
        self.positions = positions
        self.floorplan = floorplan
        self.config = config
        self.grid = grid
        self.part = part
        self.tolerance = tolerance
        self.workers = workers
        self.tracer = tracer
        self.progress = progress
        self.points: Dict[int, EvalPoint] = {}
        self.order: List[int] = []
        self.rounds = 0
        self.exec_stats = StatsRegistry()
        self.cache = _resolve_caches(config, route_cache)
        self._matcher = matcher if matcher is not None \
            else Matcher(base, config.library)

    @property
    def evals(self) -> int:
        return len(self.order)

    def routable(self, i: int) -> bool:
        return self.points[i].violations <= self.tolerance

    def violations(self, i: int) -> int:
        return self.points[i].violations

    def evaluate(self, i: int) -> EvalPoint:
        """Serially evaluate grid point ``i`` (no-op when already done)."""
        if i in self.points:
            return self.points[i]
        point = run_k_point(self.base, self.positions, self.floorplan,
                            self.config, self.grid[i], partition=self.part,
                            matcher=self._matcher, route_cache=self.cache)
        self._record(i, point)
        return point

    def evaluate_round(self, indices: Sequence[int]) -> List[EvalPoint]:
        """Evaluate a round of grid points over the process pool."""
        todo = [i for i in indices if i not in self.points]
        if not todo:
            return []
        if self.workers <= 1 or len(todo) == 1:
            return [self.evaluate(i) for i in todo]
        self.rounds += 1
        round_stats = StatsRegistry()
        round_points = evaluate_k_round(
            self.base, self.positions, self.floorplan, self.config,
            [self.grid[i] for i in todo], self.part,
            workers=self.workers, route_cache=self.cache,
            stats=round_stats, tracer=self.tracer)
        if self.cache is not None:
            merge_round_routes(self.cache, round_points, prefer_low_k=True)
        self.exec_stats.merge(round_stats)
        for i, point in zip(todo, round_points):
            point.stats.merge(round_stats)
            self._record(i, point)
        return round_points

    def _record(self, i: int, point: EvalPoint) -> None:
        self.points[i] = point
        self.order.append(i)
        if self.tracer is not None:
            self.tracer.adopt(point.trace)
        if self.progress is not None:
            self.progress(_progress_line(point))


def _spread(n: int, count: int) -> List[int]:
    """Up to ``count`` evenly spaced indices over ``range(n)``, incl. 0."""
    count = max(2, min(count, n))
    if n <= count:
        return list(range(n))
    return sorted({round(j * (n - 1) / (count - 1)) for j in range(count)})


def _pick_spread(candidates: List[int], count: int) -> List[int]:
    """Evenly spaced subset of an (ascending) candidate list."""
    if len(candidates) <= count:
        return list(candidates)
    step = (len(candidates) - 1) / (count - 1)
    return sorted({candidates[round(j * step)] for j in range(count)})


def _scan_ascending(ev: _Evaluator, lo: int, best: Optional[int],
                    batch: int = 1) -> Optional[int]:
    """Verification scan: ascending over the still-unevaluated points.

    Everything at or left of ``lo`` is certified unroutable (region-1
    monotonicity) and every already-evaluated point below ``best`` was
    unroutable when probed, so scanning the unevaluated indices in
    ``(lo, best)`` ascending and returning the first routable one — or
    ``best`` when none turns up — yields exactly the grid minimum.
    """
    stop = best if best is not None else len(ev.grid)
    todo = [i for i in range(lo + 1, stop) if i not in ev.points]
    batch = max(1, batch)
    for start in range(0, len(todo), batch):
        group = todo[start:start + batch]
        if batch > 1:
            ev.evaluate_round(group)
        else:
            ev.evaluate(group[0])
        for i in group:
            if ev.routable(i):
                return i
    return best


def _search_grid(ev: _Evaluator) -> Optional[int]:
    """Ascending reference scan; first routable K is the grid minimum."""
    n = len(ev.grid)
    if ev.workers > 1:
        for start in range(0, n, ev.workers):
            group = list(range(start, min(start + ev.workers, n)))
            ev.evaluate_round(group)
            for i in group:
                if ev.routable(i):
                    return i
        return None
    for i in range(n):
        ev.evaluate(i)
        if ev.routable(i):
            return i
    return None


def _search_bisect(ev: _Evaluator) -> Optional[int]:
    """Region-aware bisection (see module docstring)."""
    n = len(ev.grid)
    ev.evaluate(0)
    if ev.routable(0):
        return 0
    lo, hi = 0, n - 1
    v_lo = ev.violations(0)
    best: Optional[int] = None
    while hi - lo > 1:
        mid = (lo + hi) // 2
        ev.evaluate(mid)
        if ev.routable(mid):
            best = mid if best is None else min(best, mid)
            hi = mid
        elif ev.violations(mid) > v_lo:
            # Overshot the window: more violations than the left anchor
            # means the area penalty is already hurting, not helping.
            hi = mid
        else:
            # Still region 1 — everything left of mid has at least
            # mid's violations, so the whole prefix is certified
            # unroutable without evaluating it.
            lo, v_lo = mid, ev.violations(mid)
    return _scan_ascending(ev, lo, best)


def _search_portfolio(ev: _Evaluator) -> Optional[int]:
    """Bracketing search fed by parallel rounds of probes."""
    n = len(ev.grid)
    width = max(2, ev.workers)
    first = _spread(n, width)
    ev.evaluate_round(first)
    if ev.routable(0):
        return 0
    lo, hi = 0, n - 1
    v_lo = ev.violations(0)
    best: Optional[int] = None
    pending = first[1:]
    while True:
        # Fold the round into the bracket in ascending-K order; probes
        # the bracket has already moved past are stale and skipped, so
        # the evolution never depends on worker scheduling.
        for i in pending:
            if not lo < i < hi:
                continue
            if ev.routable(i):
                best = i if best is None else min(best, i)
                hi = i
            elif ev.violations(i) > v_lo:
                hi = i
            else:
                lo, v_lo = i, ev.violations(i)
        if hi - lo <= 1:
            break
        candidates = [i for i in range(lo + 1, hi) if i not in ev.points]
        if not candidates:
            break
        pending = _pick_spread(candidates, width)
        ev.evaluate_round(pending)
    return _scan_ascending(ev, lo, best, batch=width)


_STRATEGY_FNS = {GRID: _search_grid, BISECT: _search_bisect,
                 PORTFOLIO: _search_portfolio}


def k_search(base: BaseNetwork, floorplan: Floorplan, config: FlowConfig,
             k_values: Sequence[float] = PAPER_K_VALUES,
             positions: Optional[PositionMap] = None,
             strategy: str = BISECT, tolerance: int = 0,
             workers: Optional[int] = None,
             progress: Optional[Callable[[str], None]] = None,
             tracer: Optional[Tracer] = None,
             partition: Optional[Partition] = None,
             matcher: Optional[Matcher] = None,
             route_cache: Optional[RouteCache] = None) -> KSearchResult:
    """Find the minimum routable K of the grid without sweeping it all.

    ``base`` is placed once (unless ``positions`` is given) and
    re-mapped per probed K, exactly like :func:`~repro.core.flow.k_sweep`
    — an evaluated probe's row is identical to the corresponding row of
    the exhaustive sweep.  ``tolerance`` is the violation count still
    considered routable (the paper's "basically routable").

    ``workers`` (defaulting to ``config.workers``) sizes the rounds of
    the :data:`PORTFOLIO` strategy and the pool fan-out of the others;
    the chosen K never depends on it.

    ``tracer``, when given, receives one ``ksearch`` span whose
    children are the evaluated points' subtrees in evaluation order.

    ``partition`` / ``matcher`` / ``route_cache`` inject session-scoped
    caches exactly like :func:`~repro.core.flow.k_sweep` — pure
    speedups, same chosen K and identical evaluated rows.
    """
    grid = tuple(sorted({float(k) for k in k_values}))
    if not grid:
        raise ValueError("k_search needs a non-empty K grid")
    if strategy not in _STRATEGY_FNS:
        raise ValueError(f"unknown k_search strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    nworkers = max(1, config.workers if workers is None else workers)
    if positions is None:
        positions = place_base_network(base, floorplan, seed=config.seed,
                                       engine=config.place_engine)
    part = partition if partition is not None else \
        make_partition(base, config.partition_style, positions=positions)
    span_cm = (tracer.span("ksearch", strategy=strategy, points=len(grid))
               if tracer is not None else contextlib.nullcontext())
    with span_cm as span:
        ev = _Evaluator(base, positions, floorplan, config, grid, part,
                        tolerance, nworkers, tracer, progress,
                        matcher=matcher, route_cache=route_cache)
        chosen_i = _STRATEGY_FNS[strategy](ev)
        stats = StatsRegistry()
        stats.count("ksearch.grid_points", len(grid))
        stats.count("ksearch.found", 1 if chosen_i is not None else 0)
        stats.work("ksearch.evaluations", ev.evals)
        stats.work("ksearch.rounds", ev.rounds)
        stats.work("ksearch.certified_skips", len(grid) - ev.evals)
        stats.merge(ev.exec_stats)
        if span is not None:
            span.counters.absorb(stats)
    return KSearchResult(
        chosen=ev.points[chosen_i] if chosen_i is not None else None,
        evaluated=[ev.points[i] for i in ev.order],
        k_grid=grid, strategy=strategy,
        verdict=FOUND if chosen_i is not None else UNROUTABLE,
        tolerance=tolerance, stats=stats)
