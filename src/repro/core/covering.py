"""Dynamic-programming tree covering (Section 3.2).

Keutzer's optimal tree covering, extended per the paper:

* every tree vertex gets a best solution for **both polarities** (an
  inverter converts between them at known cost),
* each candidate's cost is ``AREA + K * WIRE`` (Eq. 5) where

  - ``AREA(m, v)``  = cell area + sum of the fanin subtrees' area costs
    (Eq. 1),
  - ``WIRE1(m, v)`` = summed distance from the match's center of mass
    to the centers of mass of its fanins' chosen matches (Eq. 2),
  - ``WIRE2(m, v)`` = the sum of the fanins' **stored** wire costs
    (Eq. 3) — each fanin contributes the full ``WIRE`` of its own
    chosen solution, so deep trees accumulate their wire all the way
    down to this tree's leaves — and ``WIRE = WIRE1 + WIRE2`` (Eq. 4).
    (Shared leaves contribute zero: their wire is charged to the tree
    that materializes them.)  The Pedram–Bhat ``transitive_wire``
    variant additionally carries wire *across* tree boundaries, down to
    the primary inputs, via the committed figures in
    :class:`BoundaryInfo`,

* the center of mass of the selected match is stored per vertex so
  parents retrieve it in O(1) — the incremental companion-placement
  update of Section 3.2,
* leaves that refer to *materialized* signals (tree boundaries or
  absorbed multi-fanout vertices) cost nothing in area — their logic is
  paid for by their own tree — and sit at their committed positions.
  A NEG reference to a materialized signal costs one inverter the
  *first* time any tree needs that complement; the netlist builder
  shares a single inverter per net, and :class:`BoundaryInfo` tells the
  DP which complements already exist so it does not charge them again.

An arrival-time estimate rides along for the delay objective.
"""

from __future__ import annotations

import bisect as _bisect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import MappingError
from ..library.cell import CellLibrary
from ..network.dag import BaseNetwork
from .matching import Match, Matcher, NEG, POS
from .objectives import CoverObjective
from .partition import Tree
from .wirecost import EUCLIDEAN, Point, PositionMap

#: Covering engines: the array DP and the per-match reference oracle.
VECTOR = "vector"
REFERENCE = "reference"


@dataclass
class Solution:
    """Best cover found for one (vertex, phase)."""

    cost: float
    area: float
    wire1: float            # Eq. 2 of the chosen match (one level)
    wire: float             # Eq. 4: wire1 + fanins' stored wire
    wire_transitive: float  # accumulated across tree boundaries to PIs
    arrival: float
    com: Point              # center of mass of the chosen match
    match: Optional[Match]  # None for an inverter phase-conversion
    inv_source_phase: Optional[bool] = None
    inv_source: Optional["Solution"] = None


class TreeCover:
    """The covering result for one subject tree."""

    def __init__(self, tree: Tree,
                 solutions: Dict[Tuple[int, bool], Solution]):  # noqa: D107
        self.tree = tree
        self.solutions = solutions

    def root_solution(self) -> Solution:
        """The committed solution: the root in positive phase."""
        return self.solutions[(self.tree.root, POS)]


class BoundaryInfo:
    """What the DP knows about signals materialized outside this tree."""

    def __init__(self, positions: PositionMap,
                 arrivals: Optional[Dict[int, float]] = None,
                 wires: Optional[Dict[int, float]] = None,
                 complemented: Optional[Set[int]] = None):  # noqa: D107
        self.positions = positions
        self.arrivals = arrivals or {}
        self.wires = wires if wires is not None else {}
        self.complemented = complemented if complemented is not None else set()

    def position(self, vertex: int) -> Point:
        """Committed position of a materialized signal."""
        return self.positions.get(vertex)

    def arrival(self, vertex: int) -> float:
        """Committed arrival time of a materialized signal (ns)."""
        return self.arrivals.get(vertex, 0.0)

    def wire(self, vertex: int) -> float:
        """Committed transitive wire cost of a materialized signal (µm)."""
        return self.wires.get(vertex, 0.0)

    def has_complement(self, vertex: int) -> bool:
        """Whether the complement net of a signal already exists.

        The netlist builder shares one inverter per materialized net;
        once some tree has paid for it, later NEG references are free.
        """
        return vertex in self.complemented


def _assignment_fingerprint(cover: TreeCover,
                            is_shared: Callable[[int], bool]) -> Tuple:
    """Canonical description of the realized assignment of a cover.

    Serialises the chosen-solution tree reachable from the root's
    positive phase: match choices (cell name + pin-to-leaf bindings),
    inverter phase conversions, and shared-leaf references (the
    terminals).  Everything the netlist builder commits — instances,
    connectivity, centers of mass, the boundary figures — is a pure
    function of this fingerprint plus the DP-input signature, so two
    covers with equal fingerprints under equal signatures realise
    identically.
    """
    memo: Dict[Tuple[int, bool], Tuple] = {}

    def ref_fp(vertex: int, phase: bool) -> Tuple:
        if is_shared(vertex):
            return ("s", vertex, phase)
        got = memo.get((vertex, phase))
        if got is None:
            got = sol_fp(cover.solutions[(vertex, phase)])
            memo[(vertex, phase)] = got
        return got

    def sol_fp(sol: Solution) -> Tuple:
        if sol.match is None:
            if sol.inv_source is None:
                raise MappingError("conversion solution without a source")
            return ("i", sol_fp(sol.inv_source))
        m = sol.match
        return ("m", m.cell.name, m.phase,
                tuple((pin, ref_fp(u, ph)) for pin, (u, ph) in m.leaves))

    return ref_fp(cover.tree.root, POS)


class CoverMemo:
    """Cross-K covering-DP reuse (the parametric-optimisation memo).

    For a fixed subject tree and fixed DP inputs other than K — the
    match lists, the member positions, the boundary figures of every
    shared leaf any candidate can reference — the total cost of a full
    cover assignment is *affine in K* (``cost = AREA + K·WIRE``,
    Eq. 5; in delay mode ``arrival + K·WIRE``, equally affine), so the
    DP optimum over assignments is the lower envelope of a family of
    lines: concave, piecewise linear in K.  If the DP returned the
    *same* assignment at K₁ and at K₂ > K₁, that assignment is optimal
    throughout [K₁, K₂] and a probe at any interior K can reuse the
    stored cover without re-running the DP.

    The memo stores, per tree and per DP-input signature, the evaluated
    ``(K, assignment fingerprint, cover)`` triples in K order.  A
    lookup hits when its K was evaluated exactly, or when the two
    bracketing evaluated Ks carry equal fingerprints.  Ascending walks
    (sweeps, the Figure 3 loop) never have a right bracket, so they
    never hit; the memo pays off in the bracketing searches of
    :mod:`repro.core.ksearch`, which probe interior Ks by construction.
    Exact cost ties between *distinct* assignments are the one case the
    affine argument does not pin down; the DP's deterministic scan
    order resolves such ties identically at every K where they hold,
    and the equivalence tests assert memo-on runs bit-identical to
    memo-off runs.

    One memo hangs off each :class:`Matcher` (created by the mapper,
    like the matcher's vertex tables).  The memo itself never queries
    the matcher — shared-leaf reference sets are *peeked* from the
    matcher's match memo at store time, right after a DP ran — and the
    mapper credits each hit with the ``len(tree.members)`` match
    queries the skipped DP would have issued, which keeps
    ``map.match_queries`` independent of the execution plan.
    """

    def __init__(self) -> None:  # noqa: D107
        #: key -> {signature -> [(k, fingerprint, cover)] sorted by k}.
        self._entries: Dict[Tuple, Dict[Tuple, List[Tuple]]] = {}
        #: key -> (sorted members, sorted shared (vertex, phase) refs).
        self._refs: Dict[Tuple, Tuple[List[int], Tuple]] = {}
        self.lookups = 0
        self.hits = 0
        self.stores = 0

    def probe(self, tree: Tree, materialized: Set[int], matcher: Matcher,
              objective: CoverObjective,
              boundary: BoundaryInfo) -> "_MemoProbe":
        """A lookup/store handle for one ``cover_tree`` call site."""
        mat = frozenset(v for v in tree.members
                        if v in materialized and v != tree.root)
        key = (tree.root, tree.frozen_members(), mat)
        return _MemoProbe(self, key, matcher, objective, boundary)


class _MemoProbe:
    """Binds a :class:`CoverMemo` to one tree, objective and boundary.

    The probe is built *before* the tree's cover is committed, so its
    signature captures the DP inputs exactly as the DP (or the reused
    cover) saw them.
    """

    __slots__ = ("memo", "key", "matcher", "objective", "boundary", "_sig")

    def __init__(self, memo: CoverMemo, key: Tuple, matcher: Matcher,
                 objective: CoverObjective,
                 boundary: BoundaryInfo) -> None:  # noqa: D107
        self.memo = memo
        self.key = key
        self.matcher = matcher
        self.objective = objective
        self.boundary = boundary
        self._sig: Optional[Tuple] = None

    def _is_shared(self, v: int) -> bool:
        return v not in self.key[1] or v in self.key[2]

    def _signature(self) -> Optional[Tuple]:
        """Every DP input other than K, as one hashable tuple.

        ``None`` until the shared-reference set of this tree is known
        (it is derived on the first store; see :meth:`_derive_refs`).
        """
        if self._sig is None:
            cached = self.memo._refs.get(self.key)
            if cached is None:
                return None
            members_sorted, refs = cached
            boundary = self.boundary
            positions = boundary.positions
            obj = self.objective
            shared_vals = []
            for u, ph in refs:
                vals: Tuple[Any, ...] = (
                    u, ph, boundary.position(u), boundary.wire(u),
                    boundary.arrival(u))
                if ph == NEG:
                    vals += (boundary.has_complement(u),)
                shared_vals.append(vals)
            self._sig = (obj.mode, obj.transitive_wire, obj.load_estimate,
                         positions.metric,
                         tuple(positions.get(v) for v in members_sorted),
                         tuple(shared_vals))
        return self._sig

    def lookup(self) -> Optional[TreeCover]:
        """The reusable cover for this tree at ``objective.k``, if any."""
        self.memo.lookups += 1
        sig = self._signature()
        if sig is None:
            return None
        by_sig = self.memo._entries.get(self.key)
        entries = by_sig.get(sig) if by_sig else None
        if not entries:
            return None
        k = self.objective.k
        ks = [entry[0] for entry in entries]
        i = _bisect.bisect_left(ks, k)
        if i < len(entries) and entries[i][0] == k:
            self.memo.hits += 1
            return entries[i][2]
        if 0 < i < len(entries) and entries[i - 1][1] == entries[i][1]:
            # K is bracketed by two evaluated Ks whose optimal
            # assignments agree — affine costs make that assignment
            # optimal at every K in between.
            self.memo.hits += 1
            return entries[i - 1][2]
        return None

    def store(self, cover: TreeCover) -> None:
        """Record a freshly computed cover at ``objective.k``."""
        memo = self.memo
        if self.key not in memo._refs:
            refs = self._derive_refs()
            if refs is None:  # pragma: no cover - defensive
                return
            memo._refs[self.key] = refs
            self._sig = None
        sig = self._signature()
        if sig is None:  # pragma: no cover - defensive
            return
        fp = _assignment_fingerprint(cover, self._is_shared)
        entries = memo._entries.setdefault(self.key, {}).setdefault(sig, [])
        k = self.objective.k
        ks = [entry[0] for entry in entries]
        i = _bisect.bisect_left(ks, k)
        if i < len(entries) and entries[i][0] == k:
            return
        entries.insert(i, (k, fp, cover))
        memo.stores += 1

    def _derive_refs(self) -> Optional[Tuple[List[int], Tuple]]:
        """Shared-leaf references of *any* candidate match of the tree.

        Peeked from the matcher's match memo (populated by the DP that
        just ran) — peeking instead of querying keeps the matcher's
        hit/miss counters, and with them ``map.match_queries``,
        untouched.  Losing candidates matter too: a boundary change at
        a leaf only a losing match references can flip the argmin, so
        the signature must cover every reference.
        """
        frozen = self.key[1]
        members_sorted = sorted(frozen)
        shared = set()
        for v in members_sorted:
            matches = self.matcher._memo.get((v, frozen))
            if matches is None:  # pragma: no cover - defensive
                return None
            for phase in (POS, NEG):
                for m in matches[phase]:
                    for _, (u, ph) in m.leaves:
                        if self._is_shared(u):
                            shared.add((u, ph))
        return (members_sorted, tuple(sorted(shared)))


def cover_tree(network: BaseNetwork, tree: Tree, matcher: Matcher,
               library: CellLibrary, objective: CoverObjective,
               boundary: BoundaryInfo,
               materialized: Set[int],
               engine: str = VECTOR) -> TreeCover:
    """Cover one subject tree bottom-up; returns the full DP table.

    ``materialized`` lists vertices whose signal exists as a net even if
    they are members of this tree (multi-fanout absorption); the root
    itself is excluded from that treatment since this call is what
    materializes it.  ``engine`` selects the array DP (``"vector"``,
    the default) or the per-match reference implementation
    (``"reference"``); the two are bit-identical.
    """
    if engine == VECTOR:
        return _cover_vector(network, tree, matcher, library, objective,
                             boundary, materialized)
    if engine == REFERENCE:
        return _cover_reference(network, tree, matcher, library, objective,
                                boundary, materialized)
    raise MappingError(f"unknown covering engine {engine!r}")


def _cover_reference(network: BaseNetwork, tree: Tree, matcher: Matcher,
                     library: CellLibrary, objective: CoverObjective,
                     boundary: BoundaryInfo,
                     materialized: Set[int]) -> TreeCover:
    """The per-match scalar DP (the oracle the vector engine must match)."""
    members = tree.members
    root = tree.root
    inv = library.inverter
    positions = boundary.positions

    def consumable(v: int) -> bool:
        return v in members

    def is_shared(v: int) -> bool:
        """Leaf refs to these vertices use the existing net."""
        return v not in members or (v in materialized and v != root)

    solutions: Dict[Tuple[int, bool], Solution] = {}

    def leaf_solution(vertex: int, phase: bool) -> Solution:
        """Cost of supplying (phase of) a signal at a match leaf."""
        if is_shared(vertex):
            pos = boundary.position(vertex)
            arrival = boundary.arrival(vertex)
            # Paper-mode wire restarts at tree boundaries (the signal's
            # wire is charged to its own tree); the transitive variant
            # carries the committed figure across.
            wire_t = boundary.wire(vertex)
            if phase == POS:
                return Solution(cost=0.0, area=0.0, wire1=0.0, wire=0.0,
                                wire_transitive=wire_t, arrival=arrival,
                                com=pos, match=None)
            # A shared inverter realises the complement at the signal's
            # location; the netlist builder dedupes these per net, so
            # its area is charged only while the net does not exist yet.
            inv_area = 0.0 if boundary.has_complement(vertex) else inv.area
            arrival_neg = arrival + inv.delay(objective.load_estimate)
            return Solution(
                cost=objective.cost(inv_area, 0.0, arrival_neg),
                area=inv_area, wire1=0.0, wire=0.0,
                wire_transitive=wire_t,
                arrival=arrival_neg,
                com=pos, match=None, inv_source_phase=POS)
        sol = solutions.get((vertex, phase))
        if sol is None:
            raise MappingError(
                f"no solution for internal vertex {vertex} phase {phase}")
        return sol

    frozen = tree.frozen_members()
    order = [v for v in sorted(members)]
    for v in order:
        cand: Dict[bool, Optional[Solution]] = {POS: None, NEG: None}
        matches = matcher.matches_in_tree(v, frozen)
        for phase in (POS, NEG):
            for match in matches[phase]:
                sol = _evaluate(match, v, objective, positions,
                                leaf_solution)
                if sol is not None and (cand[phase] is None
                                        or sol.cost < cand[phase].cost):
                    cand[phase] = sol
        _apply_conversions(cand, inv, objective)
        for phase in (POS, NEG):
            if cand[phase] is not None:
                solutions[(v, phase)] = cand[phase]
    if (root, POS) not in solutions:
        raise MappingError(f"tree rooted at {root} has no positive cover")
    return TreeCover(tree, solutions)


def _wire_for_mode(sol: Solution, objective: CoverObjective) -> float:
    """The wire figure the objective scores (paper vs transitive)."""
    if objective.transitive_wire:
        return sol.wire_transitive
    return sol.wire


def _apply_conversions(cand: Dict[bool, Optional[Solution]], inv,
                       objective: CoverObjective) -> None:
    """Inverter phase conversions, applied to both phases in place.

    A conversion always chains from the opposite phase's *match-based*
    best, never from another conversion — this keeps realisation
    acyclic.
    """
    match_based = dict(cand)
    for phase in (POS, NEG):
        source = match_based[not phase]
        if source is None:
            continue
        arrival = source.arrival + inv.delay(objective.load_estimate)
        converted = Solution(
            cost=objective.cost(source.area + inv.area,
                                _wire_for_mode(source, objective),
                                arrival),
            area=source.area + inv.area,
            wire1=source.wire1,
            wire=source.wire,
            wire_transitive=source.wire_transitive,
            arrival=arrival,
            com=source.com,
            match=None,
            inv_source_phase=not phase,
            inv_source=source)
        if cand[phase] is None or converted.cost < cand[phase].cost:
            cand[phase] = converted


class _VertexTable:
    """Flattened match descriptors for one (vertex, tree) DP step.

    Both phases' candidate lists are concatenated (POS first) so a
    single batched evaluation scores every match at the vertex; the
    per-phase winner is the first-occurrence argmin over each slice,
    which reproduces the reference scan's strict-``<`` selection.
    Tables depend only on the match lists (never on the objective or
    the positions), so they are cached on the matcher alongside its
    match memo and amortize across K points.
    """

    __slots__ = ("matches", "pos_count", "m", "cell_area", "leaf_groups",
                 "cons_groups", "leaf_u", "leaf_p", "_delay_cache")

    def __init__(self, matches_by_phase: Dict[bool, List[Match]]):  # noqa: D107
        matches = list(matches_by_phase[POS]) + list(matches_by_phase[NEG])
        self.matches = matches
        self.pos_count = len(matches_by_phase[POS])
        self.m = len(matches)
        self._delay_cache: Dict[float, np.ndarray] = {}
        if not self.m:
            return
        self.cell_area = np.array([mt.cell.area for mt in matches],
                                  dtype=float)
        by_leaves: Dict[int, List[int]] = {}
        by_consumed: Dict[int, List[int]] = {}
        for i, mt in enumerate(matches):
            by_leaves.setdefault(len(mt.leaves), []).append(i)
            by_consumed.setdefault(len(mt.consumed), []).append(i)
        self.leaf_groups = []
        refs = set()
        for k, idxs in sorted(by_leaves.items()):
            idx = np.array(idxs, dtype=np.intp)
            lu = np.array([[u for _, (u, _) in matches[i].leaves]
                           for i in idxs], dtype=np.intp).reshape(len(idxs), k)
            lp = np.array([[int(ph) for _, (_, ph) in matches[i].leaves]
                           for i in idxs], dtype=np.intp).reshape(len(idxs), k)
            self.leaf_groups.append((k, idx, lu, lp))
            for i in idxs:
                refs.update((u, int(ph)) for _, (u, ph) in matches[i].leaves)
        self.cons_groups = []
        for s, idxs in sorted(by_consumed.items()):
            idx = np.array(idxs, dtype=np.intp)
            # ``list(frozenset)`` order is what the reference centroid
            # iterates; capture it verbatim so row sums agree bitwise.
            cids = np.array([list(matches[i].consumed) for i in idxs],
                            dtype=np.intp)
            self.cons_groups.append((idx, cids))
        ordered = sorted(refs)
        self.leaf_u = np.array([u for u, _ in ordered], dtype=np.intp)
        self.leaf_p = np.array([p for _, p in ordered], dtype=np.intp)

    def delays(self, load: float) -> np.ndarray:
        """Per-match cell delay under the objective's load estimate."""
        d = self._delay_cache.get(load)
        if d is None:
            d = np.array([mt.cell.delay(load) for mt in self.matches],
                         dtype=float)
            self._delay_cache[load] = d
        return d


def _vertex_table(matcher: Matcher, vertex: int, frozen,
                  matches_by_phase: Dict[bool, List[Match]]) -> _VertexTable:
    cache = getattr(matcher, "_vertex_tables", None)
    if cache is None:
        cache = {}
        matcher._vertex_tables = cache
    key = (vertex, frozen)
    table = cache.get(key)
    if table is None:
        table = _VertexTable(matches_by_phase)
        cache[key] = table
    return table


def _cover_vector(network: BaseNetwork, tree: Tree, matcher: Matcher,
                  library: CellLibrary, objective: CoverObjective,
                  boundary: BoundaryInfo,
                  materialized: Set[int]) -> TreeCover:
    """Array DP over the tree: per-vertex batched match evaluation.

    Evaluates every candidate match at a vertex in one batch of numpy
    ops — leaf gathers grouped by leaf count, centroids grouped by
    consumed-set size — instead of one `_evaluate` call per match.  All
    floating-point summation orders reproduce the reference engine's
    exactly (sequential leaf sums, ``mean`` over the consumed set in
    set-iteration order), so the result is bit-identical.
    """
    members = tree.members
    root = tree.root
    inv = library.inverter
    positions = boundary.positions
    X, Y = positions.arrays()
    euclid = positions.metric == EUCLIDEAN
    nv = len(positions)
    load = objective.load_estimate
    inv_delay = inv.delay(load)

    # Leaf value tables, one row per network vertex, one column per
    # phase (NEG=0, POS=1): area, wire, transitive wire, arrival, com.
    L_area = np.empty((nv, 2))
    L_wire = np.empty((nv, 2))
    L_wiret = np.empty((nv, 2))
    L_arr = np.empty((nv, 2))
    L_cx = np.empty((nv, 2))
    L_cy = np.empty((nv, 2))
    L_ok = np.zeros((nv, 2), dtype=bool)

    def is_shared(v: int) -> bool:
        return v not in members or (v in materialized and v != root)

    def fill_shared(u: int, phase: bool) -> None:
        """Boundary values for a leaf reference to a materialized net."""
        if not is_shared(u):
            raise MappingError(
                f"no solution for internal vertex {u} phase {phase}")
        pos = boundary.position(u)
        arrival = boundary.arrival(u)
        wire_t = boundary.wire(u)
        p = int(phase)
        if phase == POS:
            L_area[u, p] = 0.0
            L_arr[u, p] = arrival
        else:
            L_area[u, p] = (0.0 if boundary.has_complement(u)
                            else inv.area)
            L_arr[u, p] = arrival + inv_delay
        L_wire[u, p] = 0.0
        L_wiret[u, p] = wire_t
        L_cx[u, p] = pos[0]
        L_cy[u, p] = pos[1]
        L_ok[u, p] = True

    solutions: Dict[Tuple[int, bool], Solution] = {}
    frozen = tree.frozen_members()
    for v in sorted(members):
        matches = matcher.matches_in_tree(v, frozen)
        table = _vertex_table(matcher, v, frozen, matches)
        cand: Dict[bool, Optional[Solution]] = {POS: None, NEG: None}
        if table.m:
            missing = ~L_ok[table.leaf_u, table.leaf_p]
            if missing.any():
                for u, p in zip(table.leaf_u[missing].tolist(),
                                table.leaf_p[missing].tolist()):
                    fill_shared(u, bool(p))
            m = table.m
            area = np.empty(m)
            wire1 = np.empty(m)
            wire = np.empty(m)
            wire_t = np.empty(m)
            arr = np.empty(m)
            comx = np.empty(m)
            comy = np.empty(m)
            for idx, cids in table.cons_groups:
                comx[idx] = X[cids].mean(axis=1)
                comy[idx] = Y[cids].mean(axis=1)
            delays = table.delays(load)
            for k, idx, lu, lp in table.leaf_groups:
                if k == 0:
                    area[idx] = table.cell_area[idx]
                    wire1[idx] = 0.0
                    wire[idx] = 0.0
                    wire_t[idx] = 0.0
                    arr[idx] = delays[idx]
                    continue
                la = L_area[lu, lp]
                lw = L_wire[lu, lp]
                lt = L_wiret[lu, lp]
                lr = L_arr[lu, lp]
                lx = L_cx[lu, lp]
                ly = L_cy[lu, lp]
                cx = comx[idx]
                cy = comy[idx]
                if euclid:
                    w1 = np.hypot(cx - lx[:, 0], cy - ly[:, 0])
                else:
                    w1 = np.abs(cx - lx[:, 0]) + np.abs(cy - ly[:, 0])
                asum = la[:, 0]
                w2 = lw[:, 0]
                t2 = lt[:, 0]
                amax = lr[:, 0]
                for j in range(1, k):
                    if euclid:
                        d = np.hypot(cx - lx[:, j], cy - ly[:, j])
                    else:
                        d = np.abs(cx - lx[:, j]) + np.abs(cy - ly[:, j])
                    w1 = w1 + d
                    asum = asum + la[:, j]
                    w2 = w2 + lw[:, j]
                    t2 = t2 + lt[:, j]
                    amax = np.maximum(amax, lr[:, j])
                area[idx] = table.cell_area[idx] + asum
                wire1[idx] = w1
                wire[idx] = w1 + w2
                wire_t[idx] = w1 + t2
                arr[idx] = amax + delays[idx]
            wire_scored = wire_t if objective.transitive_wire else wire
            cost = objective.cost(area, wire_scored, arr)

            def winner(i: int) -> Solution:
                return Solution(
                    cost=float(cost[i]), area=float(area[i]),
                    wire1=float(wire1[i]), wire=float(wire[i]),
                    wire_transitive=float(wire_t[i]),
                    arrival=float(arr[i]),
                    com=(float(comx[i]), float(comy[i])),
                    match=table.matches[i])

            if table.pos_count:
                cand[POS] = winner(int(np.argmin(cost[:table.pos_count])))
            if table.m > table.pos_count:
                cand[NEG] = winner(table.pos_count
                                   + int(np.argmin(cost[table.pos_count:])))
        _apply_conversions(cand, inv, objective)
        for phase in (POS, NEG):
            sol = cand[phase]
            if sol is None:
                continue
            solutions[(v, phase)] = sol
            if not is_shared(v):
                p = int(phase)
                L_area[v, p] = sol.area
                L_wire[v, p] = sol.wire
                L_wiret[v, p] = sol.wire_transitive
                L_arr[v, p] = sol.arrival
                L_cx[v, p] = sol.com[0]
                L_cy[v, p] = sol.com[1]
                L_ok[v, p] = True
    if (root, POS) not in solutions:
        raise MappingError(f"tree rooted at {root} has no positive cover")
    return TreeCover(tree, solutions)


def _evaluate(match: Match, vertex: int, objective: CoverObjective,
              positions: PositionMap,
              leaf_solution: Callable[[int, bool], Solution],
              load: Optional[float] = None) -> Optional[Solution]:
    """Score one candidate match (Eqs. 1–5)."""
    leaf_sols: List[Solution] = []
    for _, (u, phase) in match.leaves:
        leaf_sols.append(leaf_solution(u, phase))
    area = match.cell.area + sum(s.area for s in leaf_sols)
    com = positions.centroid(match.consumed)
    wire1 = sum(positions.dist(com, s.com) for s in leaf_sols)
    # Eq. 3: WIRE2 is the fanins' *stored* wire cost — the full WIRE of
    # each fanin's chosen solution, not just its one-level WIRE1 — so
    # wire accumulates through deep trees instead of being forgotten
    # two levels down.
    wire2 = sum(s.wire for s in leaf_sols)
    wire = wire1 + wire2
    wire_transitive = wire1 + sum(s.wire_transitive for s in leaf_sols)
    arrival = (max((s.arrival for s in leaf_sols), default=0.0)
               + match.cell.delay(load if load is not None
                                  else objective.load_estimate))
    wire_scored = wire_transitive if objective.transitive_wire else wire
    cost = objective.cost(area, wire_scored, arrival)
    return Solution(cost=cost, area=area, wire1=wire1, wire=wire,
                    wire_transitive=wire_transitive, arrival=arrival,
                    com=com, match=match)
