"""Dynamic-programming tree covering (Section 3.2).

Keutzer's optimal tree covering, extended per the paper:

* every tree vertex gets a best solution for **both polarities** (an
  inverter converts between them at known cost),
* each candidate's cost is ``AREA + K * WIRE`` (Eq. 5) where

  - ``AREA(m, v)``  = cell area + sum of the fanin subtrees' area costs
    (Eq. 1),
  - ``WIRE1(m, v)`` = summed distance from the match's center of mass
    to the centers of mass of its fanins' chosen matches (Eq. 2),
  - ``WIRE2(m, v)`` = the sum of the fanins' **stored** wire costs
    (Eq. 3) — each fanin contributes the full ``WIRE`` of its own
    chosen solution, so deep trees accumulate their wire all the way
    down to this tree's leaves — and ``WIRE = WIRE1 + WIRE2`` (Eq. 4).
    (Shared leaves contribute zero: their wire is charged to the tree
    that materializes them.)  The Pedram–Bhat ``transitive_wire``
    variant additionally carries wire *across* tree boundaries, down to
    the primary inputs, via the committed figures in
    :class:`BoundaryInfo`,

* the center of mass of the selected match is stored per vertex so
  parents retrieve it in O(1) — the incremental companion-placement
  update of Section 3.2,
* leaves that refer to *materialized* signals (tree boundaries or
  absorbed multi-fanout vertices) cost nothing in area — their logic is
  paid for by their own tree — and sit at their committed positions.
  A NEG reference to a materialized signal costs one inverter the
  *first* time any tree needs that complement; the netlist builder
  shares a single inverter per net, and :class:`BoundaryInfo` tells the
  DP which complements already exist so it does not charge them again.

An arrival-time estimate rides along for the delay objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import MappingError
from ..library.cell import CellLibrary
from ..network.dag import BaseNetwork
from .matching import Match, Matcher, NEG, POS
from .objectives import CoverObjective
from .partition import Tree
from .wirecost import Point, PositionMap


@dataclass
class Solution:
    """Best cover found for one (vertex, phase)."""

    cost: float
    area: float
    wire1: float            # Eq. 2 of the chosen match (one level)
    wire: float             # Eq. 4: wire1 + fanins' stored wire
    wire_transitive: float  # accumulated across tree boundaries to PIs
    arrival: float
    com: Point              # center of mass of the chosen match
    match: Optional[Match]  # None for an inverter phase-conversion
    inv_source_phase: Optional[bool] = None
    inv_source: Optional["Solution"] = None


class TreeCover:
    """The covering result for one subject tree."""

    def __init__(self, tree: Tree,
                 solutions: Dict[Tuple[int, bool], Solution]):  # noqa: D107
        self.tree = tree
        self.solutions = solutions

    def root_solution(self) -> Solution:
        """The committed solution: the root in positive phase."""
        return self.solutions[(self.tree.root, POS)]


class BoundaryInfo:
    """What the DP knows about signals materialized outside this tree."""

    def __init__(self, positions: PositionMap,
                 arrivals: Optional[Dict[int, float]] = None,
                 wires: Optional[Dict[int, float]] = None,
                 complemented: Optional[Set[int]] = None):  # noqa: D107
        self.positions = positions
        self.arrivals = arrivals or {}
        self.wires = wires if wires is not None else {}
        self.complemented = complemented if complemented is not None else set()

    def position(self, vertex: int) -> Point:
        """Committed position of a materialized signal."""
        return self.positions.get(vertex)

    def arrival(self, vertex: int) -> float:
        """Committed arrival time of a materialized signal (ns)."""
        return self.arrivals.get(vertex, 0.0)

    def wire(self, vertex: int) -> float:
        """Committed transitive wire cost of a materialized signal (µm)."""
        return self.wires.get(vertex, 0.0)

    def has_complement(self, vertex: int) -> bool:
        """Whether the complement net of a signal already exists.

        The netlist builder shares one inverter per materialized net;
        once some tree has paid for it, later NEG references are free.
        """
        return vertex in self.complemented


def cover_tree(network: BaseNetwork, tree: Tree, matcher: Matcher,
               library: CellLibrary, objective: CoverObjective,
               boundary: BoundaryInfo,
               materialized: Set[int]) -> TreeCover:
    """Cover one subject tree bottom-up; returns the full DP table.

    ``materialized`` lists vertices whose signal exists as a net even if
    they are members of this tree (multi-fanout absorption); the root
    itself is excluded from that treatment since this call is what
    materializes it.
    """
    members = tree.members
    root = tree.root
    inv = library.inverter
    positions = boundary.positions

    def consumable(v: int) -> bool:
        return v in members

    def is_shared(v: int) -> bool:
        """Leaf refs to these vertices use the existing net."""
        return v not in members or (v in materialized and v != root)

    solutions: Dict[Tuple[int, bool], Solution] = {}

    def leaf_solution(vertex: int, phase: bool) -> Solution:
        """Cost of supplying (phase of) a signal at a match leaf."""
        if is_shared(vertex):
            pos = boundary.position(vertex)
            arrival = boundary.arrival(vertex)
            # Paper-mode wire restarts at tree boundaries (the signal's
            # wire is charged to its own tree); the transitive variant
            # carries the committed figure across.
            wire_t = boundary.wire(vertex)
            if phase == POS:
                return Solution(cost=0.0, area=0.0, wire1=0.0, wire=0.0,
                                wire_transitive=wire_t, arrival=arrival,
                                com=pos, match=None)
            # A shared inverter realises the complement at the signal's
            # location; the netlist builder dedupes these per net, so
            # its area is charged only while the net does not exist yet.
            inv_area = 0.0 if boundary.has_complement(vertex) else inv.area
            arrival_neg = arrival + inv.delay(objective.load_estimate)
            return Solution(
                cost=objective.cost(inv_area, 0.0, arrival_neg),
                area=inv_area, wire1=0.0, wire=0.0,
                wire_transitive=wire_t,
                arrival=arrival_neg,
                com=pos, match=None, inv_source_phase=POS)
        sol = solutions.get((vertex, phase))
        if sol is None:
            raise MappingError(
                f"no solution for internal vertex {vertex} phase {phase}")
        return sol

    frozen = tree.frozen_members()
    order = [v for v in sorted(members)]
    for v in order:
        cand: Dict[bool, Optional[Solution]] = {POS: None, NEG: None}
        matches = matcher.matches_in_tree(v, frozen)
        for phase in (POS, NEG):
            for match in matches[phase]:
                sol = _evaluate(match, v, objective, positions,
                                leaf_solution)
                if sol is not None and (cand[phase] is None
                                        or sol.cost < cand[phase].cost):
                    cand[phase] = sol
        # Inverter phase conversions.  A conversion always chains from
        # the opposite phase's *match-based* best, never from another
        # conversion — this keeps realisation acyclic.
        match_based = dict(cand)
        for phase in (POS, NEG):
            source = match_based[not phase]
            if source is None:
                continue
            arrival = source.arrival + inv.delay(objective.load_estimate)
            converted = Solution(
                cost=objective.cost(source.area + inv.area,
                                    _wire_for_mode(source, objective),
                                    arrival),
                area=source.area + inv.area,
                wire1=source.wire1,
                wire=source.wire,
                wire_transitive=source.wire_transitive,
                arrival=arrival,
                com=source.com,
                match=None,
                inv_source_phase=not phase,
                inv_source=source)
            if cand[phase] is None or converted.cost < cand[phase].cost:
                cand[phase] = converted
        for phase in (POS, NEG):
            if cand[phase] is not None:
                solutions[(v, phase)] = cand[phase]
    if (root, POS) not in solutions:
        raise MappingError(f"tree rooted at {root} has no positive cover")
    return TreeCover(tree, solutions)


def _wire_for_mode(sol: Solution, objective: CoverObjective) -> float:
    """The wire figure the objective scores (paper vs transitive)."""
    if objective.transitive_wire:
        return sol.wire_transitive
    return sol.wire


def _evaluate(match: Match, vertex: int, objective: CoverObjective,
              positions: PositionMap,
              leaf_solution: Callable[[int, bool], Solution],
              load: Optional[float] = None) -> Optional[Solution]:
    """Score one candidate match (Eqs. 1–5)."""
    leaf_sols: List[Solution] = []
    for _, (u, phase) in match.leaves:
        leaf_sols.append(leaf_solution(u, phase))
    area = match.cell.area + sum(s.area for s in leaf_sols)
    com = positions.centroid(match.consumed)
    wire1 = sum(positions.dist(com, s.com) for s in leaf_sols)
    # Eq. 3: WIRE2 is the fanins' *stored* wire cost — the full WIRE of
    # each fanin's chosen solution, not just its one-level WIRE1 — so
    # wire accumulates through deep trees instead of being forgotten
    # two levels down.
    wire2 = sum(s.wire for s in leaf_sols)
    wire = wire1 + wire2
    wire_transitive = wire1 + sum(s.wire_transitive for s in leaf_sols)
    arrival = (max((s.arrival for s in leaf_sols), default=0.0)
               + match.cell.delay(load if load is not None
                                  else objective.load_estimate))
    wire_scored = wire_transitive if objective.transitive_wire else wire
    cost = objective.cost(area, wire_scored, arrival)
    return Solution(cost=cost, area=area, wire1=wire1, wire=wire,
                    wire_transitive=wire_transitive, arrival=arrival,
                    com=com, match=match)
