"""The technology mapper: partition, cover, commit, build the netlist.

Ties together Sections 3.1 and 3.2 of the paper:

1. partition the placed base network into subject trees,
2. cover the trees in topological order with the DP of
   :mod:`repro.core.covering` under the chosen objective,
3. commit each tree's cover — collapsing covered base-gate positions
   onto match centers of mass so later trees see updated geometry —
   and emit library-cell instances into a :class:`MappedNetlist`.

Phase fixes at tree boundaries share one inverter per net, and mapped
instances carry seed positions (their match's center of mass) that the
placer may use as an initial guess.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import MappingError
from ..library.cell import CellLibrary
from ..obs import StatsRegistry
from ..network.dag import BaseNetwork
from ..network.netlist import MappedNetlist
from .covering import BoundaryInfo, CoverMemo, TreeCover, cover_tree
from .covering import VECTOR as VECTOR_COVER
from .matching import Matcher, POS
from .objectives import CoverObjective, min_area
from .partition import (
    DAGON,
    PLACEMENT,
    Partition,
    partition as make_partition,
)
from .wirecost import Point, PositionMap


@dataclass
class MappingResult:
    """Everything a mapping run produces."""

    netlist: MappedNetlist
    partition: Partition
    objective: CoverObjective
    positions: PositionMap                  # committed layout image
    instance_positions: Dict[str, Point]    # seed positions per instance
    estimated_wirelength: float             # sum of committed WIRE1 terms
    net_of_vertex: Dict[int, str]
    #: ``map.``-namespaced phase times (``map.t_partition`` /
    #: ``map.t_cover`` / ``map.t_build``), match-cache work counters
    #: (integers end-to-end) and result counts/gauges (``map.cells``,
    #: ``map.cell_area``, ``map.match_queries``, ...).
    stats: StatsRegistry = field(default_factory=StatsRegistry)


class TechnologyMapper:
    """Maps a base network onto a cell library.

    Parameters
    ----------
    network:
        The NAND2/INV subject graph.
    library:
        The target cell library.
    objective:
        Covering objective (area / area+K*wire / delay).
    partition_style:
        ``"dagon"``, ``"cone"`` or ``"placement"``.
    positions:
        Placement of the base network (required for the placement
        partitioner and whenever the objective uses wire cost).
    partition:
        A precomputed :class:`Partition` of ``network`` under the same
        positions.  The partition depends only on the base network and
        its placement — not on the objective — so a K sweep computes it
        once and passes it to every mapping run.
    matcher:
        A shared :class:`Matcher` over ``network``/``library``.  Its
        per-``(vertex, tree)`` memo makes repeated runs (one per K)
        enumerate each tree's matches once.
    cover_memo:
        Enable the cross-K covering-DP memo
        (:class:`repro.core.covering.CoverMemo`, stored on the shared
        matcher): a tree whose DP inputs are unchanged and whose
        optimal assignment agrees at two evaluated Ks bracketing this
        run's K skips the DP entirely.  Exact — reused covers commit
        bit-identical netlists — and on by default; disable to A/B the
        memo itself.
    """

    def __init__(self, network: BaseNetwork, library: CellLibrary,
                 objective: Optional[CoverObjective] = None,
                 partition_style: str = DAGON,
                 positions: Optional[PositionMap] = None,
                 max_tree_size: Optional[int] = None,
                 partition: Optional[Partition] = None,
                 matcher: Optional[Matcher] = None,
                 engine: str = VECTOR_COVER,
                 cover_memo: bool = True):  # noqa: D107
        self.network = network
        self.library = library
        self.objective = objective or min_area()
        self.partition_style = partition_style
        self.engine = engine
        needs_positions = (partition_style == PLACEMENT
                           or self.objective.uses_positions)
        if positions is None:
            if needs_positions:
                raise MappingError(
                    "this objective/partitioner needs base-network positions")
            positions = PositionMap.zeros(network.num_vertices())
        self.positions = positions.copy()
        self.max_tree_size = max_tree_size
        self.partition = partition
        self.matcher = matcher if matcher is not None \
            else Matcher(network, library)
        self.cover_memo = cover_memo

    def run(self) -> MappingResult:
        """Execute the full mapping flow and return the result."""
        network = self.network
        matcher = self.matcher
        hits0 = matcher.stats["match_cache_hits"]
        misses0 = matcher.stats["match_cache_misses"]
        t0 = time.perf_counter()
        if self.partition is not None:
            part = self.partition
        else:
            kwargs = {}
            if self.max_tree_size is not None:
                kwargs["max_tree_size"] = self.max_tree_size
            part = make_partition(network, self.partition_style,
                                  positions=self.positions, **kwargs)
        t_partition = time.perf_counter() - t0
        builder = _NetlistBuilder(network, self.library, part,
                                  self.positions, self.objective)
        memo: Optional[CoverMemo] = None
        if self.cover_memo:
            memo = getattr(matcher, "_cover_memo", None)
            if memo is None:
                memo = CoverMemo()
                matcher._cover_memo = memo
        memo_hits = 0
        memo_credit = 0
        t0 = time.perf_counter()
        t_dp = 0.0
        for root in part.roots:
            tree = part.trees[root]
            t1 = time.perf_counter()
            probe = (memo.probe(tree, part.materialized, matcher,
                                self.objective, builder.boundary)
                     if memo is not None else None)
            cover = probe.lookup() if probe is not None else None
            if cover is None:
                cover = cover_tree(network, tree, matcher,
                                   self.library, self.objective,
                                   builder.boundary, part.materialized,
                                   engine=self.engine)
                if probe is not None:
                    probe.store(cover)
            else:
                memo_hits += 1
                memo_credit += len(tree.members)
            t_dp += time.perf_counter() - t1
            builder.commit_tree(cover)
        t_cover = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = builder.finish()
        # A memo hit skips the DP and with it the one match query per
        # tree member the covering would have issued; crediting those
        # queries to the hit column keeps ``map.match_queries`` — a
        # deterministic count asserted identical across execution
        # plans — equal to one query per member of every covered tree,
        # memo or no memo.
        hits = matcher.stats["match_cache_hits"] - hits0 + memo_credit
        misses = matcher.stats["match_cache_misses"] - misses0
        result.stats.time("map.t_partition", t_partition)
        result.stats.time("map.t_cover", t_cover)
        result.stats.time("cover.t_dp", t_dp)
        result.stats.count("cover.trees", len(part.roots))
        result.stats.work("cover.memo_hits", memo_hits)
        result.stats.time("map.t_build", time.perf_counter() - t0)
        # Hits/misses depend on how warm the shared memo is (which K
        # points a process ran before); their sum — the number of match
        # queries the covering issued — is a property of the run alone.
        result.stats.work("map.match_cache_hits", hits)
        result.stats.work("map.match_cache_misses", misses)
        result.stats.count("map.match_queries", hits + misses)
        return result


class _NetlistBuilder:
    """Accumulates committed covers into a mapped netlist."""

    def __init__(self, network: BaseNetwork, library: CellLibrary,
                 part: Partition, positions: PositionMap,
                 objective: CoverObjective):  # noqa: D107
        self.network = network
        self.library = library
        self.part = part
        self.positions = positions
        self.objective = objective
        self.netlist = MappedNetlist(network.name + "_mapped")
        self.boundary = BoundaryInfo(positions, arrivals={})
        self.net_of_vertex: Dict[int, str] = {}
        self.inv_net: Dict[int, str] = {}        # vertex -> complement net
        self.instance_positions: Dict[str, Point] = {}
        self.wirelength = 0.0
        self.claimed_area = 0.0     # DP-predicted area, for auditing
        self._net_uid = 0
        self._reserved = set(network.input_vertex) | set(network.outputs)
        self._po_of_vertex: Dict[int, List[str]] = {}
        for po in sorted(network.outputs):
            self._po_of_vertex.setdefault(network.outputs[po], []).append(po)
        for name in sorted(network.input_vertex):
            v = network.input_vertex[name]
            self.netlist.add_input(name)
            self.net_of_vertex[v] = name

    # -- net naming -----------------------------------------------------

    def _fresh_net(self, prefix: str) -> str:
        while True:
            self._net_uid += 1
            candidate = f"{prefix}{self._net_uid}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate

    def _root_net_name(self, vertex: int) -> str:
        pos = self._po_of_vertex.get(vertex)
        if pos:
            return pos[0]
        return self._fresh_net("n")

    # -- committing one tree ---------------------------------------------

    def commit_tree(self, cover: TreeCover) -> None:
        """Realise the root's positive-phase solution as instances."""
        root = cover.tree.root
        root_net = self._root_net_name(root)
        self._realized: Dict[Tuple[int, bool], str] = {}
        self._realized_sol: Dict[int, str] = {}
        net = self._realize(cover, root, POS, want_net=root_net)
        if net != root_net:  # pragma: no cover - defensive
            raise MappingError(f"root net mismatch at vertex {root}")
        self.net_of_vertex[root] = root_net
        sol = cover.root_solution()
        self.claimed_area += sol.area
        self.boundary.arrivals[root] = sol.arrival
        self.boundary.wires[root] = sol.wire_transitive
        # The root's committed location is its top match's center of mass.
        self.positions.set(root, sol.com)

    def _realize(self, cover: TreeCover, vertex: int, phase: bool,
                 want_net: Optional[str] = None) -> str:
        key = (vertex, phase)
        if key in self._realized:
            net = self._realized[key]
            if want_net is None or net == want_net:
                return net
            # Already realized under another name: rename that net to
            # the requested one instead of emitting a duplicate driver.
            self._rename_net(net, want_net)
            return want_net
        net = self._realize_solution(cover, cover.solutions[key], want_net)
        self._realized[key] = net
        return net

    def _rename_net(self, old: str, new: str) -> None:
        """Rename a realized net and patch all builder bookkeeping."""
        self.netlist.rename_net(old, new)
        self._reserved.add(new)
        for table in (self._realized, self._realized_sol,
                      self.net_of_vertex, self.inv_net):
            for key, net in table.items():
                if net == old:
                    table[key] = new

    def _realize_solution(self, cover: TreeCover, sol,
                          want_net: Optional[str] = None) -> str:
        """Realise one Solution object as instances; memoised by identity.

        Conversions embed their source Solution, so realisation never
        cycles through the per-phase table.
        """
        if want_net is None and id(sol) in self._realized_sol:
            return self._realized_sol[id(sol)]
        if sol.match is None:
            # Inverter phase conversion.
            if sol.inv_source is None:
                raise MappingError("conversion solution without a source")
            source_net = self._realize_solution(cover, sol.inv_source)
            net = want_net or self._fresh_net("w")
            inv = self.library.inverter
            inst = self.netlist.add_instance(
                inv.name, {inv.input_pins[0]: source_net}, net)
            self.instance_positions[inst.name] = sol.com
        else:
            match = sol.match
            pins: Dict[str, str] = {}
            for pin, (u, leaf_phase) in match.leaves:
                pins[pin] = self._leaf_net(cover, u, leaf_phase)
            net = want_net or self._fresh_net("w")
            inst = self.netlist.add_instance(match.cell.name, pins, net)
            self.instance_positions[inst.name] = sol.com
            self.positions.commit(match.consumed, sol.com)
            self.wirelength += sol.wire1
        self._realized_sol[id(sol)] = net
        return net

    def _leaf_net(self, cover: TreeCover, vertex: int, phase: bool) -> str:
        tree = cover.tree
        shared = (vertex not in tree.members
                  or (vertex in self.part.materialized
                      and vertex != tree.root))
        if not shared:
            return self._realize(cover, vertex, phase)
        base_net = self.net_of_vertex.get(vertex)
        if base_net is None:
            raise MappingError(
                f"materialized vertex {vertex} referenced before its tree "
                "was committed")
        if phase == POS:
            return base_net
        inv_net = self.inv_net.get(vertex)
        if inv_net is None:
            inv = self.library.inverter
            inv_net = self._fresh_net("w")
            inst = self.netlist.add_instance(
                inv.name, {inv.input_pins[0]: base_net}, inv_net)
            self.instance_positions[inst.name] = self.positions.get(vertex)
            self.inv_net[vertex] = inv_net
            # Later trees' DPs see the complement as already paid for.
            self.boundary.complemented.add(vertex)
        return inv_net

    # -- finalisation ------------------------------------------------------

    def finish(self) -> MappingResult:
        """Attach primary outputs, prune dead logic, compute stats."""
        for po in sorted(self.network.outputs):
            v = self.network.outputs[po]
            net = self.net_of_vertex.get(v)
            if net is None:
                raise MappingError(f"primary output {po!r} was never mapped")
            self.netlist.add_output(po, net)
        removed = self.netlist.remove_unused()
        self.instance_positions = {
            name: pos for name, pos in self.instance_positions.items()
            if name in self.netlist.instances}
        self.netlist.check()
        area = self.netlist.total_area(self.library)
        stats = StatsRegistry()
        stats.count("map.cells", self.netlist.num_cells())
        stats.gauge("map.cell_area", area)
        stats.count("map.removed_unused", removed)
        stats.gauge("map.estimated_wirelength", self.wirelength)
        stats.gauge("map.dp_claimed_area", self.claimed_area)
        return MappingResult(
            netlist=self.netlist, partition=self.part,
            objective=self.objective, positions=self.positions,
            instance_positions=self.instance_positions,
            estimated_wirelength=self.wirelength,
            net_of_vertex=self.net_of_vertex, stats=stats)


def map_network(network: BaseNetwork, library: CellLibrary,
                objective: Optional[CoverObjective] = None,
                partition_style: str = DAGON,
                positions: Optional[PositionMap] = None,
                max_tree_size: Optional[int] = None,
                partition: Optional[Partition] = None,
                matcher: Optional[Matcher] = None,
                engine: str = VECTOR_COVER,
                cover_memo: bool = True) -> MappingResult:
    """One-call convenience wrapper around :class:`TechnologyMapper`."""
    mapper = TechnologyMapper(network, library, objective=objective,
                              partition_style=partition_style,
                              positions=positions,
                              max_tree_size=max_tree_size,
                              partition=partition, matcher=matcher,
                              engine=engine, cover_memo=cover_memo)
    return mapper.run()
