"""repro — Congestion-Aware Logic Synthesis (DATE 2002), reproduced.

A from-scratch Python implementation of Pandini, Pileggi and Strojwas,
"Congestion-Aware Logic Synthesis" (DATE 2002), together with every
substrate the paper relies on: a SIS-style technology-independent
synthesis engine, a DAGON-style technology mapper, a standard-cell
library, a min-cut placer, a negotiated global router, and a static
timing analyzer.

Quickstart::

    from repro.circuits import spla_like
    from repro.network import decompose
    from repro.library import CORELIB018
    from repro.core import FlowConfig, congestion_aware_flow
    from repro.place import Floorplan

    base = decompose(spla_like())
    config = FlowConfig(library=CORELIB018)
    result = congestion_aware_flow(base, Floorplan.from_rows(32), config)
    print(result.chosen_k, result.converged)

Sub-packages: :mod:`repro.network` (logic representations),
:mod:`repro.synth` (technology-independent synthesis),
:mod:`repro.library` (cells and patterns), :mod:`repro.core` (the
congestion-aware mapper and flows), :mod:`repro.place`,
:mod:`repro.route`, :mod:`repro.timing`, :mod:`repro.circuits`,
:mod:`repro.io`.
"""

from . import errors, metrics

__version__ = "1.0.0"

__all__ = ["errors", "metrics", "__version__"]
