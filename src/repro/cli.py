"""Command-line interface: ``repro <subcommand>``.

Subcommands
-----------
``info``    — statistics of a BLIF file or named benchmark,
``synth``   — technology-independent optimization (BLIF in/out),
``map``     — technology mapping (BLIF in, Verilog out),
``flow``    — the paper's Figure 3 congestion-aware flow on a benchmark,
``ksweep``  — print a Table 2/4-style K sweep (alias: ``sweep``),
``ksearch`` — find the minimum routable K without the full sweep
(``--k-search grid|bisect|portfolio``),
``serve``   — long-lived batch engine: a JSONL job stream (flow/ksweep/
ksearch requests) executed against session-scoped caches, results
streamed back as JSONL in submission order; ``--serve-workers N`` runs
independent (netlist, die) affinity chains concurrently, ``--cache-dir``
persists layouts/route pools across restarts, and
``--cache-max-entries``/``--cache-max-mb`` bound the session caches
(full reference: ``docs/serve.md``).  Live telemetry rides on the side:
``--status-file`` writes an atomic heartbeat JSON (throttled by
``--status-every-jobs``/``--status-every-s``), ``--metrics-out`` renders
the counters and histograms as Prometheus text (+ a ``.json`` sibling)
at every heartbeat and at end of run, and ``--slow-job-s`` arms the
soft per-job deadline watchdog (``docs/observability.md``),
``follow``  — long-poll a growing results JSONL or an atomically
replaced status file, printing each new line; exits on the stream's
end marker, a ``--count``, or a ``--timeout``,
``benchreport`` — compare ``BENCH_*.json`` envelopes against a baseline
directory with per-bench noise floors; writes a Markdown trend table
and exits non-zero on regression,
``sta``     — map, place, route and time a circuit; print the critical path.

``flow``, ``ksweep``, ``ksearch`` and ``serve`` share one execution-flag
block (``--rows/--workers/--route-engine/--place-engine/
--no-route-reuse``) and the observability
flags: ``--trace
FILE`` writes the run's span tree as JSON lines, ``--profile`` prints a
per-phase time/counter breakdown after the run, and ``--artifacts DIR``
dumps one congestion heatmap (CSV + ASCII) per evaluated K point
(defaulting to ``<trace>.artifacts`` when ``--trace`` is given).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .circuits import benchmark
from .core import (
    FlowConfig,
    PAPER_K_VALUES,
    area_congestion,
    congestion_aware_flow,
    evaluate_netlist,
    k_search,
    k_sweep,
    map_network,
    min_area,
    timing_of_point,
)
from .io import dump_blif, dump_verilog, k_sweep_table, parse_blif
from .library import CORELIB018
from .network import decompose
from .obs import (
    Tracer,
    profile_report,
    render_metrics_json,
    render_prometheus,
    write_congestion_artifacts,
)
from .place import Floorplan, place_base_network
from .serve import (
    CacheBounds,
    JobError,
    ServeEngine,
    StatusWriter,
    follow,
    parse_jobs,
    write_atomic_text,
)
from .synth import optimize


def _load_network(source: str):
    """A BLIF path or a named benchmark like ``spla@0.125``."""
    if source.endswith(".blif"):
        with open(source) as handle:
            return parse_blif(handle.read())
    name, _, scale = source.partition("@")
    return benchmark(name, float(scale) if scale else 0.125)


def _cmd_info(args: argparse.Namespace) -> int:
    network = _load_network(args.source)
    print(network)
    base = decompose(network)
    print(base)
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    network = _load_network(args.source)
    report = optimize(network, effort=args.effort)
    print(f"literals {report.literals_before} -> {report.literals_after} "
          f"({report.nodes_after} nodes)", file=sys.stderr)
    output = dump_blif(network)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
    else:
        print(output, end="")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    network = _load_network(args.source)
    base = decompose(network)
    if args.k > 0 or args.partition == "placement":
        floorplan = Floorplan.for_area(
            base.num_gates() * 12.0 / (args.utilization / 100.0))
        positions = place_base_network(base, floorplan)
        objective = area_congestion(args.k)
        result = map_network(base, CORELIB018, objective,
                             partition_style="placement",
                             positions=positions)
    else:
        result = map_network(base, CORELIB018, min_area(),
                             partition_style=args.partition)
    print(f"cells={result.netlist.num_cells()} "
          f"area={result.stats['cell_area']:.1f} um2", file=sys.stderr)
    output = dump_verilog(result.netlist)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
    else:
        print(output, end="")
    return 0


def _make_tracer(args: argparse.Namespace, command: str) -> Optional[Tracer]:
    """A run tracer when any observability flag asks for one."""
    if not (args.trace or args.profile):
        return None
    return Tracer("run", command=command, source=args.source)


def _emit_observability(args: argparse.Namespace, tracer: Optional[Tracer],
                        points) -> None:
    """Write trace / artifacts and print the profile, as requested."""
    artifacts_dir = args.artifacts or \
        (args.trace + ".artifacts" if args.trace else "")
    if artifacts_dir:
        paths = write_congestion_artifacts(points, artifacts_dir)
        print(f"artifacts: {len(paths)} congestion files -> {artifacts_dir}",
              file=sys.stderr)
    if tracer is None:
        return
    root = tracer.close()
    if args.trace:
        lines = tracer.write_jsonl(args.trace)
        print(f"trace: {lines} events -> {args.trace}", file=sys.stderr)
    if args.profile:
        print(profile_report(root))


def _cmd_flow(args: argparse.Namespace) -> int:
    network = _load_network(args.source)
    base = decompose(network)
    config = _flow_config(args)
    floorplan = Floorplan.from_rows(args.rows) if args.rows else \
        Floorplan.for_area(base.num_gates() * 12.0 / 0.35)
    tracer = _make_tracer(args, "flow")
    result = congestion_aware_flow(base, floorplan, config,
                                   tolerance=args.tolerance, tracer=tracer)
    for point in result.history:
        print(f"K={point.k:g}: area={point.cell_area:.0f} "
              f"util={point.utilization:.1f}% violations={point.violations}")
    _emit_observability(args, tracer, result.history)
    if result.converged:
        print(f"converged at K={result.chosen_k:g}")
        return 0
    print("did not converge: relax the floorplan or resynthesize")
    return 1


def _cmd_ksweep(args: argparse.Namespace) -> int:
    network = _load_network(args.source)
    base = decompose(network)
    config = _flow_config(args)
    floorplan = Floorplan.from_rows(args.rows) if args.rows else \
        Floorplan.for_area(base.num_gates() * 12.0 / 0.35)
    k_values = [float(k) for k in args.k.split(",")] if args.k \
        else list(PAPER_K_VALUES)
    tracer = _make_tracer(args, "ksweep")
    points = k_sweep(base, floorplan, config, k_values=k_values,
                     progress=lambda msg: print(msg, file=sys.stderr),
                     tracer=tracer)
    reused = sum(int(p.stats.get("route.routes_reused", 0)) for p in points)
    rerouted = sum(int(p.stats.get("route.segments_rerouted", 0))
                   for p in points)
    print(f"router: engine={config.route_engine} "
          f"routes_reused={reused} segments_rerouted={rerouted}",
          file=sys.stderr)
    print(k_sweep_table(points, title=f"{network.name} K sweep "
                                      f"(die {floorplan.area:.0f} um2, "
                                      f"{floorplan.num_rows} rows)"))
    _emit_observability(args, tracer, points)
    return 0


def _cmd_ksearch(args: argparse.Namespace) -> int:
    network = _load_network(args.source)
    base = decompose(network)
    config = _flow_config(args)
    floorplan = Floorplan.from_rows(args.rows) if args.rows else \
        Floorplan.for_area(base.num_gates() * 12.0 / 0.35)
    k_values = [float(k) for k in args.k.split(",")] if args.k \
        else list(PAPER_K_VALUES)
    tracer = _make_tracer(args, "ksearch")
    result = k_search(base, floorplan, config, k_values=k_values,
                      strategy=args.k_search, tolerance=args.tolerance,
                      progress=lambda msg: print(msg, file=sys.stderr),
                      tracer=tracer)
    evaluated = result.table_points()
    print(k_sweep_table(evaluated,
                        title=f"{network.name} K search ({result.strategy}, "
                              f"die {floorplan.area:.0f} um2, "
                              f"{floorplan.num_rows} rows)"))
    _emit_observability(args, tracer, evaluated)
    print(f"evaluations: {result.evaluations}/{len(result.k_grid)} "
          f"grid points ({result.strategy})", file=sys.stderr)
    if result.chosen is not None:
        print(f"minimum routable K={result.chosen_k:g} "
              f"({result.chosen.violations} violations, "
              f"tolerance {result.tolerance})")
        return 0
    print("no routable K on the grid: relax the floorplan or resynthesize")
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.jobs == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.jobs) as handle:
            lines = handle.read().splitlines()
    try:
        jobs = parse_jobs(lines)
    except JobError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    tracer = Tracer("run", command="serve", source=args.jobs) \
        if (args.trace or args.profile) else None
    artifacts_dir = args.artifacts or \
        (args.trace + ".artifacts" if args.trace else "")
    bounds = CacheBounds(
        max_entries=args.cache_max_entries,
        max_bytes=int(args.cache_max_mb * 1024 * 1024)) \
        if (args.cache_max_entries or args.cache_max_mb) else None
    status = StatusWriter(args.status_file,
                          every_jobs=args.status_every_jobs,
                          every_s=args.status_every_s) \
        if args.status_file else None
    engine = ServeEngine(_flow_config(args), workers=args.workers,
                         tracer=tracer, artifacts_dir=artifacts_dir,
                         serve_workers=args.serve_workers,
                         bounds=bounds, cache_dir=args.cache_dir,
                         status=status, slow_job_s=args.slow_job_s)

    def write_metrics(_document=None) -> None:
        stats = engine.metrics_stats()
        write_atomic_text(args.metrics_out,
                          render_prometheus(stats, engine.metrics))
        write_atomic_text(
            args.metrics_out + ".json",
            render_metrics_json(stats, engine.metrics,
                                {"command": "serve", "jobs": args.jobs}))

    if args.metrics_out and status is not None:
        status.on_write = write_metrics
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        engine.run(jobs, on_result=lambda result: (
            out.write(result.to_json() + "\n"), out.flush()))
    finally:
        if args.output:
            out.close()
    engine.finish()
    if args.metrics_out:
        write_metrics()
    summary = engine.summary()
    if args.summary:
        with open(args.summary, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if tracer is not None:
        root = tracer.close()
        if args.trace:
            n_lines = tracer.write_jsonl(args.trace)
            print(f"trace: {n_lines} events -> {args.trace}", file=sys.stderr)
        if args.profile:
            print(profile_report(root))
    rates = summary["cache_hit_rates"]
    print(f"serve: {summary['ok']}/{summary['jobs']} jobs ok, "
          f"{summary['jobs_per_sec']:.2f} jobs/s "
          f"(cache hits: netlist {rates['netlist']:.0%}, "
          f"layout {rates['layout']:.0%}, "
          f"route pool {rates['route_pool']:.0%})", file=sys.stderr)
    return 0 if summary["ok"] == summary["jobs"] else 1


def _cmd_follow(args: argparse.Namespace) -> int:
    delivered, reason = follow(
        args.file,
        on_line=lambda line: (print(line), sys.stdout.flush()),
        timeout_s=args.timeout, poll_s=args.poll, count=args.count)
    print(f"follow: {delivered} lines ({reason})", file=sys.stderr)
    return 0 if reason in ("end", "count") else 1


def _cmd_benchreport(args: argparse.Namespace) -> int:
    from .tools.benchreport import run_benchreport
    return run_benchreport(results_dir=args.results,
                           baselines_dir=args.baselines,
                           out_path=args.out)


def _cmd_sta(args: argparse.Namespace) -> int:
    network = _load_network(args.source)
    base = decompose(network)
    config = FlowConfig(library=CORELIB018, route_engine=args.route_engine)
    floorplan = Floorplan.from_rows(args.rows) if args.rows else \
        Floorplan.for_area(base.num_gates() * 12.0 / 0.35)
    positions = place_base_network(base, floorplan)
    result = map_network(base, CORELIB018, area_congestion(args.k),
                         partition_style="placement", positions=positions)
    point = evaluate_netlist(result.netlist, floorplan, config, k=args.k)
    point.mapping = result
    report = timing_of_point(point, config)
    print(f"cells      : {result.netlist.num_cells()} "
          f"({result.stats['cell_area']:.1f} um2, "
          f"{point.utilization:.1f}% utilization)")
    print(f"routing    : {point.violations} violations, "
          f"{point.routed_wirelength:.0f} um wire")
    print(f"critical   : {report.describe_critical()} ns")
    print("path       : " + " -> ".join(report.critical_path))
    worst = sorted(report.output_arrival.items(),
                   key=lambda kv: -kv[1])[:args.paths]
    for po, arrival in worst:
        print(f"  {po:<12s} {arrival:8.3f} ns")
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags of ``flow`` and ``ksweep``."""
    parser.add_argument("--trace", metavar="FILE", default="",
                        help="write the run's span tree as JSON lines")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase time/counter breakdown "
                             "after the run")
    parser.add_argument("--artifacts", metavar="DIR", default="",
                        help="write per-K congestion heatmaps (CSV + "
                             "ASCII); defaults to <trace>.artifacts when "
                             "--trace is given")


def _flow_parent() -> argparse.ArgumentParser:
    """The execution flags every flow-running subcommand shares.

    One parent parser instead of a per-subcommand copy: ``flow``,
    ``ksweep``, ``ksearch`` and ``serve`` all inherit
    ``--rows/--workers/--route-engine/--place-engine/--no-route-reuse``
    from here, so a new flag (or help-text fix) lands everywhere at
    once.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--rows", type=int, default=0,
                        help="die rows (0 = utilization-derived die)")
    parent.add_argument("--workers", type=int, default=1,
                        help="process fan-out for parallel stages "
                             "(results are identical to --workers 1)")
    parent.add_argument("--route-engine", default="auto",
                        choices=["auto", "vector", "reference"],
                        help="global-routing engine (auto picks by design "
                             "size; all engines give identical results)")
    parent.add_argument("--place-engine", default="vector",
                        choices=["vector", "reference"],
                        help="placement/covering compute engine (reference "
                             "= scalar oracles; identical results, slower)")
    parent.add_argument("--no-route-reuse", action="store_true",
                        help="disable cross-K route warm-starting")
    return parent


def _flow_config(args: argparse.Namespace) -> FlowConfig:
    """The :class:`FlowConfig` the shared execution flags describe."""
    return FlowConfig(library=CORELIB018, workers=args.workers,
                      route_engine=args.route_engine,
                      route_reuse=not args.no_route_reuse,
                      place_engine=args.place_engine)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Congestion-aware logic synthesis (DATE 2002) tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="circuit statistics")
    p_info.add_argument("source", help="BLIF path or benchmark name[@scale]")
    p_info.set_defaults(func=_cmd_info)

    p_synth = sub.add_parser("synth", help="technology-independent optimization")
    p_synth.add_argument("source")
    p_synth.add_argument("-o", "--output")
    p_synth.add_argument("--effort", default="standard",
                         choices=["fast", "standard", "high", "rugged"])
    p_synth.set_defaults(func=_cmd_synth)

    p_map = sub.add_parser("map", help="technology mapping")
    p_map.add_argument("source")
    p_map.add_argument("-o", "--output")
    p_map.add_argument("--k", type=float, default=0.0,
                       help="congestion minimization factor K")
    p_map.add_argument("--partition", default="dagon",
                       choices=["dagon", "cone", "placement"])
    p_map.add_argument("--utilization", type=float, default=35.0)
    p_map.set_defaults(func=_cmd_map)

    flow_parent = _flow_parent()

    p_flow = sub.add_parser("flow", parents=[flow_parent],
                            help="Figure 3 congestion-aware flow")
    p_flow.add_argument("source")
    p_flow.add_argument("--tolerance", type=int, default=0)
    _add_obs_flags(p_flow)
    p_flow.set_defaults(func=_cmd_flow)

    p_sweep = sub.add_parser("ksweep", aliases=["sweep"],
                             parents=[flow_parent],
                             help="Table 2/4-style K sweep")
    p_sweep.add_argument("source")
    p_sweep.add_argument("--k", default="",
                         help="comma-separated K list (default: paper's)")
    _add_obs_flags(p_sweep)
    p_sweep.set_defaults(func=_cmd_ksweep)

    p_search = sub.add_parser("ksearch", parents=[flow_parent],
                              help="adaptive minimum routable K search")
    p_search.add_argument("source")
    p_search.add_argument("--k-search", default="bisect",
                          choices=["grid", "bisect", "portfolio"],
                          help="search strategy (all find the same K; "
                               "grid is the exhaustive reference)")
    p_search.add_argument("--tolerance", type=int, default=0,
                          help="violations still considered routable")
    p_search.add_argument("--k", default="",
                          help="comma-separated K grid (default: paper's)")
    _add_obs_flags(p_search)
    p_search.set_defaults(func=_cmd_ksearch)

    p_serve = sub.add_parser(
        "serve", parents=[flow_parent],
        help="long-lived batch engine: JSONL jobs in, JSONL results out")
    p_serve.add_argument("jobs", nargs="?", default="-",
                         help="JSONL job stream file ('-' = stdin); one "
                              "{id, cmd, source, ...} object per line")
    p_serve.add_argument("-o", "--output", default="",
                         help="write result JSONL here (default: stdout)")
    p_serve.add_argument("--summary", metavar="FILE", default="",
                         help="write the engine summary (jobs/sec, cache "
                              "hit rates) as JSON")
    p_serve.add_argument("--serve-workers", type=int, default=1,
                         help="run independent jobs concurrently, grouped "
                              "into (netlist, die) affinity chains "
                              "(output is byte-identical to "
                              "--serve-workers 1)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default="",
                         help="persistent on-disk cache: cold engines "
                              "warm-start layouts and route pools from "
                              "here; stale/corrupt entries are skipped")
    p_serve.add_argument("--cache-max-entries", type=int, default=0,
                         help="LRU bound on entries per cache family "
                              "(0 = unbounded)")
    p_serve.add_argument("--cache-max-mb", type=float, default=0.0,
                         help="LRU bound on the estimated total cache "
                              "footprint in MiB (0 = unbounded)")
    p_serve.add_argument("--status-file", metavar="FILE", default="",
                         help="write an atomic live-status heartbeat JSON "
                              "here (schema: docs/observability.md); "
                              "follow it with 'repro follow FILE'")
    p_serve.add_argument("--status-every-jobs", type=int, default=1,
                         metavar="N",
                         help="write a heartbeat at most every N finished "
                              "jobs (default 1)")
    p_serve.add_argument("--status-every-s", type=float, default=0.0,
                         metavar="S",
                         help="also write a heartbeat when S seconds "
                              "passed since the last one (0 = off)")
    p_serve.add_argument("--metrics-out", metavar="FILE", default="",
                         help="render counters + histograms as Prometheus "
                              "text here (plus FILE.json) at every "
                              "heartbeat and at end of run")
    p_serve.add_argument("--slow-job-s", type=float, default=0.0,
                         metavar="S",
                         help="soft per-job deadline: jobs slower than S "
                              "count into serve.slow_jobs and trace a "
                              "slow_job event (0 = off)")
    _add_obs_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_follow = sub.add_parser(
        "follow",
        help="long-poll a results JSONL or status file, print new lines")
    p_follow.add_argument("file", help="results JSONL stream or "
                                       "--status-file heartbeat to follow")
    p_follow.add_argument("--timeout", type=float, default=30.0,
                          metavar="S",
                          help="give up after S seconds without a new "
                               "line (default 30)")
    p_follow.add_argument("--poll", type=float, default=0.2, metavar="S",
                          help="poll interval in seconds (default 0.2)")
    p_follow.add_argument("--count", type=int, default=0, metavar="N",
                          help="stop after N lines (0 = until end marker "
                               "or timeout)")
    p_follow.set_defaults(func=_cmd_follow)

    p_bench = sub.add_parser(
        "benchreport",
        help="compare BENCH_*.json envelopes against baselines; "
             "exit non-zero on regression")
    p_bench.add_argument("--results", default="benchmarks/results",
                         metavar="DIR",
                         help="directory of fresh BENCH_*.json envelopes")
    p_bench.add_argument("--baselines", default="benchmarks/baselines",
                         metavar="DIR",
                         help="directory of baseline BENCH_*.json envelopes")
    p_bench.add_argument("--out", default="", metavar="FILE",
                         help="write the Markdown trend table here "
                              "(default: <results>/BENCHREPORT.md)")
    p_bench.set_defaults(func=_cmd_benchreport)

    p_sta = sub.add_parser("sta", help="map + place + route + timing report")
    p_sta.add_argument("source")
    p_sta.add_argument("--rows", type=int, default=0)
    p_sta.add_argument("--k", type=float, default=0.0)
    p_sta.add_argument("--paths", type=int, default=5,
                       help="how many worst endpoints to list")
    p_sta.add_argument("--route-engine", default="auto",
                       choices=["auto", "vector", "reference"])
    p_sta.set_defaults(func=_cmd_sta)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
