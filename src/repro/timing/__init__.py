"""Static timing analysis substrate (the PrimeTime stand-in)."""

from .buffering import BufferingReport, buffer_fanout, buffer_net, find_buffer
from .delaymodel import DELAY_018, DelayModel
from .sizing import SizingReport, drive_variants, size_gates
from .paths import PathComparison, compare_against_reference
from .sta import StaticTimingAnalyzer, TimingReport, arrival_at_output
from .wiremodel import WIRE_018, WireModel

__all__ = [
    "BufferingReport",
    "SizingReport",
    "buffer_fanout",
    "buffer_net",
    "drive_variants",
    "find_buffer",
    "size_gates",
    "DELAY_018",
    "DelayModel",
    "PathComparison",
    "StaticTimingAnalyzer",
    "TimingReport",
    "WIRE_018",
    "WireModel",
    "arrival_at_output",
    "compare_against_reference",
]
