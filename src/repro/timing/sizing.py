"""Timing-driven gate sizing on mapped netlists.

Post-mapping drive-strength selection: cells on loaded nets are swapped
for stronger variants of the *same function* when that reduces the
worst arrival time.  This is the "sufficient cell sizing capability"
that Sylvester–Keutzer [4] assume in the paper's Section 2.1 — and the
overdesign cost the paper criticises, so the pass reports the area it
spends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..library.cell import CellLibrary, LibCell
from ..network.netlist import MappedNetlist
from .sta import StaticTimingAnalyzer


@dataclass
class SizingReport:
    """What the sizing pass did."""

    swaps: int
    area_before: float
    area_after: float
    arrival_before: float
    arrival_after: float

    @property
    def area_penalty(self) -> float:
        """Fractional area increase spent on drive strength."""
        return self.area_after / self.area_before - 1.0


def drive_variants(library: CellLibrary, cell: LibCell) -> List[LibCell]:
    """All library cells with the same function and pin set as ``cell``."""
    out = []
    for candidate in library.cells():
        if candidate.name == cell.name:
            continue
        if candidate.input_pins != cell.input_pins:
            continue
        if candidate.function != cell.function:
            continue
        out.append(candidate)
    return out


def size_gates(netlist: MappedNetlist, library: CellLibrary,
               analyzer: Optional[StaticTimingAnalyzer] = None,
               net_wirelength: Optional[Dict[str, float]] = None,
               max_passes: int = 3,
               slack_fraction: float = 0.95) -> SizingReport:
    """Upsize cells on critical, heavily loaded nets (in place).

    Greedy: per pass, walk instances whose output arrival is within
    ``slack_fraction`` of the worst arrival, try each stronger variant,
    and keep a swap if the worst arrival improves.  Bounded and always
    timing-driven — no blanket overdesign.
    """
    analyzer = analyzer or StaticTimingAnalyzer(library)
    area_before = netlist.total_area(library)
    report = analyzer.analyze(netlist, net_wirelength)
    arrival_before = report.critical_arrival
    swaps = 0
    for _ in range(max_passes):
        report = analyzer.analyze(netlist, net_wirelength)
        worst = report.critical_arrival
        threshold = worst * slack_fraction
        on_critical_path = {name for name in report.critical_path
                            if name in netlist.instances}
        improved = False
        for inst_name in sorted(netlist.instances):
            inst = netlist.instances[inst_name]
            if (inst_name not in on_critical_path
                    and report.arrival.get(inst.output, 0.0) < threshold):
                continue
            cell = library.cell(inst.cell_name)
            best_cell = None
            best_arrival = worst
            for variant in drive_variants(library, cell):
                inst.cell_name = variant.name
                candidate = analyzer.analyze(netlist, net_wirelength)
                if candidate.critical_arrival < best_arrival - 1e-12:
                    best_arrival = candidate.critical_arrival
                    best_cell = variant
                inst.cell_name = cell.name
            if best_cell is not None:
                inst.cell_name = best_cell.name
                worst = best_arrival
                swaps += 1
                improved = True
        if not improved:
            break
    final = analyzer.analyze(netlist, net_wirelength)
    return SizingReport(swaps=swaps, area_before=area_before,
                        area_after=netlist.total_area(library),
                        arrival_before=arrival_before,
                        arrival_after=final.critical_arrival)
