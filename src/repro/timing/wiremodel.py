"""Interconnect parasitics: the 0.18 µm-class wire RC model.

The paper's whole premise is that below 0.25 µm wiring capacitance
dominates gate capacitance; the per-µm constants here reproduce that
regime (a few hundred µm of wire carries more capacitance than a
typical gate input pin).

Net delay uses the standard lumped-Elmore star approximation over the
*routed* wirelength: less meandering ⇒ less wire RC ⇒ smaller arrival
times — the mechanism behind Tables 3 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WireModel:
    """Per-unit-length wire parasitics."""

    resistance_per_um: float = 0.075e-3   # kΩ/µm  (75 mΩ/µm)
    capacitance_per_um: float = 0.00020   # pF/µm  (0.20 fF/µm)

    def wire_res(self, length_um: float) -> float:
        """Total wire resistance (kΩ)."""
        return self.resistance_per_um * length_um

    def wire_cap(self, length_um: float) -> float:
        """Total wire capacitance (pF)."""
        return self.capacitance_per_um * length_um

    def elmore_delay(self, length_um: float, sink_cap: float) -> float:
        """Lumped Elmore delay of the net itself (ns).

        Star model: the distributed wire contributes R·C/2, and the full
        wire resistance sees the lumped sink pin capacitance.
        """
        r = self.wire_res(length_um)
        c = self.wire_cap(length_um)
        return r * (c / 2.0 + sink_cap)

    def load_on_driver(self, length_um: float, sink_cap: float) -> float:
        """Capacitive load (pF) presented to the driving cell."""
        return self.wire_cap(length_um) + sink_cap


#: Default model shared by STA and the flow drivers.
WIRE_018 = WireModel()
