"""Fanout buffering of mapped netlists.

High-fanout nets (the shared, widely used functions the paper blames
for congestion) also hurt timing: one driver sees the summed pin
capacitance of every sink.  This pass splits such nets with a balanced
tree of buffer cells, bounding the fanout any single output drives.

The transformation is function-preserving (buffers are identities) and
is verified as such by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import LibraryError
from ..library.cell import CellLibrary, LibCell
from ..network.netlist import MappedNetlist


@dataclass
class BufferingReport:
    """What the buffering pass did."""

    nets_buffered: int
    buffers_added: int
    area_added: float


def find_buffer(library: CellLibrary) -> LibCell:
    """The smallest non-inverting single-input cell."""
    candidates = []
    for cell in library.cells():
        if cell.num_inputs != 1:
            continue
        pattern = cell.patterns[0]
        if pattern.num_gates() == 2:  # INV(INV(A))
            candidates.append(cell)
    if not candidates:
        raise LibraryError("library has no buffer cell")
    return min(candidates, key=lambda c: (c.area, c.name))


def buffer_net(netlist: MappedNetlist, net: str, library: CellLibrary,
               max_fanout: int) -> int:
    """Split one net's sinks across a buffer tree; returns buffers added.

    Sinks are partitioned into groups of at most ``max_fanout``; each
    group is re-driven by a buffer fed from the original net.  With more
    groups than ``max_fanout`` the tree recurses upward.
    """
    buffer_cell = find_buffer(library)
    pin = buffer_cell.input_pins[0]
    sinks = netlist.sink_map().get(net, [])
    if len(sinks) <= max_fanout:
        return 0
    added = 0
    current_level: List[str] = []
    groups = [sinks[i:i + max_fanout]
              for i in range(0, len(sinks), max_fanout)]
    for group in groups:
        new_net = netlist.new_net_name("buf")
        inst = netlist.add_instance(buffer_cell.name, {pin: net}, new_net)
        added += 1
        current_level.append(new_net)
        for inst_name, pin_name in group:
            netlist.instances[inst_name].pins[pin_name] = new_net
    # If the original driver now feeds more buffers than the bound,
    # add intermediate buffer levels until it does not.
    while len(current_level) > max_fanout:
        drivers = netlist.driver_map()
        next_level: List[str] = []
        for i in range(0, len(current_level), max_fanout):
            chunk = current_level[i:i + max_fanout]
            if len(chunk) == 1:
                next_level.extend(chunk)
                continue
            new_net = netlist.new_net_name("buf")
            netlist.add_instance(buffer_cell.name, {pin: net}, new_net)
            added += 1
            for child_net in chunk:
                netlist.instances[drivers[child_net]].pins[pin] = new_net
            next_level.append(new_net)
        current_level = next_level
    return added


def buffer_fanout(netlist: MappedNetlist, library: CellLibrary,
                  max_fanout: int = 8) -> BufferingReport:
    """Buffer every net whose sink count exceeds ``max_fanout``.

    Primary-output observation does not count as a sink (pads have
    their own drivers in a real flow).  Returns a report; the netlist
    is modified in place and re-validated.
    """
    if max_fanout < 2:
        raise ValueError("max_fanout must be at least 2")
    buffer_cell = find_buffer(library)
    nets_buffered = 0
    buffers_added = 0
    for net in list(netlist.nets()):
        sinks = netlist.sink_map().get(net, [])
        if len(sinks) > max_fanout:
            added = buffer_net(netlist, net, library, max_fanout)
            if added:
                nets_buffered += 1
                buffers_added += added
    netlist.check()
    return BufferingReport(
        nets_buffered=nets_buffered,
        buffers_added=buffers_added,
        area_added=buffers_added * buffer_cell.area)
