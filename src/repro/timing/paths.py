"""Path reporting helpers for the STA results.

Formats timing data into the comparison rows the paper's Tables 3 and 5
print: each netlist's own critical path, and the reference netlist's
critical endpoint re-timed in the alternative netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .sta import TimingReport, arrival_at_output


@dataclass
class PathComparison:
    """One row of a Table 3/5-style STA comparison."""

    label: str
    critical_start: str
    critical_end: str
    critical_arrival: float
    reference_end: str
    reference_arrival: float

    def row(self) -> Tuple[str, str, str]:
        """(label, own critical, reference path) formatted cells."""
        own = (f"{self.critical_start}(in) {self.critical_end}(out) "
               f"{self.critical_arrival:.2f}")
        ref = (f"{self.reference_end}(out) {self.reference_arrival:.2f}")
        return (self.label, own, ref)


def compare_against_reference(reports: Dict[str, TimingReport],
                              reference_label: str) -> List[PathComparison]:
    """Build Table 3/5 rows: every report vs the reference critical path.

    The reference's critical endpoint is looked up in each other report,
    showing whether the reference path got faster in the alternative
    implementation (the paper's strongest timing claim).
    """
    reference = reports[reference_label]
    ref_po = reference.critical_output
    rows: List[PathComparison] = []
    for label, report in reports.items():
        start, end = report.path_endpoints()
        rows.append(PathComparison(
            label=label,
            critical_start=start,
            critical_end=report.critical_output,
            critical_arrival=report.critical_arrival,
            reference_end=ref_po,
            reference_arrival=arrival_at_output(report, ref_po),
        ))
    return rows
