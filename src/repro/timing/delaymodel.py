"""Gate delay model: linear (intrinsic + drive resistance × load).

The classic synthesis-era delay model (as in SIS/DAGON and the paper's
era of sign-off): per-cell intrinsic delay plus an output-resistance
term proportional to the capacitive load.  Slew propagation is out of
scope; the model is monotone in load, which is all the comparative
timing claims need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..library.cell import LibCell


@dataclass(frozen=True)
class DelayModel:
    """Environment constants for gate-delay evaluation."""

    input_slew_penalty: float = 0.0   # reserved; kept 0 in this repro
    output_pin_cap: float = 0.004     # pF presented by a primary-output pad
    input_drive_resistance: float = 0.5  # kΩ of the pad driving a PI net

    def cell_delay(self, cell: LibCell, load: float) -> float:
        """Pin-to-output delay (ns) of ``cell`` at ``load`` pF."""
        return cell.delay(load)

    def input_delay(self, load: float) -> float:
        """Delay (ns) of a primary-input pad driving ``load`` pF."""
        return self.input_drive_resistance * load


#: Default environment shared by the flow drivers.
DELAY_018 = DelayModel()
