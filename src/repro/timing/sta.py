"""Static timing analysis of placed-and-routed mapped netlists.

The PrimeTime stand-in: topological arrival-time propagation with

* gate delay = intrinsic + drive resistance × (pin caps + wire cap),
* net delay  = lumped Elmore over the *routed* wirelength (falling back
  to placed HPWL, then to zero, when routing/placement is absent),

plus critical-path extraction and the paper's "arrival time of this
path's endpoint in that other netlist" comparison used by Tables 3/5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import TimingError
from ..library.cell import CellLibrary
from ..network.netlist import MappedNetlist
from .delaymodel import DELAY_018, DelayModel
from .wiremodel import WIRE_018, WireModel


@dataclass
class TimingReport:
    """Results of one STA run."""

    arrival: Dict[str, float]           # net -> arrival time (ns)
    output_arrival: Dict[str, float]    # PO name -> arrival time (ns)
    critical_output: str
    critical_arrival: float
    critical_path: List[str]            # PI, instance names..., PO
    net_wirelength: Dict[str, float]    # µm used for parasitics

    def path_endpoints(self) -> Tuple[str, str]:
        """(start point, end point) of the critical path."""
        return (self.critical_path[0], self.critical_path[-1])

    def describe_critical(self) -> str:
        """The paper's 'iJ0J(in) oJ23J(out)  17.85' style line."""
        start, end = self.path_endpoints()
        return f"{start}(in) {end}(out)  {self.critical_arrival:.2f}"


class StaticTimingAnalyzer:
    """Propagates arrival times through a mapped netlist."""

    def __init__(self, library: CellLibrary,
                 wire_model: WireModel = WIRE_018,
                 delay_model: DelayModel = DELAY_018):  # noqa: D107
        self.library = library
        self.wire = wire_model
        self.env = delay_model

    def analyze(self, netlist: MappedNetlist,
                net_wirelength: Optional[Dict[str, float]] = None
                ) -> TimingReport:
        """Run STA; ``net_wirelength`` maps net -> routed length (µm)."""
        if not netlist.outputs:
            raise TimingError("netlist has no primary outputs to time")
        net_wirelength = net_wirelength or {}
        sinks = netlist.sink_map()
        drivers = netlist.driver_map()

        def sink_cap(net: str) -> float:
            cap = 0.0
            for inst_name, pin in sinks.get(net, []):
                cell = self.library.cell(
                    netlist.instances[inst_name].cell_name)
                cap += cell.input_cap(pin)
            if any(netlist.output_net[po] == net for po in netlist.outputs):
                cap += self.env.output_pin_cap
            return cap

        arrival: Dict[str, float] = {}
        from_gate: Dict[str, Optional[str]] = {}
        worst_input_of: Dict[str, str] = {}

        for net in netlist.inputs:
            length = net_wirelength.get(net, 0.0)
            load = self.wire.load_on_driver(length, sink_cap(net))
            arrival[net] = (self.env.input_delay(load)
                            + self.wire.elmore_delay(length, sink_cap(net)))
            from_gate[net] = None

        for inst_name in netlist.topological_instances():
            inst = netlist.instances[inst_name]
            cell = self.library.cell(inst.cell_name)
            worst = 0.0
            worst_net = None
            for pin in sorted(inst.pins):
                net = inst.pins[pin]
                if net not in arrival:
                    raise TimingError(
                        f"instance {inst_name!r} reads un-timed net {net!r}")
                if arrival[net] >= worst:
                    worst = arrival[net]
                    worst_net = net
            out = inst.output
            length = net_wirelength.get(out, 0.0)
            caps = sink_cap(out)
            load = self.wire.load_on_driver(length, caps)
            arrival[out] = (worst + self.env.cell_delay(cell, load)
                            + self.wire.elmore_delay(length, caps))
            from_gate[out] = inst_name
            if worst_net is not None:
                worst_input_of[inst_name] = worst_net

        output_arrival = {po: arrival[netlist.output_net[po]]
                          for po in netlist.outputs}
        critical_output = max(sorted(output_arrival),
                              key=lambda po: output_arrival[po])
        critical_path = self._trace(netlist, critical_output, from_gate,
                                    worst_input_of)
        return TimingReport(
            arrival=arrival, output_arrival=output_arrival,
            critical_output=critical_output,
            critical_arrival=output_arrival[critical_output],
            critical_path=critical_path,
            net_wirelength=dict(net_wirelength))

    def _trace(self, netlist: MappedNetlist, po: str,
               from_gate: Dict[str, Optional[str]],
               worst_input_of: Dict[str, str]) -> List[str]:
        """Walk the worst path backwards from a primary output."""
        path: List[str] = [po]
        net = netlist.output_net[po]
        guard = len(netlist.instances) + 2
        while guard > 0:
            guard -= 1
            gate = from_gate.get(net)
            if gate is None:
                if net != path[-1]:
                    path.append(net)  # the primary input
                break
            path.append(gate)
            net = worst_input_of.get(gate)
            if net is None:
                break
        path.reverse()
        return path


def arrival_at_output(report: TimingReport, po: str) -> float:
    """Arrival at a specific primary output (Tables 3/5 middle column).

    The paper compares one netlist's critical path *inside another
    netlist* by looking up the same endpoint's arrival there.
    """
    try:
        return report.output_arrival[po]
    except KeyError:
        raise TimingError(f"primary output {po!r} not in this report") from None
