"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetworkError(ReproError):
    """Structural problem in a Boolean network or netlist."""


class SynthesisError(ReproError):
    """Failure inside the technology-independent synthesis engine."""


class LibraryError(ReproError):
    """Malformed cell library or pattern definition."""


class MappingError(ReproError):
    """Technology mapping could not produce a legal cover."""


class PlacementError(ReproError):
    """Placement could not legalize or the floorplan is infeasible."""


class RoutingError(ReproError):
    """Global routing failed structurally (not mere overflow)."""


class TimingError(ReproError):
    """Static timing analysis failure (e.g. combinational cycle)."""


class ParseError(ReproError):
    """Malformed input file (PLA, BLIF, liberty, placement)."""
