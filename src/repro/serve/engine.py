"""The long-lived batch engine behind ``repro serve``.

One :class:`ServeEngine` owns a :class:`~repro.serve.caches.SessionCaches`
and executes a stream of :class:`~repro.serve.jobs.Job` requests
against it.  The execution model is deterministic by construction:

* **Results stream in submission order, keyed by job id** — at any
  ``serve_workers`` count.  With ``serve_workers == 1`` jobs run
  strictly sequentially; with ``serve_workers > 1`` the
  :mod:`~repro.serve.scheduler` groups jobs into (netlist, die)
  *affinity chains* — same-key jobs stay ordered on one worker,
  cross-key chains interleave freely across the :mod:`repro.exec`
  process pool.  A job's cache reads therefore see exactly the
  snapshot a sequential run would have produced for its (netlist,
  die), and because every cache is a pure speedup, the emitted result
  lines are byte-identical either way (asserted by
  ``tests/serve/test_scheduler.py`` and ``benchmarks/bench_serve.py``).
* **Parallelism also lives inside jobs.**  Each job's K points,
  portfolio probes and placement attempts fan out over the
  :mod:`repro.exec` pool (``workers`` = the engine default or the
  job's override), with the PR 1/PR 7 guarantees intact: rows are
  bit-identical at any worker count.  Inside a chain worker the inner
  fan-out degrades to the serial loop (pool workers cannot fork), so
  ``serve_workers`` and ``workers`` are complementary, not
  multiplicative.
* **Caches are injected, not rebuilt — and they have a lifecycle.**
  The netlist, layout, matcher and per-(die, netlist) route-cache pool
  come from the session cache; :class:`~repro.serve.caches.CacheBounds`
  adds LRU entry/byte limits for long sessions, and ``cache_dir``
  attaches the persistent disk tier so even *cold* engines warm-start
  layouts and route pools (:mod:`repro.serve.persist`).

A failing job (unknown benchmark, unroutable die, bad BLIF) reports
``ok: false`` with the error message and the stream continues — one
poisoned request must not take down a batch of hundreds.

Live telemetry
--------------
The engine additionally streams **metrics** while it runs: per-job
latency, queue wait and per-phase (map / place / route / covering DP)
times land in fixed-bucket histograms, the estimated cache footprint
in a rolling gauge (one :class:`~repro.obs.metrics.MetricsRegistry`
per engine, chain registries merged back in chain order), and a
**slow-job watchdog** counts jobs that blow a soft per-job deadline
(``slow_job_s``) into ``serve.slow_jobs`` with a ``slow_job`` trace
event — the observability groundwork for admission control.  A
:class:`~repro.serve.status.StatusWriter` (``--status-file``) gets an
atomic heartbeat after every job and chain outcome.  None of this can
change a result byte: telemetry is written on the side, never read
back by the flow.
"""

from __future__ import annotations

import dataclasses
import os
import re
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..core import (
    FlowConfig,
    PAPER_K_VALUES,
    congestion_aware_flow,
    k_search,
    k_sweep,
)
from ..errors import ReproError
from ..exec import fan_out
from ..library import library_build_stats
from ..obs import (
    MetricsRegistry,
    StatsRegistry,
    Tracer,
    write_congestion_artifacts,
)
from ..place import Floorplan
from .caches import (
    CacheBounds,
    SessionCaches,
    counters_to_stats,
    merge_counters,
)
from .jobs import Job, JobResult
from .persist import PersistentCache, cache_fingerprint
from .scheduler import plan_chains, run_chain
from .status import STATUS_SCHEMA_VERSION, StatusWriter

__all__ = ["ServeEngine"]

#: Stats suffixes summed over a job's evaluated points into the
#: engine-level cache/work tallies (all plan-dependent by design).
_POINT_WORK_KEYS = ("route.routes_reused", "route.reuse_skipped",
                    "cover.memo_hits", "map.match_cache_hits")

#: (histogram key, per-point stats key) — the per-phase wall-times
#: summed over a job's evaluated points into latency histograms.
_PHASE_HISTOGRAMS = (("serve.map_seconds", "map.t_total"),
                     ("serve.place_seconds", "eval.t_place"),
                     ("serve.route_seconds", "eval.t_route"),
                     ("serve.cover_seconds", "cover.t_dp"))


def _artifact_slug(job_id: str) -> str:
    """A filesystem-safe directory name for a job's artifacts."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", job_id) or "job"


class ServeEngine:
    """Session-scoped batch executor: jobs in, deterministic results out.

    ``workers`` is the default in-job fan-out; ``serve_workers`` the
    cross-job chain fan-out (see the module docstring for how the two
    compose).  ``bounds`` caps the session caches, ``cache_dir``
    attaches the persistent disk tier; both default to off.  An
    explicitly injected ``caches`` wins over ``bounds``/``cache_dir``.

    ``status`` attaches a heartbeat writer, ``slow_job_s`` arms the
    soft per-job deadline watchdog (0 = off); neither affects result
    lines.
    """

    def __init__(self, config: FlowConfig, workers: int = 1,
                 tracer: Optional[Tracer] = None,
                 artifacts_dir: str = "",
                 caches: Optional[SessionCaches] = None,
                 serve_workers: int = 1,
                 bounds: Optional[CacheBounds] = None,
                 cache_dir: str = "",
                 status: Optional[StatusWriter] = None,
                 slow_job_s: float = 0.0):  # noqa: D107
        self.config = config
        self.workers = max(1, workers)
        self.serve_workers = max(1, serve_workers)
        self.tracer = tracer
        self.artifacts_dir = artifacts_dir
        self.bounds = bounds
        self.cache_dir = cache_dir
        self.status = status
        self.slow_job_s = max(0.0, slow_job_s)
        if caches is not None:
            self.caches = caches
        else:
            persist = PersistentCache(
                cache_dir, cache_fingerprint(config.library)) \
                if cache_dir else None
            self.caches = SessionCaches(config.library, bounds=bounds,
                                        persist=persist)
        self.results: List[JobResult] = []
        self.metrics = MetricsRegistry()
        self.slow_jobs = 0
        self._t_jobs: List[dict] = []
        self._work = {key: 0 for key in _POINT_WORK_KEYS}
        self._chain_counters: Dict[str, int] = {}
        self._t_wall = 0.0
        self._t_run = 0.0
        self._t_accept: Optional[float] = None
        self._jobs_total = 0
        self._pool_fallbacks = 0
        self._finished = False

    # -- one job ---------------------------------------------------------

    def run_job(self, job: Job) -> JobResult:
        """Execute one job against the session caches (sequential path)."""
        t0 = time.perf_counter()
        if self._t_accept is None:
            self._t_accept = t0
        span_cm = (self.tracer.span("job", id=job.id, cmd=job.cmd,
                                    source=job.source)
                   if self.tracer is not None else None)
        try:
            if span_cm is not None:
                with span_cm:
                    result, points = self._dispatch(job)
            else:
                result, points = self._dispatch(job)
        except (ReproError, OSError, KeyError, ValueError) as exc:
            result, points = JobResult(
                id=job.id, cmd=job.cmd, source=job.source, ok=False,
                verdict="error", error=f"{type(exc).__name__}: {exc}"), []
        # Route pools may have advanced during the job: re-account them
        # and write them through to the disk tier before the next job.
        self.caches.sync()
        t_job = time.perf_counter() - t0
        for point in points:
            for key in _POINT_WORK_KEYS:
                self._work[key] += int(point.stats.get(key, 0))
        if self.artifacts_dir and points:
            write_congestion_artifacts(
                points,
                os.path.join(self.artifacts_dir, _artifact_slug(job.id)))
        self._t_jobs.append({"id": job.id, "cmd": job.cmd, "ok": result.ok,
                             "t_s": t_job})
        self._t_wall += t_job
        self.results.append(result)
        self._observe_job(job, points, t_job, queue_wait=t0 - self._t_accept)
        if self.status is not None:
            self.status.update(self.heartbeat())
        return result

    def _observe_job(self, job: Job, points: List[Any], t_job: float,
                     queue_wait: float) -> None:
        """Feed one finished job into the streaming instruments."""
        self.metrics.observe("serve.job_seconds", t_job)
        self.metrics.observe("serve.queue_wait_seconds", max(0.0,
                                                             queue_wait))
        for key, stat in _PHASE_HISTOGRAMS:
            seconds = sum(float(p.stats.get(stat, 0.0)) for p in points)
            if points:
                self.metrics.observe(key, seconds)
        self.metrics.record("serve.cache_bytes_recent",
                            float(self.caches.cache_bytes()))
        if self.slow_job_s and t_job > self.slow_job_s:
            self.slow_jobs += 1
            if self.tracer is not None:
                with self.tracer.span("slow_job", id=job.id,
                                      deadline_s=self.slow_job_s,
                                      t_s=round(t_job, 6)):
                    pass

    def _dispatch(self, job: Job):
        """Run the job's entry point; returns (result, evaluated points)."""
        key, _network, base = self.caches.network(job.source)
        config = dataclasses.replace(
            self.config,
            workers=job.workers if job.workers is not None else self.workers)
        floorplan = Floorplan.from_rows(job.rows) if job.rows else \
            Floorplan.for_area(base.num_gates() * 12.0 / 0.35)
        positions, part = self.caches.layout(key, base, floorplan, config)
        matcher = self.caches.matcher(key, base)
        route_cache = (self.caches.route_pool(key, floorplan)
                       if config.route_reuse else None)
        k_values = list(job.k) if job.k is not None else list(PAPER_K_VALUES)
        if job.cmd == "flow":
            flow = congestion_aware_flow(
                base, floorplan, config, k_schedule=k_values,
                positions=positions, tolerance=job.tolerance,
                tracer=self.tracer, partition=part, matcher=matcher,
                route_cache=route_cache)
            return JobResult(
                id=job.id, cmd=job.cmd, source=job.source,
                ok=flow.converged, verdict=flow.verdict,
                chosen_k=flow.chosen_k,
                rows=[p.row() for p in flow.history]), flow.history
        if job.cmd == "ksweep":
            points = k_sweep(
                base, floorplan, config, k_values=k_values,
                positions=positions, tracer=self.tracer, partition=part,
                matcher=matcher, route_cache=route_cache)
            return JobResult(
                id=job.id, cmd=job.cmd, source=job.source, ok=True,
                verdict="swept", rows=[p.row() for p in points]), points
        assert job.cmd == "ksearch"
        search = k_search(
            base, floorplan, config, k_values=k_values,
            positions=positions, strategy=job.strategy,
            tolerance=job.tolerance, tracer=self.tracer, partition=part,
            matcher=matcher, route_cache=route_cache)
        return JobResult(
            id=job.id, cmd=job.cmd, source=job.source,
            ok=search.chosen is not None, verdict=search.verdict,
            chosen_k=search.chosen_k,
            rows=[p.row() for p in search.table_points()]), search.evaluated

    # -- the stream ------------------------------------------------------

    def run(self, jobs: Iterable[Job],
            on_result: Optional[Callable[[JobResult], None]] = None
            ) -> List[JobResult]:
        """Run a job stream; ``on_result`` streams lines out.

        Results are returned — and streamed — in submission order
        regardless of ``serve_workers``; see the module docstring for
        the scheduling/determinism contract.
        """
        jobs = list(jobs)
        t0 = time.perf_counter()
        if self._t_accept is None:
            self._t_accept = t0
        self._jobs_total += len(jobs)
        if self.serve_workers > 1 and len(jobs) > 1:
            out = self._run_parallel(jobs, on_result)
        else:
            out = []
            for job in jobs:
                result = self.run_job(job)
                out.append(result)
                if on_result is not None:
                    on_result(result)
        self._t_run += time.perf_counter() - t0
        if self.status is not None:
            self.status.update(self.heartbeat(state="done"), force=True)
        return out

    def _run_parallel(self, jobs: List[Job],
                      on_result: Optional[Callable[[JobResult], None]]
                      ) -> List[JobResult]:
        """Fan affinity chains out over the process pool.

        Chains come back in chain-index order (ordered streaming), and
        chain 0 holds submission index 0, so buffering per-job results
        until their submission index is next reproduces the sequential
        emission order exactly.
        """
        chains = plan_chains(jobs)
        payload = (self.config, self.workers, self.bounds, self.cache_dir,
                   self.artifacts_dir, self.tracer is not None,
                   self.slow_job_s)
        tasks = [(index, tuple((i, jobs[i]) for i in chain))
                 for index, chain in enumerate(chains)]

        pending: Dict[int, JobResult] = {}
        ordered: List[JobResult] = []
        timings: List[dict] = []
        next_emit = 0
        chains_done = 0

        def collect(outcome) -> None:
            nonlocal next_emit, chains_done
            chains_done += 1
            if self.tracer is not None:
                self.tracer.adopt(outcome.span)
            merge_counters(self._chain_counters, [outcome.counters])
            for key, value in outcome.work.items():
                self._work[key] = self._work.get(key, 0) + int(value)
            # Chain outcomes arrive in chain-index order (ordered
            # streaming), so this merge order is deterministic.
            self.metrics.merge(MetricsRegistry.from_snapshot(
                outcome.metrics))
            self.slow_jobs += outcome.slow_jobs
            timings.extend(outcome.per_job)
            for index, result in outcome.results:
                pending[index] = result
            while next_emit in pending:
                result = pending.pop(next_emit)
                ordered.append(result)
                if on_result is not None:
                    on_result(result)
                next_emit += 1
            if self.status is not None:
                received = ordered + list(pending.values())
                self.status.update(self.heartbeat(
                    jobs_done=len(received),
                    ok=sum(1 for r in received if r.ok),
                    in_flight_chains=len(chains) - chains_done))

        exec_stats = StatsRegistry()
        fan_out(run_chain, payload, tasks, workers=self.serve_workers,
                stats=exec_stats, tracer=self.tracer, on_result=collect)
        if exec_stats.get("exec.fallback", 0):
            self._pool_fallbacks += 1
        by_id = {entry["id"]: entry for entry in timings}
        for result in ordered:
            entry = by_id.get(result.id, {"id": result.id,
                                          "cmd": result.cmd,
                                          "ok": result.ok, "t_s": 0.0})
            self._t_jobs.append(entry)
            self._t_wall += entry["t_s"]
        self.results.extend(ordered)
        return ordered

    # -- reporting -------------------------------------------------------

    def work_counters(self) -> Dict[str, int]:
        """The per-point work tallies summed over this engine's jobs."""
        return dict(self._work)

    def cache_counters(self) -> Dict[str, int]:
        """The session-cache counters, including parallel chains.

        Sequentially executed jobs hit this engine's own caches;
        chains executed by ``serve_workers > 1`` ran over chain-local
        caches whose counters were merged back — this view sums both,
        so hit/miss/eviction/persistence arithmetic holds across
        scheduling modes.
        """
        counters = self.caches.counters()
        return merge_counters(counters, [self._chain_counters])

    def finish(self) -> None:
        """Attach the end-of-session cache stats to the trace (idempotent).

        Called by the CLI before closing the tracer so ``--profile``
        shows the ``serve.*`` counters — hits/misses, evictions,
        ``serve.cache_bytes`` and the persistent-tier tallies — next
        to the per-phase times.
        """
        if self._finished or self.tracer is None:
            return
        self._finished = True
        with self.tracer.span("session_caches") as span:
            span.counters.absorb(counters_to_stats(self.cache_counters()))

    def _cache_view(self) -> tuple:
        """(cache counters incl. work/library tallies, per-family rates)."""
        cache = self.cache_counters()
        cache.update(self._work)
        lib = library_build_stats()
        cache["library_build_hits"] = int(lib["library.build_hits"])
        cache["library_build_misses"] = int(lib["library.build_misses"])
        rates = {}
        for family in ("netlist", "layout", "matcher", "route_pool",
                       "library_build"):
            hits = cache[f"{family}_hits"]
            total = hits + cache[f"{family}_misses"]
            rates[family] = (hits / total) if total else 0.0
        return cache, rates

    def heartbeat(self, state: str = "running",
                  jobs_done: Optional[int] = None,
                  ok: Optional[int] = None,
                  in_flight_chains: int = 0) -> dict:
        """One live-status document (see :mod:`repro.serve.status`).

        Defaults report the jobs already appended to :attr:`results`;
        the parallel scheduler passes explicit tallies because chain
        results buffer outside ``results`` until emission.
        """
        if jobs_done is None:
            jobs_done = len(self.results)
        if ok is None:
            ok = sum(1 for r in self.results if r.ok)
        cache, rates = self._cache_view()
        last = self._t_jobs[-1] if self._t_jobs else None
        return {
            "schema_version": STATUS_SCHEMA_VERSION,
            "event": "status",
            "state": state,
            "pid": os.getpid(),
            "t_unix": time.time(),
            "jobs_total": self._jobs_total,
            "jobs_done": jobs_done,
            "ok": ok,
            "failed": jobs_done - ok,
            "in_flight_chains": in_flight_chains,
            "slow_jobs": self.slow_jobs,
            "serve_workers": self.serve_workers,
            "cache": cache,
            "cache_hit_rates": rates,
            "instruments": self.metrics.snapshot(),
            "last_job": dict(last) if last else None,
        }

    def metrics_stats(self) -> StatsRegistry:
        """The countable telemetry as one ``serve.*`` stats registry.

        The session-cache counters (via :func:`counters_to_stats`)
        plus the job tallies and the watchdog counter — the numeric
        half of the ``--metrics-out`` export; the distribution half is
        :attr:`metrics`.
        """
        registry = counters_to_stats(self.cache_counters())
        registry.work("serve.jobs_done", len(self.results))
        registry.work("serve.jobs_ok",
                      sum(1 for r in self.results if r.ok))
        registry.work("serve.slow_jobs", self.slow_jobs)
        registry.env("serve.serve_workers", self.serve_workers)
        registry.env("serve.workers", self.workers)
        return registry

    def summary(self) -> dict:
        """Machine-readable session summary (plan-dependent numbers).

        Jobs/sec over the engine's run wall-time, the session-cache
        hit/miss/eviction counters with derived rates, the persistent
        disk-tier counters, the library build-memo counters, and the
        per-job timing list.  Everything here may legitimately vary
        run to run; the deterministic payload is the result lines
        themselves.
        """
        cache, rates = self._cache_view()
        n = len(self.results)
        t_rate = self._t_run if self._t_run > 0 else self._t_wall
        return {
            "jobs": n,
            "ok": sum(1 for r in self.results if r.ok),
            "workers": self.workers,
            "serve_workers": self.serve_workers,
            "pool_fallbacks": self._pool_fallbacks,
            "slow_jobs": self.slow_jobs,
            "t_jobs_s": self._t_wall,
            "t_run_s": self._t_run,
            "jobs_per_sec": (n / t_rate) if t_rate > 0 else 0.0,
            "cache": cache,
            "cache_hit_rates": rates,
            "per_job": list(self._t_jobs),
        }
