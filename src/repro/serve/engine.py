"""The long-lived batch engine behind ``repro serve``.

One :class:`ServeEngine` owns a :class:`~repro.serve.caches.SessionCaches`
and executes a stream of :class:`~repro.serve.jobs.Job` requests
against it.  The execution model is deliberately simple and fully
deterministic:

* **Jobs run sequentially, in submission order.**  The queue is the
  determinism rule: results stream out in input order, and every job
  sees exactly the cache state its predecessors left behind —
  independent of worker count, because caches only ever make jobs
  *faster*, never different.
* **Parallelism lives inside jobs.**  Each job's K points, portfolio
  probes and placement attempts fan out over the existing
  :mod:`repro.exec` process pool (``workers`` = the engine default or
  the job's override), with the PR 1/PR 7 guarantees intact: rows are
  bit-identical at any worker count.
* **Caches are injected, not rebuilt.**  The netlist, layout, matcher
  and per-(die, netlist) route-cache pool come from the session cache;
  the flow entry points accept them as injected caches and thread them
  exactly as their internal ones.

A failing job (unknown benchmark, unroutable die, bad BLIF) reports
``ok: false`` with the error message and the stream continues — one
poisoned request must not take down a batch of hundreds.
"""

from __future__ import annotations

import dataclasses
import re
import time
from typing import Callable, Iterable, List, Optional

from ..core import (
    FlowConfig,
    PAPER_K_VALUES,
    congestion_aware_flow,
    k_search,
    k_sweep,
)
from ..errors import ReproError
from ..library import library_build_stats
from ..obs import Tracer, write_congestion_artifacts
from ..place import Floorplan
from .caches import SessionCaches
from .jobs import Job, JobResult

__all__ = ["ServeEngine"]

#: Stats suffixes summed over a job's evaluated points into the
#: engine-level cache/work tallies (all plan-dependent by design).
_POINT_WORK_KEYS = ("route.routes_reused", "route.reuse_skipped",
                    "cover.memo_hits", "map.match_cache_hits")


def _artifact_slug(job_id: str) -> str:
    """A filesystem-safe directory name for a job's artifacts."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", job_id) or "job"


class ServeEngine:
    """Session-scoped batch executor: jobs in, deterministic results out."""

    def __init__(self, config: FlowConfig, workers: int = 1,
                 tracer: Optional[Tracer] = None,
                 artifacts_dir: str = "",
                 caches: Optional[SessionCaches] = None):  # noqa: D107
        self.config = config
        self.workers = max(1, workers)
        self.tracer = tracer
        self.artifacts_dir = artifacts_dir
        self.caches = caches if caches is not None \
            else SessionCaches(config.library)
        self.results: List[JobResult] = []
        self._t_jobs: List[dict] = []
        self._work = {key: 0 for key in _POINT_WORK_KEYS}
        self._t_wall = 0.0

    # -- one job ---------------------------------------------------------

    def run_job(self, job: Job) -> JobResult:
        """Execute one job against the session caches."""
        t0 = time.perf_counter()
        span_cm = (self.tracer.span("job", id=job.id, cmd=job.cmd,
                                    source=job.source)
                   if self.tracer is not None else None)
        try:
            if span_cm is not None:
                with span_cm:
                    result, points = self._dispatch(job)
            else:
                result, points = self._dispatch(job)
        except (ReproError, OSError, KeyError, ValueError) as exc:
            result, points = JobResult(
                id=job.id, cmd=job.cmd, source=job.source, ok=False,
                verdict="error", error=f"{type(exc).__name__}: {exc}"), []
        t_job = time.perf_counter() - t0
        for point in points:
            for key in _POINT_WORK_KEYS:
                self._work[key] += int(point.stats.get(key, 0))
        if self.artifacts_dir and points:
            import os
            write_congestion_artifacts(
                points,
                os.path.join(self.artifacts_dir, _artifact_slug(job.id)))
        self._t_jobs.append({"id": job.id, "cmd": job.cmd, "ok": result.ok,
                             "t_s": t_job})
        self._t_wall += t_job
        self.results.append(result)
        return result

    def _dispatch(self, job: Job):
        """Run the job's entry point; returns (result, evaluated points)."""
        key, _network, base = self.caches.network(job.source)
        config = dataclasses.replace(
            self.config,
            workers=job.workers if job.workers is not None else self.workers)
        floorplan = Floorplan.from_rows(job.rows) if job.rows else \
            Floorplan.for_area(base.num_gates() * 12.0 / 0.35)
        positions, part = self.caches.layout(key, base, floorplan, config)
        matcher = self.caches.matcher(key, base)
        route_cache = (self.caches.route_pool(key, floorplan)
                       if config.route_reuse else None)
        k_values = list(job.k) if job.k is not None else list(PAPER_K_VALUES)
        if job.cmd == "flow":
            flow = congestion_aware_flow(
                base, floorplan, config, k_schedule=k_values,
                positions=positions, tolerance=job.tolerance,
                tracer=self.tracer, partition=part, matcher=matcher,
                route_cache=route_cache)
            return JobResult(
                id=job.id, cmd=job.cmd, source=job.source,
                ok=flow.converged, verdict=flow.verdict,
                chosen_k=flow.chosen_k,
                rows=[p.row() for p in flow.history]), flow.history
        if job.cmd == "ksweep":
            points = k_sweep(
                base, floorplan, config, k_values=k_values,
                positions=positions, tracer=self.tracer, partition=part,
                matcher=matcher, route_cache=route_cache)
            return JobResult(
                id=job.id, cmd=job.cmd, source=job.source, ok=True,
                verdict="swept", rows=[p.row() for p in points]), points
        assert job.cmd == "ksearch"
        search = k_search(
            base, floorplan, config, k_values=k_values,
            positions=positions, strategy=job.strategy,
            tolerance=job.tolerance, tracer=self.tracer, partition=part,
            matcher=matcher, route_cache=route_cache)
        return JobResult(
            id=job.id, cmd=job.cmd, source=job.source,
            ok=search.chosen is not None, verdict=search.verdict,
            chosen_k=search.chosen_k,
            rows=[p.row() for p in search.table_points()]), search.evaluated

    # -- the stream ------------------------------------------------------

    def run(self, jobs: Iterable[Job],
            on_result: Optional[Callable[[JobResult], None]] = None
            ) -> List[JobResult]:
        """Run a job stream in order; ``on_result`` streams lines out."""
        out: List[JobResult] = []
        for job in jobs:
            result = self.run_job(job)
            out.append(result)
            if on_result is not None:
                on_result(result)
        return out

    # -- reporting -------------------------------------------------------

    def summary(self) -> dict:
        """Machine-readable session summary (plan-dependent numbers).

        Jobs/sec over in-engine job wall-time, the session-cache
        hit/miss counters with derived rates, the library build-memo
        counters, and the per-job timing list.  Everything here may
        legitimately vary run to run; the deterministic payload is the
        result lines themselves.
        """
        cache = self.caches.counters()
        cache.update(self._work)
        lib = library_build_stats()
        cache["library_build_hits"] = int(lib["library.build_hits"])
        cache["library_build_misses"] = int(lib["library.build_misses"])
        rates = {}
        for family in ("netlist", "layout", "matcher", "route_pool",
                       "library_build"):
            hits = cache[f"{family}_hits"]
            total = hits + cache[f"{family}_misses"]
            rates[family] = (hits / total) if total else 0.0
        n = len(self.results)
        return {
            "jobs": n,
            "ok": sum(1 for r in self.results if r.ok),
            "workers": self.workers,
            "t_jobs_s": self._t_wall,
            "jobs_per_sec": (n / self._t_wall) if self._t_wall > 0 else 0.0,
            "cache": cache,
            "cache_hit_rates": rates,
            "per_job": list(self._t_jobs),
        }
