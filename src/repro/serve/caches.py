"""Session-scoped caches shared across the jobs of one engine.

One-shot CLI invocations pay the full cold-start tax on every run:
re-import, library pattern rebuild, netlist parse + decomposition,
technology-independent placement, match enumeration, cold route
negotiation.  A :class:`SessionCaches` instance owns everything of that
which is reusable *across* jobs, keyed so that reuse is always sound:

* **Parsed netlists** — content-keyed: a BLIF file keys on the SHA-256
  of its text (two paths with the same content share one parse; an
  edited file re-parses), a generated benchmark on its normalized
  ``name@scale`` spec.  The cached object is the *decomposed*
  :class:`~repro.network.dag.BaseNetwork` plus its source network;
  flow jobs never mutate either.
* **Layouts** — the technology-independent placement and the
  K-independent partition, keyed by (netlist, die, seed, engines,
  partition style): exactly the products :func:`~repro.core.flow.k_sweep`
  hoists out of its per-K loop, hoisted one level further — out of the
  per-job loop.
* **Matchers** — one :class:`~repro.core.matching.Matcher` per
  (netlist, library): its per-(vertex, tree) match memo and the
  :class:`~repro.core.covering.CoverMemo` the mapper hangs off it
  compose across jobs exactly as they do across the K points of one
  sweep.
* **Route pools** — one :class:`~repro.route.router.RouteCache` per
  (netlist, die): jobs warm-start from the last clean snapshot a
  previous job on the *same* die/netlist stored, through the same
  clean-snapshot sharding that keeps parallel sweep rounds
  bit-identical.  A job on a different die or netlist gets its own
  pool entry, so it can never adopt a foreign shard (the grid key
  inside :class:`RouteCache` backstops even hand-constructed misuse).

Every cache is a pure speedup: mapping, placement and match results are
deterministic functions of their keys, and route warm starts never
change reported rows — so a warm engine emits byte-identical result
lines to a cold one, bounded or not, disk-backed or not.

Lifecycle
---------
Long sessions cannot grow without bound, so every family is an LRU
store governed by one :class:`CacheBounds`: ``max_entries`` caps each
family's entry count, ``max_bytes`` caps the *estimated* total byte
footprint across all four families (evicting the globally
least-recently-used entry first, whatever family it lives in).
Evictions are counted per family and in total, and the running byte
estimate is exported as the ``serve.cache_bytes`` gauge — both visible
in ``--profile`` and the engine summary.  Because entries are pure
speedups, eviction can never change a result line, only the wall-clock
of a later job that re-misses.

Below the in-memory tier sits an optional
:class:`~repro.serve.persist.PersistentCache` (``--cache-dir``):
layouts are written through on first computation, route pools after
every job that advanced their snapshot, and a *cold* process warm
starts from disk where the version/fingerprint/key guards allow —
stale or corrupt entries are skipped, never adopted (see
:mod:`repro.serve.persist`).  Memory hit/miss counters are unaffected
by the disk tier: a disk hit is still a memory miss, it just skips the
recompute.
"""

from __future__ import annotations

import hashlib
import sys
import types
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

from ..circuits import benchmark
from ..core import FlowConfig, Matcher, Partition, PositionMap
from ..core.partition import partition as make_partition
from ..io import parse_blif
from ..library.cell import CellLibrary
from ..network.dag import BaseNetwork
from ..network.decompose import decompose
from ..obs import StatsRegistry
from ..place import Floorplan, place_base_network
from ..route.router import RouteCache
from .persist import PersistentCache

__all__ = ["CacheBounds", "SessionCaches", "approx_nbytes", "die_key",
           "source_key"]

#: (width, row height, rows) — everything that distinguishes one die.
DieKey = Tuple[float, float, int]

#: The cache family names, in reporting order.
FAMILIES = ("netlist", "layout", "matcher", "route_pool")


def source_key(source: str) -> str:
    """Content key of a job source (BLIF path or ``name@scale``)."""
    if source.endswith(".blif"):
        with open(source, "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        return f"blif:sha256:{digest}"
    name, _, scale = source.partition("@")
    return f"bench:{name.lower()}@{float(scale) if scale else 0.125:g}"


def die_key(floorplan: Floorplan) -> DieKey:
    """The cache key of a die (grid geometry is derived from these)."""
    return (floorplan.width, floorplan.row_height, floorplan.num_rows)


@dataclass(frozen=True)
class CacheBounds:
    """Size limits for one :class:`SessionCaches` (0 = unbounded).

    ``max_entries`` bounds each family independently (a session may
    hold at most that many netlists, layouts, matchers and route pools
    *each*); ``max_bytes`` bounds the estimated total footprint of all
    families together.  Both are enforced on insertion by evicting
    least-recently-used entries first.
    """

    max_entries: int = 0
    max_bytes: int = 0

    @property
    def bounded(self) -> bool:
        """Whether any limit is active."""
        return self.max_entries > 0 or self.max_bytes > 0


#: Types the byte estimator never descends into: code objects and the
#: process-wide shared library singleton (counted by nobody — it exists
#: once regardless of cache contents).
_OPAQUE_TYPES: Tuple[type, ...] = (
    type, types.ModuleType, types.FunctionType, types.BuiltinFunctionType,
    types.MethodType, CellLibrary)


def approx_nbytes(obj: Any, max_visits: int = 200_000) -> int:
    """Estimated deep byte footprint of a cache entry.

    A deterministic, bounded object walk: numpy arrays contribute their
    ``nbytes``, containers and instance ``__dict__``/``__slots__`` are
    descended into (each object counted once), and the walk stops at
    ``max_visits`` objects so a pathological entry cannot stall
    insertion.  Shared sub-objects *between* entries are counted in
    each entry that reaches them — this is an accounting estimate for
    eviction pressure, not an allocator audit.
    """
    seen: set = set()
    stack = [obj]
    total = 0
    visits = 0
    while stack and visits < max_visits:
        item = stack.pop()
        ident = id(item)
        if ident in seen:
            continue
        seen.add(ident)
        visits += 1
        if isinstance(item, _OPAQUE_TYPES):
            continue
        if isinstance(item, np.ndarray):
            total += int(item.nbytes) + 128
            continue
        try:
            total += sys.getsizeof(item)
        except TypeError:  # pragma: no cover - exotic objects
            total += 64
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        elif not isinstance(item, (str, bytes, bytearray, int, float,
                                   complex, bool, type(None))):
            state = getattr(item, "__dict__", None)
            if state is not None:
                stack.append(state)
            for slot in getattr(type(item), "__slots__", ()):
                value = getattr(item, slot, None)
                if value is not None:
                    stack.append(value)
    return total


class _Entry:
    """One cached value with its recency tick and byte estimate."""

    __slots__ = ("value", "tick", "nbytes")

    def __init__(self, value: Any, tick: int, nbytes: int):  # noqa: D107
        self.value = value
        self.tick = tick
        self.nbytes = nbytes


class SessionCaches:
    """The four cross-job cache families plus lifecycle bookkeeping.

    ``bounds`` activates LRU eviction (see :class:`CacheBounds`);
    ``persist`` attaches the on-disk tier (see
    :class:`~repro.serve.persist.PersistentCache`).  Both default to
    off, which reproduces the unbounded in-memory behaviour exactly.
    """

    def __init__(self, library: CellLibrary,
                 bounds: Optional[CacheBounds] = None,
                 persist: Optional[PersistentCache] = None):  # noqa: D107
        self.library = library
        self.bounds = bounds if bounds is not None else CacheBounds()
        self.persist = persist
        self._families: Dict[str, Dict[Any, _Entry]] = {
            family: {} for family in FAMILIES}
        #: The routes-dict object last persisted per route-pool key —
        #: identity comparison detects snapshot advances (``store()``
        #: rebinds the dict), and holding the reference pins its id.
        self._route_saved: Dict[Any, Any] = {}
        self._tick = 0
        self._counts: Dict[str, int] = {}
        for family in FAMILIES:
            self._counts[f"{family}_hits"] = 0
            self._counts[f"{family}_misses"] = 0
            self._counts[f"{family}_evictions"] = 0

    # -- the LRU machinery ----------------------------------------------

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def _get(self, family: str, key: Any) -> Optional[Any]:
        entry = self._families[family].get(key)
        if entry is None:
            self._counts[f"{family}_misses"] += 1
            return None
        entry.tick = self._next_tick()
        self._counts[f"{family}_hits"] += 1
        return entry.value

    def _put(self, family: str, key: Any, value: Any) -> None:
        nbytes = approx_nbytes(value)
        self._families[family][key] = _Entry(value, self._next_tick(),
                                             nbytes)
        if self.bounds.bounded:
            self._enforce_bounds()

    def _evict(self, family: str, key: Any) -> None:
        entry = self._families[family].pop(key)
        if family == "route_pool":
            # A dirty pool's snapshot would otherwise be lost: flush it
            # to the disk tier (when there is one) before letting go.
            self._persist_route_pool(key, entry.value)
            self._route_saved.pop(key, None)
        self._counts[f"{family}_evictions"] += 1

    def _enforce_bounds(self) -> None:
        limit = self.bounds.max_entries
        if limit > 0:
            for family in FAMILIES:
                entries = self._families[family]
                while len(entries) > limit:
                    oldest = min(entries, key=lambda k: entries[k].tick)
                    self._evict(family, oldest)
        limit = self.bounds.max_bytes
        if limit > 0:
            while self.cache_bytes() > limit:
                victim = None  # (tick, family, key)
                for family in FAMILIES:
                    for key, entry in self._families[family].items():
                        if victim is None or entry.tick < victim[0]:
                            victim = (entry.tick, family, key)
                if victim is None:
                    break
                self._evict(victim[1], victim[2])

    def cache_bytes(self) -> int:
        """The current estimated footprint across all families."""
        return sum(entry.nbytes
                   for entries in self._families.values()
                   for entry in entries.values())

    # -- netlists --------------------------------------------------------

    def network(self, source: str) -> Tuple[str, object, BaseNetwork]:
        """(key, source network, decomposed base) for a job source."""
        key = source_key(source)
        cached = self._get("netlist", key)
        if cached is not None:
            network, base = cached
            return key, network, base
        if source.endswith(".blif"):
            with open(source) as handle:
                network = parse_blif(handle.read())
        else:
            name, _, scale = source.partition("@")
            network = benchmark(name, float(scale) if scale else 0.125)
        base = decompose(network)
        self._put("netlist", key, (network, base))
        return key, network, base

    # -- layouts ---------------------------------------------------------

    def layout(self, key: str, base: BaseNetwork, floorplan: Floorplan,
               config: FlowConfig) -> Tuple[PositionMap, Partition]:
        """(positions, partition) for a (netlist, die, config) triple.

        The placement is seeded exactly as the uninjected entry points
        seed it (``config.seed`` / ``config.place_engine``), so cached
        layouts are bit-identical to freshly computed ones.  On a
        memory miss the disk tier is consulted before recomputing; a
        fresh computation is written through to it.
        """
        lkey = (key, die_key(floorplan), config.seed, config.place_engine,
                config.partition_style)
        cached = self._get("layout", lkey)
        if cached is not None:
            return cached
        stored = self.persist.load("layout", lkey) \
            if self.persist is not None else None
        if stored is not None:
            positions, part = stored
        else:
            positions = place_base_network(base, floorplan,
                                           seed=config.seed,
                                           engine=config.place_engine)
            part = make_partition(base, config.partition_style,
                                  positions=positions)
            if self.persist is not None:
                self.persist.store("layout", lkey, (positions, part))
        self._put("layout", lkey, (positions, part))
        return positions, part

    # -- matchers --------------------------------------------------------

    def matcher(self, key: str, base: BaseNetwork) -> Matcher:
        """The shared matcher (match memo + cover memo) of a netlist.

        Matchers are memo *carriers*, not memo *contents*: they are
        never persisted — their value is the in-process match/cover
        memos, which rebuild incrementally anyway.
        """
        cached = self._get("matcher", key)
        if cached is not None:
            return cached
        matcher = Matcher(base, self.library)
        self._put("matcher", key, matcher)
        return matcher

    # -- route pools -----------------------------------------------------

    def route_pool(self, key: str, floorplan: Floorplan) -> RouteCache:
        """The per-(netlist, die) warm-start route cache.

        Distinct dies (or netlists) map to distinct pool entries, so a
        job can never warm-start from a foreign shard; within one
        entry, the flow layer's clean-snapshot rule (only
        zero-violation routings are stored) applies across jobs exactly
        as it does across the K points of one sweep.  A cold pool is
        seeded from the disk tier when a guarded snapshot exists there.
        """
        rkey = (key, die_key(floorplan))
        cached = self._get("route_pool", rkey)
        if cached is not None:
            return cached
        cache = RouteCache()
        stored = self.persist.load("route", rkey) \
            if self.persist is not None else None
        if stored is not None:
            cache.grid_key = stored["grid_key"]
            cache.routes = {sig: [np.asarray(arr) for arr in arrs]
                            for sig, arrs in stored["routes"]}
            # The adopted snapshot is what disk already holds — do not
            # rewrite it until a job advances it.
            self._route_saved[rkey] = cache.routes
        self._put("route_pool", rkey, cache)
        return cache

    @staticmethod
    def _routes_equal(saved: Any, routes: Dict[Any, Any]) -> bool:
        """Whether a pool's routes match the last-persisted snapshot."""
        if saved is routes:
            return True
        if saved is None or saved.keys() != routes.keys():
            return False
        for sig, arrs in routes.items():
            olds = saved[sig]
            if len(olds) != len(arrs) or not all(
                    np.array_equal(old, arr)
                    for old, arr in zip(olds, arrs)):
                return False
        return True

    def _persist_route_pool(self, rkey: Any, cache: RouteCache) -> None:
        """Write one pool's snapshot through to disk if it advanced.

        "Advanced" means the routes differ from the last snapshot this
        session persisted (or adopted from disk) — a job that re-stored
        an identical clean snapshot does not trigger a rewrite.
        """
        if self.persist is None or not cache.routes:
            return
        if self._routes_equal(self._route_saved.get(rkey), cache.routes):
            self._route_saved[rkey] = cache.routes
            return
        payload = {"grid_key": cache.grid_key,
                   "routes": sorted((sig, list(arrs))
                                    for sig, arrs in cache.routes.items())}
        if self.persist.store("route", rkey, payload):
            self._route_saved[rkey] = cache.routes

    def sync(self) -> None:
        """Flush advanced route-pool snapshots to the disk tier and
        refresh their byte estimates.

        The engine calls this after every job: route pools are the one
        family whose entries *grow* after insertion (the flow layer
        stores clean snapshots into them), so their accounting — and
        their persistent copies — are brought up to date here rather
        than on some later, unrelated access.
        """
        entries = self._families["route_pool"]
        for rkey, entry in entries.items():
            cache = entry.value
            if self._route_saved.get(rkey) is not cache.routes:
                self._persist_route_pool(rkey, cache)
                entry.nbytes = approx_nbytes(cache)
                if self.persist is None:
                    # No disk tier: the saved reference only marks the
                    # snapshot as accounted, so sync stays O(changed).
                    self._route_saved[rkey] = cache.routes
        if self.bounds.bounded:
            self._enforce_bounds()

    @property
    def route_pool_keys(self) -> Tuple[Tuple[str, DieKey], ...]:
        """The (netlist, die) keys currently pooled (isolation tests)."""
        return tuple(self._families["route_pool"])

    # -- reporting -------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Plain hit/miss/eviction snapshot plus sizes and disk-tier
        counters (all int; see the module docstring for semantics)."""
        out = dict(self._counts)
        for family in FAMILIES:
            out[f"{family}_entries"] = len(self._families[family])
        out["evictions"] = sum(self._counts[f"{f}_evictions"]
                               for f in FAMILIES)
        out["cache_bytes"] = self.cache_bytes()
        if self.persist is not None:
            out.update(self.persist.counters())
        else:
            out.update({"persist_hits": 0, "persist_misses": 0,
                        "persist_skipped": 0, "persist_writes": 0})
        return out

    def stats(self) -> StatsRegistry:
        """The snapshot as ``serve.*`` stats (for spans / ``--profile``).

        Hit/miss/eviction and disk-tier tallies are ``work`` (they vary
        with the execution plan); entry counts are ``env`` facts; the
        byte estimate is the ``serve.cache_bytes`` gauge.
        """
        return counters_to_stats(self.counters())


def counters_to_stats(counts: Dict[str, int]) -> StatsRegistry:
    """A merged counters dict (engine-level) as ``serve.*`` stats."""
    registry = StatsRegistry()
    for name, value in counts.items():
        if name.endswith("_entries"):
            registry.env(f"serve.{name}", int(value))
        elif name == "cache_bytes":
            registry.gauge("serve.cache_bytes", float(value))
        else:
            registry.work(f"serve.{name}", int(value))
    return registry


def merge_counters(target: Dict[str, int],
                   sources: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum counter dicts key-wise into ``target`` (missing keys added).

    The engine uses this to aggregate per-chain cache counters from
    parallel workers into one session view; summing is correct for
    every key exported by :meth:`SessionCaches.counters` (hit/miss/
    eviction/persist tallies, entry counts and byte estimates are all
    additive across disjoint chain-local caches).
    """
    for source in sources:
        for name, value in source.items():
            target[name] = target.get(name, 0) + int(value)
    return target
