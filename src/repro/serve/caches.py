"""Session-scoped caches shared across the jobs of one engine.

One-shot CLI invocations pay the full cold-start tax on every run:
re-import, library pattern rebuild, netlist parse + decomposition,
technology-independent placement, match enumeration, cold route
negotiation.  A :class:`SessionCaches` instance owns everything of that
which is reusable *across* jobs, keyed so that reuse is always sound:

* **Parsed netlists** — content-keyed: a BLIF file keys on the SHA-256
  of its text (two paths with the same content share one parse; an
  edited file re-parses), a generated benchmark on its normalized
  ``name@scale`` spec.  The cached object is the *decomposed*
  :class:`~repro.network.dag.BaseNetwork` plus its source network;
  flow jobs never mutate either.
* **Layouts** — the technology-independent placement and the
  K-independent partition, keyed by (netlist, die, seed, engines,
  partition style): exactly the products :func:`~repro.core.flow.k_sweep`
  hoists out of its per-K loop, hoisted one level further — out of the
  per-job loop.
* **Matchers** — one :class:`~repro.core.matching.Matcher` per
  (netlist, library): its per-(vertex, tree) match memo and the
  :class:`~repro.core.covering.CoverMemo` the mapper hangs off it
  compose across jobs exactly as they do across the K points of one
  sweep.
* **Route pools** — one :class:`~repro.route.router.RouteCache` per
  (netlist, die): jobs warm-start from the last clean snapshot a
  previous job on the *same* die/netlist stored, through the same
  clean-snapshot sharding that keeps parallel sweep rounds
  bit-identical.  A job on a different die or netlist gets its own
  pool entry, so it can never adopt a foreign shard (the grid key
  inside :class:`RouteCache` backstops even hand-constructed misuse).

Every cache is a pure speedup: mapping, placement and match results are
deterministic functions of their keys, and route warm starts never
change reported rows — so a warm engine emits byte-identical result
lines to a cold one.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

from ..circuits import benchmark
from ..core import FlowConfig, Matcher, Partition, PositionMap
from ..core.partition import partition as make_partition
from ..io import parse_blif
from ..library.cell import CellLibrary
from ..network.dag import BaseNetwork
from ..network.decompose import decompose
from ..obs import StatsRegistry
from ..place import Floorplan, place_base_network
from ..route.router import RouteCache

__all__ = ["SessionCaches", "die_key", "source_key"]

#: (width, row height, rows) — everything that distinguishes one die.
DieKey = Tuple[float, float, int]


def source_key(source: str) -> str:
    """Content key of a job source (BLIF path or ``name@scale``)."""
    if source.endswith(".blif"):
        with open(source, "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        return f"blif:sha256:{digest}"
    name, _, scale = source.partition("@")
    return f"bench:{name.lower()}@{float(scale) if scale else 0.125:g}"


def die_key(floorplan: Floorplan) -> DieKey:
    """The cache key of a die (grid geometry is derived from these)."""
    return (floorplan.width, floorplan.row_height, floorplan.num_rows)


class SessionCaches:
    """The four cross-job cache families plus hit/miss bookkeeping."""

    def __init__(self, library: CellLibrary):  # noqa: D107
        self.library = library
        self._networks: Dict[str, Tuple[object, BaseNetwork]] = {}
        self._layouts: Dict[Tuple, Tuple[PositionMap, Partition]] = {}
        self._matchers: Dict[str, Matcher] = {}
        self._routes: Dict[Tuple[str, DieKey], RouteCache] = {}
        self._counts: Dict[str, int] = {
            "netlist_hits": 0, "netlist_misses": 0,
            "layout_hits": 0, "layout_misses": 0,
            "matcher_hits": 0, "matcher_misses": 0,
            "route_pool_hits": 0, "route_pool_misses": 0,
        }

    # -- netlists --------------------------------------------------------

    def network(self, source: str) -> Tuple[str, object, BaseNetwork]:
        """(key, source network, decomposed base) for a job source."""
        key = source_key(source)
        cached = self._networks.get(key)
        if cached is not None:
            self._counts["netlist_hits"] += 1
            network, base = cached
            return key, network, base
        self._counts["netlist_misses"] += 1
        if source.endswith(".blif"):
            with open(source) as handle:
                network = parse_blif(handle.read())
        else:
            name, _, scale = source.partition("@")
            network = benchmark(name, float(scale) if scale else 0.125)
        base = decompose(network)
        self._networks[key] = (network, base)
        return key, network, base

    # -- layouts ---------------------------------------------------------

    def layout(self, key: str, base: BaseNetwork, floorplan: Floorplan,
               config: FlowConfig) -> Tuple[PositionMap, Partition]:
        """(positions, partition) for a (netlist, die, config) triple.

        The placement is seeded exactly as the uninjected entry points
        seed it (``config.seed`` / ``config.place_engine``), so cached
        layouts are bit-identical to freshly computed ones.
        """
        lkey = (key, die_key(floorplan), config.seed, config.place_engine,
                config.partition_style)
        cached = self._layouts.get(lkey)
        if cached is not None:
            self._counts["layout_hits"] += 1
            return cached
        self._counts["layout_misses"] += 1
        positions = place_base_network(base, floorplan, seed=config.seed,
                                       engine=config.place_engine)
        part = make_partition(base, config.partition_style,
                              positions=positions)
        self._layouts[lkey] = (positions, part)
        return positions, part

    # -- matchers --------------------------------------------------------

    def matcher(self, key: str, base: BaseNetwork) -> Matcher:
        """The shared matcher (match memo + cover memo) of a netlist."""
        cached = self._matchers.get(key)
        if cached is not None:
            self._counts["matcher_hits"] += 1
            return cached
        self._counts["matcher_misses"] += 1
        matcher = Matcher(base, self.library)
        self._matchers[key] = matcher
        return matcher

    # -- route pools -----------------------------------------------------

    def route_pool(self, key: str, floorplan: Floorplan) -> RouteCache:
        """The per-(netlist, die) warm-start route cache.

        Distinct dies (or netlists) map to distinct pool entries, so a
        job can never warm-start from a foreign shard; within one
        entry, the flow layer's clean-snapshot rule (only
        zero-violation routings are stored) applies across jobs exactly
        as it does across the K points of one sweep.
        """
        rkey = (key, die_key(floorplan))
        cached = self._routes.get(rkey)
        if cached is not None:
            self._counts["route_pool_hits"] += 1
            return cached
        self._counts["route_pool_misses"] += 1
        cache = RouteCache()
        self._routes[rkey] = cache
        return cache

    @property
    def route_pool_keys(self) -> Tuple[Tuple[str, DieKey], ...]:
        """The (netlist, die) keys currently pooled (isolation tests)."""
        return tuple(self._routes)

    # -- reporting -------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Plain hit/miss snapshot (plus pool sizes)."""
        out = dict(self._counts)
        out["netlist_entries"] = len(self._networks)
        out["layout_entries"] = len(self._layouts)
        out["matcher_entries"] = len(self._matchers)
        out["route_pool_entries"] = len(self._routes)
        return out

    def stats(self) -> StatsRegistry:
        """The snapshot as ``serve.*`` work/env stats."""
        registry = StatsRegistry()
        for name, value in self._counts.items():
            registry.work(f"serve.{name}", value)
        registry.env("serve.netlist_entries", len(self._networks))
        registry.env("serve.layout_entries", len(self._layouts))
        registry.env("serve.matcher_entries", len(self._matchers))
        registry.env("serve.route_pool_entries", len(self._routes))
        return registry
