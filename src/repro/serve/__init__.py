"""Long-lived batch engine: ``repro serve`` — JSONL jobs in, JSONL out.

The CLI's one-shot commands pay the full cold-start tax per run; this
package turns the same flow entry points into a cache-warm service:

* :class:`Job` / :class:`JobResult` — the JSONL request/response model
  (deterministic result lines, byte-identical at any worker count;
  field-by-field reference in ``docs/jobs-schema.md``);
* :class:`SessionCaches` — content-keyed netlist, layout, matcher and
  per-(die, netlist) route-cache pools shared across jobs, with LRU
  :class:`CacheBounds` and an optional persistent disk tier
  (:class:`PersistentCache`, ``--cache-dir``);
* the :mod:`~repro.serve.scheduler` — (netlist, die) affinity chains
  that run independent jobs concurrently (``--serve-workers``) while
  keeping the output stream byte-identical to a sequential run;
* :class:`ServeEngine` — the batch executor tying them together, whose
  per-job stages fan out over the :mod:`repro.exec` pool;
* :mod:`~repro.serve.status` — live telemetry: atomic heartbeat files
  (:class:`StatusWriter`, ``--status-file``) and the :func:`follow`
  long-poll behind ``repro follow``.

Architecture notes live in ``docs/serve.md``; the telemetry pipeline
in ``docs/observability.md``.
"""

from .caches import CacheBounds, SessionCaches, die_key, source_key
from .engine import ServeEngine
from .jobs import JOB_COMMANDS, Job, JobError, JobResult, parse_job, parse_jobs
from .persist import PersistentCache, cache_fingerprint
from .scheduler import affinity_key, plan_chains
from .status import (
    STATUS_SCHEMA_VERSION,
    StatusWriter,
    follow,
    is_end_marker,
    write_atomic_json,
    write_atomic_text,
)

__all__ = [
    "JOB_COMMANDS",
    "CacheBounds",
    "Job",
    "JobError",
    "JobResult",
    "PersistentCache",
    "STATUS_SCHEMA_VERSION",
    "ServeEngine",
    "SessionCaches",
    "StatusWriter",
    "affinity_key",
    "cache_fingerprint",
    "die_key",
    "follow",
    "is_end_marker",
    "parse_job",
    "parse_jobs",
    "plan_chains",
    "source_key",
    "write_atomic_json",
    "write_atomic_text",
]
