"""Long-lived batch engine: ``repro serve`` — JSONL jobs in, JSONL out.

The CLI's one-shot commands pay the full cold-start tax per run; this
package turns the same flow entry points into a cache-warm service:

* :class:`Job` / :class:`JobResult` — the JSONL request/response model
  (deterministic result lines, byte-identical at any worker count);
* :class:`SessionCaches` — content-keyed netlist, layout, matcher and
  per-(die, netlist) route-cache pools shared across jobs;
* :class:`ServeEngine` — the deterministic sequential job queue whose
  per-job stages fan out over the :mod:`repro.exec` pool.
"""

from .caches import SessionCaches, die_key, source_key
from .engine import ServeEngine
from .jobs import JOB_COMMANDS, Job, JobError, JobResult, parse_job, parse_jobs

__all__ = [
    "JOB_COMMANDS",
    "Job",
    "JobError",
    "JobResult",
    "ServeEngine",
    "SessionCaches",
    "die_key",
    "parse_job",
    "parse_jobs",
    "source_key",
]
