"""Job and result model of the batch engine: JSONL in, JSONL out.

A *job* is one flow request — the batch equivalent of a ``repro flow``
/ ``ksweep`` / ``ksearch`` CLI invocation — expressed as one JSON
object per line::

    {"id": "j1", "cmd": "flow",    "source": "spla@0.02", "rows": 18,
     "tolerance": 6}
    {"id": "j2", "cmd": "ksweep",  "source": "spla@0.02", "rows": 16,
     "k": [0.0, 0.001, 0.01]}
    {"id": "j3", "cmd": "ksearch", "source": "spla@0.06", "rows": 20,
     "tolerance": 6, "strategy": "bisect"}

``source`` is a BLIF path or a ``name@scale`` benchmark (exactly the
CLI's positional); ``rows`` sizes the die (0 = the CLI's default
utilization-derived die); ``workers`` overrides the engine's default
per-job fan-out.  Unknown fields are rejected so typos fail loudly.

A :class:`JobResult` is the corresponding output line.  It carries
**only deterministic fields** — the evaluated rows (``EvalPoint.row()``
tuples), the verdict and the chosen K — so the same job stream yields
*bit-identical* output at any worker count and whether caches were warm
or cold.  Wall-times and cache-hit tallies are plan-dependent by nature
and live in the engine summary (:meth:`repro.serve.engine.ServeEngine.
summary`) and the trace instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError

__all__ = ["Job", "JobError", "JobResult", "JOB_COMMANDS", "parse_job",
           "parse_jobs"]

#: The flow entry points a job may request.
JOB_COMMANDS = ("flow", "ksweep", "ksearch")

_KNOWN_FIELDS = frozenset(
    {"id", "cmd", "source", "rows", "k", "tolerance", "strategy", "workers"})


class JobError(ReproError):
    """A malformed job line (bad JSON, unknown command, bad field)."""


@dataclass(frozen=True)
class Job:
    """One validated batch request."""

    id: str
    cmd: str
    source: str
    rows: int = 0
    k: Optional[Tuple[float, ...]] = None
    tolerance: int = 0
    strategy: str = "bisect"          # ksearch only
    workers: Optional[int] = None     # None -> engine default

    def to_dict(self) -> Dict[str, Any]:
        """The JSON object form (omits defaulted optionals)."""
        out: Dict[str, Any] = {"id": self.id, "cmd": self.cmd,
                               "source": self.source}
        if self.rows:
            out["rows"] = self.rows
        if self.k is not None:
            out["k"] = list(self.k)
        if self.tolerance:
            out["tolerance"] = self.tolerance
        if self.cmd == "ksearch":
            out["strategy"] = self.strategy
        if self.workers is not None:
            out["workers"] = self.workers
        return out

    def to_json(self) -> str:
        """One JSONL line."""
        return json.dumps(self.to_dict(), sort_keys=True)


def parse_job(data: Dict[str, Any], index: int = 0) -> Job:
    """Validate one decoded job object (``index`` names anonymous jobs)."""
    if not isinstance(data, dict):
        raise JobError(f"job {index}: expected a JSON object, "
                       f"got {type(data).__name__}")
    unknown = set(data) - _KNOWN_FIELDS
    if unknown:
        raise JobError(f"job {index}: unknown fields {sorted(unknown)}")
    cmd = data.get("cmd")
    if cmd not in JOB_COMMANDS:
        raise JobError(f"job {index}: cmd must be one of {JOB_COMMANDS}, "
                       f"got {cmd!r}")
    source = data.get("source")
    if not isinstance(source, str) or not source:
        raise JobError(f"job {index}: missing source")
    rows = data.get("rows", 0)
    if not isinstance(rows, int) or rows < 0:
        raise JobError(f"job {index}: rows must be a non-negative int")
    k = data.get("k")
    if k is not None:
        try:
            k = tuple(float(x) for x in k)
        except (TypeError, ValueError):
            raise JobError(f"job {index}: k must be a list of numbers") \
                from None
        if not k:
            raise JobError(f"job {index}: k must be non-empty when given")
    tolerance = data.get("tolerance", 0)
    if not isinstance(tolerance, int) or tolerance < 0:
        raise JobError(f"job {index}: tolerance must be a non-negative int")
    strategy = data.get("strategy", "bisect")
    workers = data.get("workers")
    if workers is not None and (not isinstance(workers, int) or workers < 1):
        raise JobError(f"job {index}: workers must be a positive int")
    job_id = data.get("id", f"job{index}")
    return Job(id=str(job_id), cmd=cmd, source=source, rows=rows, k=k,
               tolerance=tolerance, strategy=str(strategy), workers=workers)


def parse_jobs(lines: Iterable[str]) -> List[Job]:
    """Parse a JSONL job stream; blank lines and ``#`` comments skipped.

    Duplicate job ids are rejected — results are keyed by id, and a
    silent duplicate would make the output stream ambiguous.
    """
    jobs: List[Job] = []
    seen: set = set()
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise JobError(f"line {lineno}: invalid JSON ({exc.msg})") \
                from None
        job = parse_job(data, index=len(jobs) + 1)
        if job.id in seen:
            raise JobError(f"line {lineno}: duplicate job id {job.id!r}")
        seen.add(job.id)
        jobs.append(job)
    return jobs


@dataclass
class JobResult:
    """One output line — deterministic fields only (see module doc)."""

    id: str
    cmd: str
    source: str
    ok: bool
    verdict: str
    chosen_k: Optional[float] = None
    #: ``EvalPoint.row()`` tuples of every reported point, in the order
    #: the underlying entry point reports them (history order for
    #: ``flow``, K order for ``ksweep``/``ksearch``).
    rows: List[Tuple[float, float, int, float, int]] = field(
        default_factory=list)
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """The JSON object form."""
        out: Dict[str, Any] = {
            "id": self.id, "cmd": self.cmd, "source": self.source,
            "ok": self.ok, "verdict": self.verdict,
            "chosen_k": self.chosen_k,
            "rows": [list(row) for row in self.rows],
        }
        if self.error:
            out["error"] = self.error
        return out

    def to_json(self) -> str:
        """One JSONL line (sorted keys — byte-stable for identical data)."""
        return json.dumps(self.to_dict(), sort_keys=True)
