"""Live service status: atomic heartbeats and the follow long-poll.

A running ``repro serve`` session is a black box until it exits unless
it writes one somewhere.  Two pieces close that gap:

* :class:`StatusWriter` — ``--status-file`` plumbing.  The engine hands
  it a heartbeat document after every job (and chain outcome); the
  writer throttles to *every N jobs / every S seconds* and writes
  **atomically** (temp file + ``os.replace`` in the same directory), so
  a reader never observes a torn JSON document.  The final heartbeat
  (``state: "done"``) is always written.
* :func:`follow` — ``repro follow`` plumbing.  Long-polls a file that
  either *grows* (a results JSONL stream) or is *atomically replaced*
  (a status heartbeat: ``os.replace`` gives the path a new inode, which
  is how replacement is detected) and hands every complete new line to
  a callback.  It terminates on an **end-of-stream marker** (a JSON
  line whose ``state`` is ``"done"`` — the final heartbeat), on a line
  **count**, or on a **timeout** without new data.

Heartbeat schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "event": "status",
      "state": "running" | "done",
      "pid": 12345,
      "t_unix": 1754650000.0,          # wall clock at write
      "jobs_total": 12,                # submitted (0 = not yet known)
      "jobs_done": 5, "ok": 5, "failed": 0,
      "in_flight_chains": 2,           # parallel scheduling only
      "slow_jobs": 0,                  # soft-deadline watchdog trips
      "cache": {...},                  # SessionCaches counters
      "cache_hit_rates": {...},        # per family, 0..1
      "instruments": {...},            # MetricsRegistry.snapshot()
      "last_job": {"id": ..., "cmd": ..., "ok": ..., "t_s": ...}
    }

Everything in a heartbeat is *plan-dependent* (wall-clocks, hit rates,
worker interleaving); the deterministic payload remains the result
lines.  Turning the status file on cannot change a result byte —
asserted by ``tests/serve/test_cli_serve.py`` and the CI obs-metrics
smoke step.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["STATUS_SCHEMA_VERSION", "StatusWriter", "follow",
           "is_end_marker", "write_atomic_json", "write_atomic_text"]

#: Bump when a heartbeat field is renamed or removed (additions are free).
STATUS_SCHEMA_VERSION = 1


def write_atomic_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` so readers never see a torn file.

    The temp file lives in the target directory (``os.replace`` must
    not cross filesystems).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=".status-", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def write_atomic_json(path: str, document: Dict[str, Any]) -> None:
    """Atomically write ``document`` as one compact JSON line.

    The trailing newline matters: a follower treats each replacement
    of the file as one complete new line.
    """
    write_atomic_text(path, json.dumps(document, sort_keys=True) + "\n")


class StatusWriter:
    """Throttled atomic heartbeat emission for one serve session.

    ``every_jobs`` / ``every_s`` gate how often :meth:`update` actually
    writes (whichever fires first; ``every_jobs=1`` with ``every_s=0``
    writes after every job).  ``force=True`` (the final heartbeat)
    always writes.  ``on_write`` (assignable) is called with the
    document after every actual write — the CLI hangs the
    ``--metrics-out`` re-render off it so metrics files track
    heartbeats without a second throttle.
    """

    def __init__(self, path: str, every_jobs: int = 1,
                 every_s: float = 0.0):  # noqa: D107
        self.path = path
        self.every_jobs = max(1, int(every_jobs))
        self.every_s = max(0.0, float(every_s))
        self.writes = 0
        self.on_write: Optional[Callable[[Dict[str, Any]], None]] = None
        self._jobs_at_last_write: Optional[int] = None
        self._t_last_write = 0.0

    def _due(self, jobs_done: int) -> bool:
        if self._jobs_at_last_write is None:
            return True
        if jobs_done - self._jobs_at_last_write >= self.every_jobs:
            return True
        return bool(self.every_s) and \
            time.monotonic() - self._t_last_write >= self.every_s

    def update(self, document: Dict[str, Any], force: bool = False) -> bool:
        """Write a heartbeat if one is due; returns whether it wrote."""
        jobs_done = int(document.get("jobs_done", 0))
        if not force and not self._due(jobs_done):
            return False
        write_atomic_json(self.path, document)
        self.writes += 1
        self._jobs_at_last_write = jobs_done
        self._t_last_write = time.monotonic()
        if self.on_write is not None:
            self.on_write(document)
        return True


def is_end_marker(line: str) -> bool:
    """Whether a followed line declares the stream finished.

    The final serve heartbeat carries ``"state": "done"``; any JSON
    object line with that field (or an explicit ``"event": "end"``)
    ends the follow.  Non-JSON lines never end a stream.
    """
    try:
        data = json.loads(line)
    except (json.JSONDecodeError, ValueError):
        return False
    return isinstance(data, dict) and (
        data.get("state") == "done" or data.get("event") == "end")


def _read_new(path: str, offset: int, inode: Optional[int]
              ) -> Tuple[str, int, Optional[int]]:
    """New bytes of ``path`` past ``offset``; handles atomic replacement.

    Returns ``(text, new offset, inode)``.  A changed inode or a file
    shrunk below the offset means the file was replaced (heartbeat
    rewrite) — reading restarts from the top.
    """
    try:
        stat = os.stat(path)
    except FileNotFoundError:
        return "", offset, inode
    if inode is not None and stat.st_ino != inode:
        offset = 0
    elif stat.st_size < offset:
        offset = 0
    if stat.st_size == offset:
        return "", offset, stat.st_ino
    with open(path, "r") as handle:
        handle.seek(offset)
        text = handle.read()
    return text, offset + len(text.encode("utf-8", "surrogateescape")), \
        stat.st_ino


def follow(path: str,
           on_line: Callable[[str], None],
           timeout_s: float = 30.0,
           poll_s: float = 0.2,
           count: int = 0) -> Tuple[int, str]:
    """Long-poll ``path`` and feed complete new lines to ``on_line``.

    Termination, in priority order:

    * ``"end"`` — a line satisfied :func:`is_end_marker` (the stream
      announced completion);
    * ``"count"`` — ``count > 0`` lines have been delivered;
    * ``"timeout"`` — no new complete line arrived for ``timeout_s``
      seconds (existing content is read immediately, so a finished
      file is drained without waiting).

    Returns ``(lines delivered, reason)``.  A trailing partial line
    (no newline yet) is buffered until its newline arrives — or
    flushed once at timeout, so a final unterminated line is not lost.
    """
    offset = 0
    inode: Optional[int] = None
    pending = ""
    delivered = 0
    deadline = time.monotonic() + max(0.0, timeout_s)

    def deliver(line: str) -> Optional[str]:
        nonlocal delivered
        on_line(line)
        delivered += 1
        if is_end_marker(line):
            return "end"
        if count and delivered >= count:
            return "count"
        return None

    while True:
        text, new_offset, inode = _read_new(path, offset, inode)
        if new_offset < offset:  # pragma: no cover - replacement race
            pending = ""
        offset = new_offset
        if text:
            pending += text
            deadline = time.monotonic() + max(0.0, timeout_s)
            *lines, pending = pending.split("\n")
            for line in lines:
                if not line.strip():
                    continue
                reason = deliver(line)
                if reason is not None:
                    return delivered, reason
        if time.monotonic() >= deadline:
            if pending.strip():
                reason = deliver(pending)
                if reason is not None:
                    return delivered, reason
            return delivered, "timeout"
        time.sleep(poll_s)
